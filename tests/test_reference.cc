/**
 * @file
 * Golden-model semantics: every Table II instruction against
 * hand-computed expectations.
 */

#include <gtest/gtest.h>

#include "runtime/reference.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

TEST(Reference, SearchNodeSetsValueAndOrigin)
{
    SemanticNetwork net = makeChainKb(4);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    ri.execute(Instruction::searchNode(2, 5, 1.25f), rules, rs);
    EXPECT_TRUE(ri.store().test(5, 2));
    EXPECT_FLOAT_EQ(ri.store().value(5, 2), 1.25f);
    EXPECT_EQ(ri.store().origin(5, 2), 2u);
    EXPECT_FALSE(ri.store().test(5, 1));
}

TEST(Reference, SearchColorAndRelation)
{
    SemanticNetwork net;
    NodeId a = net.addNode("a", "red");
    NodeId b = net.addNode("b", "blue");
    NodeId c = net.addNode("c", "red");
    RelationType r = net.relation("r");
    net.addLink(b, r, a, 1.0f);

    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    Color red = net.colorNames().lookup("red");
    ri.execute(Instruction::searchColor(red, 0, 2.0f), rules, rs);
    EXPECT_TRUE(ri.store().test(0, a));
    EXPECT_FALSE(ri.store().test(0, b));
    EXPECT_TRUE(ri.store().test(0, c));

    ri.execute(Instruction::searchRelation(r, 1, 3.0f), rules, rs);
    EXPECT_TRUE(ri.store().test(1, b));
    EXPECT_FALSE(ri.store().test(1, a));
    EXPECT_FLOAT_EQ(ri.store().value(1, b), 3.0f);
}

TEST(Reference, PropagateCountsHops)
{
    SemanticNetwork net = makeChainKb(5);
    RelationType next = net.relationId("next");
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    RuleId rid = rules.add(PropRule::chain(next));
    ri.execute(Instruction::searchNode(0, 0, 0.0f), rules, rs);
    ri.execute(Instruction::propagate(0, 1, rid, MarkerFunc::Count),
               rules, rs);
    for (NodeId n = 1; n < 5; ++n) {
        EXPECT_TRUE(ri.store().test(1, n));
        EXPECT_FLOAT_EQ(ri.store().value(1, n),
                        static_cast<float>(n));
    }
    EXPECT_FALSE(ri.store().test(1, 0));  // origin not marked
    EXPECT_EQ(ri.stats().maxDepth, 4u);
}

TEST(Reference, PropagateMergesMinAcrossPaths)
{
    // Diamond: s -> a (w=1) -> t (w=5); s -> b (w=2) -> t (w=1).
    // AddWeight: path costs 6 and 3; t keeps 3.
    SemanticNetwork net;
    NodeId s = net.addNode("s"), a = net.addNode("a");
    NodeId b = net.addNode("b"), t = net.addNode("t");
    RelationType r = net.relation("r");
    net.addLink(s, r, a, 1);
    net.addLink(a, r, t, 5);
    net.addLink(s, r, b, 2);
    net.addLink(b, r, t, 1);

    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    RuleId rid = rules.add(PropRule::chain(r));
    ri.execute(Instruction::searchNode(s, 0, 0.0f), rules, rs);
    ri.execute(Instruction::propagate(0, 1, rid,
                                      MarkerFunc::AddWeight),
               rules, rs);
    EXPECT_FLOAT_EQ(ri.store().value(1, t), 3.0f);
    EXPECT_EQ(ri.store().origin(1, t), s);
}

TEST(Reference, PropagateTerminatesOnCycles)
{
    // 3-cycle with positive weights: AddWeight cannot improve after
    // the first lap.
    SemanticNetwork net;
    NodeId a = net.addNode("a"), b = net.addNode("b");
    NodeId c = net.addNode("c");
    RelationType r = net.relation("r");
    net.addLink(a, r, b, 1);
    net.addLink(b, r, c, 1);
    net.addLink(c, r, a, 1);

    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    RuleId rid = rules.add(PropRule::chain(r)); // maxSteps = 64
    ri.execute(Instruction::searchNode(a, 0, 0.0f), rules, rs);
    ri.execute(Instruction::propagate(0, 1, rid,
                                      MarkerFunc::AddWeight),
               rules, rs);
    EXPECT_FLOAT_EQ(ri.store().value(1, b), 1.0f);
    EXPECT_FLOAT_EQ(ri.store().value(1, c), 2.0f);
    EXPECT_FLOAT_EQ(ri.store().value(1, a), 3.0f);  // back home
}

TEST(Reference, MaxStepsBoundsReach)
{
    SemanticNetwork net = makeChainKb(10);
    RelationType next = net.relationId("next");
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    PropRule rule = PropRule::chain(next);
    rule.maxSteps = 3;
    RuleId rid = rules.add(std::move(rule));
    ri.execute(Instruction::searchNode(0, 0, 0.0f), rules, rs);
    ri.execute(Instruction::propagate(0, 1, rid, MarkerFunc::Count),
               rules, rs);
    EXPECT_TRUE(ri.store().test(1, 3));
    EXPECT_FALSE(ri.store().test(1, 4));
}

TEST(Reference, BooleanAndOrNot)
{
    SemanticNetwork net = makeChainKb(6);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    ri.execute(Instruction::searchNode(1, 0, 2.0f), rules, rs);
    ri.execute(Instruction::searchNode(2, 0, 3.0f), rules, rs);
    ri.execute(Instruction::searchNode(2, 1, 5.0f), rules, rs);
    ri.execute(Instruction::searchNode(3, 1, 7.0f), rules, rs);

    ri.execute(Instruction::andMarker(0, 1, 2, CombineOp::Sum),
               rules, rs);
    EXPECT_FALSE(ri.store().test(2, 1));
    EXPECT_TRUE(ri.store().test(2, 2));
    EXPECT_FLOAT_EQ(ri.store().value(2, 2), 8.0f);
    EXPECT_FALSE(ri.store().test(2, 3));

    ri.execute(Instruction::orMarker(0, 1, 3, CombineOp::Max),
               rules, rs);
    EXPECT_TRUE(ri.store().test(3, 1));
    EXPECT_FLOAT_EQ(ri.store().value(3, 1), 2.0f);
    EXPECT_FLOAT_EQ(ri.store().value(3, 2), 5.0f);  // max(3,5)
    EXPECT_FLOAT_EQ(ri.store().value(3, 3), 7.0f);
    EXPECT_FALSE(ri.store().test(3, 0));

    ri.execute(Instruction::notMarker(0, 4), rules, rs);
    EXPECT_TRUE(ri.store().test(4, 0));
    EXPECT_FALSE(ri.store().test(4, 1));
    EXPECT_FALSE(ri.store().test(4, 2));
    EXPECT_TRUE(ri.store().test(4, 5));
}

TEST(Reference, BooleanOverwritesStaleResult)
{
    // m3 := m1 AND m2 must RESET m3 where the condition fails.
    SemanticNetwork net = makeChainKb(3);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    ri.execute(Instruction::setMarker(2, 9.0f), rules, rs);
    ri.execute(Instruction::searchNode(0, 0, 1.0f), rules, rs);
    ri.execute(Instruction::andMarker(0, 1, 2, CombineOp::Sum),
               rules, rs);
    EXPECT_FALSE(ri.store().test(2, 0));
    EXPECT_FALSE(ri.store().test(2, 1));
    EXPECT_FALSE(ri.store().test(2, 2));
}

TEST(Reference, SetClearFuncMarker)
{
    SemanticNetwork net = makeChainKb(4);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    ri.execute(Instruction::setMarker(0, 1.5f), rules, rs);
    EXPECT_EQ(ri.store().count(0), 4u);
    EXPECT_FLOAT_EQ(ri.store().value(0, 3), 1.5f);

    ri.execute(Instruction::funcMarker(
                   0, ScalarFunc{ScalarFunc::Op::Add, 1.0f}),
               rules, rs);
    EXPECT_FLOAT_EQ(ri.store().value(0, 2), 2.5f);

    ri.execute(Instruction::searchNode(1, 0, 0.5f), rules, rs);
    ri.execute(Instruction::funcMarker(
                   0, ScalarFunc{ScalarFunc::Op::ThresholdGe, 1.0f}),
               rules, rs);
    EXPECT_FALSE(ri.store().test(0, 1));  // 0.5 < 1.0: cleared
    EXPECT_TRUE(ri.store().test(0, 2));

    ri.execute(Instruction::clearMarker(0), rules, rs);
    EXPECT_EQ(ri.store().count(0), 0u);
}

TEST(Reference, MarkerMaintenanceCreatesBothDirections)
{
    SemanticNetwork net = makeChainKb(5);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    RelationType fwd = net.relation("bound-to");
    RelationType rev = net.relation("holds");

    ri.execute(Instruction::searchNode(1, 0, 0.0f), rules, rs);
    ri.execute(Instruction::searchNode(2, 0, 0.0f), rules, rs);
    ri.execute(Instruction::markerCreate(0, fwd, 4, rev), rules, rs);

    EXPECT_TRUE(net.setWeight(1, fwd, 4, 0.0f));  // link exists
    EXPECT_TRUE(net.setWeight(4, rev, 1, 0.0f));
    EXPECT_TRUE(net.setWeight(4, rev, 2, 0.0f));

    ri.execute(Instruction::markerDelete(0, fwd, 4, rev), rules, rs);
    EXPECT_FALSE(net.setWeight(1, fwd, 4, 0.0f));
    EXPECT_FALSE(net.setWeight(4, rev, 1, 0.0f));
}

TEST(Reference, MarkerSetColorAndNodeMaintenance)
{
    SemanticNetwork net = makeChainKb(4);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    Color act = net.colorNames().intern("active");

    ri.execute(Instruction::searchNode(2, 0, 0.0f), rules, rs);
    ri.execute(Instruction::markerSetColor(0, act), rules, rs);
    EXPECT_EQ(net.color(2), act);
    EXPECT_NE(net.color(1), act);

    RelationType r = net.relation("extra");
    ri.execute(Instruction::create(0, r, 0.7f, 3), rules, rs);
    EXPECT_EQ(net.fanout(0), 2u);
    ri.execute(Instruction::del(0, r, 3), rules, rs);
    EXPECT_EQ(net.fanout(0), 1u);

    ri.execute(Instruction::setColor(1, act), rules, rs);
    EXPECT_EQ(net.color(1), act);
}

TEST(Reference, Collects)
{
    SemanticNetwork net = makeChainKb(6, "next", 2.0f);
    RelationType next = net.relationId("next");
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;

    ri.execute(Instruction::searchNode(1, 0, 4.0f), rules, rs);
    ri.execute(Instruction::searchNode(4, 0, 6.0f), rules, rs);
    ri.execute(Instruction::collectMarker(0), rules, rs);
    ASSERT_EQ(rs.size(), 1u);
    ASSERT_EQ(rs[0].nodes.size(), 2u);
    EXPECT_EQ(rs[0].nodes[0].node, 1u);
    EXPECT_FLOAT_EQ(rs[0].nodes[0].value, 4.0f);
    EXPECT_EQ(rs[0].nodes[1].node, 4u);

    ri.execute(Instruction::collectRelation(0, next), rules, rs);
    ASSERT_EQ(rs.size(), 2u);
    ASSERT_EQ(rs[1].links.size(), 2u);
    EXPECT_EQ(rs[1].links[0].src, 1u);
    EXPECT_EQ(rs[1].links[0].dst, 2u);
    EXPECT_FLOAT_EQ(rs[1].links[0].weight, 2.0f);

    Color c0 = 0;
    ri.execute(Instruction::collectColor(c0), rules, rs);
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_EQ(rs[2].nodes.size(), 6u);
}

TEST(Reference, InstrWorkCountersPopulated)
{
    SemanticNetwork net = makeChainKb(50);
    RelationType next = net.relationId("next");
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    RuleId rid = rules.add(PropRule::chain(next));

    ri.execute(Instruction::setMarker(0, 1.0f), rules, rs);
    // 50 nodes -> 2 status words; complex marker -> 50 value writes.
    EXPECT_EQ(ri.lastWork().wordOps, 2u);
    EXPECT_EQ(ri.lastWork().valueOps, 50u);

    ri.execute(Instruction::clearMarker(0), rules, rs);
    EXPECT_EQ(ri.lastWork().wordOps, 2u);
    EXPECT_EQ(ri.lastWork().valueOps, 0u);

    ri.execute(Instruction::searchNode(0, 0, 0.0f), rules, rs);
    ri.execute(Instruction::propagate(0, 1, rid, MarkerFunc::Count),
               rules, rs);
    const InstrWork &w = ri.lastWork();
    EXPECT_EQ(w.sources, 1u);
    EXPECT_EQ(w.deliveries, 49u);
    // Levels 0..49: the final node still expands (and finds no
    // admissible links).
    EXPECT_EQ(w.levelExpansions.size(), 50u);
    EXPECT_EQ(w.levelExpansions[0], 1u);
}

TEST(Reference, ResetClearsMarkersOnly)
{
    SemanticNetwork net = makeChainKb(4);
    ReferenceInterpreter ri(net);
    ResultSet rs;
    RuleTable rules;
    RelationType r = net.relation("extra");
    ri.execute(Instruction::setMarker(0, 1.0f), rules, rs);
    ri.execute(Instruction::create(0, r, 0.0f, 2), rules, rs);
    ri.reset();
    EXPECT_EQ(ri.store().count(0), 0u);
    EXPECT_EQ(net.fanout(0), 2u);  // network edits persist
    EXPECT_EQ(ri.stats().instructions, 0u);
}

} // namespace
} // namespace snap
