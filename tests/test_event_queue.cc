/**
 * @file
 * Tests for the discrete-event kernel: ordering, same-tick FIFO,
 * deschedule/reschedule, horizons, and clocked objects.
 */

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace snap
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleCallback(30, [&] { order.push_back(3); });
    eq.scheduleCallback(10, [&] { order.push_back(1); });
    eq.scheduleCallback(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleCallback(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 5)
            eq.scheduleCallback(eq.curTick() + 7, chain);
    };
    eq.scheduleCallback(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "cancel-me");
    eq.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.numScheduled(), 0u);
}

TEST(EventQueue, RescheduleMoves)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper ev([&] { fired_at = eq.curTick(); }, "move");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 50);
    eq.run();
    EXPECT_EQ(fired_at, 50u);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {5u, 10u, 15u, 20u})
        eq.scheduleCallback(t, [&, t] { fired.push_back(t); });
    eq.runUntil(12);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
    eq.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, MemberEventReuse)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper ev([&] { ++count; }, "reuse");
    for (int i = 0; i < 3; ++i) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.run();
    }
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, FarFutureEventsFire)
{
    // Deltas past the near-bucket span route through the overflow
    // heap and must interleave correctly with near events.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleCallback(Tick{1} << 35, [&] { order.push_back(2); });
    eq.scheduleCallback(10, [&] { order.push_back(1); });
    eq.scheduleCallback(Tick{1} << 40, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), Tick{1} << 40);
}

TEST(EventQueue, RescheduleAcrossNearFarBoundary)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper ev([&] { fired_at = eq.curTick(); }, "far");
    eq.schedule(&ev, 10);                // near ring
    eq.reschedule(&ev, Tick{1} << 35);   // overflow heap
    eq.scheduleCallback(100, [] {});     // stale ring entry is pruned
    eq.run();
    EXPECT_EQ(fired_at, Tick{1} << 35);

    eq.schedule(&ev, eq.curTick() + (Tick{1} << 35));
    eq.reschedule(&ev, eq.curTick() + 5);  // overflow back to ring
    eq.run();
    EXPECT_EQ(fired_at, (Tick{1} << 35) + 5);
}

TEST(EventQueue, DescheduleFarFutureCancels)
{
    EventQueue eq;
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "cancel-far");
    eq.schedule(&ev, Tick{1} << 40);
    eq.deschedule(&ev);
    eq.scheduleCallback(10, [] {});
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.numScheduled(), 0u);
}

TEST(EventQueue, CallbackPoolReachesSteadyState)
{
    // After warm-up, scheduleCallback must recycle pooled events
    // instead of allocating: zero per-event heap allocations in
    // steady state.
    EventQueue eq;
    const int burst = 32;
    int fired = 0;
    auto round = [&] {
        for (int i = 0; i < burst; ++i)
            eq.scheduleCallback(eq.curTick() + 1 + i, [&] { ++fired; });
        eq.run();
    };
    for (int r = 0; r < 3; ++r)
        round();
    std::uint64_t allocated = eq.callbackPoolAllocated();
    EXPECT_GT(allocated, 0u);
    EXPECT_LE(allocated, static_cast<std::uint64_t>(burst));

    for (int r = 0; r < 50; ++r)
        round();
    EXPECT_EQ(eq.callbackPoolAllocated(), allocated);
    EXPECT_GT(eq.callbackPoolReused(), 0u);
    EXPECT_EQ(eq.callbackPoolFree(), allocated);
    EXPECT_EQ(fired, 53 * burst);
}

TEST(EventQueue, HeapImplBehavesIdentically)
{
    EventQueue eq(EventQueue::Impl::Heap);
    EXPECT_EQ(eq.impl(), EventQueue::Impl::Heap);
    std::vector<int> order;
    eq.scheduleCallback(30, [&] { order.push_back(3); });
    eq.scheduleCallback(10, [&] { order.push_back(1); });
    for (int i = 0; i < 3; ++i)
        eq.scheduleCallback(20, [&, i] { order.push_back(10 + i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 10, 11, 12, 3}));
}

/** Self-expanding random storm; returns the (tick, id) fire log. */
static std::vector<std::pair<Tick, int>>
stormFireLog(EventQueue::Impl impl)
{
    EventQueue eq(impl);
    Rng rng(987);
    std::vector<std::pair<Tick, int>> log;
    int next_id = 0;
    const int total = 3000;

    std::function<void()> spawnSome = [&] {
        int fanout = static_cast<int>(rng.below(4));
        for (int i = 0; i < fanout && next_id < total; ++i) {
            Tick delta;
            switch (rng.below(4)) {
              case 0: delta = 0; break;                    // same tick
              case 1: delta = rng.below(1000); break;      // near
              case 2: delta = rng.below(1u << 20); break;  // mid ring
              default:                                     // overflow
                delta = (Tick{1} << 30) + rng.below(1u << 30);
                break;
            }
            int id = next_id++;
            eq.scheduleCallback(eq.curTick() + delta, [&, id] {
                log.emplace_back(eq.curTick(), id);
                spawnSome();
            });
        }
    };
    // Seed enough roots that the storm sustains itself.
    for (int i = 0; i < 64; ++i)
        spawnSome();
    eq.run();
    return log;
}

TEST(EventQueue, IndexedMatchesHeapUnderRandomStorm)
{
    auto indexed = stormFireLog(EventQueue::Impl::Indexed);
    auto heap = stormFireLog(EventQueue::Impl::Heap);
    ASSERT_FALSE(indexed.empty());
    EXPECT_EQ(indexed, heap);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.scheduleCallback(100, [] {});
    eq.run();
    EventFunctionWrapper ev([] {}, "late");
    EXPECT_DEATH(eq.schedule(&ev, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "twice");
    eq.schedule(&ev, 10);
    EXPECT_DEATH(eq.schedule(&ev, 20), "already scheduled");
    eq.deschedule(&ev);
}

TEST(ClockedObject, EdgesAlignToGrid)
{
    EventQueue eq;
    ClockedObject obj(&eq, "dsp", 40000);  // 40 ns

    // At t=0, the aligned edge is t=0.
    EXPECT_EQ(obj.clockEdge(0), 0u);
    EXPECT_EQ(obj.clockEdge(2), 80000u);
    EXPECT_EQ(obj.cyclesToTicks(25), 1000000u);  // 25 cycles = 1 us

    // Advance to an unaligned instant.
    eq.scheduleCallback(55555, [] {});
    eq.run();
    EXPECT_EQ(obj.clockEdge(0), 80000u);  // next 40 ns edge
    EXPECT_EQ(obj.clockEdge(1), 120000u);
}

TEST(ClockedObject, ControllerAndArrayPeriods)
{
    EventQueue eq;
    ClockedObject array(&eq, "pe", 40000);
    ClockedObject ctrl(&eq, "scp", 31250);
    // 25 MHz and 32 MHz: 1 us worth of cycles.
    EXPECT_EQ(array.cyclesToTicks(25), ticksPerUs);
    EXPECT_EQ(ctrl.cyclesToTicks(32), ticksPerUs);
}

} // namespace
} // namespace snap
