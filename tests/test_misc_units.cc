/**
 * @file
 * Unit tests for the remaining small components: MarkerStore,
 * statistics merging, the ActiveTimer, and the SNAP-system glue not
 * covered elsewhere.
 */

#include <gtest/gtest.h>

#include "arch/exec_stats.hh"
#include "arch/machine.hh"
#include "runtime/marker_store.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

// --- marker store -----------------------------------------------------------

TEST(MarkerStoreTest, ComplexAndBinaryPlanes)
{
    MarkerStore ms(100);
    EXPECT_FALSE(ms.test(0, 5));
    ms.set(0, 5, 2.5f, 7);  // complex
    EXPECT_TRUE(ms.test(0, 5));
    EXPECT_FLOAT_EQ(ms.value(0, 5), 2.5f);
    EXPECT_EQ(ms.origin(0, 5), 7u);

    ms.set(64, 5, 9.0f, 8);  // binary: value/origin not stored
    EXPECT_TRUE(ms.test(64, 5));
    EXPECT_FLOAT_EQ(ms.value(64, 5), 0.0f);
    EXPECT_EQ(ms.origin(64, 5), invalidNode);
}

TEST(MarkerStoreTest, SetBitLeavesValueAlone)
{
    MarkerStore ms(10);
    ms.set(3, 2, 4.0f, 1);
    ms.setBit(3, 2);
    EXPECT_FLOAT_EQ(ms.value(3, 2), 4.0f);
}

TEST(MarkerStoreTest, UnallocatedPlaneReadsZero)
{
    MarkerStore ms(10);
    EXPECT_FLOAT_EQ(ms.value(5, 3), 0.0f);
    EXPECT_EQ(ms.origin(5, 3), invalidNode);
}

TEST(MarkerStoreTest, ClearAndCount)
{
    MarkerStore ms(40);
    for (NodeId n = 0; n < 40; n += 3)
        ms.set(2, n, 1.0f, n);
    EXPECT_EQ(ms.count(2), 14u);
    ms.clear(2, 0);
    EXPECT_EQ(ms.count(2), 13u);
    ms.clearAll(2);
    EXPECT_EQ(ms.count(2), 0u);
    // Values survive a bit clear; re-setting the bit sees them
    // only through set()'s overwrite.
    ms.set(2, 6, 7.0f, 6);
    EXPECT_FLOAT_EQ(ms.value(2, 6), 7.0f);
}

TEST(MarkerStoreTest, ResetDropsEverything)
{
    MarkerStore ms(20);
    ms.set(1, 1, 1.0f, 1);
    ms.set(65, 2, 0.0f, 2);
    ms.reset();
    EXPECT_EQ(ms.count(1), 0u);
    EXPECT_EQ(ms.count(65), 0u);
    EXPECT_FLOAT_EQ(ms.value(1, 1), 0.0f);
}

// --- ActiveTimer -----------------------------------------------------------

TEST(ActiveTimerTest, NonOverlappingIntervalsSum)
{
    ActiveTimer t;
    t.start(InstrCategory::Propagation, 100);
    t.stop(InstrCategory::Propagation, 150);
    t.start(InstrCategory::Propagation, 200);
    t.stop(InstrCategory::Propagation, 230);
    EXPECT_EQ(t.activeTicks(InstrCategory::Propagation), 80u);
    EXPECT_TRUE(t.allClosed());
}

TEST(ActiveTimerTest, OverlapCountsOnce)
{
    ActiveTimer t;
    t.start(InstrCategory::Propagation, 100);
    t.start(InstrCategory::Propagation, 120);  // nested
    t.stop(InstrCategory::Propagation, 180);
    t.stop(InstrCategory::Propagation, 200);
    EXPECT_EQ(t.activeTicks(InstrCategory::Propagation), 100u);
}

TEST(ActiveTimerTest, CategoriesIndependent)
{
    ActiveTimer t;
    t.start(InstrCategory::Boolean, 0);
    t.start(InstrCategory::SetClear, 10);
    t.stop(InstrCategory::Boolean, 20);
    t.stop(InstrCategory::SetClear, 40);
    EXPECT_EQ(t.activeTicks(InstrCategory::Boolean), 20u);
    EXPECT_EQ(t.activeTicks(InstrCategory::SetClear), 30u);
}

TEST(ActiveTimerTest, MergeClosedAdds)
{
    ActiveTimer a, b;
    a.start(InstrCategory::Search, 0);
    a.stop(InstrCategory::Search, 5);
    b.start(InstrCategory::Search, 0);
    b.stop(InstrCategory::Search, 7);
    a.mergeClosed(b);
    EXPECT_EQ(a.activeTicks(InstrCategory::Search), 12u);
}

TEST(ActiveTimerDeath, StopWithoutStartPanics)
{
    ActiveTimer t;
    EXPECT_DEATH(t.stop(InstrCategory::Search, 5), "underflow");
}

// --- ExecBreakdown merge -----------------------------------------------------

TEST(ExecBreakdownTest, MergeAccumulates)
{
    ExecBreakdown a, b;
    a.messagesSent = 3;
    a.barriers = 1;
    a.broadcastTicks = 100;
    a.msgsPerEpoch = {3};
    a.alphaDist.sample(10);
    a.maxDepth = 4;
    b.messagesSent = 5;
    b.barriers = 2;
    b.broadcastTicks = 50;
    b.msgsPerEpoch = {2, 3};
    b.alphaDist.sample(30);
    b.maxDepth = 9;

    a.merge(b);
    EXPECT_EQ(a.messagesSent, 8u);
    EXPECT_EQ(a.barriers, 3u);
    EXPECT_EQ(a.broadcastTicks, 150u);
    EXPECT_EQ(a.msgsPerEpoch,
              (std::vector<std::uint32_t>{3, 2, 3}));
    EXPECT_EQ(a.alphaDist.count(), 2u);
    EXPECT_DOUBLE_EQ(a.alphaDist.mean(), 20.0);
    EXPECT_EQ(a.maxDepth, 9u);
    EXPECT_NEAR(a.meanMsgsPerEpoch(), 8.0 / 3.0, 1e-9);
}

TEST(ExecBreakdownTest, SummaryMentionsCategories)
{
    ExecBreakdown s;
    s.wallTicks = 5 * ticksPerMs;
    std::string out = s.summary();
    EXPECT_NE(out.find("wall time"), std::string::npos);
    EXPECT_NE(out.find("propagate"), std::string::npos);
    EXPECT_NE(out.find("overheads"), std::string::npos);
}

// --- machine odds and ends ----------------------------------------------------

TEST(MachineMisc, LoadKbReplacesPrevious)
{
    SnapMachine machine(MachineConfig::singleCluster(2));
    SemanticNetwork a = makeChainKb(10);
    machine.loadKb(a);
    Program p1;
    p1.append(Instruction::setMarker(0, 1.0f));
    machine.run(p1);
    EXPECT_TRUE(machine.markerSet(0, 9));

    SemanticNetwork b = makeChainKb(6);
    machine.loadKb(b);
    EXPECT_EQ(machine.image().numNodes(), 6u);
    EXPECT_FALSE(machine.markerSet(0, 3));  // fresh tables
}

TEST(MachineMisc, EmptyProgramCompletesInstantly)
{
    SnapMachine machine(MachineConfig::singleCluster(1));
    SemanticNetwork net = makeChainKb(4);
    machine.loadKb(net);
    Program empty;
    RunResult run = machine.run(empty);
    EXPECT_TRUE(run.results.empty());
    EXPECT_EQ(run.stats.barriers, 0u);
}

TEST(MachineMisc, ConsecutiveBarriersAreCheap)
{
    SnapMachine machine(MachineConfig::paperSetup());
    SemanticNetwork net = makeChainKb(64);
    machine.loadKb(net);
    Program prog;
    for (int i = 0; i < 5; ++i)
        prog.append(Instruction::barrier());
    RunResult run = machine.run(prog);
    EXPECT_EQ(run.stats.barriers, 5u);
    EXPECT_EQ(run.stats.messagesSent, 0u);
    for (auto v : run.stats.msgsPerEpoch)
        EXPECT_EQ(v, 0u);
}

TEST(MachineMiscDeath, RunWithoutKbIsPanic)
{
    SnapMachine machine(MachineConfig::singleCluster(1));
    Program p;
    EXPECT_DEATH(machine.run(p), "no knowledge base");
}

TEST(MachineMiscDeath, BadConfigIsFatal)
{
    MachineConfig cfg;
    cfg.numClusters = 40;
    EXPECT_EXIT(SnapMachine m(cfg), ::testing::ExitedWithCode(1),
                "out of");
}

TEST(MachineMisc, PerfNetCanBeDisabled)
{
    MachineConfig cfg = MachineConfig::singleCluster(1);
    cfg.perfNetEnabled = false;
    SnapMachine machine(cfg);
    SemanticNetwork net = makeChainKb(8);
    machine.loadKb(net);
    Program p;
    p.append(Instruction::setMarker(0, 1.0f));
    machine.run(p);
    EXPECT_TRUE(machine.perfNet().records().empty());
}

} // namespace
} // namespace snap
