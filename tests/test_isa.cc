/**
 * @file
 * Tests for the ISA layer: marker functions, propagation-rule NFA
 * semantics, instruction encoding, programs, and the validator.
 */

#include <gtest/gtest.h>

#include "isa/function.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"
#include "isa/prop_rule.hh"
#include "runtime/validate.hh"

namespace snap
{
namespace
{

// --- marker functions -------------------------------------------------------

TEST(MarkerFunc, ApplyStep)
{
    EXPECT_FLOAT_EQ(applyStep(MarkerFunc::None, 2.0f, 9.0f), 2.0f);
    EXPECT_FLOAT_EQ(applyStep(MarkerFunc::AddWeight, 2.0f, 0.5f),
                    2.5f);
    EXPECT_FLOAT_EQ(applyStep(MarkerFunc::MinWeight, 2.0f, 0.5f),
                    0.5f);
    EXPECT_FLOAT_EQ(applyStep(MarkerFunc::MaxWeight, 2.0f, 0.5f),
                    2.0f);
    EXPECT_FLOAT_EQ(applyStep(MarkerFunc::MulWeight, 2.0f, 0.5f),
                    1.0f);
    EXPECT_FLOAT_EQ(applyStep(MarkerFunc::Count, 2.0f, 9.0f), 3.0f);
}

TEST(MarkerFunc, ImprovesFollowsMergeOrder)
{
    // Min-order functions prefer smaller values.
    EXPECT_TRUE(improves(MarkerFunc::AddWeight, 1.0f, 2.0f));
    EXPECT_FALSE(improves(MarkerFunc::AddWeight, 2.0f, 1.0f));
    EXPECT_TRUE(improves(MarkerFunc::Count, 3.0f, 4.0f));
    // Max-order functions prefer larger.
    EXPECT_TRUE(improves(MarkerFunc::MaxWeight, 2.0f, 1.0f));
    EXPECT_FALSE(improves(MarkerFunc::MaxWeight, 1.0f, 2.0f));
    // None never improves.
    EXPECT_FALSE(improves(MarkerFunc::None, 0.0f, 5.0f));
    EXPECT_FALSE(improves(MarkerFunc::None, 5.0f, 0.0f));
}

TEST(MarkerFunc, MergeKeepsBetter)
{
    EXPECT_FLOAT_EQ(merge(MarkerFunc::AddWeight, 2.0f, 1.0f), 1.0f);
    EXPECT_FLOAT_EQ(merge(MarkerFunc::AddWeight, 1.0f, 2.0f), 1.0f);
    EXPECT_FLOAT_EQ(merge(MarkerFunc::MaxWeight, 1.0f, 2.0f), 2.0f);
}

TEST(MarkerFunc, Names)
{
    MarkerFunc f;
    EXPECT_TRUE(markerFuncFromName("add-weight", f));
    EXPECT_EQ(f, MarkerFunc::AddWeight);
    EXPECT_FALSE(markerFuncFromName("nope", f));
    EXPECT_STREQ(markerFuncName(MarkerFunc::Count), "count");
}

TEST(ScalarFuncTest, ArithmeticOps)
{
    float v = 2.0f;
    EXPECT_TRUE((ScalarFunc{ScalarFunc::Op::Add, 1.5f}).apply(v));
    EXPECT_FLOAT_EQ(v, 3.5f);
    EXPECT_TRUE((ScalarFunc{ScalarFunc::Op::Mul, 2.0f}).apply(v));
    EXPECT_FLOAT_EQ(v, 7.0f);
    EXPECT_TRUE((ScalarFunc{ScalarFunc::Op::Sub, 3.0f}).apply(v));
    EXPECT_FLOAT_EQ(v, 4.0f);
    EXPECT_TRUE((ScalarFunc{ScalarFunc::Op::Set, 9.0f}).apply(v));
    EXPECT_FLOAT_EQ(v, 9.0f);
}

TEST(ScalarFuncTest, Thresholds)
{
    float v = 2.0f;
    EXPECT_TRUE(
        (ScalarFunc{ScalarFunc::Op::ThresholdGe, 2.0f}).apply(v));
    EXPECT_FALSE(
        (ScalarFunc{ScalarFunc::Op::ThresholdGe, 2.5f}).apply(v));
    EXPECT_TRUE(
        (ScalarFunc{ScalarFunc::Op::ThresholdLt, 2.5f}).apply(v));
    EXPECT_FLOAT_EQ(v, 2.0f);  // thresholds leave the value alone
}

TEST(CombineOpTest, AllOps)
{
    EXPECT_FLOAT_EQ(combine(CombineOp::Sum, 2, 3), 5);
    EXPECT_FLOAT_EQ(combine(CombineOp::Min, 2, 3), 2);
    EXPECT_FLOAT_EQ(combine(CombineOp::Max, 2, 3), 3);
    EXPECT_FLOAT_EQ(combine(CombineOp::First, 2, 3), 2);
    EXPECT_FLOAT_EQ(combine(CombineOp::Diff, 2, 3), -1);
}

// --- propagation rules --------------------------------------------------------

std::vector<std::uint8_t>
stepOf(const PropRule &r, std::uint8_t state, RelationType rel)
{
    std::vector<std::uint8_t> out;
    r.step(state, rel, out);
    return out;
}

TEST(PropRuleTest, SeqConsumesExactlyOnce)
{
    PropRule r = PropRule::seq(1, 2);
    EXPECT_EQ(stepOf(r, 0, 1), (std::vector<std::uint8_t>{1}));
    EXPECT_TRUE(stepOf(r, 0, 2).empty());  // r2 before r1: no
    EXPECT_EQ(stepOf(r, 1, 2), (std::vector<std::uint8_t>{2}));
    EXPECT_TRUE(stepOf(r, 1, 1).empty());
    EXPECT_TRUE(stepOf(r, 2, 1).empty());  // dead state
    EXPECT_TRUE(r.live(0));
    EXPECT_TRUE(r.live(1));
    EXPECT_FALSE(r.live(2));
}

TEST(PropRuleTest, SpreadSwitchesAtR2)
{
    PropRule r = PropRule::spread(1, 2);
    EXPECT_EQ(stepOf(r, 0, 1), (std::vector<std::uint8_t>{0}));
    // From state 0, an r2 link skips the star segment.
    EXPECT_EQ(stepOf(r, 0, 2), (std::vector<std::uint8_t>{1}));
    EXPECT_EQ(stepOf(r, 1, 2), (std::vector<std::uint8_t>{1}));
    EXPECT_TRUE(stepOf(r, 1, 1).empty());  // no r1 after the switch
}

TEST(PropRuleTest, SpreadWithSameRelationBothStates)
{
    // spread(r, r): an r link loops in segment 0 AND advances to
    // segment 1 (genuine NFA nondeterminism).
    PropRule r = PropRule::spread(3, 3);
    auto next = stepOf(r, 0, 3);
    EXPECT_EQ(next, (std::vector<std::uint8_t>{0, 1}));
}

TEST(PropRuleTest, CombFollowsBoth)
{
    PropRule r = PropRule::comb(1, 2);
    EXPECT_EQ(stepOf(r, 0, 1), (std::vector<std::uint8_t>{0}));
    EXPECT_EQ(stepOf(r, 0, 2), (std::vector<std::uint8_t>{0}));
    EXPECT_TRUE(stepOf(r, 0, 3).empty());
}

TEST(PropRuleTest, ChainAndStep)
{
    PropRule chain = PropRule::chain(5);
    EXPECT_EQ(stepOf(chain, 0, 5), (std::vector<std::uint8_t>{0}));
    EXPECT_TRUE(chain.live(0));

    PropRule step = PropRule::step1(5);
    EXPECT_EQ(stepOf(step, 0, 5), (std::vector<std::uint8_t>{1}));
    EXPECT_FALSE(step.live(1));
}

TEST(PropRuleTest, CustomMultiSegment)
{
    // [ {1} once, {2,3}*, {4} once ]
    PropRule r;
    r.name = "custom";
    r.segments = {RuleSegment{{1}, false}, RuleSegment{{2, 3}, true},
                  RuleSegment{{4}, false}};
    EXPECT_EQ(stepOf(r, 0, 1), (std::vector<std::uint8_t>{1}));
    EXPECT_EQ(stepOf(r, 1, 2), (std::vector<std::uint8_t>{1}));
    EXPECT_EQ(stepOf(r, 1, 3), (std::vector<std::uint8_t>{1}));
    // The star segment can be skipped entirely; consuming the final
    // ONCE segment lands in the dead (accepting) state 3.
    EXPECT_EQ(stepOf(r, 1, 4), (std::vector<std::uint8_t>{3}));
    EXPECT_FALSE(r.live(3));
}

TEST(RuleTableTest, TokensAreDense)
{
    RuleTable t;
    RuleId a = t.add(PropRule::chain(1));
    RuleId b = t.add(PropRule::seq(1, 2));
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.rule(a).name, "chain");
}

// --- instructions ------------------------------------------------------------

TEST(InstructionTest, CategoriesMatchTable2)
{
    EXPECT_EQ(Instruction::create(0, 1, 1.0f, 2).category(),
              InstrCategory::NodeMaintenance);
    EXPECT_EQ(Instruction::searchColor(0, 1, 0).category(),
              InstrCategory::Search);
    EXPECT_EQ(Instruction::propagate(0, 1, 0,
                                     MarkerFunc::None).category(),
              InstrCategory::Propagation);
    EXPECT_EQ(Instruction::markerCreate(0, 1, 2, 3).category(),
              InstrCategory::MarkerMaintenance);
    EXPECT_EQ(Instruction::andMarker(0, 1, 2).category(),
              InstrCategory::Boolean);
    EXPECT_EQ(Instruction::setMarker(0, 0).category(),
              InstrCategory::SetClear);
    EXPECT_EQ(Instruction::collectMarker(0).category(),
              InstrCategory::Collection);
    EXPECT_EQ(Instruction::barrier().category(),
              InstrCategory::Synchronization);
}

TEST(InstructionTest, TwentyPlusBarrierOpcodes)
{
    // Table II's 20 instructions plus the explicit BARRIER.
    EXPECT_EQ(static_cast<int>(Opcode::NumOpcodes), 21);
}

TEST(InstructionTest, NamesRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        Opcode back;
        ASSERT_TRUE(opcodeFromName(opcodeName(op), back))
            << opcodeName(op);
        EXPECT_EQ(back, op);
    }
}

TEST(InstructionTest, ToStringMentionsOperands)
{
    Instruction i = Instruction::propagate(1, 2, 3,
                                           MarkerFunc::AddWeight);
    std::string s = i.toString();
    EXPECT_NE(s.find("PROPAGATE"), std::string::npos);
    EXPECT_NE(s.find("m1"), std::string::npos);
    EXPECT_NE(s.find("m2"), std::string::npos);
    EXPECT_NE(s.find("add-weight"), std::string::npos);
}

// --- program -----------------------------------------------------------------------

TEST(ProgramTest, CategoryCounts)
{
    Program p;
    p.append(Instruction::searchNode(0, 0, 0));
    p.append(Instruction::propagate(0, 1, 0, MarkerFunc::None));
    p.append(Instruction::propagate(1, 2, 0, MarkerFunc::None));
    p.append(Instruction::barrier());
    auto counts = p.categoryCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(
                  InstrCategory::Propagation)], 2u);
    EXPECT_EQ(counts[static_cast<std::size_t>(
                  InstrCategory::Search)], 1u);
    EXPECT_EQ(p.countOpcode(Opcode::Propagate), 2u);
}

TEST(MarkerAllocTest, BanksAndExhaustion)
{
    MarkerAlloc alloc;
    MarkerId c = alloc.complex();
    MarkerId b = alloc.binary();
    EXPECT_TRUE(isComplexMarker(c));
    EXPECT_TRUE(isBinaryMarker(b));
    EXPECT_EQ(alloc.complexInUse(), 1u);
    EXPECT_EQ(alloc.binaryInUse(), 1u);
    alloc.reset();
    EXPECT_EQ(alloc.complex(), c);
}

// --- validator ---------------------------------------------------------------

TEST(Validator, CleanProgramPasses)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::searchNode(0, 0, 0));
    p.append(Instruction::propagate(0, 1, r, MarkerFunc::None));
    p.append(Instruction::barrier());
    p.append(Instruction::collectMarker(1));
    EXPECT_TRUE(validateProgram(p).empty());
}

TEST(Validator, ReadOfInflightMarkerFlagged)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(0, 1, r, MarkerFunc::None));
    p.append(Instruction::collectMarker(1));  // no barrier!
    auto v = validateProgram(p);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].marker, 1);
    EXPECT_EQ(v[0].propagateIndex, 0u);
}

TEST(Validator, WriteOfInflightSourceFlagged)
{
    // A later propagate writing an earlier propagate's m1 races with
    // the source scan.
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(5, 6, r, MarkerFunc::None));
    p.append(Instruction::propagate(7, 5, r, MarkerFunc::None));
    auto v = validateProgram(p);
    ASSERT_GE(v.size(), 1u);
    EXPECT_EQ(v[0].marker, 5);
}

TEST(Validator, ChainedPropagationFlagged)
{
    // Fig. 7: propagate into m1, then propagate FROM m1 without a
    // barrier.
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(0, 1, r, MarkerFunc::None));
    p.append(Instruction::propagate(1, 2, r, MarkerFunc::None));
    auto v = validateProgram(p);
    ASSERT_GE(v.size(), 1u);
}

TEST(Validator, BarrierClearsHazards)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(0, 1, r, MarkerFunc::None));
    p.append(Instruction::barrier());
    p.append(Instruction::propagate(1, 2, r, MarkerFunc::None));
    p.append(Instruction::barrier());
    p.append(Instruction::collectMarker(2));
    EXPECT_TRUE(validateProgram(p).empty());
}

TEST(Validator, BackwardHazardFlagged)
{
    // An instruction touching a marker, then a PROPAGATE delivering
    // into it in the same epoch: a slow cluster can execute the
    // earlier instruction after deliveries arrive.
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::clearMarker(4));
    p.append(Instruction::propagate(0, 4, r, MarkerFunc::None));
    auto v = validateProgram(p);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].marker, 4);
    EXPECT_EQ(v[0].propagateIndex, 0u);  // the earlier toucher
    EXPECT_NE(v[0].message.find("earlier in the same epoch"),
              std::string::npos);
}

TEST(Validator, BackwardHazardClearedByBarrier)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::clearMarker(4));
    p.append(Instruction::barrier());
    p.append(Instruction::propagate(0, 4, r, MarkerFunc::None));
    p.append(Instruction::barrier());
    EXPECT_TRUE(validateProgram(p).empty());
}

TEST(Validator, BackwardHazardOnReadsToo)
{
    // Even a READ of the future m2 races: the reader may observe
    // partial deliveries on a slow cluster.
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::collectMarker(4));
    p.append(Instruction::propagate(0, 4, r, MarkerFunc::None));
    EXPECT_EQ(validateProgram(p).size(), 1u);
}

TEST(Validator, SelfPropagationFlagged)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(3, 3, r, MarkerFunc::None));
    auto v = validateProgram(p);
    ASSERT_EQ(v.size(), 1u);
}

TEST(ValidatorDeath, RequireRaceFreeIsFatal)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(0, 1, r, MarkerFunc::None));
    p.append(Instruction::collectMarker(1));
    EXPECT_EXIT(requireRaceFree(p), ::testing::ExitedWithCode(1),
                "violation");
}

} // namespace
} // namespace snap
