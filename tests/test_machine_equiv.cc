/**
 * @file
 * Randomized equivalence: for race-free programs, the SNAP machine
 * model and the sequential golden-model interpreter must produce
 * bit-identical marker state and collection results, for every
 * cluster count and partitioning strategy.
 *
 * This is the central correctness property of the reproduction: the
 * distributed, message-passing, multi-MU execution (with bursts,
 * blocking queues, and arbitrary event interleavings) converges to
 * the same unique fixpoint as sequential execution, because marker
 * merging is a monotone relaxation under a deterministic total order
 * (DESIGN.md §5.2).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "arch/machine.hh"
#include "common/rng.hh"
#include "runtime/validate.hh"
#include "tests/test_helpers.hh"
#include "workload/alpha_beta.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

/** Random race-free program over a random knowledge base. */
Program
makeRandomProgram(SemanticNetwork &net, std::uint64_t seed,
                  std::uint32_t length)
{
    Rng rng(seed);
    Program prog;

    // A pool of rules over the network's relation types.
    std::vector<RelationType> rels;
    for (RelationType r = 0; r < net.relations().size(); ++r)
        rels.push_back(r);
    snap_assert(rels.size() >= 2, "need >= 2 relation types");

    std::vector<RuleId> rules;
    for (int i = 0; i < 8; ++i) {
        RelationType r1 = rels[rng.below(rels.size())];
        RelationType r2 = rels[rng.below(rels.size())];
        PropRule rule;
        switch (rng.below(4)) {
          case 0: rule = PropRule::chain(r1); break;
          case 1: rule = PropRule::spread(r1, r2); break;
          case 2: rule = PropRule::seq(r1, r2); break;
          default: rule = PropRule::comb(r1, r2); break;
        }
        // Mix ample and *binding* step limits: the Pareto frontier
        // must keep the fixpoint order-independent even when the
        // bound cuts paths mid-cycle.
        rule.maxSteps = (i % 2 == 0) ? 40 : 2 + i / 2;
        rules.push_back(prog.addRule(std::move(rule)));
    }

    const MarkerFunc funcs[] = {MarkerFunc::AddWeight,
                                MarkerFunc::None, MarkerFunc::Count,
                                MarkerFunc::MaxWeight,
                                MarkerFunc::MinWeight};
    const CombineOp combs[] = {CombineOp::Sum, CombineOp::Min,
                               CombineOp::Max, CombineOp::First};

    auto rand_marker = [&] {
        // Mix complex (0..9) and binary (64..69) markers.
        return static_cast<MarkerId>(
            rng.chance(0.7) ? rng.below(10) : 64 + rng.below(6));
    };
    auto rand_node = [&] {
        return static_cast<NodeId>(rng.below(net.numNodes()));
    };

    std::uint32_t emitted = 0;
    while (emitted < length) {
        switch (rng.below(14)) {
          case 0:
          case 1: {  // barrier + propagate batch + barrier
            // The leading barrier closes the epoch so earlier
            // instructions touching the batch's m2 markers cannot
            // race with remote deliveries (backward hazard).
            prog.append(Instruction::barrier());
            ++emitted;
            std::uint32_t batch = 1 + rng.below(3);
            std::vector<MarkerId> used;
            bool any = false;
            for (std::uint32_t b = 0; b < batch; ++b) {
                MarkerId m1 = rand_marker();
                MarkerId m2 = rand_marker();
                bool clash = m1 == m2;
                // Overlapped propagates must be fully independent:
                // neither marker may appear in any earlier propagate
                // of the batch (Fig. 7 discipline).
                for (MarkerId u : used)
                    if (u == m1 || u == m2)
                        clash = true;
                if (clash)
                    continue;
                used.push_back(m1);
                used.push_back(m2);
                any = true;
                prog.append(Instruction::propagate(
                    m1, m2, rules[rng.below(rules.size())],
                    funcs[rng.below(5)]));
                ++emitted;
            }
            if (any) {
                prog.append(Instruction::barrier());
                ++emitted;
            }
            break;
          }
          case 2:
            prog.append(Instruction::searchNode(
                rand_node(), rand_marker(),
                static_cast<float>(rng.uniform(0, 4))));
            ++emitted;
            break;
          case 3:
            prog.append(Instruction::searchColor(
                0, rand_marker(),
                static_cast<float>(rng.uniform(0, 2))));
            ++emitted;
            break;
          case 4:
            prog.append(Instruction::searchRelation(
                rels[rng.below(rels.size())], rand_marker(), 1.0f));
            ++emitted;
            break;
          case 5: {
            MarkerId m1 = rand_marker();
            MarkerId m2 = rand_marker();
            MarkerId m3 = rand_marker();
            if (rng.chance(0.5)) {
                prog.append(Instruction::andMarker(
                    m1, m2, m3, combs[rng.below(4)]));
            } else {
                prog.append(Instruction::orMarker(
                    m1, m2, m3, combs[rng.below(4)]));
            }
            ++emitted;
            break;
          }
          case 6:
            prog.append(Instruction::notMarker(rand_marker(),
                                               rand_marker()));
            ++emitted;
            break;
          case 7:
            if (rng.chance(0.5)) {
                prog.append(Instruction::setMarker(
                    rand_marker(),
                    static_cast<float>(rng.uniform(0, 3))));
            } else {
                prog.append(
                    Instruction::clearMarker(rand_marker()));
            }
            ++emitted;
            break;
          case 8: {
            ScalarFunc f;
            f.op = rng.chance(0.5) ? ScalarFunc::Op::Add
                                   : ScalarFunc::Op::ThresholdGe;
            f.imm = static_cast<float>(rng.uniform(0, 2));
            prog.append(
                Instruction::funcMarker(rand_marker(), f));
            ++emitted;
            break;
          }
          case 10: {
            // Node maintenance: create / delete / re-weight a link,
            // or recolor a node.  A barrier first keeps the edit out
            // of any in-flight propagation epoch.
            prog.append(Instruction::barrier());
            NodeId src = rand_node();
            NodeId dst = rand_node();
            RelationType rel = rels[rng.below(rels.size())];
            switch (rng.below(4)) {
              case 0:
                prog.append(Instruction::create(
                    src, rel, static_cast<float>(rng.uniform(0.1, 2)),
                    dst));
                break;
              case 1:
                prog.append(Instruction::del(src, rel, dst));
                break;
              case 2:
                prog.append(Instruction::setWeight(
                    src, rel, dst,
                    static_cast<float>(rng.uniform(0.1, 2))));
                break;
              default:
                prog.append(Instruction::setColor(
                    src, static_cast<Color>(rng.below(3))));
                break;
            }
            emitted += 2;
            break;
          }
          case 11: {
            // Marker maintenance: bind marked nodes to an end node
            // (spawns LinkCreate/LinkDelete messages), bracketed by
            // barriers so the link edits are race free.
            prog.append(Instruction::barrier());
            MarkerId m = rand_marker();
            RelationType fwd = rels[0];
            RelationType rev = rels[1];
            NodeId end = rand_node();
            if (rng.chance(0.6)) {
                prog.append(
                    Instruction::markerCreate(m, fwd, end, rev));
            } else {
                prog.append(
                    Instruction::markerDelete(m, fwd, end, rev));
            }
            prog.append(Instruction::barrier());
            emitted += 3;
            break;
          }
          case 12:
            prog.append(Instruction::markerSetColor(
                rand_marker(), static_cast<Color>(rng.below(3))));
            ++emitted;
            break;
          case 13:
            prog.append(Instruction::collectColor(
                static_cast<Color>(rng.below(3))));
            ++emitted;
            break;
          default:
            if (rng.chance(0.6)) {
                prog.append(
                    Instruction::collectMarker(rand_marker()));
            } else {
                prog.append(Instruction::collectRelation(
                    rand_marker(), rels[rng.below(rels.size())]));
            }
            ++emitted;
            break;
        }
    }
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(0));
    prog.append(Instruction::collectMarker(64));
    return prog;
}

struct EquivCase
{
    std::uint32_t clusters;
    PartitionStrategy strategy;
    std::uint64_t seed;
};

class MachineEquiv : public ::testing::TestWithParam<EquivCase>
{
};

TEST_P(MachineEquiv, MatchesGolden)
{
    const EquivCase &c = GetParam();

    SemanticNetwork net_machine =
        makeRandomKb(120, 3.0, 4, c.seed);
    SemanticNetwork net_golden = makeRandomKb(120, 3.0, 4, c.seed);

    Program prog = makeRandomProgram(net_machine, c.seed * 17 + 3,
                                     60);
    ASSERT_TRUE(validateProgram(prog).empty());

    MachineConfig cfg;
    cfg.numClusters = c.clusters;
    cfg.partition = c.strategy;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(net_machine);
    RunResult run = machine.run(prog);

    ReferenceInterpreter golden(net_golden);
    ResultSet gres = golden.run(prog);

    test::expectSameResults(run.results, gres);
    test::expectSameMarkers(machine.image(), golden.store(),
                            net_golden.numNodes());
}

std::vector<EquivCase>
makeCases()
{
    std::vector<EquivCase> cases;
    for (std::uint32_t clusters : {1u, 2u, 3u, 4u, 8u, 16u, 32u}) {
        for (PartitionStrategy s : {PartitionStrategy::Sequential,
                                    PartitionStrategy::RoundRobin,
                                    PartitionStrategy::Semantic}) {
            cases.push_back(EquivCase{clusters, s,
                                      1000 + clusters * 7 +
                                          static_cast<std::uint64_t>(
                                              s)});
        }
    }
    // Extra seeds on the paper configuration.
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        cases.push_back(
            EquivCase{16, PartitionStrategy::Semantic, seed});
    }
    // And on the full prototype.
    for (std::uint64_t seed = 20; seed <= 23; ++seed) {
        cases.push_back(
            EquivCase{32, PartitionStrategy::RoundRobin, seed});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachineEquiv, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<EquivCase> &info) {
        return "c" + std::to_string(info.param.clusters) + "_p" +
               std::to_string(
                   static_cast<int>(info.param.strategy)) +
               "_s" + std::to_string(info.param.seed);
    });

// --- seeded golden regression ------------------------------------------
//
// Exact values (wallTicks, ExecBreakdown totals, and an FNV-1a digest
// of the retrieval results) captured from the seed revision on fixed
// workloads.  Any change to the simulated-time semantics of the host
// hot path — event ordering, marker kernels, frontier bookkeeping —
// shows up here as a hard failure, not just a statistical drift.

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ull;
}

std::uint64_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

std::uint64_t
digestResults(const ResultSet &rs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const CollectResult &r : rs) {
        h = fnv(h, static_cast<std::uint64_t>(r.op));
        h = fnv(h, r.marker);
        h = fnv(h, r.color);
        h = fnv(h, r.rel);
        for (const CollectedNode &n : r.nodes) {
            h = fnv(h, n.node);
            h = fnv(h, floatBits(n.value));
            h = fnv(h, n.origin);
        }
        for (const CollectedLink &l : r.links) {
            h = fnv(h, l.src);
            h = fnv(h, l.rel);
            h = fnv(h, l.dst);
            h = fnv(h, floatBits(l.weight));
        }
    }
    return h;
}

/** Fig. 17-style workload: β=8 overlapped PROPAGATEs + retrieval. */
Workload
makeFig17Golden()
{
    Workload w = makeBetaWorkload(8, 8, 8, 2, true, 11);
    for (std::uint32_t j = 0; j < 8; ++j) {
        w.prog.append(Instruction::searchRelation(
            w.net.relation("hop" + std::to_string(j)),
            static_cast<MarkerId>(2 * j), 1.0f));
    }
    for (std::uint32_t j = 0; j < 8; ++j) {
        w.prog.append(Instruction::propagate(
            static_cast<MarkerId>(2 * j),
            static_cast<MarkerId>(2 * j + 1),
            static_cast<RuleId>(j), MarkerFunc::AddWeight));
    }
    w.prog.append(Instruction::barrier());
    for (std::uint32_t j = 0; j < 8; ++j) {
        w.prog.append(Instruction::collectMarker(
            static_cast<MarkerId>(2 * j + 1)));
    }
    return w;
}

TEST(MachineGolden, Fig17SeededRegression)
{
    Workload w = makeFig17Golden();
    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.partition = PartitionStrategy::RoundRobin;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(w.net);
    RunResult r = machine.run(w.prog);

    EXPECT_EQ(r.wallTicks, 8050947500ull);
    EXPECT_EQ(r.stats.messagesSent, 2688ull);
    EXPECT_EQ(r.stats.expansions, 3072ull);
    EXPECT_EQ(r.stats.arrivalsProcessed, 2688ull);
    EXPECT_EQ(r.stats.localDeliveries, 0ull);
    EXPECT_EQ(r.stats.linkTraversals, 2688ull);
    EXPECT_EQ(r.stats.muBusyTicks, 129277680000ull);
    EXPECT_EQ(r.stats.puBusyTicks, 17132800000ull);
    EXPECT_EQ(r.stats.commTicks, 4270080000ull);
    EXPECT_EQ(digestResults(r.results), 0xa7addb5c77c8e3d5ull);
}

TEST(MachineGolden, Fig16SeededRegression)
{
    Workload w = makeAlphaWorkload(448, 64, 6, 2, 71);
    w.prog.append(Instruction::searchRelation(
        w.net.relation("hop"), 0, 1.0f));
    w.prog.append(
        Instruction::propagate(0, 1, 0, MarkerFunc::AddWeight));
    w.prog.append(Instruction::barrier());
    w.prog.append(Instruction::collectMarker(0));
    w.prog.append(Instruction::collectMarker(1));

    MachineConfig cfg;
    cfg.numClusters = 16;
    cfg.partition = PartitionStrategy::Semantic;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(w.net);
    RunResult r = machine.run(w.prog);

    EXPECT_EQ(r.wallTicks, 2601067500ull);
    EXPECT_EQ(r.stats.messagesSent, 0ull);
    EXPECT_EQ(r.stats.expansions, 2432ull);
    EXPECT_EQ(r.stats.localDeliveries, 2112ull);
    EXPECT_EQ(r.stats.linkTraversals, 2112ull);
    EXPECT_EQ(r.stats.muBusyTicks, 56218880000ull);
    EXPECT_EQ(r.stats.puBusyTicks, 3027200000ull);
    EXPECT_EQ(r.stats.commTicks, 0ull);
    EXPECT_EQ(digestResults(r.results), 0x6f0edaeb4ac41b8aull);
}

TEST(MachineGolden, TunedAndSeedHotPathsAgree)
{
    // The tuned host structures (indexed event queue, pooled events,
    // flat frontier map) and the seed ones must be observationally
    // identical: same simulated time, same event count, same results.
    auto runWith = [](bool seed_hot_path) {
        Workload w = makeFig17Golden();
        MachineConfig cfg = MachineConfig::paperSetup();
        cfg.partition = PartitionStrategy::RoundRobin;
        cfg.maxNodesPerCluster = capacity::maxNodes;
        cfg.seedHotPath = seed_hot_path;
        SnapMachine machine(cfg);
        machine.loadKb(w.net);
        RunResult r = machine.run(w.prog);
        return std::tuple<Tick, std::uint64_t, std::uint64_t>(
            r.wallTicks, machine.eventsProcessed(),
            digestResults(r.results));
    };
    EXPECT_EQ(runWith(false), runWith(true));
}

} // namespace
} // namespace snap
