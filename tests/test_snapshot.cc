/**
 * @file
 * Tests for marker-state snapshots: round trips, cross-partition
 * restore, and resuming execution from a checkpoint.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/machine.hh"
#include "runtime/snapshot.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

TEST(Snapshot, FlatRoundTrip)
{
    MarkerStore store(50);
    store.set(0, 3, 1.25f, 7);
    store.set(0, 49, -2.5f, 0);
    store.set(63, 10, 0.0078125f, 10);
    store.setBit(64, 5);
    store.setBit(127, 49);

    std::ostringstream os;
    saveMarkers(store, os);
    std::istringstream is(os.str());
    MarkerStore back = loadMarkers(is);

    ASSERT_EQ(back.numNodes(), 50u);
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
        auto mid = static_cast<MarkerId>(m);
        for (NodeId n = 0; n < 50; ++n) {
            ASSERT_EQ(back.test(mid, n), store.test(mid, n))
                << "m" << m << " n" << n;
            if (store.test(mid, n) && isComplexMarker(mid)) {
                EXPECT_EQ(back.value(mid, n), store.value(mid, n));
                EXPECT_EQ(back.origin(mid, n), store.origin(mid, n));
            }
        }
    }
}

TEST(Snapshot, EmptyStoreRoundTrips)
{
    MarkerStore store(10);
    std::ostringstream os;
    saveMarkers(store, os);
    std::istringstream is(os.str());
    MarkerStore back = loadMarkers(is);
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m)
        EXPECT_EQ(back.count(static_cast<MarkerId>(m)), 0u);
}

TEST(Snapshot, MachineCheckpointAcrossPartitionings)
{
    // Run half a computation on a semantic-partitioned machine,
    // checkpoint, restore onto a round-robin machine, finish there:
    // the result must equal an uninterrupted run.
    SemanticNetwork net_a = makeTreeKb(300, 4);
    SemanticNetwork net_b = makeTreeKb(300, 4);
    SemanticNetwork net_c = makeTreeKb(300, 4);
    RelationType inc = net_a.relationId("includes");

    Program first;
    RuleId rid1 = first.addRule(PropRule::chain(inc));
    first.append(Instruction::searchNode(0, 0, 0.0f));
    first.append(Instruction::propagate(0, 1, rid1,
                                        MarkerFunc::Count));
    first.append(Instruction::barrier());

    Program second;
    RuleId rid2 = second.addRule(PropRule::chain(inc));
    (void)rid2;
    second.append(Instruction::funcMarker(
        1, ScalarFunc{ScalarFunc::Op::ThresholdGe, 3.0f}));
    second.append(Instruction::collectMarker(1));

    // Uninterrupted reference run.
    MachineConfig cfg_a;
    cfg_a.numClusters = 8;
    cfg_a.partition = PartitionStrategy::Semantic;
    SnapMachine straight(cfg_a);
    straight.loadKb(net_a);
    straight.run(first);
    RunResult expect = straight.run(second);

    // Checkpointed run across different machines.
    SnapMachine m1(cfg_a);
    m1.loadKb(net_b);
    m1.run(first);
    std::ostringstream os;
    m1.image().saveMarkers(os);

    MachineConfig cfg_b;
    cfg_b.numClusters = 5;
    cfg_b.partition = PartitionStrategy::RoundRobin;
    SnapMachine m2(cfg_b);
    m2.loadKb(net_c);
    std::istringstream is(os.str());
    m2.image().loadMarkers(is);
    RunResult got = m2.run(second);

    test::expectSameResults(got.results, expect.results);
}

TEST(Snapshot, SixteenSemToEightRrRestore)
{
    // The serving engine's session checkpoints must be portable
    // across deployments: state saved on a 16-cluster semantic
    // partitioning restores onto an 8-cluster round-robin machine
    // and yields identical query results.
    SemanticNetwork net_a = makeTreeKb(500, 5);
    SemanticNetwork net_b = makeTreeKb(500, 5);
    RelationType inc = net_a.relationId("includes");
    RelationType isa = net_a.relationId("is-a");

    Program mark;
    RuleId rid = mark.addRule(PropRule::chain(inc));
    mark.append(Instruction::searchNode(0, 0, 0.0f));
    mark.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::Count));
    mark.append(Instruction::barrier());

    Program query;
    RuleId up = query.addRule(PropRule::chain(isa));
    query.append(Instruction::funcMarker(
        1, ScalarFunc{ScalarFunc::Op::ThresholdGe, 2.0f}));
    query.append(Instruction::propagate(1, 2, up,
                                        MarkerFunc::AddWeight));
    query.append(Instruction::barrier());
    query.append(Instruction::collectMarker(1));
    query.append(Instruction::collectMarker(2));

    MachineConfig cfg_sem;
    cfg_sem.numClusters = 16;
    cfg_sem.partition = PartitionStrategy::Semantic;
    MachineConfig cfg_rr;
    cfg_rr.numClusters = 8;
    cfg_rr.partition = PartitionStrategy::RoundRobin;

    // Save on the 16-cluster sem machine...
    SnapMachine saver(cfg_sem);
    saver.loadKb(net_a);
    saver.run(mark);
    std::ostringstream os;
    saver.image().saveMarkers(os);

    // ...restore on the 8-cluster rr machine and query there.
    SnapMachine restorer(cfg_rr);
    restorer.loadKb(net_b);
    std::istringstream is(os.str());
    restorer.image().loadMarkers(is);
    RunResult got = restorer.run(query);

    // Reference: the query run where the state was produced.
    RunResult expect = saver.run(query);
    test::expectSameResults(got.results, expect.results);
    ASSERT_EQ(got.results.size(), 2u);
    EXPECT_FALSE(got.results[0].nodes.empty());
}

TEST(SnapshotDeath, BadHeaderIsFatal)
{
    std::istringstream is("wrong 1 10\n");
    EXPECT_EXIT(loadMarkers(is), ::testing::ExitedWithCode(1),
                "bad snapshot header");
}

TEST(SnapshotDeath, OutOfRangeNodeIsFatal)
{
    std::istringstream is("snapmarkers 1 10\nm 0 10 1.0 0\n");
    EXPECT_EXIT(loadMarkers(is), ::testing::ExitedWithCode(1),
                "bad record");
}

TEST(SnapshotDeath, BinaryWithValueIsFatal)
{
    std::istringstream is("snapmarkers 1 10\nm 64 3 1.0 0\n");
    EXPECT_EXIT(loadMarkers(is), ::testing::ExitedWithCode(1),
                "takes no value");
}

TEST(SnapshotDeath, NodeCountMismatchIsFatal)
{
    SemanticNetwork net = makeChainKb(8);
    MachineConfig cfg = MachineConfig::singleCluster(1);
    SnapMachine machine(cfg);
    machine.loadKb(net);
    std::istringstream is("snapmarkers 1 9\n");
    EXPECT_EXIT(machine.image().loadMarkers(is),
                ::testing::ExitedWithCode(1), "snapshot holds");
}

} // namespace
} // namespace snap
