/**
 * @file
 * Tests for logging, RNG, statistics, and string utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

namespace snap
{
namespace
{

// --- logging ---------------------------------------------------------------

std::vector<std::pair<LogLevel, std::string>> g_captured;

void
captureHook(LogLevel level, const std::string &msg)
{
    g_captured.emplace_back(level, msg);
}

TEST(Logging, HookCapturesMessages)
{
    g_captured.clear();
    auto old = Logger::setHook(captureHook);
    snap_warn("watch out: %d", 42);
    snap_inform("fyi %s", "text");
    Logger::setHook(old);

    ASSERT_EQ(g_captured.size(), 2u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Warn);
    EXPECT_EQ(g_captured[0].second, "watch out: 42");
    EXPECT_EQ(g_captured[1].first, LogLevel::Inform);
}

TEST(Logging, FormatString)
{
    EXPECT_EQ(formatString("a%db%sc", 7, "x"), "a7bxc");
    EXPECT_EQ(formatString("%s", std::string(500, 'y').c_str()),
              std::string(500, 'y'));
}

TEST(Logging, DebugGatedByFlag)
{
    g_captured.clear();
    auto old = Logger::setHook(captureHook);
    Logger::setDebugEnabled(false);
    snap_debug("hidden");
    Logger::setDebugEnabled(true);
    snap_debug("visible");
    Logger::setDebugEnabled(false);
    Logger::setHook(old);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].second, "visible");
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(snap_fatal("bad config %d", 3),
                ::testing::ExitedWithCode(1), "bad config 3");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(snap_panic("internal bug"), "internal bug");
}

TEST(LoggingDeath, AssertReportsCondition)
{
    EXPECT_DEATH(snap_assert(1 == 2, "context %d", 9),
                 "assertion failed: 1 == 2");
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123), c(124);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(8);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, TruncExpRespectsCap)
{
    Rng rng(10);
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.truncExp(3.0, 16);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 16u);
        sum += v;
    }
    double mean = sum / 5000;
    EXPECT_GT(mean, 2.0);
    EXPECT_LT(mean, 5.0);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

// --- stats ----------------------------------------------------------------------

TEST(Stats, ScalarAccumulates)
{
    stats::Scalar s;
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.138, 0.001);
}

TEST(Stats, EmptyDistributionIsSane)
{
    stats::Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h(10.0, 4);  // [0,10) [10,20) [20,30) [30,40)
    for (double v : {0.0, 5.0, 15.0, 35.0, 45.0, -1.0})
        h.sample(v);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.dist().count(), 6u);
}

TEST(Stats, GroupFormatsAndResets)
{
    stats::Scalar s;
    stats::Distribution d;
    s += 4;
    d.sample(2);
    stats::Group g("icn");
    g.addScalar("messages", &s);
    g.addDistribution("latency", &d);

    std::string out = g.format();
    EXPECT_NE(out.find("icn.messages 4"), std::string::npos);
    EXPECT_NE(out.find("icn.latency count=1"), std::string::npos);

    EXPECT_EQ(g.scalar("messages"), &s);
    EXPECT_EQ(g.scalar("nope"), nullptr);

    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

// --- strutil ---------------------------------------------------------------

TEST(Strutil, Tokenize)
{
    EXPECT_EQ(tokenize("a b  c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(tokenize("  lead trail  "),
              (std::vector<std::string>{"lead", "trail"}));
    EXPECT_TRUE(tokenize("").empty());
}

TEST(Strutil, SplitKeepsEmptyFields)
{
    EXPECT_EQ(split("a,,b", ','),
              (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strutil, TrimAndLower)
{
    EXPECT_EQ(trim("  x y \t"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
}

TEST(Strutil, ParseNumbers)
{
    long long i;
    EXPECT_TRUE(parseInt("42", i));
    EXPECT_EQ(i, 42);
    EXPECT_TRUE(parseInt("-7", i));
    EXPECT_EQ(i, -7);
    EXPECT_TRUE(parseInt("0x10", i));
    EXPECT_EQ(i, 16);
    EXPECT_FALSE(parseInt("12x", i));
    EXPECT_FALSE(parseInt("", i));

    double d;
    EXPECT_TRUE(parseDouble("2.5", d));
    EXPECT_DOUBLE_EQ(d, 2.5);
    EXPECT_FALSE(parseDouble("2.5q", d));
}

TEST(Strutil, TextTableAligns)
{
    TextTable t;
    t.header({"col", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Every line has the same rendering discipline: dashes line
    // under the header.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Strutil, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

} // namespace
} // namespace snap
