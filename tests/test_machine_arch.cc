/**
 * @file
 * Architectural behaviour of the machine model: overhead shapes
 * (Fig. 21's components), burst absorption and blocking, the
 * performance network, timing anchors, and determinism.
 */

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "nlu/kb_factory.hh"
#include "nlu/mb_parser.hh"
#include "tests/test_helpers.hh"
#include "workload/alpha_beta.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

MachineConfig
cfgWith(std::uint32_t clusters)
{
    MachineConfig cfg;
    cfg.numClusters = clusters;
    cfg.partition = PartitionStrategy::RoundRobin;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    return cfg;
}

Program
simpleProgram()
{
    Program prog;
    prog.append(Instruction::setMarker(0, 1.0f));
    prog.append(Instruction::clearMarker(0));
    prog.append(Instruction::barrier());
    return prog;
}

TEST(MachineArch, BroadcastTimeConstantInClusterCount)
{
    // The global bus reaches every cluster simultaneously, so the
    // per-instruction broadcast time must not depend on the array
    // size (Fig. 21's flat broadcast line).
    SemanticNetwork net16 = makeChainKb(64);
    std::vector<Tick> per_instr;
    for (std::uint32_t clusters : {1u, 4u, 16u}) {
        SemanticNetwork net = makeChainKb(64);
        SnapMachine machine(cfgWith(clusters));
        machine.loadKb(net);
        RunResult run = machine.run(simpleProgram());
        per_instr.push_back(run.stats.broadcastTicks / 3);
    }
    EXPECT_EQ(per_instr[0], per_instr[1]);
    EXPECT_EQ(per_instr[1], per_instr[2]);
    EXPECT_GT(per_instr[0], 0u);
}

TEST(MachineArch, BarrierDetectionGrowsLinearlyInClusters)
{
    // t_sync = tree settle + P x counter-read + release: affine in P
    // with a small slope (paper: "proportional to the number of
    // processors, but the dependency is small").
    std::vector<Tick> sync_per_barrier;
    for (std::uint32_t clusters : {2u, 4u, 8u, 16u}) {
        SemanticNetwork net = makeChainKb(64);
        SnapMachine machine(cfgWith(clusters));
        machine.loadKb(net);
        RunResult run = machine.run(simpleProgram());
        ASSERT_EQ(run.stats.barriers, 1u);
        sync_per_barrier.push_back(run.stats.syncTicks);
    }
    // Strictly increasing...
    for (std::size_t i = 1; i < sync_per_barrier.size(); ++i)
        EXPECT_GT(sync_per_barrier[i], sync_per_barrier[i - 1]);
    // ...and affine: equal second differences under doubling.
    Tick d1 = sync_per_barrier[1] - sync_per_barrier[0];  // +2 cl
    Tick d2 = sync_per_barrier[2] - sync_per_barrier[1];  // +4 cl
    Tick d3 = sync_per_barrier[3] - sync_per_barrier[2];  // +8 cl
    EXPECT_EQ(d2, 2 * d1);
    EXPECT_EQ(d3, 2 * d2);
}

TEST(MachineArch, CollectOverheadGrowsWithClusters)
{
    // COLLECT visits each cluster's dual-port serially (the paper's
    // dominant overhead component).
    std::vector<Tick> collect_ticks;
    for (std::uint32_t clusters : {1u, 4u, 16u}) {
        SemanticNetwork net = makeChainKb(64);
        SnapMachine machine(cfgWith(clusters));
        machine.loadKb(net);
        Program prog;
        prog.append(Instruction::setMarker(0, 1.0f));
        prog.append(Instruction::collectMarker(0));
        RunResult run = machine.run(prog);
        EXPECT_EQ(run.results[0].nodes.size(), 64u);
        collect_ticks.push_back(run.stats.collectTicks);
    }
    EXPECT_GT(collect_ticks[1], collect_ticks[0]);
    EXPECT_GT(collect_ticks[2], collect_ticks[1]);
}

TEST(MachineArch, MessageTrafficCountedPerEpoch)
{
    // Round-robin chain: every hop crosses clusters.
    SemanticNetwork net = makeChainKb(12);
    RelationType next = net.relationId("next");
    SnapMachine machine(cfgWith(4));
    machine.loadKb(net);

    Program prog;
    RuleId rid = prog.addRule(PropRule::chain(next));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid, MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::clearMarker(1));
    prog.append(Instruction::propagate(0, 2, rid, MarkerFunc::Count));
    prog.append(Instruction::barrier());

    RunResult run = machine.run(prog);
    EXPECT_EQ(run.stats.messagesSent, 22u);  // 11 per propagation
    ASSERT_EQ(run.stats.msgsPerEpoch.size(), 2u);
    EXPECT_EQ(run.stats.msgsPerEpoch[0], 11u);
    EXPECT_EQ(run.stats.msgsPerEpoch[1], 11u);
    EXPECT_EQ(run.stats.barriers, 2u);
    EXPECT_GT(run.stats.msgLatency.mean(), 0.0);
    EXPECT_EQ(run.stats.arrivalsProcessed, 22u);
    EXPECT_EQ(run.stats.maxDepth, 11u);
}

TEST(MachineArch, TinyQueuesBlockButStayCorrect)
{
    // Choke the interconnect: 1-deep mailboxes and a 2-deep
    // activation-out queue, then blast a 60-spoke star across
    // clusters.  Senders must block (burst behaviour) and the
    // result must still match the golden model exactly.
    SemanticNetwork net_machine = makeStarKb(60);
    SemanticNetwork net_golden = makeStarKb(60);
    RelationType rel = net_machine.relationId("spoke");

    MachineConfig cfg = cfgWith(8);
    cfg.t.icnMailboxDepth = 1;
    cfg.t.activationOutDepth = 2;
    SnapMachine machine(cfg);
    machine.loadKb(net_machine);

    Program prog;
    RuleId rid = prog.addRule(PropRule::step1(rel));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    RunResult run = machine.run(prog);
    // The 60-message burst saturated the 2-deep activation memory:
    // the sending MU blocked until the CU drained it.
    ClusterId hub = machine.image().place(0).cluster;
    EXPECT_EQ(machine.cluster(hub).activationOutHighWater(), 2u);

    ReferenceInterpreter golden(net_golden);
    ResultSet gres = golden.run(prog);
    test::expectSameResults(run.results, gres);
}

TEST(MachineArch, ExtremeContentionMatchesGolden)
{
    // Regression for CU wakeup reentrancy: 1-deep mailboxes and
    // 2-deep activation queues under dense random traffic produce
    // long chains of blocked senders waking each other recursively.
    // The run must complete (no double-scheduled events) and match
    // the golden model exactly.
    SemanticNetwork net_machine = makeRandomKb(300, 4.0, 2, 33);
    SemanticNetwork net_golden = makeRandomKb(300, 4.0, 2, 33);
    RelationType r0 = net_machine.relationId("r0");
    RelationType r1 = net_machine.relationId("r1");

    MachineConfig cfg = cfgWith(16);
    cfg.t.icnMailboxDepth = 1;
    cfg.t.activationOutDepth = 2;
    SnapMachine machine(cfg);
    machine.loadKb(net_machine);

    Program prog;
    PropRule rule = PropRule::comb(r0, r1);
    rule.maxSteps = 6;
    RuleId rid = prog.addRule(std::move(rule));
    for (NodeId s = 0; s < 12; ++s)
        prog.append(Instruction::searchNode(s * 23, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    RunResult run = machine.run(prog);
    EXPECT_GT(machine.icn().blockedSends.value(), 0.0);

    ReferenceInterpreter golden(net_golden);
    ResultSet gres = golden.run(prog);
    test::expectSameResults(run.results, gres);
    test::expectSameMarkers(machine.image(), golden.store(),
                            net_golden.numNodes());
}

TEST(MachineArch, PerfNetObservesExecution)
{
    SemanticNetwork net = makeChainKb(32);
    RelationType next = net.relationId("next");
    SnapMachine machine(cfgWith(4));
    machine.loadKb(net);

    Program prog;
    RuleId rid = prog.addRule(PropRule::chain(next));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid, MarkerFunc::Count));
    prog.append(Instruction::barrier());

    RunResult run = machine.run(prog);
    (void)run;
    const auto &recs = machine.perfNet().records();
    EXPECT_FALSE(recs.empty());

    bool saw_decode = false, saw_msg = false, saw_barrier = false;
    for (const auto &r : recs) {
        saw_decode |= r.event == PerfEvent::InstrDecoded;
        saw_msg |= r.event == PerfEvent::MsgSent;
        saw_barrier |= r.event == PerfEvent::BarrierComplete;
    }
    EXPECT_TRUE(saw_decode);
    EXPECT_TRUE(saw_msg);
    EXPECT_TRUE(saw_barrier);

    // Timestamps are monotone per PE's shift serialization and all
    // within the run.
    for (const auto &r : recs)
        EXPECT_LE(r.timestamp,
                  machine.now() + machine.perfNet().shiftTime());
}

TEST(MachineArch, SetClearAnchorsNearFiftyMicroseconds)
{
    // Paper §IV: "Each instruction varies in execution time from
    // 50 us for SET/CLEAR operations...".  Paper setup: 16 clusters,
    // KB of ~12K nodes.
    LinguisticKbParams params;
    params.nonlexicalNodes = 9000;
    params.vocabulary = 800;
    LinguisticKb kb(params);

    MachineConfig cfg = MachineConfig::paperSetup();
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    auto measure = [&](std::uint32_t n) {
        Program prog;
        for (std::uint32_t i = 0; i < n; ++i)
            prog.append(Instruction::clearMarker(64));
        return machine.run(prog).wallTicks;
    };
    Tick t1 = measure(1);
    Tick t21 = measure(21);
    double per_instr_us = ticksToUs(t21 - t1) / 20.0;
    EXPECT_GT(per_instr_us, 15.0);
    EXPECT_LT(per_instr_us, 150.0);
}

TEST(MachineArch, PropagateAnchorsNearHundredsOfMicroseconds)
{
    // "...to several hundred microseconds for PROPAGATE, depending
    // on the length of the path traversed.  The maximum distances of
    // any path of individual propagations ranged from 10 to 15
    // steps."
    LinguisticKbParams params;
    params.nonlexicalNodes = 9000;
    LinguisticKb kb(params);
    MachineConfig cfg = MachineConfig::paperSetup();
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    Program prog;
    PropRule up = PropRule::spread(kb.relMeans(), kb.relIsA());
    up.maxSteps = 15;
    RuleId rid = prog.addRule(std::move(up));
    prog.append(Instruction::searchColor(kb.colorLexical(), 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());

    RunResult run = machine.run(prog);
    double us = run.wallUs();
    EXPECT_GT(us, 50.0);
    EXPECT_LT(us, 10000.0);  // all 800 words at once: a giant propagate
    EXPECT_GE(run.stats.maxDepth, 3u);
    EXPECT_LE(run.stats.maxDepth, 15u);
}

TEST(MachineArch, DeterministicAcrossRuns)
{
    auto run_once = [] {
        SemanticNetwork net = makeRandomKb(150, 3.0, 3, 21);
        RelationType r0 = net.relationId("r0");
        RelationType r1 = net.relationId("r1");
        SnapMachine machine(cfgWith(8));
        machine.loadKb(net);
        Program prog;
        RuleId rid = prog.addRule(PropRule::comb(r0, r1));
        prog.append(Instruction::searchNode(3, 0, 0.0f));
        prog.append(Instruction::searchNode(77, 0, 0.5f));
        prog.append(Instruction::propagate(0, 1, rid,
                                           MarkerFunc::AddWeight));
        prog.append(Instruction::barrier());
        prog.append(Instruction::collectMarker(1));
        return machine.run(prog);
    };
    RunResult a = run_once();
    RunResult b = run_once();
    EXPECT_EQ(a.wallTicks, b.wallTicks);
    EXPECT_EQ(a.stats.messagesSent, b.stats.messagesSent);
    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_EQ(a.results[0].nodes.size(), b.results[0].nodes.size());
}

TEST(MachineArch, AlphaParallelismSpeedsUpPropagation)
{
    // The same total work (alpha * depth traversals) runs faster on
    // 16 clusters than on 1 — the premise of Fig. 16.
    Workload w1 = makeAlphaWorkload(640, 128, 4, 1, 5);
    Workload w2 = makeAlphaWorkload(640, 128, 4, 1, 5);

    SnapMachine one(cfgWith(1));
    one.loadKb(w1.net);
    Tick t_one = one.run(w1.prog).wallTicks;

    SnapMachine sixteen(cfgWith(16));
    sixteen.loadKb(w2.net);
    Tick t_sixteen = sixteen.run(w2.prog).wallTicks;

    EXPECT_GT(static_cast<double>(t_one) /
                  static_cast<double>(t_sixteen), 4.0);
}

TEST(MachineArch, TaskQueueBackpressureStallsPu)
{
    // A 1-deep marker processing memory: the PU must stall on
    // dispatch when the MU is behind, resume when tasks drain, and
    // everything still executes in order.
    SemanticNetwork net_machine = makeChainKb(200);
    SemanticNetwork net_golden = makeChainKb(200);

    MachineConfig cfg = cfgWith(2);
    cfg.t.taskQueueDepth = 1;
    cfg.musPerCluster.assign(2, 1);
    SnapMachine machine(cfg);
    machine.loadKb(net_machine);

    Program prog;
    for (int i = 0; i < 20; ++i) {
        prog.append(Instruction::setMarker(
            static_cast<MarkerId>(i % 4), static_cast<float>(i)));
        prog.append(Instruction::andMarker(
            static_cast<MarkerId>(i % 4), 0, 5, CombineOp::Sum));
    }
    prog.append(Instruction::collectMarker(5));

    RunResult run = machine.run(prog);
    ReferenceInterpreter golden(net_golden);
    ResultSet gres = golden.run(prog);
    test::expectSameResults(run.results, gres);
}

TEST(MachineArch, InstructionQueueBackpressure)
{
    // A long stream of fast instructions with a tiny queue: the SCP
    // must stall rather than overrun, and everything still executes.
    SemanticNetwork net = makeChainKb(256);
    MachineConfig cfg = cfgWith(2);
    cfg.t.instrQueueDepth = 2;
    SnapMachine machine(cfg);
    machine.loadKb(net);

    Program prog;
    for (int i = 0; i < 50; ++i)
        prog.append(Instruction::setMarker(64, 0.0f));
    prog.append(Instruction::collectMarker(64));
    RunResult run = machine.run(prog);
    EXPECT_EQ(run.results[0].nodes.size(), 256u);
    EXPECT_EQ(run.stats.opcodeCounts[static_cast<std::size_t>(
                  Opcode::SetMarker)], 50u);
}

} // namespace
} // namespace snap
