/**
 * @file
 * Tests for the semantic network, symbol tables, partitioner, and
 * knowledge-base IO.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "kb/kb_io.hh"
#include "kb/partition.hh"
#include "kb/semantic_network.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

// --- semantic network --------------------------------------------------------

TEST(SemanticNetwork, AddNodesAndLinks)
{
    SemanticNetwork net;
    NodeId a = net.addNode("we", "lexical");
    NodeId b = net.addNode("animate", "concept-type");
    net.addLink(a, "is-a", b, 0.5f);

    EXPECT_EQ(net.numNodes(), 2u);
    EXPECT_EQ(net.numLinks(), 1u);
    EXPECT_EQ(net.node("we"), a);
    EXPECT_EQ(net.nodeName(b), "animate");
    EXPECT_EQ(net.colorNames().name(net.color(a)), "lexical");

    auto links = net.links(a);
    ASSERT_EQ(links.size(), 1u);
    EXPECT_EQ(links[0].dst, b);
    EXPECT_FLOAT_EQ(links[0].weight, 0.5f);
    EXPECT_EQ(net.relations().name(links[0].rel), "is-a");
}

TEST(SemanticNetwork, RemoveLink)
{
    SemanticNetwork net;
    NodeId a = net.addNode("a");
    NodeId b = net.addNode("b");
    RelationType r = net.relation("r");
    net.addLink(a, r, b, 1.0f);
    net.addLink(a, r, b, 2.0f);  // parallel link

    EXPECT_TRUE(net.removeLink(a, r, b));
    EXPECT_EQ(net.fanout(a), 1u);
    EXPECT_FLOAT_EQ(net.links(a)[0].weight, 2.0f);
    EXPECT_TRUE(net.removeLink(a, r, b));
    EXPECT_FALSE(net.removeLink(a, r, b));
    EXPECT_EQ(net.numLinks(), 0u);
}

TEST(SemanticNetwork, SetWeightAndColor)
{
    SemanticNetwork net;
    NodeId a = net.addNode("a");
    NodeId b = net.addNode("b");
    RelationType r = net.relation("r");
    net.addLink(a, r, b, 1.0f);

    EXPECT_TRUE(net.setWeight(a, r, b, 3.5f));
    EXPECT_FLOAT_EQ(net.links(a)[0].weight, 3.5f);
    EXPECT_FALSE(net.setWeight(b, r, a, 1.0f));

    Color red = net.colorNames().intern("red");
    net.setColor(a, red);
    EXPECT_EQ(net.color(a), red);
}

TEST(SemanticNetwork, MaxFanout)
{
    SemanticNetwork net = makeStarKb(20);
    EXPECT_EQ(net.maxFanout(), 20u);
    EXPECT_EQ(net.fanout(0), 20u);
    EXPECT_EQ(net.fanout(1), 0u);
}

TEST(SemanticNetworkDeath, DuplicateNodeNameIsFatal)
{
    SemanticNetwork net;
    net.addNode("x");
    EXPECT_EXIT(net.addNode("x"), ::testing::ExitedWithCode(1),
                "duplicate node");
}

TEST(SemanticNetworkDeath, UnknownNodeLookupIsFatal)
{
    SemanticNetwork net;
    EXPECT_EXIT((void)net.node("ghost"),
                ::testing::ExitedWithCode(1), "unknown node");
}

// --- partition -------------------------------------------------------------------

class PartitionStrategies
    : public ::testing::TestWithParam<PartitionStrategy>
{
};

TEST_P(PartitionStrategies, PlacementInvariants)
{
    SemanticNetwork net = makeRandomKb(300, 3.0, 3, 44);
    for (std::uint32_t clusters : {1u, 4u, 7u, 16u, 32u}) {
        Partition part = Partition::build(net, clusters, GetParam(),
                                          1024);
        EXPECT_EQ(part.numClusters(), clusters);
        EXPECT_EQ(part.numNodes(), 300u);

        // Every node appears exactly once and round-trips.
        std::uint32_t total = 0;
        for (ClusterId c = 0; c < clusters; ++c) {
            total += part.clusterSize(c);
            for (LocalNodeId l = 0; l < part.clusterSize(c); ++l) {
                NodeId g = part.nodeAt(c, l);
                Placement p = part.place(g);
                EXPECT_EQ(p.cluster, c);
                EXPECT_EQ(p.local, l);
            }
        }
        EXPECT_EQ(total, 300u);

        // Balance: no cluster exceeds ceil(n / clusters).
        std::uint32_t cap = (300 + clusters - 1) / clusters;
        for (ClusterId c = 0; c < clusters; ++c)
            EXPECT_LE(part.clusterSize(c), cap);
    }
}

INSTANTIATE_TEST_SUITE_P(All, PartitionStrategies,
                         ::testing::Values(
                             PartitionStrategy::Sequential,
                             PartitionStrategy::RoundRobin,
                             PartitionStrategy::Semantic));

TEST(Partition, SemanticBeatsRoundRobinOnClusteredGraphs)
{
    // A chain is the best case for region-based allocation: almost
    // every link can stay inside a cluster.
    SemanticNetwork net = makeChainKb(256);
    Partition sem = Partition::build(net, 8,
                                     PartitionStrategy::Semantic);
    Partition rr = Partition::build(net, 8,
                                    PartitionStrategy::RoundRobin);
    double sem_loc = Partition::localityFraction(net, sem);
    double rr_loc = Partition::localityFraction(net, rr);
    EXPECT_GT(sem_loc, 0.9);
    EXPECT_LT(rr_loc, 0.01);  // round-robin splits every chain link
}

TEST(Partition, RoundRobinInterleaves)
{
    SemanticNetwork net = makeChainKb(10);
    Partition part = Partition::build(net, 3,
                                      PartitionStrategy::RoundRobin);
    for (NodeId i = 0; i < 10; ++i)
        EXPECT_EQ(part.place(i).cluster, i % 3);
}

TEST(Partition, SequentialKeepsBlocks)
{
    SemanticNetwork net = makeChainKb(100);
    Partition part = Partition::build(net, 4,
                                      PartitionStrategy::Sequential);
    EXPECT_EQ(part.place(0).cluster, 0u);
    EXPECT_EQ(part.place(24).cluster, 0u);
    EXPECT_EQ(part.place(25).cluster, 1u);
    EXPECT_EQ(part.place(99).cluster, 3u);
}

TEST(PartitionDeath, CapacityOverflowIsFatal)
{
    SemanticNetwork net = makeChainKb(100);
    EXPECT_EXIT(Partition::build(net, 2, PartitionStrategy::Sequential,
                                 40),
                ::testing::ExitedWithCode(1), "exceeds");
}

// --- kb io ----------------------------------------------------------------------

TEST(KbIo, RoundTrips)
{
    SemanticNetwork net = makeRandomKb(50, 2.5, 3, 99);
    std::ostringstream os;
    saveNetwork(net, os);

    std::istringstream is(os.str());
    SemanticNetwork loaded = loadNetwork(is);

    ASSERT_EQ(loaded.numNodes(), net.numNodes());
    ASSERT_EQ(loaded.numLinks(), net.numLinks());
    for (NodeId u = 0; u < net.numNodes(); ++u) {
        EXPECT_EQ(loaded.nodeName(u), net.nodeName(u));
        EXPECT_EQ(loaded.colorNames().name(loaded.color(u)),
                  net.colorNames().name(net.color(u)));
        auto a = net.links(u);
        auto b = loaded.links(u);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t k = 0; k < a.size(); ++k) {
            EXPECT_EQ(net.relations().name(a[k].rel),
                      loaded.relations().name(b[k].rel));
            EXPECT_EQ(a[k].dst, b[k].dst);
            EXPECT_FLOAT_EQ(a[k].weight, b[k].weight);
        }
    }
}

TEST(KbIo, CommentsAndBlanksIgnored)
{
    std::istringstream is(
        "snapkb 1\n"
        "# a comment\n"
        "\n"
        "node a concept  # trailing comment\n"
        "node b concept\n"
        "link a rel b 1.5\n");
    SemanticNetwork net = loadNetwork(is);
    EXPECT_EQ(net.numNodes(), 2u);
    EXPECT_EQ(net.numLinks(), 1u);
}

TEST(KbIoDeath, MissingHeaderIsFatal)
{
    std::istringstream is("node a concept\n");
    EXPECT_EXIT(loadNetwork(is), ::testing::ExitedWithCode(1),
                "snapkb 1");
}

TEST(KbIoDeath, UnknownNodeInLinkIsFatal)
{
    std::istringstream is("snapkb 1\nnode a concept\n"
                          "link a rel ghost 1\n");
    EXPECT_EXIT(loadNetwork(is), ::testing::ExitedWithCode(1),
                "unknown node");
}

TEST(KbIoDeath, BadWeightIsFatal)
{
    std::istringstream is("snapkb 1\nnode a concept\nnode b concept\n"
                          "link a rel b xyz\n");
    EXPECT_EXIT(loadNetwork(is), ::testing::ExitedWithCode(1),
                "bad weight");
}

// --- symbols ----------------------------------------------------------------------

TEST(SymbolTable, InternAndLookup)
{
    SymbolTable<std::uint16_t> t("thing", 4);
    auto a = t.intern("alpha");
    auto b = t.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(t.intern("alpha"), a);
    EXPECT_EQ(t.lookup("beta"), b);
    EXPECT_EQ(t.name(a), "alpha");
    EXPECT_EQ(t.size(), 2u);

    std::uint16_t out;
    EXPECT_FALSE(t.tryLookup("gamma", out));
    EXPECT_TRUE(t.tryLookup("alpha", out));
    EXPECT_EQ(out, a);
}

TEST(SymbolTableDeath, OverflowIsFatal)
{
    SymbolTable<std::uint8_t> t("tiny", 2);
    t.intern("a");
    t.intern("b");
    EXPECT_EXIT(t.intern("c"), ::testing::ExitedWithCode(1),
                "overflow");
}

} // namespace
} // namespace snap
