/**
 * @file
 * Tests for the NLU application stack: lexicon, layered knowledge
 * base, corpus, phrasal parser, and the memory-based parser —
 * including end-to-end parses on the machine and machine-vs-golden
 * equivalence of the parsing programs.
 */

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "nlu/corpus.hh"
#include "nlu/kb_factory.hh"
#include "nlu/mb_parser.hh"
#include "nlu/phrasal_parser.hh"
#include "runtime/validate.hh"
#include "tests/test_helpers.hh"
#include "workload/alpha_beta.hh"

namespace snap
{
namespace
{

LinguisticKbParams
smallParams()
{
    LinguisticKbParams p;
    p.nonlexicalNodes = 1200;
    p.vocabulary = 200;
    p.seed = 17;
    return p;
}

TEST(Lexicon, CoreWordsPresent)
{
    Lexicon lex(200);
    EXPECT_EQ(lex.size(), 200u);
    EXPECT_TRUE(lex.contains("guerrillas"));
    EXPECT_TRUE(lex.contains("attacked"));
    EXPECT_TRUE(lex.contains("the"));
    EXPECT_FALSE(lex.contains("zebra"));
    EXPECT_GE(lex.wordsOf(SemField::Organization).size(), 5u);
    EXPECT_GE(lex.wordsOf(WordClass::Verb).size(), 5u);
}

TEST(Lexicon, FillerKeepsComposition)
{
    Lexicon lex(500);
    std::uint32_t nouns = 0;
    for (const auto &e : lex.entries())
        if (e.wclass == WordClass::Noun)
            ++nouns;
    EXPECT_GT(nouns, 100u);
}

TEST(LexiconDeath, TooSmallIsFatal)
{
    EXPECT_EXIT(Lexicon(10), ::testing::ExitedWithCode(1),
                "domain core");
}

TEST(LinguisticKbTest, LayerProportions)
{
    LinguisticKb kb(smallParams());
    std::uint32_t nonlex = kb.numTypes() + kb.numSyntax() +
                           kb.numRoots() + kb.numElements() +
                           kb.numAux();
    // Paper proportions: 75% sequences, 15% hierarchy, 5% syntax,
    // 5% auxiliary (within rounding of the generator).
    double seq_frac =
        static_cast<double>(kb.numRoots() + kb.numElements()) /
        nonlex;
    double hier_frac = static_cast<double>(kb.numTypes()) / nonlex;
    EXPECT_NEAR(seq_frac, 0.75, 0.05);
    EXPECT_NEAR(hier_frac, 0.15, 0.05);

    // Total = nonlexical + lexical.
    EXPECT_EQ(kb.net().numNodes(), nonlex + kb.lexicon().size());
}

TEST(LinguisticKbTest, WordsWiredIntoLayers)
{
    LinguisticKb kb(smallParams());
    NodeId w = kb.wordNode("guerrillas");
    bool has_means = false, has_syn = false;
    for (const Link &l : kb.net().links(w)) {
        if (l.rel == kb.relMeans()) {
            has_means = true;
            EXPECT_EQ(kb.net().color(l.dst), kb.colorType());
        }
        if (l.rel == kb.relSyn()) {
            has_syn = true;
            EXPECT_EQ(kb.net().color(l.dst), kb.colorSyntax());
        }
    }
    EXPECT_TRUE(has_means);
    EXPECT_TRUE(has_syn);
}

TEST(LinguisticKbTest, SequencesHaveStructure)
{
    LinguisticKb kb(smallParams());
    ASSERT_FALSE(kb.rootNodes().empty());
    NodeId root = kb.rootNodes()[0];
    EXPECT_EQ(kb.net().color(root), kb.colorCsRoot());
    // Root has a first element; elements chain via next and point
    // back via part-of.
    NodeId first = invalidNode;
    for (const Link &l : kb.net().links(root))
        if (l.rel == kb.relFirst())
            first = l.dst;
    ASSERT_NE(first, invalidNode);
    EXPECT_EQ(kb.net().color(first), kb.colorCsElem());
    bool part_of = false, expects = false;
    for (const Link &l : kb.net().links(first)) {
        part_of |= l.rel == kb.relPartOf() && l.dst == root;
        expects |= l.rel == kb.relExpects();
    }
    EXPECT_TRUE(part_of);
    EXPECT_TRUE(expects);
}

TEST(LinguisticKbTest, DeterministicBySeed)
{
    LinguisticKb a(smallParams());
    LinguisticKb b(smallParams());
    EXPECT_EQ(a.net().numNodes(), b.net().numNodes());
    EXPECT_EQ(a.net().numLinks(), b.net().numLinks());
}

TEST(Corpus, Muc4SentenceLengths)
{
    Lexicon lex(200);
    auto sents = makeMuc4Sentences(lex);
    ASSERT_EQ(sents.size(), 4u);
    EXPECT_EQ(sents[0].length(), 8u);
    EXPECT_EQ(sents[1].length(), 14u);
    EXPECT_EQ(sents[2].length(), 22u);
    EXPECT_EQ(sents[3].length(), 30u);
    EXPECT_EQ(sents[0].id, "S1");
    EXPECT_NE(sents[0].text().find("guerrillas"),
              std::string::npos);
}

TEST(Corpus, NewswireBatchCovered)
{
    Lexicon lex(300);
    auto batch = makeNewswireBatch(lex, 20, 5);
    EXPECT_EQ(batch.size(), 20u);
    for (const auto &s : batch) {
        EXPECT_GE(s.length(), 9u);
        EXPECT_LE(s.length(), 28u);
        for (const auto &w : s.words)
            EXPECT_TRUE(lex.contains(w)) << w;
    }
}

TEST(Corpus, SpeechLatticeHasAlternatives)
{
    Lexicon lex(300);
    auto lattice = makeSpeechLattice(lex, 12, 3);
    EXPECT_EQ(lattice.size(), 12u);
    bool any_multi = false;
    for (const auto &alt : lattice) {
        EXPECT_GE(alt.size(), 1u);
        EXPECT_LE(alt.size(), 3u);
        any_multi |= alt.size() > 1;
    }
    EXPECT_TRUE(any_multi);
}

TEST(PhrasalParserTest, ChunksAtFunctionWords)
{
    Lexicon lex(200);
    PhrasalParser pp(lex);
    PhrasalResult res = pp.parse({"the", "guerrillas", "attacked",
                                  "the", "embassy", "in",
                                  "salvador"});
    // Openers: the / attacked / the / in -> 4 phrases.
    ASSERT_EQ(res.phrases.size(), 4u);
    EXPECT_EQ(res.phrases[0].words,
              (std::vector<std::string>{"the", "guerrillas"}));
    EXPECT_EQ(res.phrases[3].words,
              (std::vector<std::string>{"in", "salvador"}));
}

TEST(PhrasalParserTest, TimeProportionalToLength)
{
    Lexicon lex(200);
    PhrasalParser pp(lex);
    Tick t2 = pp.parse({"the", "mayor"}).time;
    Tick t6 = pp.parse({"the", "mayor", "the", "mayor", "the",
                        "mayor"}).time;
    EXPECT_EQ(t6, 3 * t2);
}

TEST(MbParser, ProgramIsRaceFreeAndSized)
{
    LinguisticKb kb(smallParams());
    MemoryBasedParser parser(kb);
    auto sents = makeMuc4Sentences(kb.lexicon());

    Program prog = parser.buildProgram(sents[3].words);  // 30 words
    EXPECT_TRUE(validateProgram(prog).empty());
    // The paper: "Most sentences can be processed with around
    // 400-900 SNAP instructions" — our longest sentence lands in
    // the low hundreds.
    EXPECT_GT(prog.size(), 250u);
    EXPECT_LT(prog.size(), 900u);

    // The instruction mix has all the profiled categories.
    auto counts = prog.categoryCounts();
    EXPECT_GT(counts[static_cast<std::size_t>(
                  InstrCategory::Propagation)], 0u);
    EXPECT_GT(counts[static_cast<std::size_t>(
                  InstrCategory::Boolean)], 0u);
    EXPECT_GT(counts[static_cast<std::size_t>(
                  InstrCategory::SetClear)], 0u);
    EXPECT_GT(counts[static_cast<std::size_t>(
                  InstrCategory::Collection)], 0u);
}

TEST(MbParser, ParsesS1ToTemplateSequence)
{
    LinguisticKb kb(smallParams());
    MemoryBasedParser parser(kb);
    auto sents = makeMuc4Sentences(kb.lexicon());

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    ParseOutcome out = parser.parseOn(machine, sents[0]);
    EXPECT_NE(out.bestRoot, invalidNode);
    EXPECT_GT(out.bestScore, 0.0f);
    EXPECT_FALSE(out.candidates.empty());
    EXPECT_GT(out.ppTime, 0u);
    EXPECT_GT(out.mbTime, 0u);
    // The winner is a concept-sequence root.
    EXPECT_EQ(kb.net().color(out.bestRoot), kb.colorCsRoot());
}

TEST(MbParser, MachineMatchesGoldenOnParseProgram)
{
    LinguisticKbParams params = smallParams();
    LinguisticKb kb_machine(params);
    LinguisticKb kb_golden(params);
    MemoryBasedParser parser(kb_machine);
    auto sents = makeMuc4Sentences(kb_machine.lexicon());

    Program prog = parser.buildProgram(sents[1].words);

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(kb_machine.net());
    RunResult run = machine.run(prog);

    ReferenceInterpreter golden(kb_golden.net());
    ResultSet gres = golden.run(prog);

    test::expectSameResults(run.results, gres);
    test::expectSameMarkers(machine.image(), golden.store(),
                            kb_golden.net().numNodes());
}

TEST(MbParser, ExtractMeaningReturnsWinnerSlots)
{
    LinguisticKb kb(smallParams());
    MemoryBasedParser parser(kb);
    auto sents = makeMuc4Sentences(kb.lexicon());

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    ParseOutcome out = parser.parseOn(machine, sents[0]);
    ASSERT_NE(out.bestRoot, invalidNode);

    auto slots = parser.extractMeaning(machine, out.bestRoot);
    ASSERT_EQ(slots.size(), kb.params().elementsPerSequence);
    bool any_filled = false;
    for (const auto &slot : slots) {
        EXPECT_EQ(kb.net().color(slot.element), kb.colorCsElem());
        EXPECT_EQ(kb.net().color(slot.expectedType), kb.colorType());
        // Every element belongs to the winning root.
        bool part_of = false;
        for (const Link &l : kb.net().links(slot.element))
            part_of |= l.rel == kb.relPartOf() &&
                       l.dst == out.bestRoot;
        EXPECT_TRUE(part_of);
        any_filled |= slot.filled;
        if (slot.filled) {
            EXPECT_GT(slot.score, 0.0f);
        }
    }
    EXPECT_TRUE(any_filled);

    // The binding links landed in the machine's distributed
    // relation tables: element --instance-of--> root and root
    // --filled-by--> element.
    RelationType inst = kb.net().relationId("instance-of");
    RelationType fby = kb.net().relationId("filled-by");
    Placement rp = machine.image().place(out.bestRoot);
    std::uint32_t bound = 0;
    for (const RelSlot &s :
         machine.image().cluster(rp.cluster).slots(rp.local))
        bound += s.rel == fby;
    EXPECT_EQ(bound, slots.size());
    for (const auto &slot : slots) {
        Placement ep = machine.image().place(slot.element);
        bool has = false;
        for (const RelSlot &s :
             machine.image().cluster(ep.cluster).slots(ep.local))
            has |= s.rel == inst && s.destGlobal == out.bestRoot;
        EXPECT_TRUE(has);
    }
}

TEST(MbParser, TimeRoughlyProportionalToSentenceLength)
{
    LinguisticKb kb(smallParams());
    MemoryBasedParser parser(kb);
    auto sents = makeMuc4Sentences(kb.lexicon());

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    ParseOutcome s1 = parser.parseOn(machine, sents[0]);  // 8 words
    ParseOutcome s4 = parser.parseOn(machine, sents[3]);  // 30 words
    double ratio = static_cast<double>(s4.mbTime) /
                   static_cast<double>(s1.mbTime);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 7.0);
}

TEST(MbParser, LatticeProgramMachineMatchesGolden)
{
    LinguisticKbParams params = smallParams();
    LinguisticKb kb_machine(params);
    LinguisticKb kb_golden(params);
    MemoryBasedParser parser(kb_machine);

    auto lattice = makeSpeechLattice(kb_machine.lexicon(), 10, 21);
    Program prog = parser.buildLatticeProgram(lattice);
    ASSERT_TRUE(validateProgram(prog).empty());

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(kb_machine.net());
    RunResult run = machine.run(prog);

    ReferenceInterpreter golden(kb_golden.net());
    ResultSet gres = golden.run(prog);
    test::expectSameResults(run.results, gres);
    test::expectSameMarkers(machine.image(), golden.store(),
                            kb_golden.net().numNodes());
}

TEST(MbParser, RecognizeLatticePicksPerPositionWinners)
{
    LinguisticKb kb(smallParams());
    MemoryBasedParser parser(kb);

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    auto lattice = makeSpeechLattice(kb.lexicon(), 9, 13);
    auto out = parser.recognizeLattice(machine, lattice);

    ASSERT_EQ(out.words.size(), lattice.size());
    ASSERT_EQ(out.scores.size(), lattice.size());
    for (std::size_t p = 0; p < lattice.size(); ++p) {
        // Each winner is one of that position's hypotheses.
        bool member = false;
        for (const auto &w : lattice[p])
            member |= w == out.words[p];
        EXPECT_TRUE(member) << "position " << p;
        // Single-hypothesis positions are decided trivially.
        if (lattice[p].size() == 1) {
            EXPECT_EQ(out.words[p], lattice[p][0]);
        }
    }
    EXPECT_GT(out.machineTime, 0u);
    EXPECT_GT(out.instructions, lattice.size() * 4);
    EXPECT_NE(out.bestRoot, invalidNode);

    // Deterministic across repeat runs on a fresh machine.
    SnapMachine machine2(cfg);
    LinguisticKb kb2(smallParams());
    machine2.loadKb(kb2.net());
    auto out2 = parser.recognizeLattice(machine2, lattice);
    EXPECT_EQ(out.words, out2.words);
}

TEST(MbParser, LatticeProgramRaisesBeta)
{
    LinguisticKb kb(smallParams());
    MemoryBasedParser parser(kb);

    auto lattice = makeSpeechLattice(kb.lexicon(), 16, 7);
    Program prog = parser.buildLatticeProgram(lattice);
    EXPECT_TRUE(validateProgram(prog).empty());

    auto sents = makeMuc4Sentences(kb.lexicon());
    Program text_prog = parser.buildProgram(sents[2].words);

    BetaStats lattice_beta = analyzeBeta(prog);
    BetaStats text_beta = analyzeBeta(text_prog);
    // PASS-style lattices overlap more propagations than DMSNAP-
    // style text parsing (paper: 2.8-6 vs 2.3-5).
    EXPECT_GE(lattice_beta.betaMax, text_beta.betaMax);
    EXPECT_GT(lattice_beta.betaAvg, 1.0);
}

} // namespace
} // namespace snap
