/**
 * @file
 * File-level IO round trips: .snapkb files, marker snapshots, and
 * assembler source files — the surfaces the CLI tools sit on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "isa/assembler.hh"
#include "kb/kb_io.hh"
#include "runtime/snapshot.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

/** Unique temp path per test (single process, no races). */
std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "snap_io_" + name;
}

TEST(IoFiles, NetworkFileRoundTrip)
{
    std::string path = tempPath("net.snapkb");
    SemanticNetwork net = makeRandomKb(40, 2.0, 3, 5);
    saveNetworkFile(net, path);

    SemanticNetwork back = loadNetworkFile(path);
    EXPECT_EQ(back.numNodes(), net.numNodes());
    EXPECT_EQ(back.numLinks(), net.numLinks());
    std::remove(path.c_str());
}

TEST(IoFiles, SnapshotFileRoundTrip)
{
    std::string path = tempPath("markers.txt");
    MarkerStore store(30);
    store.set(2, 7, 1.5f, 7);
    store.setBit(70, 29);
    saveMarkersFile(store, path);

    MarkerStore back = loadMarkersFile(path);
    EXPECT_TRUE(back.test(2, 7));
    EXPECT_FLOAT_EQ(back.value(2, 7), 1.5f);
    EXPECT_TRUE(back.test(70, 29));
    std::remove(path.c_str());
}

TEST(IoFiles, AssembleFile)
{
    std::string path = tempPath("prog.snap");
    {
        std::ofstream os(path);
        os << "rule r chain(next)\n"
              "search-node n0 m0 0\n"
              "propagate m0 m1 r count\n"
              "barrier\n"
              "collect-marker m1\n";
    }
    SemanticNetwork net = makeChainKb(5);
    Program prog = assembleFile(path, net);
    EXPECT_EQ(prog.size(), 4u);
    std::remove(path.c_str());
}

TEST(IoFilesDeath, MissingFilesAreFatal)
{
    EXPECT_EXIT((void)loadNetworkFile("/nonexistent/kb.snapkb"),
                ::testing::ExitedWithCode(1), "cannot open");
    EXPECT_EXIT((void)loadMarkersFile("/nonexistent/m.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
    SemanticNetwork net = makeChainKb(3);
    EXPECT_EXIT((void)assembleFile("/nonexistent/p.snap", net),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(IoFilesDeath, UnwritablePathIsFatal)
{
    SemanticNetwork net = makeChainKb(3);
    EXPECT_EXIT(saveNetworkFile(net, "/nonexistent/dir/kb.snapkb"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace snap
