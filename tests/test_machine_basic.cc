/**
 * @file
 * Basic SNAP machine execution: small hand-built knowledge bases,
 * one feature per test, always checked against hand-computed
 * expectations (and where useful, against the golden model).
 */

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

MachineConfig
smallConfig(std::uint32_t clusters)
{
    MachineConfig cfg;
    cfg.numClusters = clusters;
    cfg.partition = PartitionStrategy::RoundRobin;
    cfg.maxNodesPerCluster = capacity::maxNodes;  // relax for tests
    return cfg;
}

TEST(MachineBasic, SearchNodeAndCollect)
{
    SemanticNetwork net = makeChainKb(8);
    SnapMachine machine(smallConfig(4));
    machine.loadKb(net);

    Program prog;
    prog.append(Instruction::searchNode(3, 0, 2.5f));
    prog.append(Instruction::collectMarker(0));

    RunResult run = machine.run(prog);
    ASSERT_EQ(run.results.size(), 1u);
    ASSERT_EQ(run.results[0].nodes.size(), 1u);
    EXPECT_EQ(run.results[0].nodes[0].node, 3u);
    EXPECT_FLOAT_EQ(run.results[0].nodes[0].value, 2.5f);
    EXPECT_EQ(run.results[0].nodes[0].origin, 3u);
    EXPECT_GT(run.wallTicks, 0u);
}

TEST(MachineBasic, PropagateChainAccumulatesWeights)
{
    // n0 -next(1.5)-> n1 -next(1.5)-> ... chain of 6.
    SemanticNetwork net = makeChainKb(6, "next", 1.5f);
    RelationType next = net.relationId("next");

    SnapMachine machine(smallConfig(4));
    machine.loadKb(net);

    Program prog;
    PropRule rule = PropRule::chain(next);
    RuleId rid = prog.addRule(std::move(rule));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    RunResult run = machine.run(prog);
    ASSERT_EQ(run.results.size(), 1u);
    CollectResult res = run.results[0];
    res.sortNodes();
    ASSERT_EQ(res.nodes.size(), 5u);  // n1..n5, origin excluded
    for (std::size_t k = 0; k < res.nodes.size(); ++k) {
        EXPECT_EQ(res.nodes[k].node, k + 1);
        EXPECT_FLOAT_EQ(res.nodes[k].value,
                        1.5f * static_cast<float>(k + 1));
        EXPECT_EQ(res.nodes[k].origin, 0u);
    }
    // Round-robin over 4 clusters: consecutive chain nodes live in
    // different clusters, so messages crossed the ICN.
    EXPECT_GE(run.stats.messagesSent, 5u);
    EXPECT_EQ(run.stats.barriers, 1u);
}

TEST(MachineBasic, SpreadRuleSwitchesRelations)
{
    // a -r1-> b -r1-> c -r2-> d -r2-> e and a stray c -r1-> f
    // after the switch to r2, f must NOT be reached via r1... but
    // spread(r1,r2) = r1* r2*: path a,b,c,f is all-r1 so f IS
    // reachable; path c->d->e switches.  Also d -r1-> g must not be
    // reached (r1 after r2 is not admissible).
    SemanticNetwork net;
    for (const char *n : {"a", "b", "c", "d", "e", "f", "g"})
        net.addNode(n);
    RelationType r1 = net.relation("r1");
    RelationType r2 = net.relation("r2");
    NodeId a = net.node("a"), b = net.node("b"), c = net.node("c");
    NodeId d = net.node("d"), e = net.node("e"), f = net.node("f");
    NodeId g = net.node("g");
    net.addLink(a, r1, b, 1);
    net.addLink(b, r1, c, 1);
    net.addLink(c, r2, d, 1);
    net.addLink(d, r2, e, 1);
    net.addLink(c, r1, f, 1);
    net.addLink(d, r1, g, 1);

    SnapMachine machine(smallConfig(2));
    machine.loadKb(net);

    Program prog;
    RuleId rid = prog.addRule(PropRule::spread(r1, r2));
    prog.append(Instruction::searchNode(a, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    RunResult run = machine.run(prog);
    CollectResult res = run.results[0];
    res.sortNodes();
    std::vector<NodeId> got;
    for (const auto &nd : res.nodes)
        got.push_back(nd.node);
    EXPECT_EQ(got, (std::vector<NodeId>{b, c, d, e, f}));
    EXPECT_FALSE(machine.markerSet(1, g));
    EXPECT_FALSE(machine.markerSet(1, a));
}

TEST(MachineBasic, BooleanAndSetClear)
{
    SemanticNetwork net = makeChainKb(10);
    SnapMachine machine(smallConfig(4));
    machine.loadKb(net);

    Program prog;
    prog.append(Instruction::setMarker(0, 1.0f));  // m0 everywhere
    prog.append(Instruction::searchNode(2, 1, 2.0f));
    prog.append(Instruction::searchNode(7, 1, 3.0f));
    prog.append(Instruction::andMarker(0, 1, 2, CombineOp::Sum));
    prog.append(Instruction::collectMarker(2));
    prog.append(Instruction::notMarker(1, 3));
    prog.append(Instruction::collectMarker(3));
    prog.append(Instruction::clearMarker(0));
    prog.append(Instruction::collectMarker(0));

    RunResult run = machine.run(prog);
    ASSERT_EQ(run.results.size(), 3u);

    CollectResult andres = run.results[0];
    andres.sortNodes();
    ASSERT_EQ(andres.nodes.size(), 2u);
    EXPECT_EQ(andres.nodes[0].node, 2u);
    EXPECT_FLOAT_EQ(andres.nodes[0].value, 3.0f);  // 1 + 2
    EXPECT_EQ(andres.nodes[1].node, 7u);
    EXPECT_FLOAT_EQ(andres.nodes[1].value, 4.0f);  // 1 + 3

    EXPECT_EQ(run.results[1].nodes.size(), 8u);  // NOT of 2 set
    EXPECT_EQ(run.results[2].nodes.size(), 0u);  // cleared
}

TEST(MachineBasic, MatchesGoldenOnChainWorkload)
{
    SemanticNetwork net_machine = makeChainKb(12, "next", 0.5f);
    SemanticNetwork net_golden = makeChainKb(12, "next", 0.5f);
    RelationType next = net_machine.relationId("next");

    Program prog;
    RuleId rid = prog.addRule(PropRule::chain(next));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::searchNode(5, 0, 0.25f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    SnapMachine machine(smallConfig(4));
    machine.loadKb(net_machine);
    RunResult run = machine.run(prog);

    ReferenceInterpreter golden(net_golden);
    ResultSet gres = golden.run(prog);

    test::expectSameResults(run.results, gres);
    test::expectSameMarkers(machine.image(), golden.store(),
                            net_golden.numNodes());
}

TEST(MachineBasic, MarkerCreateInstallsRemoteReverseLinks)
{
    SemanticNetwork net = makeChainKb(8);
    RelationType next = net.relationId("next");
    NodeId end = 7;

    SnapMachine machine(smallConfig(4));
    machine.loadKb(net);

    Program prog;
    RuleId rid = prog.addRule(PropRule::chain(next));
    RelationType bound = net.relation("bound-to");
    RelationType holds = net.relation("holds");
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::None));
    prog.append(Instruction::barrier());
    prog.append(Instruction::markerCreate(1, bound, end, holds));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectRelation(1, bound));

    RunResult run = machine.run(prog);
    ASSERT_EQ(run.results.size(), 1u);
    CollectResult res = run.results[0];
    res.sortNodes();
    // m1 is set on n1..n7; each got a bound-to link to n7.
    ASSERT_EQ(res.links.size(), 7u);
    for (std::size_t k = 0; k < res.links.size(); ++k) {
        EXPECT_EQ(res.links[k].src, k + 1);
        EXPECT_EQ(res.links[k].dst, end);
        EXPECT_EQ(res.links[k].rel, bound);
    }
}

TEST(MachineBasic, AlphaDistributionMeasured)
{
    SemanticNetwork net = makeChainKb(16);
    RelationType next = net.relationId("next");

    SnapMachine machine(smallConfig(4));
    machine.loadKb(net);

    Program prog;
    RuleId rid = prog.addRule(PropRule::step1(next));
    for (NodeId n : {0u, 3u, 6u, 9u})
        prog.append(Instruction::searchNode(n, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::None));
    prog.append(Instruction::barrier());

    RunResult run = machine.run(prog);
    EXPECT_EQ(run.stats.alphaDist.count(), 1u);
    EXPECT_DOUBLE_EQ(run.stats.alphaDist.mean(), 4.0);
}

TEST(MachineBasic, RunTwiceKeepsMarkerState)
{
    SemanticNetwork net = makeChainKb(6);
    SnapMachine machine(smallConfig(2));
    machine.loadKb(net);

    Program p1;
    p1.append(Instruction::searchNode(1, 0, 1.0f));
    machine.run(p1);

    Program p2;
    p2.append(Instruction::collectMarker(0));
    RunResult run = machine.run(p2);
    ASSERT_EQ(run.results.size(), 1u);
    ASSERT_EQ(run.results[0].nodes.size(), 1u);
    EXPECT_EQ(run.results[0].nodes[0].node, 1u);
}

} // namespace
} // namespace snap
