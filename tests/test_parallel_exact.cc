/**
 * @file
 * Bit-exactness of sharded multi-threaded execution.
 *
 * The single-threaded run is the oracle: at every tested thread
 * count the machine must produce the identical RunResult — results,
 * final marker state, simulated wall time, and the full statistics
 * breakdown — because cfg.hostThreads is a host-performance knob
 * with zero simulated-behaviour surface.  The same holds through
 * runBatch and through fault-injecting runs (same injections, same
 * detection outcomes).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/machine.hh"
#include "fault/fault_plan.hh"
#include "isa/instruction.hh"
#include "test_helpers.hh"
#include "workload/alpha_beta.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

/** A propagation-heavy program exercising every cross-cluster path:
 *  searches, overlapped propagates, a barrier, and collects. */
Workload
makeExerciser(std::uint32_t beta, std::uint64_t seed)
{
    Workload w = makeBetaWorkload(6, beta, 6, 1, true, seed);
    for (std::uint32_t j = 0; j < beta; ++j) {
        w.prog.append(Instruction::collectMarker(
            static_cast<MarkerId>(2 * j + 1)));
    }
    return w;
}

/** Everything a run observably produced. */
struct Observed
{
    RunResult r;
    MarkerStore markers;
    std::string componentStats;
};

Observed
runAt(const Workload &w, std::uint32_t clusters,
      std::uint32_t threads, const FaultSpec *faults = nullptr)
{
    MachineConfig cfg;
    cfg.numClusters = clusters;
    cfg.partition = PartitionStrategy::RoundRobin;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    cfg.hostThreads = threads;
    SnapMachine machine(cfg);
    machine.loadKb(w.net);
    if (faults)
        machine.installFaults(*faults);
    EXPECT_EQ(machine.numShards(),
              std::min(threads, clusters));
    Observed o{machine.run(w.prog), machine.image().flatten(),
               machine.formatComponentStats()};
    return o;
}

void
expectSameBreakdown(const ExecBreakdown &a, const ExecBreakdown &b)
{
    EXPECT_EQ(a.wallTicks, b.wallTicks);
    for (std::size_t c = 0; c < ExecBreakdown::numCats; ++c) {
        auto cat = static_cast<InstrCategory>(c);
        EXPECT_EQ(a.categoryTicks(cat), b.categoryTicks(cat))
            << "categoryTicks " << c;
        EXPECT_EQ(a.categoryBusy[c], b.categoryBusy[c])
            << "categoryBusy " << c;
        EXPECT_EQ(a.categoryCounts[c], b.categoryCounts[c])
            << "categoryCounts " << c;
    }
    for (std::size_t o = 0; o < ExecBreakdown::numOps; ++o)
        EXPECT_EQ(a.opcodeCounts[o], b.opcodeCounts[o])
            << "opcode " << o;
    EXPECT_EQ(a.broadcastTicks, b.broadcastTicks);
    EXPECT_EQ(a.commTicks, b.commTicks);
    EXPECT_EQ(a.syncTicks, b.syncTicks);
    EXPECT_EQ(a.collectTicks, b.collectTicks);
    EXPECT_EQ(a.messagesSent, b.messagesSent);
    EXPECT_EQ(a.messageHops, b.messageHops);
    EXPECT_EQ(a.arrivalsProcessed, b.arrivalsProcessed);
    EXPECT_EQ(a.localDeliveries, b.localDeliveries);
    EXPECT_EQ(a.expansions, b.expansions);
    EXPECT_EQ(a.linkTraversals, b.linkTraversals);
    EXPECT_EQ(a.barriers, b.barriers);
    EXPECT_EQ(a.collects, b.collects);
    EXPECT_EQ(a.collectedItems, b.collectedItems);
    EXPECT_EQ(a.puBusyTicks, b.puBusyTicks);
    EXPECT_EQ(a.muBusyTicks, b.muBusyTicks);
    EXPECT_EQ(a.msgsPerEpoch, b.msgsPerEpoch);
    EXPECT_EQ(a.maxDepth, b.maxDepth);

    // Bit-exact: the distributions fold in canonical cluster order
    // at every thread count, so even the FP accumulators match ==.
    EXPECT_EQ(a.alphaDist.count(), b.alphaDist.count());
    EXPECT_EQ(a.alphaDist.sum(), b.alphaDist.sum());
    EXPECT_EQ(a.alphaDist.variance(), b.alphaDist.variance());
    EXPECT_EQ(a.msgLatency.count(), b.msgLatency.count());
    EXPECT_EQ(a.msgLatency.sum(), b.msgLatency.sum());
    EXPECT_EQ(a.msgLatency.variance(), b.msgLatency.variance());
    EXPECT_EQ(a.msgLatency.min(), b.msgLatency.min());
    EXPECT_EQ(a.msgLatency.max(), b.msgLatency.max());
}

void
expectSameFaultReport(const FaultReport &a, const FaultReport &b)
{
    EXPECT_EQ(a.enabled, b.enabled);
    EXPECT_EQ(a.icnDropped, b.icnDropped);
    EXPECT_EQ(a.icnCorrupted, b.icnCorrupted);
    EXPECT_EQ(a.icnDelayed, b.icnDelayed);
    EXPECT_EQ(a.semStalls, b.semStalls);
    EXPECT_EQ(a.markerFlips, b.markerFlips);
    EXPECT_EQ(a.markerSticks, b.markerSticks);
    EXPECT_EQ(a.syncWedges, b.syncWedges);
    EXPECT_EQ(a.deadClusters, b.deadClusters);
    EXPECT_EQ(a.wedged, b.wedged);
    EXPECT_EQ(a.watchdogFired, b.watchdogFired);
    EXPECT_EQ(a.integrityChecked, b.integrityChecked);
    EXPECT_EQ(a.integrityFailed, b.integrityFailed);
}

void
expectSameObserved(const Observed &oracle, const Observed &got,
                   std::uint32_t num_nodes)
{
    EXPECT_EQ(got.r.wallTicks, oracle.r.wallTicks);
    test::expectSameResults(oracle.r.results, got.r.results);
    expectSameBreakdown(oracle.r.stats, got.r.stats);
    expectSameFaultReport(oracle.r.fault, got.r.fault);
    // Final marker planes, including value registers and origins.
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
        auto mid = static_cast<MarkerId>(m);
        for (NodeId n = 0; n < num_nodes; ++n) {
            ASSERT_EQ(got.markers.test(mid, n),
                      oracle.markers.test(mid, n))
                << "m" << m << " node " << n;
            if (oracle.markers.test(mid, n) && isComplexMarker(mid)) {
                EXPECT_EQ(got.markers.value(mid, n),
                          oracle.markers.value(mid, n));
                EXPECT_EQ(got.markers.origin(mid, n),
                          oracle.markers.origin(mid, n));
            }
        }
    }
    // ICN / perf-net / sync / queue-high-water component stats,
    // via their canonical text rendering.
    EXPECT_EQ(got.componentStats, oracle.componentStats);
}

class ParallelExact
    : public ::testing::TestWithParam<std::uint32_t>
{
};

/** Sharded runs reproduce the single-threaded oracle exactly, over
 *  several seeds and cluster counts (including counts that do not
 *  divide evenly and a thread count above the cluster count). */
TEST_P(ParallelExact, MatchesSingleThreadOracle)
{
    const std::uint32_t threads = GetParam();
    for (std::uint64_t seed : {3ull, 17ull}) {
        for (std::uint32_t clusters : {5u, 16u, 32u}) {
            Workload w = makeExerciser(6, seed);
            Observed oracle = runAt(w, clusters, 1);
            Observed got = runAt(w, clusters, threads);
            SCOPED_TRACE("seed " + std::to_string(seed) +
                         " clusters " + std::to_string(clusters) +
                         " threads " + std::to_string(threads));
            expectSameObserved(oracle, got, w.net.numNodes());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelExact,
                         ::testing::Values(2u, 4u, 8u));

/** Marker state persists across runs and the shard clocks realign:
 *  a two-program sequence matches the oracle program for program. */
TEST(ParallelExactTest, BackToBackRunsStayExact)
{
    Workload w = makeExerciser(4, 23);
    auto runTwice = [&](std::uint32_t threads) {
        MachineConfig cfg;
        cfg.numClusters = 16;
        cfg.partition = PartitionStrategy::RoundRobin;
        cfg.maxNodesPerCluster = capacity::maxNodes;
        cfg.hostThreads = threads;
        SnapMachine machine(cfg);
        machine.loadKb(w.net);
        RunResult r1 = machine.run(w.prog);
        RunResult r2 = machine.run(w.prog);
        return std::pair<RunResult, RunResult>(std::move(r1),
                                               std::move(r2));
    };
    auto [a1, a2] = runTwice(1);
    auto [b1, b2] = runTwice(4);
    EXPECT_EQ(b1.wallTicks, a1.wallTicks);
    EXPECT_EQ(b2.wallTicks, a2.wallTicks);
    test::expectSameResults(a1.results, b1.results);
    test::expectSameResults(a2.results, b2.results);
    expectSameBreakdown(a1.stats, b1.stats);
    expectSameBreakdown(a2.stats, b2.stats);
}

/** Lane-batched execution under threads: per-lane answers identical
 *  to the solo run at every thread count. */
TEST(ParallelExactTest, BatchedSoloParallelAgree)
{
    Workload w = makeExerciser(4, 5);
    for (std::uint32_t threads : {1u, 4u}) {
        MachineConfig cfg;
        cfg.numClusters = 16;
        cfg.partition = PartitionStrategy::RoundRobin;
        cfg.maxNodesPerCluster = capacity::maxNodes;
        cfg.hostThreads = threads;
        SnapMachine solo(cfg);
        solo.loadKb(w.net);
        RunResult sr = solo.run(w.prog);

        SnapMachine batcher(cfg);
        batcher.loadKb(w.net);
        BatchRunResult br = batcher.runBatch(w.prog, 8);

        SCOPED_TRACE("threads " + std::to_string(threads));
        EXPECT_EQ(br.lanes, 8u);
        EXPECT_EQ(br.wallTicks, sr.wallTicks);
        test::expectSameResults(sr.results, br.results);
        expectSameBreakdown(sr.stats, br.stats);
    }
}

/** Fault-injecting runs shard exactly too: the same faults fire at
 *  the same simulated ticks and the detection outcome (wedge /
 *  watchdog / integrity) is identical — over a seed sweep that
 *  covers clean, perturbed-but-completing, and wedged runs. */
TEST(ParallelExactTest, FaultDetectionMatchesSingleThread)
{
    Workload w = makeExerciser(4, 29);
    bool sawInjection = false;
    bool sawNotOk = false;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        FaultSpec spec = FaultSpec::messageFaults(seed, 0.01);
        spec.markerFlipRate = 0.3;
        spec.markerStickRate = 0.3;
        spec.syncWedgeRate = 0.2;
        spec.deadClusterRate = 0.2;

        Observed oracle = runAt(w, 16, 1, &spec);
        Observed got = runAt(w, 16, 4, &spec);
        SCOPED_TRACE("fault seed " + std::to_string(seed));
        expectSameFaultReport(oracle.r.fault, got.r.fault);
        EXPECT_EQ(got.r.wallTicks, oracle.r.wallTicks);
        if (oracle.r.fault.ok()) {
            test::expectSameResults(oracle.r.results, got.r.results);
            expectSameBreakdown(oracle.r.stats, got.r.stats);
        }
        sawInjection |= oracle.r.fault.injected() > 0;
        sawNotOk |= !oracle.r.fault.ok();
    }
    // The sweep must actually exercise the fault machinery.
    EXPECT_TRUE(sawInjection);
    EXPECT_TRUE(sawNotOk);
}

/** An all-zero spec arms the detection path (windowed execution) but
 *  must stay bit-identical to an unarmed machine at any thread
 *  count. */
TEST(ParallelExactTest, ZeroRatePlanIsFreeAtEveryThreadCount)
{
    Workload w = makeExerciser(4, 41);
    Observed unarmed = runAt(w, 16, 1);
    FaultSpec zero;
    for (std::uint32_t threads : {1u, 4u}) {
        Observed armed = runAt(w, 16, threads, &zero);
        SCOPED_TRACE("threads " + std::to_string(threads));
        EXPECT_EQ(armed.r.wallTicks, unarmed.r.wallTicks);
        test::expectSameResults(unarmed.r.results, armed.r.results);
        expectSameBreakdown(unarmed.r.stats, armed.r.stats);
    }
}

} // namespace
} // namespace snap
