/**
 * @file
 * Property tests for the propagation engine against independent
 * oracles: AddWeight propagation must equal single/multi-source
 * Dijkstra over rule-admissible paths, Count must equal BFS depth,
 * the frontier must stay an antichain, and the merge order must be a
 * strict total order.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "common/rng.hh"
#include "runtime/propagate.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

/** Dijkstra over links admissible by a single-relation chain rule. */
std::vector<double>
dijkstra(const SemanticNetwork &net,
         const std::vector<NodeId> &sources, RelationType rel)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(net.numNodes(), inf);
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>>
        pq;
    for (NodeId s : sources) {
        dist[s] = 0;
        pq.push({0, s});
    }
    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u])
            continue;
        for (const Link &l : net.links(u)) {
            if (l.rel != rel)
                continue;
            double nd = d + l.weight;
            if (nd < dist[l.dst]) {
                dist[l.dst] = nd;
                pq.push({nd, l.dst});
            }
        }
    }
    return dist;
}

class PropagateOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PropagateOracle, AddWeightEqualsDijkstra)
{
    std::uint64_t seed = GetParam();
    SemanticNetwork net = makeRandomKb(150, 3.0, 2, seed);
    RelationType r0 = net.relationId("r0");

    Rng rng(seed * 3 + 1);
    std::vector<NodeId> sources;
    for (int s = 0; s < 4; ++s)
        sources.push_back(
            static_cast<NodeId>(rng.below(net.numNodes())));

    MarkerStore store(net.numNodes());
    for (NodeId s : sources)
        store.set(0, s, 0.0f, s);

    PropRule rule = PropRule::chain(r0);
    rule.maxSteps = 1000;  // must not bind
    propagateFunctional(net, store, 0, 1, rule,
                        MarkerFunc::AddWeight);

    std::vector<double> dist = dijkstra(net, sources, r0);
    for (NodeId u = 0; u < net.numNodes(); ++u) {
        bool src = std::find(sources.begin(), sources.end(), u) !=
                   sources.end();
        bool reachable = std::isfinite(dist[u]) && !(src && dist[u] == 0);
        // A source is marked only if some admissible cycle returns
        // to it; the oracle treats its distance as 0, so exempt
        // sources from the set comparison and only compare values
        // for non-sources.
        if (src)
            continue;
        ASSERT_EQ(store.test(1, u), reachable) << "node " << u;
        if (reachable) {
            EXPECT_NEAR(store.value(1, u), dist[u],
                        1e-4 * (1 + std::abs(dist[u])))
                << "node " << u;
        }
    }
}

TEST_P(PropagateOracle, CountEqualsBfsDepth)
{
    std::uint64_t seed = GetParam();
    SemanticNetwork net = makeRandomKb(120, 2.5, 2, seed + 77);
    RelationType r1 = net.relationId("r1");

    MarkerStore store(net.numNodes());
    store.set(0, 5, 0.0f, 5);

    PropRule rule = PropRule::chain(r1);
    rule.maxSteps = 1000;
    propagateFunctional(net, store, 0, 1, rule, MarkerFunc::Count);

    // BFS oracle.
    std::vector<int> depth(net.numNodes(), -1);
    std::queue<NodeId> q;
    depth[5] = 0;
    q.push(5);
    while (!q.empty()) {
        NodeId u = q.front();
        q.pop();
        for (const Link &l : net.links(u)) {
            if (l.rel == r1 && depth[l.dst] < 0) {
                depth[l.dst] = depth[u] + 1;
                q.push(l.dst);
            }
        }
    }
    for (NodeId u = 0; u < net.numNodes(); ++u) {
        if (u == 5)
            continue;
        ASSERT_EQ(store.test(1, u), depth[u] > 0) << "node " << u;
        if (depth[u] > 0) {
            EXPECT_FLOAT_EQ(store.value(1, u),
                            static_cast<float>(depth[u]))
                << "node " << u;
        }
    }
}

TEST_P(PropagateOracle, SpreadMatchesRegexReachability)
{
    // spread(r0, r1) admits exactly the paths r0* r1* (length >= 1).
    std::uint64_t seed = GetParam();
    SemanticNetwork net = makeRandomKb(80, 2.0, 2, seed + 991);
    RelationType r0 = net.relationId("r0");
    RelationType r1 = net.relationId("r1");

    MarkerStore store(net.numNodes());
    store.set(0, 0, 0.0f, 0);
    PropRule rule = PropRule::spread(r0, r1);
    rule.maxSteps = 1000;
    propagateFunctional(net, store, 0, 1, rule, MarkerFunc::Count);

    // Oracle: product-graph BFS over states {consuming r0, consuming
    // r1}.
    std::uint32_t n = net.numNodes();
    std::vector<bool> seen(2 * n, false);
    std::queue<std::uint32_t> q;
    // Start in state 0 at node 0.
    auto push = [&](std::uint32_t node, std::uint32_t st) {
        if (!seen[st * n + node]) {
            seen[st * n + node] = true;
            q.push(st * n + node);
        }
    };
    push(0, 0);
    std::vector<bool> reach(n, false);
    while (!q.empty()) {
        std::uint32_t v = q.front();
        q.pop();
        std::uint32_t st = v / n, u = v % n;
        for (const Link &l : net.links(u)) {
            if (st == 0 && l.rel == r0) {
                reach[l.dst] = true;
                push(l.dst, 0);
            }
            if (l.rel == r1) {  // r1 admissible from either state
                reach[l.dst] = true;
                push(l.dst, 1);
            }
        }
    }
    for (NodeId u = 0; u < n; ++u) {
        if (u == 0)
            continue;
        EXPECT_EQ(store.test(1, u), reach[u]) << "node " << u;
    }
}

TEST_P(PropagateOracle, DeterministicAcrossRuns)
{
    std::uint64_t seed = GetParam();
    SemanticNetwork net = makeRandomKb(100, 3.0, 2, seed + 5);
    RelationType r0 = net.relationId("r0");
    RelationType r1 = net.relationId("r1");
    PropRule rule = PropRule::comb(r0, r1);
    rule.maxSteps = 12;

    auto run = [&] {
        MarkerStore store(net.numNodes());
        store.set(0, 3, 0.5f, 3);
        store.set(0, 50, 0.25f, 50);
        propagateFunctional(net, store, 0, 1, rule,
                            MarkerFunc::MinWeight);
        std::vector<std::tuple<NodeId, float, NodeId>> out;
        for (NodeId u = 0; u < net.numNodes(); ++u)
            if (store.test(1, u))
                out.emplace_back(u, store.value(1, u),
                                 store.origin(1, u));
        return out;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagateOracle,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u,
                                           7u, 8u));

// --- merge-order and frontier properties -----------------------------------

TEST(BetterArrival, StrictTotalOrderOnSamples)
{
    Rng rng(404);
    for (MarkerFunc f : {MarkerFunc::AddWeight, MarkerFunc::MaxWeight,
                         MarkerFunc::None}) {
        for (int trial = 0; trial < 500; ++trial) {
            float v1 = static_cast<float>(rng.range(-3, 3));
            float v2 = static_cast<float>(rng.range(-3, 3));
            NodeId o1 = static_cast<NodeId>(rng.below(4));
            NodeId o2 = static_cast<NodeId>(rng.below(4));
            bool ab = betterArrival(f, v1, o1, v2, o2);
            bool ba = betterArrival(f, v2, o2, v1, o1);
            // Antisymmetric; equal iff identical.
            if (v1 == v2 && o1 == o2) {
                EXPECT_FALSE(ab);
                EXPECT_FALSE(ba);
            } else {
                EXPECT_NE(ab, ba);
            }
        }
        // Transitivity over a small exhaustive grid.
        std::vector<std::pair<float, NodeId>> items;
        for (float v : {-1.0f, 0.0f, 1.0f})
            for (NodeId o : {0u, 1u, 2u})
                items.emplace_back(v, o);
        for (auto &a : items)
            for (auto &b : items)
                for (auto &c : items) {
                    if (betterArrival(f, a.first, a.second, b.first,
                                      b.second) &&
                        betterArrival(f, b.first, b.second, c.first,
                                      c.second)) {
                        EXPECT_TRUE(betterArrival(f, a.first,
                                                  a.second, c.first,
                                                  c.second));
                    }
                }
    }
}

TEST(FrontierAdmit, MaintainsAntichain)
{
    Rng rng(505);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<PropLabel> frontier;
        for (int k = 0; k < 40; ++k) {
            PropLabel cand{
                static_cast<float>(rng.range(0, 4)),
                static_cast<NodeId>(rng.below(4)),
                static_cast<std::uint32_t>(rng.below(5))};
            frontierAdmit(MarkerFunc::AddWeight, frontier, cand);

            // Invariant: no entry dominates another — domination
            // needs better-or-equal (value, origin) order AND
            // origin <= origin AND steps <= steps.
            for (std::size_t i = 0; i < frontier.size(); ++i) {
                for (std::size_t j = 0; j < frontier.size(); ++j) {
                    if (i == j)
                        continue;
                    const PropLabel &a = frontier[i];
                    const PropLabel &b = frontier[j];
                    bool a_geq_b = !betterArrival(
                        MarkerFunc::AddWeight, b.value, b.origin,
                        a.value, a.origin);
                    EXPECT_FALSE(a_geq_b && a.origin <= b.origin &&
                                 a.steps <= b.steps)
                        << "dominated entry retained";
                }
            }
        }
    }
}

TEST(FrontierAdmit, DuplicateRejected)
{
    std::vector<PropLabel> frontier;
    PropLabel l{1.0f, 2, 3};
    EXPECT_TRUE(frontierAdmit(MarkerFunc::AddWeight, frontier, l));
    EXPECT_FALSE(frontierAdmit(MarkerFunc::AddWeight, frontier, l));
    EXPECT_EQ(frontier.size(), 1u);
}

TEST(FrontierAdmit, BetterValueWorseOriginCoexists)
{
    // The saturation hazard: a better value with a larger origin
    // must NOT prune (it could lose downstream merges after values
    // equalize).
    std::vector<PropLabel> frontier;
    EXPECT_TRUE(frontierAdmit(MarkerFunc::MinWeight, frontier,
                              PropLabel{5.0f, 1, 2}));
    EXPECT_TRUE(frontierAdmit(MarkerFunc::MinWeight, frontier,
                              PropLabel{3.0f, 7, 2}));
    EXPECT_EQ(frontier.size(), 2u);
    // But a better value with a smaller-or-equal origin and fewer
    // steps prunes both.
    EXPECT_TRUE(frontierAdmit(MarkerFunc::MinWeight, frontier,
                              PropLabel{2.0f, 1, 1}));
    EXPECT_EQ(frontier.size(), 1u);
}

TEST(FrontierAdmit, FewerStepsAdmittedOnTies)
{
    std::vector<PropLabel> frontier;
    EXPECT_TRUE(frontierAdmit(MarkerFunc::AddWeight, frontier,
                              PropLabel{1.0f, 0, 9}));
    EXPECT_TRUE(frontierAdmit(MarkerFunc::AddWeight, frontier,
                              PropLabel{1.0f, 0, 4}));
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].steps, 4u);
    EXPECT_FALSE(frontierAdmit(MarkerFunc::AddWeight, frontier,
                               PropLabel{1.0f, 0, 6}));
}

} // namespace
} // namespace snap
