/**
 * @file
 * Tests for the synthetic KB generators and α/β workloads.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/machine.hh"
#include "kb/kb_io.hh"
#include "runtime/reference.hh"
#include "runtime/validate.hh"
#include "workload/alpha_beta.hh"
#include "workload/kb_gen.hh"
#include "workload/kb_stream.hh"

namespace snap
{
namespace
{

TEST(KbGen, TreeShape)
{
    SemanticNetwork net = makeTreeKb(85, 4);
    EXPECT_EQ(net.numNodes(), 85u);
    EXPECT_EQ(net.numLinks(), 2u * 84u);  // is-a + includes per child
    EXPECT_EQ(net.colorNames().name(net.color(0)), "root");
    // Node 1's parent is node 0.
    RelationType isa = net.relationId("is-a");
    bool found = false;
    for (const Link &l : net.links(1))
        if (l.rel == isa && l.dst == 0)
            found = true;
    EXPECT_TRUE(found);
}

TEST(KbGen, TreeDepthFormula)
{
    EXPECT_EQ(treeDepth(1, 4), 0u);
    EXPECT_EQ(treeDepth(5, 4), 1u);
    EXPECT_EQ(treeDepth(6, 4), 2u);
    EXPECT_EQ(treeDepth(21, 4), 2u);
    // And it matches reality: propagate root-to-leaf.
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    ReferenceInterpreter ri(net);
    RuleTable rules;
    RuleId rid = rules.add(PropRule::chain(inc));
    ResultSet rs;
    ri.execute(Instruction::searchNode(0, 0, 0.0f), rules, rs);
    ri.execute(Instruction::propagate(0, 1, rid, MarkerFunc::Count),
               rules, rs);
    EXPECT_EQ(ri.stats().maxDepth, treeDepth(300, 4));
}

TEST(KbGen, RandomKbDeterministicAndBounded)
{
    SemanticNetwork a = makeRandomKb(100, 3.0, 4, 42);
    SemanticNetwork b = makeRandomKb(100, 3.0, 4, 42);
    EXPECT_EQ(a.numLinks(), b.numLinks());
    EXPECT_LE(a.maxFanout(), capacity::relationSlotsPerNode);
    // No self loops.
    for (NodeId u = 0; u < a.numNodes(); ++u)
        for (const Link &l : a.links(u))
            EXPECT_NE(l.dst, u);
    // Average fanout in the right ballpark.
    double avg = static_cast<double>(a.numLinks()) / a.numNodes();
    EXPECT_GT(avg, 1.5);
    EXPECT_LT(avg, 5.0);
}

TEST(AlphaWorkload, AlphaIsExact)
{
    Workload w = makeAlphaWorkload(600, 37, 3, 2, 9);
    EXPECT_TRUE(validateProgram(w.prog).empty());

    MachineConfig cfg;
    cfg.numClusters = 4;
    cfg.partition = PartitionStrategy::RoundRobin;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(w.net);
    RunResult run = machine.run(w.prog);

    // Two rounds, each PROPAGATE activating exactly 37 sources.
    EXPECT_EQ(run.stats.alphaDist.count(), 2u);
    EXPECT_DOUBLE_EQ(run.stats.alphaDist.mean(), 37.0);
    EXPECT_DOUBLE_EQ(run.stats.alphaDist.min(), 37.0);
    EXPECT_DOUBLE_EQ(run.stats.alphaDist.max(), 37.0);
    EXPECT_EQ(run.stats.maxDepth, 3u);
    // Two rounds x (post-propagation barrier + epoch-closing
    // barrier after the clears).
    EXPECT_EQ(run.stats.barriers, 4u);
}

TEST(AlphaWorkload, FillerNodesPadTheKb)
{
    Workload w = makeAlphaWorkload(600, 10, 2, 1, 9);
    EXPECT_EQ(w.net.numNodes(), 600u);
}

TEST(BetaWorkload, GroupsAreIndependent)
{
    Workload w = makeBetaWorkload(4, 6, 5, 2, true, 3);
    EXPECT_TRUE(validateProgram(w.prog).empty());
    BetaStats st = analyzeBeta(w.prog);
    EXPECT_DOUBLE_EQ(st.betaMin, 6.0);
    EXPECT_DOUBLE_EQ(st.betaMax, 6.0);
    EXPECT_EQ(st.epochs, 2u);
}

TEST(BetaWorkload, SerializedVariantHasBetaOne)
{
    Workload w = makeBetaWorkload(4, 6, 5, 2, false, 3);
    EXPECT_TRUE(validateProgram(w.prog).empty());
    BetaStats st = analyzeBeta(w.prog);
    EXPECT_DOUBLE_EQ(st.betaMax, 1.0);
}

TEST(BetaWorkload, OverlapIsFasterOnTheMachine)
{
    // β-parallelism pays: 8 overlapped propagates beat 8 serialized
    // ones on a multi-MU machine (Fig. 17's premise).
    Workload wo = makeBetaWorkload(6, 8, 8, 2, true, 4);
    Workload ws = makeBetaWorkload(6, 8, 8, 2, false, 4);

    MachineConfig cfg;
    cfg.numClusters = 8;
    cfg.partition = PartitionStrategy::RoundRobin;
    cfg.maxNodesPerCluster = capacity::maxNodes;

    SnapMachine mo(cfg);
    mo.loadKb(wo.net);
    Tick t_overlap = mo.run(wo.prog).wallTicks;

    SnapMachine ms(cfg);
    ms.loadKb(ws.net);
    Tick t_serial = ms.run(ws.prog).wallTicks;

    EXPECT_LT(t_overlap, t_serial);
}

TEST(BetaWorkload, AnalyzeCountsTailEpoch)
{
    Program p;
    RuleId r = p.addRule(PropRule::chain(1));
    p.append(Instruction::propagate(0, 1, r, MarkerFunc::None));
    p.append(Instruction::propagate(2, 3, r, MarkerFunc::None));
    // No trailing barrier: the tail epoch still counts.
    BetaStats st = analyzeBeta(p);
    EXPECT_EQ(st.epochs, 1u);
    EXPECT_DOUBLE_EQ(st.betaAvg, 2.0);
}

TEST(BetaWorkloadDeath, MarkerBudgetEnforced)
{
    EXPECT_DEATH(makeBetaWorkload(4, 40, 2, 1, true, 1),
                 "marker budget");
}

// --- streaming generators ----------------------------------------------

TEST(KbStream, TreeMatchesInMemoryGeneratorByteForByte)
{
    for (std::uint32_t n : {1u, 2u, 5u, 300u, 1000u}) {
        std::ostringstream mem, stream;
        saveNetwork(makeTreeKb(n, 4), mem);
        streamTreeKb(n, 4, stream);
        EXPECT_EQ(stream.str(), mem.str()) << "tree " << n;
    }
    std::ostringstream mem, stream;
    saveNetwork(makeTreeKb(77, 3), mem);
    streamTreeKb(77, 3, stream);
    EXPECT_EQ(stream.str(), mem.str());
}

TEST(KbStream, RandomMatchesInMemoryGeneratorByteForByte)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        std::ostringstream mem, stream;
        saveNetwork(makeRandomKb(400, 5.5, 3, seed), mem);
        streamRandomKb(400, 5.5, 3, seed, stream);
        EXPECT_EQ(stream.str(), mem.str()) << "seed " << seed;
    }
}

TEST(KbStream, ChainMatchesInMemoryGeneratorByteForByte)
{
    std::ostringstream mem, stream;
    saveNetwork(makeChainKb(250), mem);
    streamChainKb(250, stream);
    EXPECT_EQ(stream.str(), mem.str());
}

TEST(KbStream, StreamedTextLoadsBack)
{
    std::ostringstream os;
    streamTreeKb(120, 4, os);
    std::istringstream is(os.str());
    SemanticNetwork net = loadNetwork(is);
    EXPECT_EQ(net.numNodes(), 120u);
    EXPECT_EQ(net.numLinks(), 2u * 119u);
}

} // namespace
} // namespace snap
