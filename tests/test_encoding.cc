/**
 * @file
 * Tests for the binary instruction encoding ("object code
 * downloaded to the controller").
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/encoding.hh"
#include "runtime/reference.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.op == b.op && a.node == b.node &&
           a.endNode == b.endNode && a.rel == b.rel &&
           a.rel2 == b.rel2 && a.color == b.color && a.m1 == b.m1 &&
           a.m2 == b.m2 && a.m3 == b.m3 && a.value == b.value &&
           a.rule == b.rule && a.func == b.func &&
           a.comb == b.comb && a.sfunc.op == b.sfunc.op &&
           a.sfunc.imm == b.sfunc.imm;
}

TEST(Encoding, BlockSizeMatchesBroadcastCost)
{
    // TimingParams::instrWords defaults to 8 — the encoding must fit
    // the modeled broadcast cost.
    EXPECT_EQ(instrEncodingWords, 8u);
}

TEST(Encoding, EveryConstructorRoundTrips)
{
    std::vector<Instruction> instrs = {
        Instruction::create(3, 7, 1.5f, 9),
        Instruction::del(3, 7, 9),
        Instruction::setColor(4, 200),
        Instruction::setWeight(1, 2, 3, -0.25f),
        Instruction::searchNode(12345, 63, 3.75f),
        Instruction::searchRelation(65535, 64, 0.0f),
        Instruction::searchColor(255, 127, -1.0f),
        Instruction::propagate(1, 2, 250, MarkerFunc::MulWeight),
        Instruction::markerCreate(5, 100, 42, 200),
        Instruction::markerDelete(5, 100, 42, 200),
        Instruction::markerSetColor(9, 17),
        Instruction::andMarker(1, 2, 3, CombineOp::Diff),
        Instruction::orMarker(4, 5, 6, CombineOp::Max),
        Instruction::notMarker(7, 8),
        Instruction::setMarker(11, 2.25f),
        Instruction::clearMarker(12),
        Instruction::funcMarker(
            13, ScalarFunc{ScalarFunc::Op::ThresholdLt, 0.125f}),
        Instruction::collectMarker(14),
        Instruction::collectRelation(15, 9),
        Instruction::collectColor(128),
        Instruction::barrier(),
    };
    for (const Instruction &i : instrs) {
        Instruction back = decodeInstruction(encodeInstruction(i));
        EXPECT_TRUE(sameInstruction(i, back)) << i.toString();
    }
}

TEST(Encoding, RandomizedRoundTrip)
{
    Rng rng(606);
    for (int trial = 0; trial < 2000; ++trial) {
        Instruction i;
        i.op = static_cast<Opcode>(
            rng.below(static_cast<std::uint64_t>(
                Opcode::NumOpcodes)));
        i.node = static_cast<NodeId>(rng.below(1u << 16));
        i.endNode = static_cast<NodeId>(rng.below(1u << 16));
        i.rel = static_cast<RelationType>(rng.below(65536));
        i.rel2 = static_cast<RelationType>(rng.below(65536));
        i.color = static_cast<Color>(rng.below(256));
        i.m1 = static_cast<MarkerId>(rng.below(128));
        i.m2 = static_cast<MarkerId>(rng.below(128));
        i.m3 = static_cast<MarkerId>(rng.below(128));
        i.value = static_cast<float>(rng.uniform(-10, 10));
        i.rule = static_cast<RuleId>(rng.below(256));
        i.func = static_cast<MarkerFunc>(
            rng.below(static_cast<std::uint64_t>(
                MarkerFunc::NumFuncs)));
        i.comb = static_cast<CombineOp>(rng.below(5));
        i.sfunc.op = static_cast<ScalarFunc::Op>(rng.below(6));
        i.sfunc.imm = static_cast<float>(rng.uniform(-2, 2));

        Instruction back = decodeInstruction(encodeInstruction(i));
        ASSERT_TRUE(sameInstruction(i, back)) << i.toString();
    }
}

TEST(Encoding, ProgramStreamRoundTripsAndRuns)
{
    SemanticNetwork net = makeChainKb(12, "next", 0.5f);
    RelationType next = net.relationId("next");

    Program prog;
    RuleId rid = prog.addRule(PropRule::chain(next));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    std::vector<std::uint32_t> object_code = encodeProgram(prog);
    EXPECT_EQ(object_code.size(),
              prog.size() * instrEncodingWords);

    Program back = decodeProgram(object_code, prog.rules());
    ASSERT_EQ(back.size(), prog.size());

    // The decoded stream is behaviourally identical.
    SemanticNetwork net2 = makeChainKb(12, "next", 0.5f);
    ReferenceInterpreter a(net), b(net2);
    ResultSet ra = a.run(prog);
    ResultSet rb = b.run(back);
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_EQ(ra[0].nodes.size(), rb[0].nodes.size());
    for (std::size_t k = 0; k < ra[0].nodes.size(); ++k)
        EXPECT_EQ(ra[0].nodes[k], rb[0].nodes[k]);
}

TEST(EncodingDeath, CorruptOpcodeIsFatal)
{
    EncodedInstr w{};
    w[0] = 0xff;
    EXPECT_EXIT(decodeInstruction(w), ::testing::ExitedWithCode(1),
                "corrupt object code");
}

TEST(EncodingDeath, MisalignedStreamIsFatal)
{
    std::vector<std::uint32_t> words(instrEncodingWords + 1, 0);
    RuleTable rules;
    EXPECT_EXIT(decodeProgram(words, rules),
                ::testing::ExitedWithCode(1), "not a multiple");
}

} // namespace
} // namespace snap
