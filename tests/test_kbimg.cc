/**
 * @file
 * Tests for the binary .kbimg snapshot format: deterministic
 * byte-exact round-trips, equal run results from a deserialized
 * image, and typed rejection of truncated, corrupted, foreign-endian,
 * and future-version files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/kb_image_io.hh"
#include "arch/machine.hh"
#include "isa/program.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

/** Self-cleaning temp file path. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

Program
countQuery(NodeId start, RelationType rel)
{
    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(rel));
    prog.append(Instruction::searchNode(start, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));
    return prog;
}

MachineConfig
testConfig()
{
    MachineConfig cfg;
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;
    return cfg;
}

TEST(KbImg, SaveIsDeterministicByteForByte)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    MachineConfig cfg = testConfig();
    KbImage image(net, cfg);

    std::ostringstream a, b;
    ASSERT_TRUE(saveKbImage(net, image, cfg.partition, a));
    ASSERT_TRUE(saveKbImage(net, image, cfg.partition, b));
    EXPECT_EQ(a.str(), b.str());
    EXPECT_GT(a.str().size(), 24u + 7u * 32u)
        << "header + section table + payloads";
}

TEST(KbImg, RoundTripIsByteExactAndRunsIdentically)
{
    SemanticNetwork net = makeRandomKb(500, 6.0, 3, /*seed=*/7);
    MachineConfig cfg = testConfig();
    KbImage image(net, cfg);

    TempFile f("roundtrip.kbimg");
    saveKbImageFile(net, image, cfg.partition, f.path());
    EXPECT_TRUE(isKbImageFile(f.path()));

    KbImageFile loaded;
    std::string detail;
    ASSERT_EQ(loadKbImageFile(f.path(), loaded, detail),
              KbImgStatus::Ok)
        << detail;
    EXPECT_EQ(loaded.strategy, cfg.partition);
    EXPECT_NE(loaded.fingerprint, 0u);

    // The logical network survives intact.
    ASSERT_EQ(loaded.net.numNodes(), net.numNodes());
    EXPECT_EQ(loaded.net.numLinks(), net.numLinks());
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        EXPECT_EQ(loaded.net.nodeName(n), net.nodeName(n));
        EXPECT_EQ(loaded.net.color(n), net.color(n));
    }

    // Re-serializing the loaded image reproduces the file bit for
    // bit: nothing was lost or reordered in flight.
    std::ostringstream again;
    ASSERT_TRUE(saveKbImage(loaded.net, *loaded.image,
                            loaded.strategy, again));
    EXPECT_EQ(again.str(), fileBytes(f.path()));

    // A machine stamped from the deserialized image answers exactly
    // like one stamped from the in-memory compile.
    SnapMachine direct(cfg);
    direct.loadKb(image);
    SnapMachine from_file(cfg);
    from_file.loadKb(*loaded.image);
    Program q = countQuery(0, net.relationId("r0"));
    RunResult a = direct.run(q);
    RunResult b = from_file.run(q);
    test::expectSameResults(a.results, b.results);
    EXPECT_EQ(a.wallTicks, b.wallTicks);
}

TEST(KbImg, TruncationIsTypedRejection)
{
    SemanticNetwork net = makeTreeKb(120, 3);
    MachineConfig cfg = testConfig();
    KbImage image(net, cfg);
    TempFile f("trunc.kbimg");
    saveKbImageFile(net, image, cfg.partition, f.path());
    const std::string whole = fileBytes(f.path());

    KbImageFile out;
    std::string detail;

    // Shorter than the header: not even recognizably a .kbimg.
    writeBytes(f.path(), whole.substr(0, 5));
    EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
              KbImgStatus::BadMagic);

    // Magic intact but the section table is cut off.
    writeBytes(f.path(), whole.substr(0, 40));
    EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
              KbImgStatus::Truncated);

    // Header intact, payload cut off mid-section.
    writeBytes(f.path(), whole.substr(0, whole.size() / 2));
    EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
              KbImgStatus::Truncated);

    // One byte short: the final section's size check must notice.
    writeBytes(f.path(), whole.substr(0, whole.size() - 1));
    EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
              KbImgStatus::Truncated);

    EXPECT_EQ(loadKbImageFile(
                  std::string(::testing::TempDir()) + "missing.kbimg",
                  out, detail),
              KbImgStatus::IoError);
}

TEST(KbImg, CorruptionIsTypedRejection)
{
    SemanticNetwork net = makeTreeKb(120, 3);
    MachineConfig cfg = testConfig();
    KbImage image(net, cfg);
    TempFile f("corrupt.kbimg");
    saveKbImageFile(net, image, cfg.partition, f.path());
    const std::string whole = fileBytes(f.path());
    const std::size_t table_end = 24 + 7 * 32;

    KbImageFile out;
    std::string detail;

    // Flip one payload byte: the section checksum must catch it.
    {
        std::string bad = whole;
        bad[table_end + bad.size() / 3] ^= 0x40;
        writeBytes(f.path(), bad);
        EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
                  KbImgStatus::ChecksumMismatch)
            << detail;
    }

    // Bad magic.
    {
        std::string bad = whole;
        bad[0] ^= 0xff;
        writeBytes(f.path(), bad);
        EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
                  KbImgStatus::BadMagic);
        EXPECT_FALSE(isKbImageFile(f.path()));
    }

    // Future version field (u32 at offset 8).
    {
        std::string bad = whole;
        bad[8] = 0x7f;
        writeBytes(f.path(), bad);
        EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
                  KbImgStatus::BadVersion);
    }

    // Foreign endian tag (u32 at offset 12).
    {
        std::string bad = whole;
        std::swap(bad[12], bad[15]);
        std::swap(bad[13], bad[14]);
        writeBytes(f.path(), bad);
        EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
                  KbImgStatus::BadEndian);
    }

    // The pristine file still loads after all that.
    writeBytes(f.path(), whole);
    EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
              KbImgStatus::Ok)
        << detail;
}

TEST(KbImg, TextKbIsNotAnImage)
{
    TempFile f("plain.snapkb");
    writeBytes(f.path(), "snapkb 1\nnode a concept\n");
    EXPECT_FALSE(isKbImageFile(f.path()));
    KbImageFile out;
    std::string detail;
    EXPECT_EQ(loadKbImageFile(f.path(), out, detail),
              KbImgStatus::BadMagic);
}

TEST(KbImg, FingerprintTracksContent)
{
    MachineConfig cfg = testConfig();
    SemanticNetwork a = makeTreeKb(120, 3);
    SemanticNetwork b = makeTreeKb(121, 3);
    KbImage ia(a, cfg), ib(b, cfg);
    TempFile fa("fp_a.kbimg"), fb("fp_b.kbimg");
    saveKbImageFile(a, ia, cfg.partition, fa.path());
    saveKbImageFile(b, ib, cfg.partition, fb.path());

    KbImageFile la, lb;
    std::string detail;
    ASSERT_EQ(loadKbImageFile(fa.path(), la, detail), KbImgStatus::Ok);
    ASSERT_EQ(loadKbImageFile(fb.path(), lb, detail), KbImgStatus::Ok);
    EXPECT_NE(la.fingerprint, lb.fingerprint)
        << "different knowledge must not share a fingerprint";

    // Same content -> same fingerprint, across separate compiles.
    SemanticNetwork a2 = makeTreeKb(120, 3);
    KbImage ia2(a2, cfg);
    TempFile fa2("fp_a2.kbimg");
    saveKbImageFile(a2, ia2, cfg.partition, fa2.path());
    KbImageFile la2;
    ASSERT_EQ(loadKbImageFile(fa2.path(), la2, detail),
              KbImgStatus::Ok);
    EXPECT_EQ(la.fingerprint, la2.fingerprint);
}

} // namespace
} // namespace snap
