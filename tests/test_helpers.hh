/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef SNAP_TESTS_TEST_HELPERS_HH
#define SNAP_TESTS_TEST_HELPERS_HH

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "runtime/marker_store.hh"
#include "runtime/reference.hh"
#include "runtime/results.hh"

namespace snap
{
namespace test
{

/** Compare two result sets after sorting node/link order. */
inline void
expectSameResults(ResultSet a, ResultSet b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i].sortNodes();
        b[i].sortNodes();
        EXPECT_EQ(a[i].op, b[i].op) << "result " << i;
        ASSERT_EQ(a[i].nodes.size(), b[i].nodes.size())
            << "result " << i;
        for (std::size_t k = 0; k < a[i].nodes.size(); ++k) {
            EXPECT_EQ(a[i].nodes[k].node, b[i].nodes[k].node)
                << "result " << i << " item " << k;
            EXPECT_FLOAT_EQ(a[i].nodes[k].value, b[i].nodes[k].value)
                << "result " << i << " item " << k << " node "
                << a[i].nodes[k].node;
            EXPECT_EQ(a[i].nodes[k].origin, b[i].nodes[k].origin)
                << "result " << i << " item " << k << " node "
                << a[i].nodes[k].node;
        }
        ASSERT_EQ(a[i].links.size(), b[i].links.size())
            << "result " << i;
        for (std::size_t k = 0; k < a[i].links.size(); ++k) {
            EXPECT_EQ(a[i].links[k], b[i].links[k])
                << "result " << i << " link " << k;
        }
    }
}

/** Compare full marker state: machine image vs golden store. */
inline void
expectSameMarkers(const KbImage &image, const MarkerStore &golden,
                  std::uint32_t num_nodes)
{
    MarkerStore flat = image.flatten();
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
        auto mid = static_cast<MarkerId>(m);
        for (NodeId n = 0; n < num_nodes; ++n) {
            ASSERT_EQ(flat.test(mid, n), golden.test(mid, n))
                << "marker m" << m << " at node " << n;
            if (flat.test(mid, n) && isComplexMarker(mid)) {
                EXPECT_FLOAT_EQ(flat.value(mid, n),
                                golden.value(mid, n))
                    << "marker m" << m << " value at node " << n;
                EXPECT_EQ(flat.origin(mid, n), golden.origin(mid, n))
                    << "marker m" << m << " origin at node " << n;
            }
        }
    }
}

} // namespace test
} // namespace snap

#endif // SNAP_TESTS_TEST_HELPERS_HH
