/**
 * @file
 * Tests for the stats:: package (reset/merge semantics, group export),
 * the log-linear Histogram's quantile edge cases, and the exact
 * LinearHistogram that backs small-integer metrics like batch lane
 * counts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/metrics_registry.hh"
#include "common/stats.hh"

namespace snap
{
namespace
{

// --- stats::Scalar ---------------------------------------------------------

TEST(StatsScalar, IncrementAssignReset)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7.0;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

// --- stats::Distribution ---------------------------------------------------

TEST(StatsDistribution, ResetRestoresEmptyState)
{
    stats::Distribution d;
    d.sample(1.0);
    d.sample(3.0);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);

    // A reset distribution must accept new samples as if fresh.
    d.sample(5.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
}

TEST(StatsDistribution, MergePoolsSamples)
{
    stats::Distribution a, b;
    a.sample(1.0);
    a.sample(2.0);
    b.sample(10.0);
    b.sample(20.0);

    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.sum(), 33.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);

    // Merged moments must match sampling everything into one
    // distribution directly.
    stats::Distribution direct;
    for (double v : {1.0, 2.0, 10.0, 20.0})
        direct.sample(v);
    EXPECT_DOUBLE_EQ(a.mean(), direct.mean());
    EXPECT_DOUBLE_EQ(a.variance(), direct.variance());
}

TEST(StatsDistribution, MergeEmptyLeavesEnvelopeAlone)
{
    stats::Distribution a, empty;
    a.sample(4.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 4.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);

    // And merging INTO an empty one adopts the other's envelope.
    stats::Distribution c;
    c.merge(a);
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.min(), 4.0);
    EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

// --- stats::Histogram (fixed-width) ----------------------------------------

TEST(StatsHistogram, BucketsAndOverflowReset)
{
    stats::Histogram h(1.0, 4);
    h.sample(-1.0); // underflow
    h.sample(0.5);  // bucket 0
    h.sample(2.5);  // bucket 2
    h.sample(9.0);  // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.dist().count(), 4u);

    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::uint32_t i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
    EXPECT_EQ(h.dist().count(), 0u);
}

// --- stats::Group ----------------------------------------------------------

TEST(StatsGroup, ResetAllAndExport)
{
    stats::Scalar s;
    stats::Distribution d;
    stats::Group g("unit");
    g.addScalar("hits", &s);
    g.addDistribution("lat", &d);

    s += 3;
    d.sample(2.0);

    MetricsRegistry reg;
    g.exportTo(reg, {{"worker", "0"}});
    EXPECT_GT(reg.size(), 0u);
    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("snap_unit_hits"), std::string::npos);
    EXPECT_NE(text.find("worker=\"0\""), std::string::npos);

    g.resetAll();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

// --- MetricsRegistry exposition escaping -----------------------------------

TEST(MetricsRegistry, PrometheusEscapesLabelValuesAndHelp)
{
    MetricsRegistry reg;
    reg.counter("snap_evil_total", 1.0,
                "help with \\ backslash\nand newline",
                {{"path", "C:\\tmp\n\"quoted\""}});
    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();

    // The label value must carry the three spec escapes and no raw
    // quote/newline inside the quotes.
    EXPECT_NE(text.find("path=\"C:\\\\tmp\\n\\\"quoted\\\"\""),
              std::string::npos)
        << text;
    // HELP escapes backslash and newline (quotes stay raw there).
    EXPECT_NE(text.find(
                  "# HELP snap_evil_total help with \\\\ "
                  "backslash\\nand newline\n"),
              std::string::npos)
        << text;
    // Exactly one physical line may contain the sample: an
    // unescaped newline would split it.
    std::istringstream is(text);
    std::string line;
    std::size_t sample_lines = 0;
    while (std::getline(is, line))
        if (line.rfind("snap_evil_total{", 0) == 0)
            ++sample_lines;
    EXPECT_EQ(sample_lines, 1u);
}

TEST(MetricsRegistry, JsonEscapesLabelStrings)
{
    MetricsRegistry reg;
    reg.gauge("snap_g", 2.0, "",
              {{"k", "a\"b\\c\nd\te\x01z"}});
    std::ostringstream os;
    reg.writeJson(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("a\\\"b\\\\c\\nd\\te\\u0001z"),
              std::string::npos)
        << text;
}

TEST(MetricsRegistry, SanitizeLabelNameExcludesColon)
{
    EXPECT_EQ(MetricsRegistry::sanitizeLabelName("a:b.c"), "a_b_c");
    EXPECT_EQ(MetricsRegistry::sanitizeLabelName("9lead"), "_lead");
    EXPECT_EQ(MetricsRegistry::sanitizeLabelName(""), "_");
    // Metric names keep the colon; label names must not.
    EXPECT_EQ(MetricsRegistry::sanitizeName("a:b"), "a:b");
}

// --- Logger counter export -------------------------------------------------

TEST(LoggerMetrics, ExportsPerLevelEmitAndSuppressCounters)
{
    Logger::resetCounters();
    snap_inform("logger-metrics probe %d", 1);
    snap_warn("logger-metrics probe %d", 2);
    snap_warn("logger-metrics probe %d", 3);

    MetricsRegistry reg;
    Logger::exportMetrics(reg);

    double info_emitted = -1.0, warn_emitted = -1.0;
    std::size_t suppressed_series = 0;
    for (const auto &s : reg.samples()) {
        if (s.name == "snap_log_emitted_total") {
            ASSERT_EQ(s.labels.size(), 1u);
            EXPECT_EQ(s.labels[0].first, "level");
            if (s.labels[0].second == "info")
                info_emitted = s.value;
            else if (s.labels[0].second == "warn")
                warn_emitted = s.value;
        } else if (s.name == "snap_log_suppressed_total") {
            ++suppressed_series;
        }
    }
    EXPECT_GE(info_emitted, 1.0);
    EXPECT_GE(warn_emitted, 2.0);
    // One suppressed series per level, even when all-zero.
    EXPECT_EQ(suppressed_series, 5u);
    Logger::resetCounters();
}

// --- snap::Histogram (log-linear) quantile edges ---------------------------

TEST(LogLinearHistogram, EmptyQuantileIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
}

TEST(LogLinearHistogram, SingleSampleQuantilesClampToIt)
{
    Histogram h;
    h.record(3.7);
    // With one sample every quantile must return exactly that value:
    // the bucket midpoint is clamped to the [min, max] envelope.
    EXPECT_DOUBLE_EQ(h.quantile(0.01), 3.7);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.7);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.7);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.7);
}

TEST(LogLinearHistogram, AllSamplesInOneBucket)
{
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(8.0);
    // Every quantile lands in the same bucket and clamps to 8.0.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 8.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 8.0);
    EXPECT_DOUBLE_EQ(h.min(), 8.0);
    EXPECT_DOUBLE_EQ(h.max(), 8.0);
    EXPECT_DOUBLE_EQ(h.mean(), 8.0);
}

TEST(LogLinearHistogram, QuantileOrderingAndBoundedError)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    double p50 = h.quantile(0.50);
    double p95 = h.quantile(0.95);
    double p99 = h.quantile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    // Sub-bucketed octaves bound the relative error at ~6%.
    EXPECT_NEAR(p50, 500.0, 500.0 * 0.07);
    EXPECT_NEAR(p99, 990.0, 990.0 * 0.07);
    // p100 lands in the top occupied bucket; its midpoint may sit
    // below max, but never above it.
    EXPECT_NEAR(h.quantile(1.0), 1000.0, 1000.0 * 0.07);
    EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(LogLinearHistogram, MergeAndReset)
{
    Histogram a, b;
    a.record(1.0);
    b.record(100.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
    EXPECT_DOUBLE_EQ(a.sum(), 101.0);
    // Merging an empty histogram is a no-op on the envelope.
    Histogram empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.quantile(0.5), 0.0);
}

// --- snap::LinearHistogram (exact small-integer buckets) -------------------

TEST(LinearHistogram, ExactQuantilesAboveSixtyFour)
{
    // The log-linear Histogram widens its buckets past 64 (the bug
    // the batch_lanes metric hit); the linear histogram must report
    // wide lane counts exactly.
    LinearHistogram<2048> h;
    for (int i = 0; i < 10; ++i)
        h.record(65.0);
    for (int i = 0; i < 10; ++i)
        h.record(1024.0);
    EXPECT_EQ(h.count(), 20u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 65.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.51), 1024.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
    EXPECT_DOUBLE_EQ(h.min(), 65.0);
    EXPECT_DOUBLE_EQ(h.max(), 1024.0);
    EXPECT_DOUBLE_EQ(h.mean(), (65.0 + 1024.0) / 2.0);
}

TEST(LinearHistogram, EmptyAndSingleSample)
{
    LinearHistogram<128> h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    h.record(127.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.01), 127.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 127.0);
}

TEST(LinearHistogram, ClampsToTopBucketAndFloor)
{
    LinearHistogram<64> h;
    h.record(1e9);  // above MaxValue: clamps into the top bucket
    h.record(-3.0); // negative: clamps to 0
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 64.0);
    EXPECT_DOUBLE_EQ(h.max(), 1e9) << "envelope keeps the raw value";
}

TEST(LinearHistogram, MergeAndReset)
{
    LinearHistogram<2048> a, b;
    a.record(2.0);
    b.record(2000.0);
    b.record(70.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2000.0);
    EXPECT_DOUBLE_EQ(a.sum(), 2072.0);
    EXPECT_DOUBLE_EQ(a.quantile(0.34), 70.0);
    LinearHistogram<2048> empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.quantile(0.5), 0.0);
}

} // namespace
} // namespace snap
