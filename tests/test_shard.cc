/**
 * @file
 * Tests for the snapshard subsystem: consistent-hash ring placement,
 * wire-protocol codecs (including malformed-frame rejection — frames
 * cross a trust boundary), and an in-process router + shard-server
 * fleet over unix sockets: bit-identical answers vs a direct
 * ServeEngine, stateless failover when a shard dies, and the
 * epoch-based KB hot-swap under live traffic.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/kb_image_io.hh"
#include "arch/machine.hh"
#include "serve/engine.hh"
#include "shard/hash_ring.hh"
#include "shard/protocol.hh"
#include "shard/router.hh"
#include "shard/shard_server.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

using shard::FrameType;
using shard::HashRing;
using shard::ShardRouter;
using shard::ShardServer;
using shard::WireReader;
using shard::WireWriter;

// --- hash ring ----------------------------------------------------------

TEST(HashRing, CoversAllShardsRoughlyEvenly)
{
    constexpr std::uint32_t kShards = 4;
    constexpr std::uint64_t kKeys = 20000;
    HashRing ring(kShards, 64);
    std::vector<std::uint64_t> hits(kShards, 0);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        std::uint32_t s = ring.owner(k * 0x9e3779b97f4a7c15ull + 3);
        ASSERT_LT(s, kShards);
        ++hits[s];
    }
    for (std::uint32_t s = 0; s < kShards; ++s) {
        EXPECT_GT(hits[s], kKeys / kShards / 2)
            << "shard " << s << " starves";
        EXPECT_LT(hits[s], kKeys * 2 / kShards)
            << "shard " << s << " hoards";
    }
}

TEST(HashRing, PlacementIsDeterministic)
{
    HashRing a(3, 64), b(3, 64);
    for (std::uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(HashRing, SkippingMovesOnlyOrphanedKeys)
{
    constexpr std::uint32_t kShards = 4;
    HashRing ring(kShards, 64);
    std::vector<bool> down(kShards, false);
    down[2] = true;
    for (std::uint64_t k = 0; k < 5000; ++k) {
        std::uint32_t home = ring.owner(k);
        std::uint32_t live = ring.ownerSkipping(k, down);
        EXPECT_NE(live, 2u);
        if (home != 2)
            EXPECT_EQ(live, home)
                << "healthy placements must not move";
    }
    // All shards down: the walk gives up and returns the home shard.
    std::vector<bool> all(kShards, true);
    EXPECT_EQ(ring.ownerSkipping(42, all), ring.owner(42));
}

// --- wire codecs --------------------------------------------------------

Program
countQuery(NodeId start, RelationType rel)
{
    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(rel));
    prog.append(Instruction::searchNode(start, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));
    return prog;
}

TEST(ShardProtocol, RequestRoundTripPreservesTheProgram)
{
    shard::RequestFrame in;
    in.id = 0x1122334455667788ull;
    in.sessionId = "alice";
    in.timeoutMs = 125.5;
    in.rngSeed = 99;
    in.prog = countQuery(7, 2);

    WireWriter w;
    shard::encodeRequest(w, in);
    WireReader r(w.bytes().data(), w.bytes().size());
    shard::RequestFrame out;
    ASSERT_TRUE(shard::decodeRequest(r, out));
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.sessionId, in.sessionId);
    EXPECT_DOUBLE_EQ(out.timeoutMs, in.timeoutMs);
    EXPECT_EQ(out.rngSeed, in.rngSeed);
    EXPECT_EQ(out.prog.contentHash(), in.prog.contentHash());
}

TEST(ShardProtocol, ResponseRoundTripPreservesResults)
{
    shard::ResponseFrame in;
    in.id = 42;
    in.status = serve::RequestStatus::Ok;
    in.wallTicks = 12345;
    in.rngSeed = 7;
    in.queueMs = 0.25;
    in.serviceMs = 3.5;
    in.worker = 2;
    in.batchLanes = 4;
    in.retries = 1;
    in.faultDetected = true;
    CollectResult res;
    res.op = Opcode::CollectMarker;
    res.marker = 1;
    res.nodes.push_back(CollectedNode{11, 2.5f, 3});
    res.nodes.push_back(CollectedNode{12, 0.0f, invalidNode});
    res.links.push_back(CollectedLink{1, 2, 3, 0.75f});
    in.results.push_back(res);

    WireWriter w;
    shard::encodeResponse(w, in);
    WireReader r(w.bytes().data(), w.bytes().size());
    shard::ResponseFrame out;
    ASSERT_TRUE(shard::decodeResponse(r, out));
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.wallTicks, in.wallTicks);
    EXPECT_EQ(out.batchLanes, in.batchLanes);
    EXPECT_TRUE(out.faultDetected);
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_EQ(out.results[0].nodes, in.results[0].nodes);
    EXPECT_EQ(out.results[0].links, in.results[0].links);
}

TEST(ShardProtocol, MalformedBytesAreTypedRejections)
{
    shard::RequestFrame in;
    in.prog = countQuery(0, 0);
    WireWriter w;
    shard::encodeRequest(w, in);

    // Every strict prefix must fail the decode, never crash.
    const auto &bytes = w.bytes();
    for (std::size_t cut = 0; cut < bytes.size();
         cut += 1 + cut / 8) {
        WireReader r(bytes.data(), cut);
        shard::RequestFrame out;
        EXPECT_FALSE(shard::decodeRequest(r, out))
            << "prefix of " << cut << " bytes decoded";
    }

    // Trailing garbage is also a rejection (done() is strict).
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0xee);
    WireReader r(padded.data(), padded.size());
    shard::RequestFrame out;
    EXPECT_FALSE(shard::decodeRequest(r, out));

    // Control-frame codecs round-trip.
    shard::PrepareFrame prep;
    prep.epoch = 9;
    prep.imagePath = "/tmp/gen9.kbimg";
    WireWriter pw;
    shard::encodePrepare(pw, prep);
    WireReader pr(pw.bytes().data(), pw.bytes().size());
    shard::PrepareFrame pout;
    ASSERT_TRUE(shard::decodePrepare(pr, pout));
    EXPECT_EQ(pout.epoch, 9u);
    EXPECT_EQ(pout.imagePath, prep.imagePath);

    shard::PrepareAckFrame ack;
    ack.epoch = 9;
    ack.ok = false;
    ack.detail = "checksum-mismatch: section 5";
    WireWriter aw;
    shard::encodePrepareAck(aw, ack);
    WireReader ar(aw.bytes().data(), aw.bytes().size());
    shard::PrepareAckFrame aout;
    ASSERT_TRUE(shard::decodePrepareAck(ar, aout));
    EXPECT_FALSE(aout.ok);
    EXPECT_EQ(aout.detail, ack.detail);
}

// --- in-process sharded serving ----------------------------------------

/** Self-cleaning temp path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

serve::ServeConfig
shardServeConfig()
{
    serve::ServeConfig cfg;
    cfg.numWorkers = 2;
    cfg.machine.numClusters = 8;
    cfg.machine.perfNetEnabled = false;
    return cfg;
}

/** A running in-process shard: server + its accept-loop thread. */
struct TestShard
{
    std::unique_ptr<ShardServer> server;
    std::thread runner;

    TestShard(const std::string &image_path,
              const std::string &listen)
    {
        KbImageFile kb;
        std::string detail;
        EXPECT_EQ(loadKbImageFile(image_path, kb, detail),
                  KbImgStatus::Ok)
            << detail;
        shard::ShardServerConfig cfg;
        cfg.listen = listen;
        cfg.serve = shardServeConfig();
        server = std::make_unique<ShardServer>(std::move(kb), cfg);
        EXPECT_TRUE(server->bind(detail)) << detail;
        runner = std::thread([this] { server->run(); });
    }

    ~TestShard()
    {
        server->stop();
        runner.join();
    }
};

class ShardFleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        net_ = makeTreeKb(300, 4);
        serve::ServeConfig scfg = shardServeConfig();
        KbImage image(net_, scfg.machine);
        image_file_ = std::make_unique<TempPath>("fleet.kbimg");
        saveKbImageFile(net_, image, scfg.machine.partition,
                        image_file_->path());
    }

    /** Expected answer for @p prog from a solo machine. */
    RunResult
    reference(const Program &prog)
    {
        serve::ServeConfig scfg = shardServeConfig();
        SnapMachine direct(scfg.machine);
        direct.loadKb(net_);
        return direct.run(prog);
    }

    SemanticNetwork net_;
    std::unique_ptr<TempPath> image_file_;
};

TEST_F(ShardFleetTest, RouterAnswersMatchDirectExecution)
{
    TempPath sock0("fleet0.sock"), sock1("fleet1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;
    EXPECT_EQ(router.numShards(), 2u);
    EXPECT_NE(router.fingerprint(), 0u);
    for (std::uint32_t s = 0; s < 2; ++s) {
        std::string err;
        EXPECT_TRUE(router.probeShard(s, err)) << err;
        EXPECT_TRUE(router.shardHealthy(s));
    }

    RelationType inc = net_.relationId("includes");
    RelationType isa = net_.relationId("is-a");
    std::vector<Program> mix;
    for (NodeId n = 0; n < 12; ++n)
        mix.push_back(countQuery(n * 37 % 300, n % 2 ? inc : isa));

    std::vector<shard::ResponseFrame> got(mix.size());
    std::mutex mu;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        shard::RouterRequest req;
        req.prog = mix[i];
        router.submit(std::move(req),
                      [&, i](shard::ResponseFrame &&resp) {
                          std::lock_guard<std::mutex> lock(mu);
                          got[i] = std::move(resp);
                      });
    }
    router.drain();

    for (std::size_t i = 0; i < mix.size(); ++i) {
        ASSERT_EQ(got[i].status, serve::RequestStatus::Ok)
            << "request " << i;
        RunResult ref = reference(mix[i]);
        test::expectSameResults(got[i].results, ref.results);
        EXPECT_EQ(got[i].wallTicks, ref.wallTicks)
            << "request " << i;
    }
}

TEST_F(ShardFleetTest, SessionsSurviveAndStayOrdered)
{
    TempPath sock0("sess0.sock"), sock1("sess1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    // Several sessions, several requests each; a session's repeated
    // queries all land on its pinned shard and answer Ok.
    RelationType inc = net_.relationId("includes");
    constexpr int kSessions = 4;
    constexpr int kPerSession = 3;
    std::atomic<int> ok{0};
    for (int round = 0; round < kPerSession; ++round) {
        for (int s = 0; s < kSessions; ++s) {
            shard::RouterRequest req;
            req.sessionId = "sess-" + std::to_string(s);
            req.prog = countQuery(static_cast<NodeId>(s), inc);
            router.submit(std::move(req),
                          [&](shard::ResponseFrame &&resp) {
                              if (resp.status ==
                                  serve::RequestStatus::Ok)
                                  ++ok;
                          });
        }
    }
    router.drain();
    EXPECT_EQ(ok.load(), kSessions * kPerSession);
}

TEST_F(ShardFleetTest, StatelessTrafficSurvivesAShardDeath)
{
    TempPath sock0("die0.sock"), sock1("die1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    auto s1 = std::make_unique<TestShard>(image_file_->path(),
                                          "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    // Kill shard 1 outright; the router notices via the dead
    // connection and every stateless request re-routes to shard 0.
    s1.reset();

    RelationType inc = net_.relationId("includes");
    std::atomic<int> ok{0};
    constexpr int kRequests = 16;
    for (int i = 0; i < kRequests; ++i) {
        shard::RouterRequest req;
        req.prog = countQuery(static_cast<NodeId>(i * 17 % 300), inc);
        router.submit(std::move(req),
                      [&](shard::ResponseFrame &&resp) {
                          if (resp.status == serve::RequestStatus::Ok)
                              ++ok;
                      });
    }
    router.drain();
    EXPECT_EQ(ok.load(), kRequests)
        << "stateless traffic must fail over, not fail";
    EXPECT_FALSE(router.shardHealthy(1));
    EXPECT_TRUE(router.shardHealthy(0));
}

TEST_F(ShardFleetTest, EpochHotSwapUnderLoadGivesZeroWrongAnswers)
{
    // Second generation: same tree plus one extra is-a/includes pair
    // rewired as identical content — use the same KB so answers stay
    // comparable, but a *distinct file* so the swap is observable.
    TempPath gen2("fleet_gen2.kbimg");
    {
        serve::ServeConfig scfg = shardServeConfig();
        KbImage image(net_, scfg.machine);
        saveKbImageFile(net_, image, scfg.machine.partition,
                        gen2.path());
    }

    TempPath sock0("swap0.sock"), sock1("swap1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;
    const std::uint64_t epoch_before = router.epoch();

    RelationType inc = net_.relationId("includes");
    Program prog = countQuery(0, inc);
    RunResult ref = reference(prog);

    // Load from a submitter thread while the main thread swaps: the
    // barrier must hold every request to one side of the flip.
    std::atomic<int> ok{0}, wrong{0}, failed{0};
    std::atomic<bool> stop{false};
    std::thread submitter([&] {
        while (!stop.load()) {
            shard::RouterRequest req;
            req.prog = prog;
            router.submit(
                std::move(req),
                [&](shard::ResponseFrame &&resp) {
                    if (resp.status != serve::RequestStatus::Ok) {
                        ++failed;
                    } else if (resp.results.size() == 1 &&
                               resp.results[0].nodes.size() ==
                                   ref.results[0].nodes.size()) {
                        ++ok;
                    } else {
                        ++wrong;
                    }
                });
        }
    });

    // Let traffic build, then flip the epoch twice under load.
    while (ok.load() < 4)
        std::this_thread::yield();
    std::string err;
    ASSERT_TRUE(router.swapEpoch(gen2.path(), err)) << err;
    EXPECT_EQ(router.epoch(), epoch_before + 1);
    ASSERT_TRUE(router.swapEpoch(image_file_->path(), err)) << err;
    EXPECT_EQ(router.epoch(), epoch_before + 2);

    stop = true;
    submitter.join();
    router.drain();

    EXPECT_EQ(wrong.load(), 0) << "a request straddled the flip";
    EXPECT_EQ(failed.load(), 0) << "the barrier dropped a request";
    EXPECT_GT(ok.load(), 4);

    // A corrupt next generation is refused and serving continues.
    TempPath bad("fleet_bad.kbimg");
    {
        std::string bytes;
        {
            std::ifstream is(image_file_->path(), std::ios::binary);
            std::ostringstream buf;
            buf << is.rdbuf();
            bytes = buf.str();
        }
        bytes[bytes.size() / 2] ^= 0x20;
        std::ofstream os(bad.path(), std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_FALSE(router.swapEpoch(bad.path(), err));
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;
    EXPECT_EQ(router.epoch(), epoch_before + 2)
        << "a refused swap must not advance the epoch";

    std::atomic<int> after_ok{0};
    shard::RouterRequest req;
    req.prog = prog;
    router.submit(std::move(req),
                  [&](shard::ResponseFrame &&resp) {
                      if (resp.status == serve::RequestStatus::Ok)
                          ++after_ok;
                  });
    router.drain();
    EXPECT_EQ(after_ok.load(), 1)
        << "the old image must keep serving after a refused swap";
}

} // namespace
} // namespace snap
