/**
 * @file
 * Tests for the snapshard subsystem: consistent-hash ring placement,
 * wire-protocol codecs (including malformed-frame rejection — frames
 * cross a trust boundary), and an in-process router + shard-server
 * fleet over unix sockets: bit-identical answers vs a direct
 * ServeEngine, stateless failover when a shard dies, and the
 * epoch-based KB hot-swap under live traffic.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/kb_image_io.hh"
#include "arch/machine.hh"
#include "fault/fleet_fault.hh"
#include "runtime/marker_store.hh"
#include "serve/engine.hh"
#include "shard/endpoint.hh"
#include "shard/hash_ring.hh"
#include "shard/protocol.hh"
#include "shard/router.hh"
#include "shard/shard_server.hh"
#include "shard/wire_format.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

using shard::FrameType;
using shard::HashRing;
using shard::IoErrorKind;
using shard::ShardRouter;
using shard::ShardServer;
using shard::WireReader;
using shard::WireWriter;

// --- hash ring ----------------------------------------------------------

TEST(HashRing, CoversAllShardsRoughlyEvenly)
{
    constexpr std::uint32_t kShards = 4;
    constexpr std::uint64_t kKeys = 20000;
    HashRing ring(kShards, 64);
    std::vector<std::uint64_t> hits(kShards, 0);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        std::uint32_t s = ring.owner(k * 0x9e3779b97f4a7c15ull + 3);
        ASSERT_LT(s, kShards);
        ++hits[s];
    }
    for (std::uint32_t s = 0; s < kShards; ++s) {
        EXPECT_GT(hits[s], kKeys / kShards / 2)
            << "shard " << s << " starves";
        EXPECT_LT(hits[s], kKeys * 2 / kShards)
            << "shard " << s << " hoards";
    }
}

TEST(HashRing, PlacementIsDeterministic)
{
    HashRing a(3, 64), b(3, 64);
    for (std::uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(HashRing, SkippingMovesOnlyOrphanedKeys)
{
    constexpr std::uint32_t kShards = 4;
    HashRing ring(kShards, 64);
    std::vector<bool> down(kShards, false);
    down[2] = true;
    for (std::uint64_t k = 0; k < 5000; ++k) {
        std::uint32_t home = ring.owner(k);
        std::uint32_t live = ring.ownerSkipping(k, down);
        EXPECT_NE(live, 2u);
        if (home != 2)
            EXPECT_EQ(live, home)
                << "healthy placements must not move";
    }
    // All shards down: the walk gives up and returns the home shard.
    std::vector<bool> all(kShards, true);
    EXPECT_EQ(ring.ownerSkipping(42, all), ring.owner(42));
}

TEST(HashRing, OwnersAreDistinctAndLedByTheOwner)
{
    constexpr std::uint32_t kShards = 4;
    HashRing ring(kShards, 64);
    for (std::uint64_t k = 0; k < 2000; ++k) {
        std::vector<std::uint32_t> two = ring.owners(k, 2);
        ASSERT_EQ(two.size(), 2u);
        EXPECT_EQ(two[0], ring.owner(k))
            << "owners[0] must be the primary";
        EXPECT_NE(two[0], two[1])
            << "a replica set must not repeat a shard";
        std::vector<std::uint32_t> one = ring.owners(k, 1);
        ASSERT_EQ(one.size(), 1u);
        EXPECT_EQ(one[0], ring.owner(k));
    }
    // Asking for more replicas than shards exist clamps to the fleet.
    std::vector<std::uint32_t> all = ring.owners(42, kShards + 3);
    EXPECT_EQ(all.size(), kShards);
    std::vector<bool> seen(kShards, false);
    for (std::uint32_t s : all) {
        ASSERT_LT(s, kShards);
        EXPECT_FALSE(seen[s]);
        seen[s] = true;
    }
}

// --- wire codecs --------------------------------------------------------

Program
countQuery(NodeId start, RelationType rel)
{
    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(rel));
    prog.append(Instruction::searchNode(start, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));
    return prog;
}

TEST(ShardProtocol, RequestRoundTripPreservesTheProgram)
{
    shard::RequestFrame in;
    in.id = 0x1122334455667788ull;
    in.sessionId = "alice";
    in.timeoutMs = 125.5;
    in.rngSeed = 99;
    in.prog = countQuery(7, 2);

    WireWriter w;
    shard::encodeRequest(w, in);
    WireReader r(w.bytes().data(), w.bytes().size());
    shard::RequestFrame out;
    ASSERT_TRUE(shard::decodeRequest(r, out));
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.sessionId, in.sessionId);
    EXPECT_DOUBLE_EQ(out.timeoutMs, in.timeoutMs);
    EXPECT_EQ(out.rngSeed, in.rngSeed);
    EXPECT_EQ(out.prog.contentHash(), in.prog.contentHash());
}

TEST(ShardProtocol, ResponseRoundTripPreservesResults)
{
    shard::ResponseFrame in;
    in.id = 42;
    in.status = serve::RequestStatus::Ok;
    in.wallTicks = 12345;
    in.rngSeed = 7;
    in.queueMs = 0.25;
    in.serviceMs = 3.5;
    in.worker = 2;
    in.batchLanes = 4;
    in.retries = 1;
    in.faultDetected = true;
    CollectResult res;
    res.op = Opcode::CollectMarker;
    res.marker = 1;
    res.nodes.push_back(CollectedNode{11, 2.5f, 3});
    res.nodes.push_back(CollectedNode{12, 0.0f, invalidNode});
    res.links.push_back(CollectedLink{1, 2, 3, 0.75f});
    in.results.push_back(res);

    WireWriter w;
    shard::encodeResponse(w, in);
    WireReader r(w.bytes().data(), w.bytes().size());
    shard::ResponseFrame out;
    ASSERT_TRUE(shard::decodeResponse(r, out));
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.wallTicks, in.wallTicks);
    EXPECT_EQ(out.batchLanes, in.batchLanes);
    EXPECT_TRUE(out.faultDetected);
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_EQ(out.results[0].nodes, in.results[0].nodes);
    EXPECT_EQ(out.results[0].links, in.results[0].links);
}

TEST(ShardProtocol, MalformedBytesAreTypedRejections)
{
    shard::RequestFrame in;
    in.prog = countQuery(0, 0);
    WireWriter w;
    shard::encodeRequest(w, in);

    // Every strict prefix must fail the decode, never crash.
    const auto &bytes = w.bytes();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        WireReader r(bytes.data(), cut);
        shard::RequestFrame out;
        EXPECT_FALSE(shard::decodeRequest(r, out))
            << "prefix of " << cut << " bytes decoded";
    }

    // Trailing garbage is also a rejection (done() is strict).
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0xee);
    WireReader r(padded.data(), padded.size());
    shard::RequestFrame out;
    EXPECT_FALSE(shard::decodeRequest(r, out));

    // Control-frame codecs round-trip.
    shard::PrepareFrame prep;
    prep.epoch = 9;
    prep.imagePath = "/tmp/gen9.kbimg";
    WireWriter pw;
    shard::encodePrepare(pw, prep);
    WireReader pr(pw.bytes().data(), pw.bytes().size());
    shard::PrepareFrame pout;
    ASSERT_TRUE(shard::decodePrepare(pr, pout));
    EXPECT_EQ(pout.epoch, 9u);
    EXPECT_EQ(pout.imagePath, prep.imagePath);

    shard::PrepareAckFrame ack;
    ack.epoch = 9;
    ack.ok = false;
    ack.detail = "checksum-mismatch: section 5";
    WireWriter aw;
    shard::encodePrepareAck(aw, ack);
    WireReader ar(aw.bytes().data(), aw.bytes().size());
    shard::PrepareAckFrame aout;
    ASSERT_TRUE(shard::decodePrepareAck(ar, aout));
    EXPECT_FALSE(aout.ok);
    EXPECT_EQ(aout.detail, ack.detail);
}

/** Encode a representative response with real result content. */
std::vector<std::uint8_t>
encodedResponseBytes(shard::ResponseFrame *orig = nullptr)
{
    shard::ResponseFrame in;
    in.id = 77;
    in.status = serve::RequestStatus::Ok;
    in.wallTicks = 4242;
    in.rngSeed = 13;
    in.serviceMs = 1.5;
    in.batchLanes = 2;
    CollectResult res;
    res.op = Opcode::CollectMarker;
    res.marker = 1;
    res.nodes.push_back(CollectedNode{3, 1.0f, 5});
    res.nodes.push_back(CollectedNode{9, 0.5f, invalidNode});
    in.results.push_back(res);
    if (orig)
        *orig = in;
    WireWriter w;
    shard::encodeResponse(w, in);
    return w.bytes();
}

/** Run a decoder over every strict prefix of @p bytes; each must be
 *  a clean rejection.  Offsets in @p allow are expected to decode
 *  (version-tolerant tails). */
template <typename Decode>
void
expectEveryTruncationRejected(const std::vector<std::uint8_t> &bytes,
                              Decode decode, const char *what,
                              std::size_t allow = SIZE_MAX)
{
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const bool ok = decode(bytes.data(), cut);
        if (cut == allow)
            EXPECT_TRUE(ok) << what << ": tolerant tail at " << cut;
        else
            EXPECT_FALSE(ok)
                << what << ": prefix of " << cut << " bytes decoded";
    }
}

TEST(ShardProtocol, TruncationAtEveryOffsetIsRejected)
{
    // Request.
    shard::RequestFrame req;
    req.sessionId = "sess-fuzz";
    req.prog = countQuery(3, 1);
    WireWriter rw;
    shard::encodeRequest(rw, req);
    expectEveryTruncationRejected(
        rw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::RequestFrame out;
            return shard::decodeRequest(r, out);
        },
        "request");

    // Response: the only survivable cut is the v1 tail (a payload
    // missing exactly its trailing 8 checksum bytes — an old peer).
    std::vector<std::uint8_t> resp = encodedResponseBytes();
    expectEveryTruncationRejected(
        resp,
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::ResponseFrame out;
            return shard::decodeResponse(r, out);
        },
        "response", resp.size() - 8);

    // HelloAck: the v2 tail (payload missing exactly its trailing
    // 8 traceClockNs bytes — an old peer) is the only survivable
    // cut.
    WireWriter hw;
    shard::encodeHelloAck(hw, shard::HelloAckFrame{});
    expectEveryTruncationRejected(
        hw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::HelloAckFrame out;
            return shard::decodeHelloAck(r, out);
        },
        "hello-ack", hw.bytes().size() - 8);

    // PrepareAck (carries a string).
    shard::PrepareAckFrame pack;
    pack.epoch = 3;
    pack.detail = "kbimg: checksum mismatch";
    WireWriter pw;
    shard::encodePrepareAck(pw, pack);
    expectEveryTruncationRejected(
        pw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::PrepareAckFrame out;
            return shard::decodePrepareAck(r, out);
        },
        "prepare-ack");

    // Session checkpoint frames (sparse marker codec inside).
    constexpr std::uint32_t kNodes = 64;
    MarkerStore marks(kNodes);
    marks.setBit(1, 3);
    marks.setBit(1, 17);
    marks.set(2, 40, 2.5f, 3);
    shard::SessionStateFrame st;
    st.sessionId = "sess-fuzz";
    st.found = true;
    st.numNodes = kNodes;
    st.markers = marks;
    WireWriter sw;
    shard::encodeSessionState(sw, st);
    expectEveryTruncationRejected(
        sw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::SessionStateFrame out;
            return shard::decodeSessionState(r, kNodes, out);
        },
        "session-state");

    shard::SessionPushFrame push;
    push.sessionId = "sess-fuzz";
    push.numNodes = kNodes;
    push.markers = marks;
    WireWriter uw;
    shard::encodeSessionPush(uw, push);
    expectEveryTruncationRejected(
        uw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::SessionPushFrame out;
            return shard::decodeSessionPush(r, kNodes, out);
        },
        "session-push");
}

TEST(ShardProtocol, TraceContextRoundTripsAndToleratesV2Peers)
{
    // Sampled request: the 17-byte trace tail rides along.
    shard::RequestFrame in;
    in.id = 5;
    in.sessionId = "traced";
    in.prog = countQuery(1, 0);
    in.traceId = 0xabcdef0123456789ull;
    in.traceParent = 0x1111222233334444ull;
    in.traceFlags = 1;
    WireWriter w;
    shard::encodeRequest(w, in);
    {
        WireReader r(w.bytes().data(), w.bytes().size());
        shard::RequestFrame out;
        ASSERT_TRUE(shard::decodeRequest(r, out));
        EXPECT_EQ(out.traceId, in.traceId);
        EXPECT_EQ(out.traceParent, in.traceParent);
        EXPECT_EQ(out.traceFlags, 1u);
    }

    // Every-byte-offset fuzz over the traced encoding: only the
    // v2-peer cut (payload without the 17-byte trace tail) decodes,
    // and it must come back with a zeroed context.
    expectEveryTruncationRejected(
        w.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::RequestFrame out;
            return shard::decodeRequest(r, out);
        },
        "traced-request", w.bytes().size() - 17);
    {
        WireReader r(w.bytes().data(), w.bytes().size() - 17);
        shard::RequestFrame out;
        ASSERT_TRUE(shard::decodeRequest(r, out));
        EXPECT_EQ(out.traceId, 0u);
        EXPECT_EQ(out.traceParent, 0u);
        EXPECT_EQ(out.traceFlags, 0u);
        EXPECT_EQ(out.sessionId, in.sessionId);
    }

    // Unsampled requests must not grow a tail at all: trace-off
    // bytes are byte-identical to a v2 encoding of the same frame.
    shard::RequestFrame off = in;
    off.traceId = 0;
    off.traceParent = 0;
    off.traceFlags = 0;
    WireWriter ow;
    shard::encodeRequest(ow, off);
    EXPECT_EQ(ow.bytes().size(), w.bytes().size() - 17);

    // A tail whose flags byte says "not sampled" is malformed (the
    // encoder never emits it), not silently accepted.
    std::vector<std::uint8_t> forged = w.bytes();
    forged[forged.size() - 1] = 0;
    WireReader fr(forged.data(), forged.size());
    shard::RequestFrame fout;
    EXPECT_FALSE(shard::decodeRequest(fr, fout));

    // HelloAck v3 tail round-trips; a v2-length payload decodes
    // with traceClockNs == 0.
    shard::HelloAckFrame hello;
    hello.fingerprint = 0xfeed;
    hello.epoch = 4;
    hello.traceClockNs = 123456789;
    WireWriter hw;
    shard::encodeHelloAck(hw, hello);
    {
        WireReader r(hw.bytes().data(), hw.bytes().size());
        shard::HelloAckFrame out;
        ASSERT_TRUE(shard::decodeHelloAck(r, out));
        EXPECT_EQ(out.traceClockNs, 123456789u);
    }
    {
        WireReader r(hw.bytes().data(), hw.bytes().size() - 8);
        shard::HelloAckFrame out;
        ASSERT_TRUE(shard::decodeHelloAck(r, out));
        EXPECT_EQ(out.traceClockNs, 0u);
        EXPECT_EQ(out.epoch, 4u);
    }
}

TEST(ShardProtocol, StatsFramesRoundTripAndRejectTruncation)
{
    shard::StatsPullFrame pull;
    pull.nonce = 0x0102030405060708ull;
    WireWriter pw;
    shard::encodeStatsPull(pw, pull);
    {
        WireReader r(pw.bytes().data(), pw.bytes().size());
        shard::StatsPullFrame out;
        ASSERT_TRUE(shard::decodeStatsPull(r, out));
        EXPECT_EQ(out.nonce, pull.nonce);
    }
    expectEveryTruncationRejected(
        pw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::StatsPullFrame out;
            return shard::decodeStatsPull(r, out);
        },
        "stats-pull");

    // Snapshot with labelled + unlabelled samples.
    shard::StatsSnapshotFrame snap;
    snap.nonce = 99;
    MetricsRegistry reg;
    reg.counter("snap_requests_total", 41.0, "served requests");
    reg.add("snap_log_emitted_total", MetricsRegistry::Kind::Counter,
            7.0, "log lines", {{"level", "warn"}});
    reg.gauge("snap_queue_depth", 3.0, "queued work");
    snap.samples = reg.samples();
    WireWriter sw;
    shard::encodeStatsSnapshot(sw, snap);
    {
        WireReader r(sw.bytes().data(), sw.bytes().size());
        shard::StatsSnapshotFrame out;
        ASSERT_TRUE(shard::decodeStatsSnapshot(r, out));
        EXPECT_EQ(out.nonce, 99u);
        ASSERT_EQ(out.samples.size(), snap.samples.size());
        for (std::size_t i = 0; i < out.samples.size(); ++i) {
            EXPECT_EQ(out.samples[i].name, snap.samples[i].name);
            EXPECT_EQ(out.samples[i].help, snap.samples[i].help);
            EXPECT_EQ(static_cast<int>(out.samples[i].kind),
                      static_cast<int>(snap.samples[i].kind));
            EXPECT_EQ(out.samples[i].labels,
                      snap.samples[i].labels);
            EXPECT_DOUBLE_EQ(out.samples[i].value,
                             snap.samples[i].value);
        }
    }
    expectEveryTruncationRejected(
        sw.bytes(),
        [](const std::uint8_t *d, std::size_t n) {
            WireReader r(d, n);
            shard::StatsSnapshotFrame out;
            return shard::decodeStatsSnapshot(r, out);
        },
        "stats-snapshot");

    // A forged sample count far beyond the payload is a clean
    // rejection, not an allocation bomb.
    WireWriter bw;
    bw.u64(7);          // nonce
    bw.u32(0xffffff);   // claimed sample count
    WireReader br(bw.bytes().data(), bw.bytes().size());
    shard::StatsSnapshotFrame bout;
    EXPECT_FALSE(shard::decodeStatsSnapshot(br, bout));
}

TEST(ShardProtocol, SessionFramesRoundTripTheMarkerState)
{
    constexpr std::uint32_t kNodes = 128;
    MarkerStore marks(kNodes);
    marks.setBit(1, 0);
    marks.setBit(1, 127);
    marks.set(3, 64, -1.5f, 12);

    shard::SessionPullFrame pull;
    pull.sessionId = "alice";
    WireWriter w1;
    shard::encodeSessionPull(w1, pull);
    WireReader r1(w1.bytes().data(), w1.bytes().size());
    shard::SessionPullFrame pull_out;
    ASSERT_TRUE(shard::decodeSessionPull(r1, pull_out));
    EXPECT_EQ(pull_out.sessionId, "alice");

    shard::SessionStateFrame st;
    st.sessionId = "alice";
    st.found = true;
    st.numNodes = kNodes;
    st.markers = marks;
    WireWriter w2;
    shard::encodeSessionState(w2, st);
    WireReader r2(w2.bytes().data(), w2.bytes().size());
    shard::SessionStateFrame st_out;
    ASSERT_TRUE(shard::decodeSessionState(r2, kNodes, st_out));
    EXPECT_TRUE(st_out.found);
    for (NodeId n = 0; n < kNodes; ++n) {
        EXPECT_EQ(st_out.markers.test(1, n), marks.test(1, n));
        EXPECT_EQ(st_out.markers.test(3, n), marks.test(3, n));
    }
    EXPECT_FLOAT_EQ(st_out.markers.value(3, 64), -1.5f);
    EXPECT_EQ(st_out.markers.origin(3, 64), 12u);

    // A checkpoint for a *different* node count must be rejected —
    // the session codecs are keyed to one KB generation's size.
    WireReader r3(w2.bytes().data(), w2.bytes().size());
    shard::SessionStateFrame wrong;
    EXPECT_FALSE(shard::decodeSessionState(r3, kNodes + 1, wrong));

    shard::SessionPushAckFrame ack;
    ack.sessionId = "alice";
    ack.ok = false;
    ack.detail = "node-count mismatch";
    WireWriter w4;
    shard::encodeSessionPushAck(w4, ack);
    WireReader r4(w4.bytes().data(), w4.bytes().size());
    shard::SessionPushAckFrame ack_out;
    ASSERT_TRUE(shard::decodeSessionPushAck(r4, ack_out));
    EXPECT_FALSE(ack_out.ok);
    EXPECT_EQ(ack_out.detail, ack.detail);
}

TEST(ShardProtocol, ResponseChecksumCatchesEveryByteFlip)
{
    shard::ResponseFrame orig;
    std::vector<std::uint8_t> bytes = encodedResponseBytes(&orig);

    // Flip every byte in turn: a corrupt-but-well-framed response
    // must never decode.  (The trailing 8 bytes are the checksum
    // itself; flipping those must fail too.)
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::uint8_t> bad = bytes;
        bad[i] ^= 0x40;
        WireReader r(bad.data(), bad.size());
        shard::ResponseFrame out;
        EXPECT_FALSE(shard::decodeResponse(r, out))
            << "flip at byte " << i << " decoded";
    }

    // Version tolerance: a v1 peer sends the same payload without
    // the trailing checksum; that must still decode and match.
    std::vector<std::uint8_t> v1(bytes.begin(), bytes.end() - 8);
    WireReader r(v1.data(), v1.size());
    shard::ResponseFrame out;
    ASSERT_TRUE(shard::decodeResponse(r, out));
    EXPECT_EQ(out.id, orig.id);
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_EQ(out.results[0].nodes, orig.results[0].nodes);
}

// --- typed endpoint errors ----------------------------------------------

TEST(ShardEndpoint, TypedErrorsDistinguishFailureModes)
{
    // Refused: nobody is (or will be) listening on this path.
    shard::Endpoint dead;
    std::string detail;
    ASSERT_TRUE(shard::parseEndpoint(
        "unix:" + std::string(::testing::TempDir()) +
            "no-such-shard.sock",
        dead, detail))
        << detail;
    IoErrorKind kind = IoErrorKind::None;
    EXPECT_EQ(shard::connectEndpoint(dead, 50.0, detail, kind), -1);
    EXPECT_EQ(kind, IoErrorKind::Refused) << detail;

    // Closed: clean EOF at a frame boundary.
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    ::close(sp[1]);
    FrameType type;
    std::vector<std::uint8_t> payload;
    kind = IoErrorKind::None;
    EXPECT_FALSE(shard::readFrame(sp[0], type, payload, detail, kind));
    EXPECT_EQ(kind, IoErrorKind::Closed) << detail;
    ::close(sp[0]);

    // MidFrameEof: the peer died inside a frame.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    std::vector<std::uint8_t> body(64, 0xab);
    ASSERT_TRUE(shard::writeFrameTruncated(sp[1], FrameType::Request,
                                           body, body.size() / 2));
    ::close(sp[1]);
    kind = IoErrorKind::None;
    EXPECT_FALSE(shard::readFrame(sp[0], type, payload, detail, kind));
    EXPECT_EQ(kind, IoErrorKind::MidFrameEof) << detail;
    ::close(sp[0]);

    // OverCap: a length prefix past maxFramePayload must be refused
    // before any allocation.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    const std::uint32_t huge = shard::maxFramePayload + 1;
    std::uint8_t head[5];
    for (int i = 0; i < 4; ++i)
        head[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    head[4] = static_cast<std::uint8_t>(FrameType::Request);
    ASSERT_EQ(::write(sp[1], head, sizeof(head)),
              static_cast<ssize_t>(sizeof(head)));
    kind = IoErrorKind::None;
    EXPECT_FALSE(shard::readFrame(sp[0], type, payload, detail, kind));
    EXPECT_EQ(kind, IoErrorKind::OverCap) << detail;
    ::close(sp[0]);
    ::close(sp[1]);

    // BadType: a frame type outside the protocol range.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    std::uint8_t bad_head[5] = {
        0, 0, 0, 0,
        static_cast<std::uint8_t>(shard::maxFrameType + 1)};
    ASSERT_EQ(::write(sp[1], bad_head, sizeof(bad_head)),
              static_cast<ssize_t>(sizeof(bad_head)));
    kind = IoErrorKind::None;
    EXPECT_FALSE(shard::readFrame(sp[0], type, payload, detail, kind));
    EXPECT_EQ(kind, IoErrorKind::BadType) << detail;
    ::close(sp[0]);
    ::close(sp[1]);
}

// --- fleet fault plans ---------------------------------------------------

TEST(FleetFault, StreamsAreDeterministicAndIndependent)
{
    FleetFaultSpec spec;
    spec.seed = 0xfee1;
    spec.connDropRate = 0.3;
    spec.truncateRate = 0.2;
    spec.corruptRate = 0.1;
    spec.delayRate = 0.4;
    ASSERT_TRUE(spec.any());
    spec.validate();

    // Two plans from the same spec roll identical per-kind streams.
    FleetFaultPlan a(spec), b(spec);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(a.rollConnDrop(), b.rollConnDrop());
        EXPECT_EQ(a.rollTruncate(), b.rollTruncate());
        EXPECT_EQ(a.rollCorrupt(), b.rollCorrupt());
        EXPECT_EQ(a.rollDelay(), b.rollDelay());
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_EQ(a.connDrops() + a.truncates() + a.corrupts() +
                  a.delays(),
              a.injected());
    // Rates are honored to within loose bounds (they are salted
    // splitmix64 streams, not shared draws).
    EXPECT_GT(a.connDrops(), 2000 * 0.3 / 2);
    EXPECT_LT(a.connDrops(), 2000 * 0.3 * 2);
    EXPECT_GT(a.delays(), 2000 * 0.4 / 2);

    // A different seed must give a different schedule.
    FleetFaultSpec other = spec;
    other.seed = 0xfee2;
    FleetFaultPlan c(other);
    int diverged = 0;
    FleetFaultPlan a2(spec);
    for (int i = 0; i < 2000; ++i)
        diverged += a2.rollConnDrop() != c.rollConnDrop();
    EXPECT_GT(diverged, 0);
}

TEST(FleetFault, SpecSerializesAndSplitsTheAggregateRate)
{
    FleetFaultSpec spec;
    spec.seed = 99;
    spec.connDropRate = 0.01;
    spec.truncateRate = 0.02;
    spec.corruptRate = 0.03;
    spec.delayRate = 0.04;
    spec.delayMs = 75.0;

    FleetFaultSpec back;
    ASSERT_TRUE(FleetFaultSpec::fromJson(spec.toJson(), back))
        << spec.toJson();
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_DOUBLE_EQ(back.connDropRate, spec.connDropRate);
    EXPECT_DOUBLE_EQ(back.truncateRate, spec.truncateRate);
    EXPECT_DOUBLE_EQ(back.corruptRate, spec.corruptRate);
    EXPECT_DOUBLE_EQ(back.delayRate, spec.delayRate);
    EXPECT_DOUBLE_EQ(back.delayMs, spec.delayMs);

    EXPECT_FALSE(FleetFaultSpec::fromJson("not json at all", back));

    // --fleet-fault-rate sugar: the aggregate splits evenly.
    FleetFaultSpec w = FleetFaultSpec::wireFaults(7, 0.2);
    EXPECT_EQ(w.seed, 7u);
    EXPECT_DOUBLE_EQ(w.connDropRate, 0.05);
    EXPECT_DOUBLE_EQ(w.truncateRate, 0.05);
    EXPECT_DOUBLE_EQ(w.corruptRate, 0.05);
    EXPECT_DOUBLE_EQ(w.delayRate, 0.05);
    EXPECT_TRUE(w.any());
    EXPECT_FALSE(FleetFaultSpec{}.any());
}

// --- in-process sharded serving ----------------------------------------

/** Self-cleaning temp path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

serve::ServeConfig
shardServeConfig()
{
    serve::ServeConfig cfg;
    cfg.numWorkers = 2;
    cfg.machine.numClusters = 8;
    cfg.machine.perfNetEnabled = false;
    return cfg;
}

/** A running in-process shard: server + its accept-loop thread. */
struct TestShard
{
    std::unique_ptr<ShardServer> server;
    std::thread runner;

    TestShard(const std::string &image_path,
              const std::string &listen,
              const FleetFaultSpec &faults = FleetFaultSpec{})
    {
        KbImageFile kb;
        std::string detail;
        EXPECT_EQ(loadKbImageFile(image_path, kb, detail),
                  KbImgStatus::Ok)
            << detail;
        shard::ShardServerConfig cfg;
        cfg.listen = listen;
        cfg.serve = shardServeConfig();
        cfg.fleetFaults = faults;
        server = std::make_unique<ShardServer>(std::move(kb), cfg);
        EXPECT_TRUE(server->bind(detail)) << detail;
        runner = std::thread([this] { server->run(); });
    }

    ~TestShard()
    {
        server->stop();
        runner.join();
    }
};

class ShardFleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        net_ = makeTreeKb(300, 4);
        serve::ServeConfig scfg = shardServeConfig();
        KbImage image(net_, scfg.machine);
        image_file_ = std::make_unique<TempPath>("fleet.kbimg");
        saveKbImageFile(net_, image, scfg.machine.partition,
                        image_file_->path());
    }

    /** Expected answer for @p prog from a solo machine. */
    RunResult
    reference(const Program &prog)
    {
        serve::ServeConfig scfg = shardServeConfig();
        SnapMachine direct(scfg.machine);
        direct.loadKb(net_);
        return direct.run(prog);
    }

    SemanticNetwork net_;
    std::unique_ptr<TempPath> image_file_;
};

TEST_F(ShardFleetTest, RouterAnswersMatchDirectExecution)
{
    TempPath sock0("fleet0.sock"), sock1("fleet1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;
    EXPECT_EQ(router.numShards(), 2u);
    EXPECT_NE(router.fingerprint(), 0u);
    for (std::uint32_t s = 0; s < 2; ++s) {
        std::string err;
        EXPECT_TRUE(router.probeShard(s, err)) << err;
        EXPECT_TRUE(router.shardHealthy(s));
    }

    RelationType inc = net_.relationId("includes");
    RelationType isa = net_.relationId("is-a");
    std::vector<Program> mix;
    for (NodeId n = 0; n < 12; ++n)
        mix.push_back(countQuery(n * 37 % 300, n % 2 ? inc : isa));

    std::vector<shard::ResponseFrame> got(mix.size());
    std::mutex mu;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        shard::RouterRequest req;
        req.prog = mix[i];
        router.submit(std::move(req),
                      [&, i](shard::ResponseFrame &&resp) {
                          std::lock_guard<std::mutex> lock(mu);
                          got[i] = std::move(resp);
                      });
    }
    router.drain();

    for (std::size_t i = 0; i < mix.size(); ++i) {
        ASSERT_EQ(got[i].status, serve::RequestStatus::Ok)
            << "request " << i;
        RunResult ref = reference(mix[i]);
        test::expectSameResults(got[i].results, ref.results);
        EXPECT_EQ(got[i].wallTicks, ref.wallTicks)
            << "request " << i;
    }
}

TEST_F(ShardFleetTest, TracedAnswersMatchAndFleetStatsAggregate)
{
    TempPath sock0("tracefleet0.sock"), sock1("tracefleet1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    rcfg.traceSample = 1.0;   // stamp every request's context
    rcfg.slowQueryMs = 0.0;   // log every query as "slow"
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    RelationType inc = net_.relationId("includes");
    std::vector<Program> mix;
    for (NodeId n = 0; n < 8; ++n)
        mix.push_back(countQuery(n * 41 % 300, inc));

    std::vector<shard::ResponseFrame> got(mix.size());
    std::mutex mu;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        shard::RouterRequest req;
        req.prog = mix[i];
        router.submit(std::move(req),
                      [&, i](shard::ResponseFrame &&resp) {
                          std::lock_guard<std::mutex> lock(mu);
                          got[i] = std::move(resp);
                      });
    }
    router.drain();

    // Trace context on the wire must not perturb the answers.
    for (std::size_t i = 0; i < mix.size(); ++i) {
        ASSERT_EQ(got[i].status, serve::RequestStatus::Ok)
            << "request " << i;
        RunResult ref = reference(mix[i]);
        test::expectSameResults(got[i].results, ref.results);
        EXPECT_EQ(got[i].wallTicks, ref.wallTicks);
    }

    // Every query cleared the 0ms slow threshold and logged its
    // per-hop path.
    auto slow = router.slowQueries();
    ASSERT_EQ(slow.size(), mix.size());
    for (const auto &q : slow) {
        EXPECT_NE(q.traceId, 0u);
        ASSERT_GE(q.hops.size(), 1u);
        EXPECT_STREQ(q.hops[0].kind, "primary");
        EXPECT_NE(q.hops[0].spanId, 0u);
        EXPECT_EQ(q.winner, q.hops.back().shard);
        EXPECT_FALSE(q.hedged);
        EXPECT_GE(q.totalMs, 0.0);
    }

    // On-demand stats pull: each shard answers with its engine +
    // logger registry snapshot.
    for (std::uint32_t s = 0; s < 2; ++s) {
        shard::StatsSnapshotFrame snap;
        std::string err;
        ASSERT_TRUE(router.pullShardStats(s, snap, err)) << err;
        EXPECT_FALSE(snap.samples.empty());
        bool saw_engine = false, saw_logger = false;
        for (const auto &smp : snap.samples) {
            if (smp.name.rfind("snap_serve_", 0) == 0)
                saw_engine = true;
            if (smp.name == "snap_log_emitted_total")
                saw_logger = true;
        }
        EXPECT_TRUE(saw_engine) << "shard " << s;
        EXPECT_TRUE(saw_logger) << "shard " << s;
    }

    // The aggregated fleet view carries router counters plus the
    // cached shard samples re-labelled per shard.
    MetricsRegistry reg;
    router.exportFleetMetrics(reg);
    double shards_up = -1.0;
    bool saw_shard0 = false, saw_shard1 = false, slow_total = false;
    for (const auto &smp : reg.samples()) {
        if (smp.name == "snap_router_shards_up")
            shards_up = smp.value;
        if (smp.name == "snap_router_slow_queries_total") {
            slow_total = true;
            EXPECT_DOUBLE_EQ(smp.value,
                             static_cast<double>(mix.size()));
        }
        for (const auto &lab : smp.labels) {
            if (lab.first == "shard") {
                if (lab.second == "0")
                    saw_shard0 = true;
                if (lab.second == "1")
                    saw_shard1 = true;
            }
        }
    }
    EXPECT_DOUBLE_EQ(shards_up, 2.0);
    EXPECT_TRUE(slow_total);
    EXPECT_TRUE(saw_shard0);
    EXPECT_TRUE(saw_shard1);

    // Clock offsets were exchanged in the handshake (both shards
    // share this process's clock, so the offset is tiny but real).
    for (std::uint32_t s = 0; s < 2; ++s) {
        const std::int64_t off = router.shardClockOffsetNs(s);
        const std::int64_t minute = 60ll * 1000 * 1000 * 1000;
        EXPECT_GT(off, -minute);
        EXPECT_LT(off, minute);
    }
}

TEST_F(ShardFleetTest, SessionsSurviveAndStayOrdered)
{
    TempPath sock0("sess0.sock"), sock1("sess1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    // Several sessions, several requests each; a session's repeated
    // queries all land on its pinned shard and answer Ok.
    RelationType inc = net_.relationId("includes");
    constexpr int kSessions = 4;
    constexpr int kPerSession = 3;
    std::atomic<int> ok{0};
    for (int round = 0; round < kPerSession; ++round) {
        for (int s = 0; s < kSessions; ++s) {
            shard::RouterRequest req;
            req.sessionId = "sess-" + std::to_string(s);
            req.prog = countQuery(static_cast<NodeId>(s), inc);
            router.submit(std::move(req),
                          [&](shard::ResponseFrame &&resp) {
                              if (resp.status ==
                                  serve::RequestStatus::Ok)
                                  ++ok;
                          });
        }
    }
    router.drain();
    EXPECT_EQ(ok.load(), kSessions * kPerSession);
}

TEST_F(ShardFleetTest, StatelessTrafficSurvivesAShardDeath)
{
    TempPath sock0("die0.sock"), sock1("die1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    auto s1 = std::make_unique<TestShard>(image_file_->path(),
                                          "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    // Kill shard 1 outright; the router notices via the dead
    // connection and every stateless request re-routes to shard 0.
    s1.reset();

    RelationType inc = net_.relationId("includes");
    std::atomic<int> ok{0};
    constexpr int kRequests = 16;
    for (int i = 0; i < kRequests; ++i) {
        shard::RouterRequest req;
        req.prog = countQuery(static_cast<NodeId>(i * 17 % 300), inc);
        router.submit(std::move(req),
                      [&](shard::ResponseFrame &&resp) {
                          if (resp.status == serve::RequestStatus::Ok)
                              ++ok;
                      });
    }
    router.drain();
    EXPECT_EQ(ok.load(), kRequests)
        << "stateless traffic must fail over, not fail";
    EXPECT_FALSE(router.shardHealthy(1));
    EXPECT_TRUE(router.shardHealthy(0));
}

TEST_F(ShardFleetTest, EpochHotSwapUnderLoadGivesZeroWrongAnswers)
{
    // Second generation: same tree plus one extra is-a/includes pair
    // rewired as identical content — use the same KB so answers stay
    // comparable, but a *distinct file* so the swap is observable.
    TempPath gen2("fleet_gen2.kbimg");
    {
        serve::ServeConfig scfg = shardServeConfig();
        KbImage image(net_, scfg.machine);
        saveKbImageFile(net_, image, scfg.machine.partition,
                        gen2.path());
    }

    TempPath sock0("swap0.sock"), sock1("swap1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;
    const std::uint64_t epoch_before = router.epoch();

    RelationType inc = net_.relationId("includes");
    Program prog = countQuery(0, inc);
    RunResult ref = reference(prog);

    // Load from a submitter thread while the main thread swaps: the
    // barrier must hold every request to one side of the flip.
    std::atomic<int> ok{0}, wrong{0}, failed{0};
    std::atomic<bool> stop{false};
    std::thread submitter([&] {
        while (!stop.load()) {
            shard::RouterRequest req;
            req.prog = prog;
            router.submit(
                std::move(req),
                [&](shard::ResponseFrame &&resp) {
                    if (resp.status != serve::RequestStatus::Ok) {
                        ++failed;
                    } else if (resp.results.size() == 1 &&
                               resp.results[0].nodes.size() ==
                                   ref.results[0].nodes.size()) {
                        ++ok;
                    } else {
                        ++wrong;
                    }
                });
        }
    });

    // Let traffic build, then flip the epoch twice under load.
    while (ok.load() < 4)
        std::this_thread::yield();
    std::string err;
    ASSERT_TRUE(router.swapEpoch(gen2.path(), err)) << err;
    EXPECT_EQ(router.epoch(), epoch_before + 1);
    ASSERT_TRUE(router.swapEpoch(image_file_->path(), err)) << err;
    EXPECT_EQ(router.epoch(), epoch_before + 2);

    stop = true;
    submitter.join();
    router.drain();

    EXPECT_EQ(wrong.load(), 0) << "a request straddled the flip";
    EXPECT_EQ(failed.load(), 0) << "the barrier dropped a request";
    EXPECT_GT(ok.load(), 4);

    // A corrupt next generation is refused and serving continues.
    TempPath bad("fleet_bad.kbimg");
    {
        std::string bytes;
        {
            std::ifstream is(image_file_->path(), std::ios::binary);
            std::ostringstream buf;
            buf << is.rdbuf();
            bytes = buf.str();
        }
        bytes[bytes.size() / 2] ^= 0x20;
        std::ofstream os(bad.path(), std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_FALSE(router.swapEpoch(bad.path(), err));
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;
    EXPECT_EQ(router.epoch(), epoch_before + 2)
        << "a refused swap must not advance the epoch";

    std::atomic<int> after_ok{0};
    shard::RouterRequest req;
    req.prog = prog;
    router.submit(std::move(req),
                  [&](shard::ResponseFrame &&resp) {
                      if (resp.status == serve::RequestStatus::Ok)
                          ++after_ok;
                  });
    router.drain();
    EXPECT_EQ(after_ok.load(), 1)
        << "the old image must keep serving after a refused swap";
}

// --- failover edges -----------------------------------------------------

/** Submit one request and block for its answer (failed requests
 *  still resolve — the router always invokes the callback). */
shard::ResponseFrame
submitAndWait(ShardRouter &router, shard::RouterRequest req)
{
    auto prom =
        std::make_shared<std::promise<shard::ResponseFrame>>();
    auto fut = prom->get_future();
    router.submit(std::move(req),
                  [prom](shard::ResponseFrame &&resp) {
                      prom->set_value(std::move(resp));
                  });
    return fut.get();
}

/** Stateless queries whose route key (program content hash) lands on
 *  @p shard under @p ring — lets a test aim traffic at the faulted
 *  shard deterministically. */
std::vector<Program>
programsOwnedBy(const HashRing &ring, std::uint32_t shard,
                SemanticNetwork &net, std::size_t count)
{
    RelationType inc = net.relationId("includes");
    RelationType isa = net.relationId("is-a");
    std::vector<Program> out;
    for (NodeId n = 0; out.size() < count && n < 600; ++n) {
        Program p = countQuery(n % 300, n < 300 ? inc : isa);
        if (ring.owner(p.contentHash()) == shard)
            out.push_back(p);
    }
    return out;
}

TEST_F(ShardFleetTest, MidFrameEofFailsOverWithTypedError)
{
    TempPath sock0("mfe0.sock"), sock1("mfe1.sock");
    FleetFaultSpec trunc;
    trunc.seed = 11;
    trunc.truncateRate = 1.0;
    TestShard s0(image_file_->path(), "unix:" + sock0.path(), trunc);
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    rcfg.reconnectMs = 0.0; // a downed shard stays down: assertable
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    HashRing ring(2, rcfg.vnodes);
    std::vector<Program> progs = programsOwnedBy(ring, 0, net_, 4);
    ASSERT_GE(progs.size(), 1u);
    for (const Program &p : progs) {
        shard::RouterRequest req;
        req.prog = p;
        shard::ResponseFrame resp =
            submitAndWait(router, std::move(req));
        ASSERT_EQ(resp.status, serve::RequestStatus::Ok)
            << "a truncating shard must not lose the request";
        test::expectSameResults(resp.results, reference(p).results);
    }
    // Every response shard 0 tried to send died mid-frame: the
    // router must have the typed cause and the shard marked down.
    EXPECT_FALSE(router.shardHealthy(0));
    EXPECT_TRUE(router.shardHealthy(1));
    EXPECT_EQ(router.shardLastError(0), IoErrorKind::MidFrameEof);
    EXPECT_GE(router.rerouteCount(), 1u);
}

TEST_F(ShardFleetTest, ConnectionDropIsACleanCloseAndReroutes)
{
    TempPath sock0("drop0.sock"), sock1("drop1.sock");
    FleetFaultSpec drop;
    drop.seed = 12;
    drop.connDropRate = 1.0;
    TestShard s0(image_file_->path(), "unix:" + sock0.path(), drop);
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    rcfg.reconnectMs = 0.0;
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    HashRing ring(2, rcfg.vnodes);
    std::vector<Program> progs = programsOwnedBy(ring, 0, net_, 4);
    ASSERT_GE(progs.size(), 1u);
    for (const Program &p : progs) {
        shard::RouterRequest req;
        req.prog = p;
        shard::ResponseFrame resp =
            submitAndWait(router, std::move(req));
        ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
        test::expectSameResults(resp.results, reference(p).results);
    }
    EXPECT_FALSE(router.shardHealthy(0));
    EXPECT_EQ(router.shardLastError(0), IoErrorKind::Closed);
    EXPECT_GE(router.rerouteCount(), 1u);
}

TEST_F(ShardFleetTest, ByzantineCorruptionIsNeverServed)
{
    TempPath sock0("byz0.sock"), sock1("byz1.sock");
    FleetFaultSpec corrupt;
    corrupt.seed = 13;
    corrupt.corruptRate = 1.0;
    TestShard s0(image_file_->path(), "unix:" + sock0.path(),
                 corrupt);
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    rcfg.reconnectMs = 0.0;
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    HashRing ring(2, rcfg.vnodes);
    std::vector<Program> progs = programsOwnedBy(ring, 0, net_, 4);
    ASSERT_GE(progs.size(), 1u);
    for (const Program &p : progs) {
        shard::RouterRequest req;
        req.prog = p;
        shard::ResponseFrame resp =
            submitAndWait(router, std::move(req));
        // The flipped-bit response must never reach the caller: the
        // checksum catches it and the clean replica answers.
        ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
        test::expectSameResults(resp.results, reference(p).results);
    }
    EXPECT_GE(router.corruptResponseCount(), 1u);
    EXPECT_FALSE(router.shardHealthy(0))
        << "a corrupting shard is compromised, not trusted again";
}

TEST_F(ShardFleetTest, ConnectRefusedIsTypedAtConnect)
{
    TempPath sock0("ref0.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(),
                   "unix:" + std::string(::testing::TempDir()) +
                       "never-bound.sock"};
    rcfg.connectTimeoutMs = 150.0;
    ShardRouter router(rcfg);
    std::string detail;
    EXPECT_FALSE(router.connect(detail));
    EXPECT_NE(detail.find("shard 1"), std::string::npos) << detail;
    EXPECT_EQ(router.shardLastError(1), IoErrorKind::Refused);
}

/** A fake shard that completes the Hello handshake and then goes
 *  silent — a wedged process: accepting, not answering. */
struct WedgedShard
{
    int listenFd = -1;
    int connFd = -1;
    std::thread runner;

    explicit WedgedShard(const shard::Endpoint &ep)
    {
        std::string detail;
        listenFd = shard::listenEndpoint(ep, detail);
        EXPECT_GE(listenFd, 0) << detail;
        runner = std::thread([this] {
            std::string err;
            connFd = shard::acceptConnection(listenFd, err);
            if (connFd < 0)
                return;
            FrameType type;
            std::vector<std::uint8_t> payload;
            if (!shard::readFrame(connFd, type, payload, err) ||
                type != FrameType::Hello)
                return;
            shard::HelloAckFrame ack;
            ack.fingerprint = 0xfeedbeef;
            ack.numNodes = 300;
            ack.numClusters = 8;
            WireWriter w;
            shard::encodeHelloAck(w, ack);
            shard::writeFrame(connFd, FrameType::HelloAck, w.bytes());
            // Swallow everything else (Health probes included)
            // without ever answering.
            while (shard::readFrame(connFd, type, payload, err)) {
            }
        });
    }

    ~WedgedShard()
    {
        if (connFd >= 0)
            ::shutdown(connFd, SHUT_RDWR);
        shard::closeFd(listenFd);
        runner.join();
        shard::closeFd(connFd);
    }
};

TEST_F(ShardFleetTest, ProbeTimeoutOnAWedgedShardIsTypedAndDownsIt)
{
    TempPath sock0("wedge0.sock");
    shard::Endpoint ep;
    std::string detail;
    ASSERT_TRUE(
        shard::parseEndpoint("unix:" + sock0.path(), ep, detail))
        << detail;
    WedgedShard wedged(ep);

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path()};
    rcfg.reconnectMs = 0.0;
    ShardRouter router(rcfg);
    ASSERT_TRUE(router.connect(detail)) << detail;
    EXPECT_TRUE(router.shardHealthy(0));

    // The connection is nominally up, but the probe gets no answer:
    // a wedged shard is as gone as a dead one.  (The probe deadline
    // is seconds — this test deliberately waits it out.)
    std::string err;
    EXPECT_FALSE(router.probeShard(0, err));
    EXPECT_NE(err.find("health probe"), std::string::npos) << err;
    EXPECT_FALSE(router.shardHealthy(0));
    EXPECT_EQ(router.shardLastError(0), IoErrorKind::Timeout);
}

// --- session continuity across failover and drain ------------------------

TEST_F(ShardFleetTest, WarmBackupFailoverPreservesSessionState)
{
    TempPath sock0("wb0.sock"), sock1("wb1.sock");
    std::vector<std::unique_ptr<TestShard>> fleet;
    fleet.push_back(std::make_unique<TestShard>(
        image_file_->path(), "unix:" + sock0.path()));
    fleet.push_back(std::make_unique<TestShard>(
        image_file_->path(), "unix:" + sock1.path()));

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    rcfg.replication = 2;
    rcfg.reconnectMs = 0.0; // the killed primary must stay dead
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    const std::string sid = "wb-session";
    RelationType inc = net_.relationId("includes");
    Program turn1 = countQuery(5, inc);
    Program turn2; // collect-only: the answer IS the prior state
    turn2.append(Instruction::collectMarker(1));

    shard::RouterRequest req1;
    req1.sessionId = sid;
    req1.prog = turn1;
    shard::ResponseFrame r1 = submitAndWait(router, std::move(req1));
    ASSERT_EQ(r1.status, serve::RequestStatus::Ok);

    // Wait for the replicator to push the post-turn checkpoint onto
    // the backup owner.
    for (int i = 0; i < 250 && router.warmupCount() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(router.warmupCount(), 1u)
        << "the warm-backup replicator never ran";

    // Hard-kill the session's pinned primary.
    const std::uint32_t primary =
        HashRing(2, rcfg.vnodes).owner(shard::fnv1a64(sid));
    fleet[primary].reset();

    shard::RouterRequest req2;
    req2.sessionId = sid;
    req2.prog = turn2;
    shard::ResponseFrame r2 = submitAndWait(router, std::move(req2));
    ASSERT_EQ(r2.status, serve::RequestStatus::Ok)
        << "the warm backup must take over the session";
    EXPECT_GE(router.failoverCount(), 1u);

    // The collect-only turn must see exactly the marker state the
    // first turn left behind — i.e. what a solo machine running both
    // turns back to back produces.
    serve::ServeConfig scfg = shardServeConfig();
    SnapMachine direct(scfg.machine);
    direct.loadKb(net_);
    direct.run(turn1);
    RunResult ref2 = direct.run(turn2);
    test::expectSameResults(r2.results, ref2.results);
    ASSERT_FALSE(ref2.results.empty());
    ASSERT_FALSE(ref2.results[0].nodes.empty())
        << "the reference state vanished — the test proves nothing";
}

TEST_F(ShardFleetTest, PlannedDrainMigratesSessionState)
{
    TempPath sock0("mig0.sock"), sock1("mig1.sock");
    TestShard s0(image_file_->path(), "unix:" + sock0.path());
    TestShard s1(image_file_->path(), "unix:" + sock1.path());

    shard::RouterConfig rcfg;
    rcfg.shards = {"unix:" + sock0.path(), "unix:" + sock1.path()};
    // replication = 1: the drain's ownerSkipping fallback must find
    // the migration target even with no designated backup.
    ShardRouter router(rcfg);
    std::string detail;
    ASSERT_TRUE(router.connect(detail)) << detail;

    const std::string sid = "drain-session";
    RelationType inc = net_.relationId("includes");
    Program turn1 = countQuery(9, inc);
    Program turn2;
    turn2.append(Instruction::collectMarker(1));

    shard::RouterRequest req1;
    req1.sessionId = sid;
    req1.prog = turn1;
    ASSERT_EQ(submitAndWait(router, std::move(req1)).status,
              serve::RequestStatus::Ok);

    const std::uint32_t primary =
        HashRing(2, rcfg.vnodes).owner(shard::fnv1a64(sid));
    std::string err;
    ASSERT_TRUE(router.drainShard(primary, err)) << err;
    EXPECT_GE(router.migratedCount(), 1u)
        << "the pinned session must move off the draining shard";

    shard::RouterRequest req2;
    req2.sessionId = sid;
    req2.prog = turn2;
    shard::ResponseFrame r2 = submitAndWait(router, std::move(req2));
    ASSERT_EQ(r2.status, serve::RequestStatus::Ok)
        << "zero dropped sessions on a planned drain";

    serve::ServeConfig scfg = shardServeConfig();
    SnapMachine direct(scfg.machine);
    direct.loadKb(net_);
    direct.run(turn1);
    RunResult ref2 = direct.run(turn2);
    test::expectSameResults(r2.results, ref2.results);
    ASSERT_FALSE(ref2.results.empty());
    ASSERT_FALSE(ref2.results[0].nodes.empty());
}

} // namespace
} // namespace snap
