/**
 * @file
 * Lane-batched execution tests.
 *
 * Three layers, mirroring the batching stack:
 *  - MultiBitVector: the lane-packed bit matrix (transpose of
 *    BitVector) — lane widths that are not multiples of 64, word-seam
 *    cases mirroring the BitVector seam tests, insert/extract
 *    round-trips, and the whole-plane kernels;
 *  - LaneMarkerStore + propagateFunctionalBatch: batched reference
 *    propagation must reproduce every lane's solo run bit-for-bit —
 *    marker state AND PropagationStats — fuzzed over random KBs,
 *    rules, marker functions, and heterogeneous per-lane sources;
 *  - SnapMachine::runBatch: per-lane results and simulated wallTicks
 *    bit-identical to a fresh solo machine at every lane count in
 *    {1, 2, 7, 8, 33, 64, 65, 128, 1024} (the issue's acceptance
 *    pin, extended across the multi-word row seams);
 *  - the lane-execution backends: every compiled + CPU-supported
 *    SIMD table must match the scalar oracle word for word on random
 *    rows, and the batched-vs-solo fuzz re-runs under each backend.
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/machine.hh"
#include "common/lane_backend.hh"
#include "common/multibitvector.hh"
#include "common/rng.hh"
#include "runtime/lane_store.hh"
#include "runtime/propagate.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

// --- MultiBitVector ----------------------------------------------------

TEST(MultiBitVector, StartsEmptyAtOddGeometry)
{
    for (std::uint32_t lanes : {1u, 2u, 7u, 33u, 64u}) {
        MultiBitVector mv(70, lanes);
        EXPECT_EQ(mv.size(), 70u);
        EXPECT_EQ(mv.numLanes(), lanes);
        EXPECT_TRUE(mv.none());
        EXPECT_EQ(mv.count(), 0u);
        for (std::uint32_t l = 0; l < lanes; ++l)
            EXPECT_EQ(mv.countLane(l), 0u);
    }
}

TEST(MultiBitVector, LaneMaskCoversExactlyTheLanes)
{
    EXPECT_EQ(MultiBitVector(8, 1).laneMask(), 0x1u);
    EXPECT_EQ(MultiBitVector(8, 7).laneMask(), 0x7fu);
    EXPECT_EQ(MultiBitVector(8, 33).laneMask(),
              (std::uint64_t{1} << 33) - 1);
    EXPECT_EQ(MultiBitVector(8, 64).laneMask(), ~std::uint64_t{0});
}

TEST(MultiBitVector, SetTestClearPerLane)
{
    MultiBitVector mv(100, 7);
    mv.set(5, 0);
    mv.set(5, 6);
    mv.set(99, 3);
    EXPECT_TRUE(mv.test(5, 0));
    EXPECT_FALSE(mv.test(5, 1));
    EXPECT_TRUE(mv.test(5, 6));
    EXPECT_TRUE(mv.test(99, 3));
    EXPECT_EQ(mv.lanes(5), 0x41u);
    EXPECT_EQ(mv.count(), 3u);
    EXPECT_EQ(mv.countLane(6), 1u);
    mv.clear(5, 6);
    EXPECT_FALSE(mv.test(5, 6));
    EXPECT_EQ(mv.lanes(5), 0x1u);
}

TEST(MultiBitVector, SetLanesMasksTailLanes)
{
    // 7 lanes: bits 7..63 of a lane word are tail and must stay
    // clear, the lane analogue of BitVector's tail-bit masking.
    MultiBitVector mv(10, 7);
    mv.setLanes(4, ~std::uint64_t{0});
    EXPECT_EQ(mv.lanes(4), 0x7fu);
    EXPECT_EQ(mv.count(), 7u);
    mv.orLanes(4, std::uint64_t{1} << 63);
    EXPECT_EQ(mv.lanes(4), 0x7fu) << "orLanes must mask tail lanes";
}

TEST(MultiBitVector, WideGeometryRowAndTailMasks)
{
    // Row counts and per-row valid-lane masks at widths straddling
    // the lane-side word seams: rows below the last are all-ones,
    // the last row carries the tail mask (all-ones when the width is
    // a multiple of 64).
    struct Case
    {
        std::uint32_t lanes, words;
        std::uint64_t tail;
    };
    const Case cases[] = {
        {65u, 2u, 0x1u},
        {127u, 2u, 0x7fffffffffffffffu},
        {128u, 2u, ~std::uint64_t{0}},
        {129u, 3u, 0x1u},
        {1024u, 16u, ~std::uint64_t{0}},
    };
    for (const Case &c : cases) {
        MultiBitVector mv(10, c.lanes);
        EXPECT_EQ(mv.laneWords(), c.words) << c.lanes;
        for (std::uint32_t w = 0; w + 1 < c.words; ++w)
            EXPECT_EQ(mv.laneMaskRow(w), ~std::uint64_t{0})
                << c.lanes << " row " << w;
        EXPECT_EQ(mv.laneMaskRow(c.words - 1), c.tail) << c.lanes;
    }
}

TEST(MultiBitVector, RowOpsMaskTailLanesAcrossRows)
{
    // 129 lanes = two full row words plus a 1-lane tail word:
    // orRow/setRow/broadcast must force bits above numLanes() clear
    // in the last row while leaving the full rows intact.
    using Word = MultiBitVector::Word;
    const Word ones = ~Word{0};
    MultiBitVector mv(5, 129);

    const Word all[3] = {ones, ones, ones};
    mv.orRow(2, all);
    EXPECT_EQ(mv.lanesRow(2, 0), ones);
    EXPECT_EQ(mv.lanesRow(2, 1), ones);
    EXPECT_EQ(mv.lanesRow(2, 2), 0x1u)
        << "orRow must mask tail lanes of the last row";
    EXPECT_EQ(mv.countLane(128), 1u);
    EXPECT_EQ(mv.count(), 129u);

    const Word some[3] = {0x10u, ones, ones};
    mv.setRow(2, some);
    EXPECT_EQ(mv.lanesRow(2, 0), 0x10u);
    EXPECT_EQ(mv.lanesRow(2, 1), ones);
    EXPECT_EQ(mv.lanesRow(2, 2), 0x1u);

    BitVector bv(5);
    bv.set(0);
    bv.set(4);
    mv.broadcast(bv);
    for (std::uint32_t i : {0u, 4u}) {
        EXPECT_EQ(mv.lanesRow(i, 0), ones) << i;
        EXPECT_EQ(mv.lanesRow(i, 1), ones) << i;
        EXPECT_EQ(mv.lanesRow(i, 2), 0x1u) << i;
    }
    EXPECT_EQ(mv.lanesRow(2, 0), 0u)
        << "broadcast overwrites previous rows";
    EXPECT_EQ(mv.count(), 2u * 129u);
}

TEST(MultiBitVector, InsertExtractCrossesLaneWordSeams)
{
    // Lanes 63/64/65 straddle the first lane-side word seam, 127/128
    // the second; a scatter into a seam lane must not leak into its
    // neighbours.
    MultiBitVector mv(130, 129);
    BitVector bv(130);
    bv.set(0);
    bv.set(64);
    bv.set(129);
    for (std::uint32_t lane : {63u, 64u, 65u, 127u, 128u})
        mv.insertLane(lane, bv);
    for (std::uint32_t lane : {63u, 64u, 65u, 127u, 128u}) {
        BitVector got = mv.extractLane(lane);
        EXPECT_EQ(got.count(), 3u) << "lane " << lane;
        for (std::uint32_t i : {0u, 64u, 129u})
            EXPECT_TRUE(got.test(i)) << "lane " << lane << " bit "
                                     << i;
        EXPECT_EQ(mv.countLane(lane), 3u) << "lane " << lane;
    }
    for (std::uint32_t lane : {0u, 62u, 66u, 126u, 1u})
        EXPECT_TRUE(mv.extractLane(lane).none())
            << "seam scatter leaked into lane " << lane;
}

TEST(MultiBitVector, ExtractLaneCrossesWordSeams)
{
    // Positions straddling every 64-bit boundary of the extracted
    // BitVector's packing, mirroring BitVector's seam tests.
    MultiBitVector mv(256, 3);
    for (std::uint32_t seam : {64u, 128u, 192u}) {
        mv.set(seam - 1, 1);
        mv.set(seam, 1);
    }
    mv.set(0, 1);
    mv.set(255, 1);
    BitVector lane1 = mv.extractLane(1);
    EXPECT_EQ(lane1.count(), 8u);
    for (std::uint32_t i : {0u, 63u, 64u, 127u, 128u, 191u, 192u,
                            255u})
        EXPECT_TRUE(lane1.test(i)) << "bit " << i;
    EXPECT_TRUE(mv.extractLane(0).none());
    EXPECT_TRUE(mv.extractLane(2).none());
}

TEST(MultiBitVector, InsertExtractRoundTripFuzz)
{
    Rng rng(0xba7c4);
    for (std::uint32_t bits : {1u, 63u, 64u, 65u, 200u}) {
        for (std::uint32_t lanes :
             {1u, 2u, 7u, 33u, 64u, 65u, 127u, 129u}) {
            MultiBitVector mv(bits, lanes);
            std::vector<BitVector> ref;
            for (std::uint32_t l = 0; l < lanes; ++l) {
                BitVector bv(bits);
                for (std::uint32_t i = 0; i < bits; ++i)
                    if (rng.chance(0.3))
                        bv.set(i);
                mv.insertLane(l, bv);
                ref.push_back(std::move(bv));
            }
            // Re-insert lane 0 with fresh content: the overwrite
            // must not disturb neighbours.
            BitVector bv0(bits);
            for (std::uint32_t i = 0; i < bits; ++i)
                if (rng.chance(0.5))
                    bv0.set(i);
            mv.insertLane(0, bv0);
            ref[0] = bv0;

            std::uint64_t total = 0;
            for (std::uint32_t l = 0; l < lanes; ++l) {
                BitVector got = mv.extractLane(l);
                ASSERT_EQ(got.size(), ref[l].size());
                for (std::uint32_t i = 0; i < bits; ++i)
                    ASSERT_EQ(got.test(i), ref[l].test(i))
                        << "bits=" << bits << " lane=" << l
                        << " bit=" << i;
                EXPECT_EQ(mv.countLane(l), ref[l].count());
                total += ref[l].count();
            }
            EXPECT_EQ(mv.count(), total);
        }
    }
}

TEST(MultiBitVector, WholePlaneKernelsMatchPerLaneOps)
{
    Rng rng(0x5ea1);
    const std::uint32_t bits = 130, lanes = 33;
    MultiBitVector a(bits, lanes), b(bits, lanes);
    for (std::uint32_t i = 0; i < bits; ++i) {
        a.setLanes(i, rng.next());
        b.setLanes(i, rng.next());
    }
    MultiBitVector or_ab = a, and_ab = a, andnot_ab = a;
    or_ab.orWith(b);
    and_ab.andWith(b);
    andnot_ab.andNotWith(b);
    for (std::uint32_t i = 0; i < bits; ++i) {
        EXPECT_EQ(or_ab.lanes(i), a.lanes(i) | b.lanes(i));
        EXPECT_EQ(and_ab.lanes(i), a.lanes(i) & b.lanes(i));
        EXPECT_EQ(andnot_ab.lanes(i), a.lanes(i) & ~b.lanes(i));
    }
    or_ab.clearAll();
    EXPECT_TRUE(or_ab.none());
}

TEST(MultiBitVector, BroadcastStampsEveryLane)
{
    MultiBitVector mv(130, 7);
    BitVector bv(130);
    bv.set(0);
    bv.set(64);
    bv.set(129);
    mv.set(5, 3);  // must be overwritten by the stamp
    mv.broadcast(bv);
    for (std::uint32_t i = 0; i < 130; ++i)
        EXPECT_EQ(mv.lanes(i), bv.test(i) ? 0x7fu : 0u) << i;
}

TEST(MultiBitVector, ForEachActiveAscendingSharedFrontier)
{
    MultiBitVector mv(200, 2);
    mv.set(7, 0);
    mv.set(7, 1);
    mv.set(64, 1);
    mv.set(199, 0);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> seen;
    mv.forEachActive([&](std::uint32_t i, std::uint64_t mask) {
        seen.emplace_back(i, mask);
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], std::make_pair(7u, std::uint64_t{3}));
    EXPECT_EQ(seen[1], std::make_pair(64u, std::uint64_t{2}));
    EXPECT_EQ(seen[2], std::make_pair(199u, std::uint64_t{1}));
}

TEST(MultiBitVector, ForEachActiveRowAscendingWideFrontier)
{
    // The wide-frontier scan: rows surface in ascending position
    // order with bits landing in the right (row word, bit) slots
    // across the lane seams.
    MultiBitVector mv(200, 129);
    mv.set(7, 0);
    mv.set(7, 128);
    mv.set(64, 65);
    mv.set(199, 63);
    std::vector<std::uint32_t> idxs;
    std::vector<std::vector<std::uint64_t>> rows;
    mv.forEachActiveRow(
        [&](std::uint32_t i, const std::uint64_t *r) {
            idxs.push_back(i);
            rows.emplace_back(r, r + mv.laneWords());
        });
    ASSERT_EQ(idxs.size(), 3u);
    EXPECT_EQ(idxs[0], 7u);
    EXPECT_EQ(rows[0][0], 0x1u);
    EXPECT_EQ(rows[0][1], 0u);
    EXPECT_EQ(rows[0][2], 0x1u);
    EXPECT_EQ(idxs[1], 64u);
    EXPECT_EQ(rows[1][1], 0x2u);
    EXPECT_EQ(idxs[2], 199u);
    EXPECT_EQ(rows[2][0], std::uint64_t{1} << 63);
}

// --- lane-execution backends -------------------------------------------

TEST(LaneBackend, ParseNamesAndCapabilities)
{
    LaneBackend b;
    EXPECT_TRUE(parseLaneBackend("auto", b));
    EXPECT_EQ(b, LaneBackend::Auto);
    EXPECT_TRUE(parseLaneBackend("scalar", b));
    EXPECT_EQ(b, LaneBackend::Scalar);
    EXPECT_TRUE(parseLaneBackend("avx2", b));
    EXPECT_EQ(b, LaneBackend::Avx2);
    EXPECT_TRUE(parseLaneBackend("avx512", b));
    EXPECT_EQ(b, LaneBackend::Avx512);
    EXPECT_FALSE(parseLaneBackend("sse9", b));
    EXPECT_FALSE(parseLaneBackend("", b));

    EXPECT_STREQ(laneBackendName(LaneBackend::Scalar), "scalar");
    EXPECT_STREQ(laneBackendName(LaneBackend::Avx512), "avx512");
    // Scalar is unconditional; a SIMD backend that claims support
    // must also be compiled in.
    EXPECT_TRUE(laneBackendCompiled(LaneBackend::Scalar));
    EXPECT_TRUE(laneBackendSupported(LaneBackend::Scalar));
    for (LaneBackend s : {LaneBackend::Avx2, LaneBackend::Avx512})
        if (laneBackendSupported(s))
            EXPECT_TRUE(laneBackendCompiled(s));
}

/** Every SIMD table that can run on this host, for oracle fuzzing. */
std::vector<const LaneOps *>
supportedSimdTables()
{
    std::vector<const LaneOps *> out;
    if (laneBackendSupported(LaneBackend::Avx2))
        out.push_back(detail::laneOpsAvx2());
    if (laneBackendSupported(LaneBackend::Avx512))
        out.push_back(detail::laneOpsAvx512());
    return out;
}

TEST(LaneBackend, SimdTablesMatchScalarOracleFuzz)
{
    const LaneOps *scalar = detail::laneOpsScalar();
    ASSERT_NE(scalar, nullptr);
    const std::vector<const LaneOps *> simd = supportedSimdTables();
    if (simd.empty())
        GTEST_SKIP() << "no SIMD lane backend on this host";

    Rng rng(0x51a4d);
    // Word counts chosen to hit every vector-block/scalar-tail split
    // of the 4-word (AVX2) and 8-word (AVX-512) strides.
    for (std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 11u,
                            15u, 16u, 17u, 31u, 32u, 33u}) {
        std::vector<std::uint64_t> dst(n), src(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            dst[i] = rng.next();
            src[i] = rng.next();
        }
        const std::vector<std::uint64_t> zeros(n, 0);
        for (const LaneOps *ops : simd) {
            SCOPED_TRACE(std::string(ops->name) + " n=" +
                         std::to_string(n));
            auto d1 = dst, d2 = dst;
            scalar->orInto(d1.data(), src.data(), n);
            ops->orInto(d2.data(), src.data(), n);
            EXPECT_EQ(d1, d2);

            d1 = dst, d2 = dst;
            scalar->andInto(d1.data(), src.data(), n);
            ops->andInto(d2.data(), src.data(), n);
            EXPECT_EQ(d1, d2);

            d1 = dst, d2 = dst;
            scalar->andNotInto(d1.data(), src.data(), n);
            ops->andNotInto(d2.data(), src.data(), n);
            EXPECT_EQ(d1, d2);

            d1 = dst, d2 = dst;
            std::vector<std::uint64_t> p1(n), p2(n);
            scalar->orFetch(d1.data(), src.data(), p1.data(), n);
            ops->orFetch(d2.data(), src.data(), p2.data(), n);
            EXPECT_EQ(d1, d2);
            EXPECT_EQ(p1, p2) << "pre-merge snapshot differs";

            d1 = dst, d2 = dst;
            scalar->fill(d1.data(), 0xdeadbeefcafef00dull, n);
            ops->fill(d2.data(), 0xdeadbeefcafef00dull, n);
            EXPECT_EQ(d1, d2);

            EXPECT_EQ(ops->popcount(dst.data(), n),
                      scalar->popcount(dst.data(), n));
            EXPECT_EQ(ops->any(dst.data(), n),
                      scalar->any(dst.data(), n));
            EXPECT_FALSE(ops->any(zeros.data(), n));
        }
    }
}

// --- LaneMarkerStore ---------------------------------------------------

TEST(LaneMarkerStore, InsertExtractRoundTripWithValues)
{
    const std::uint32_t n = 90, lanes = 7;
    Rng rng(0x1a9e5);
    std::vector<MarkerStore> solo;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore s(n);
        for (int k = 0; k < 25; ++k) {
            auto m = static_cast<MarkerId>(
                rng.chance(0.5) ? rng.below(4) : 64 + rng.below(4));
            auto node = static_cast<NodeId>(rng.below(n));
            s.set(m, node, static_cast<float>(rng.uniform(0, 5)),
                  static_cast<NodeId>(rng.below(n)));
        }
        solo.push_back(std::move(s));
    }

    LaneMarkerStore batch(n, lanes);
    for (std::uint32_t l = 0; l < lanes; ++l)
        batch.insertLane(l, solo[l]);

    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore got = batch.extractLane(l);
        for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
            auto mid = static_cast<MarkerId>(m);
            for (NodeId node = 0; node < n; ++node) {
                ASSERT_EQ(got.test(mid, node),
                          solo[l].test(mid, node))
                    << "lane " << l << " m" << m << " node " << node;
                if (got.test(mid, node) && isComplexMarker(mid)) {
                    EXPECT_EQ(got.value(mid, node),
                              solo[l].value(mid, node));
                    EXPECT_EQ(got.origin(mid, node),
                              solo[l].origin(mid, node));
                }
            }
        }
    }
}

// --- batched reference propagation vs solo golden ----------------------

void
expectSameStats(const PropagationStats &a, const PropagationStats &b,
                std::uint32_t lane)
{
    EXPECT_EQ(a.sources, b.sources) << "lane " << lane;
    EXPECT_EQ(a.nodesMarked, b.nodesMarked) << "lane " << lane;
    EXPECT_EQ(a.linksScanned, b.linksScanned) << "lane " << lane;
    EXPECT_EQ(a.traversals, b.traversals) << "lane " << lane;
    EXPECT_EQ(a.maxDepth, b.maxDepth) << "lane " << lane;
    EXPECT_EQ(a.levelExpansions, b.levelExpansions) << "lane " << lane;
}

class BatchedPropagation
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BatchedPropagation, EveryLaneMatchesItsSoloRun)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    SemanticNetwork net = makeRandomKb(120, 3.0, 2, seed);
    RelationType r0 = net.relationId("r0");
    RelationType r1 = net.relationId("r1");

    PropRule rule;
    switch (seed % 4) {
      case 0: rule = PropRule::chain(r0); break;
      case 1: rule = PropRule::spread(r0, r1); break;
      case 2: rule = PropRule::seq(r0, r1); break;
      default: rule = PropRule::comb(r0, r1); break;
    }
    rule.maxSteps = (seed % 2 == 0) ? 100 : 2 + seed % 5;

    const MarkerFunc funcs[] = {MarkerFunc::AddWeight,
                                MarkerFunc::None, MarkerFunc::Count,
                                MarkerFunc::MaxWeight,
                                MarkerFunc::MinWeight};
    MarkerFunc func = funcs[seed % 5];

    // Lane counts spanning every lane-side word seam: the issue's
    // acceptance pin {1, 63, 64, 65, 127, 128, 512, 1024}.
    const std::uint32_t lane_counts[] = {1,   63,  64,  65,
                                         127, 128, 512, 1024};
    const std::uint32_t lanes = lane_counts[seed % 8];

    // Heterogeneous lanes: each gets its own random source set.
    std::vector<MarkerStore> inputs;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore s(net.numNodes());
        std::uint32_t nsrc = 1 + rng.below(4);
        for (std::uint32_t k = 0; k < nsrc; ++k) {
            auto node =
                static_cast<NodeId>(rng.below(net.numNodes()));
            s.set(0, node, static_cast<float>(rng.uniform(0, 3)),
                  node);
        }
        inputs.push_back(std::move(s));
    }

    // Solo oracle, computed once and reused against every backend.
    std::vector<PropagationStats> solo_stats;
    std::vector<MarkerStore> solo_out;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore s = inputs[l];
        solo_stats.push_back(
            propagateFunctional(net, s, 0, 1, rule, func));
        solo_out.push_back(std::move(s));
    }

    // Every compiled + CPU-supported backend must reproduce the solo
    // runs bit for bit; scalar is itself checked against the solo
    // path, the SIMD tables against the same oracle through the
    // process-wide dispatch the production kernels use.
    struct RestoreAuto
    {
        ~RestoreAuto()
        {
            std::string err;
            setLaneBackend(LaneBackend::Auto, err);
        }
    } restore;

    std::vector<LaneBackend> backends = {LaneBackend::Scalar};
    for (LaneBackend s : {LaneBackend::Avx2, LaneBackend::Avx512})
        if (laneBackendSupported(s))
            backends.push_back(s);

    for (LaneBackend b : backends) {
        SCOPED_TRACE(laneBackendName(b));
        std::string err;
        ASSERT_TRUE(setLaneBackend(b, err)) << err;

        LaneMarkerStore batch(net.numNodes(), lanes);
        for (std::uint32_t l = 0; l < lanes; ++l)
            batch.insertLane(l, inputs[l]);

        std::vector<PropagationStats> batch_stats =
            propagateFunctionalBatch(net, batch, 0, 1, rule, func);
        ASSERT_EQ(batch_stats.size(), lanes);

        for (std::uint32_t l = 0; l < lanes; ++l) {
            expectSameStats(batch_stats[l], solo_stats[l], l);

            MarkerStore got = batch.extractLane(l);
            for (MarkerId m : {MarkerId{0}, MarkerId{1}}) {
                for (NodeId n = 0; n < net.numNodes(); ++n) {
                    ASSERT_EQ(got.test(m, n), solo_out[l].test(m, n))
                        << "lane " << l << " m" << unsigned(m)
                        << " node " << n;
                    if (!got.test(m, n))
                        continue;
                    // Bit-identical, not approximately equal: the
                    // batch performs each lane's merges in the
                    // lane's solo order, on every backend.
                    EXPECT_EQ(got.value(m, n),
                              solo_out[l].value(m, n))
                        << "lane " << l << " node " << n;
                    EXPECT_EQ(got.origin(m, n),
                              solo_out[l].origin(m, n))
                        << "lane " << l << " node " << n;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BatchedPropagation,
                         ::testing::Range<std::uint64_t>(0, 24));

// --- SnapMachine::runBatch ---------------------------------------------

TEST(MachineBatch, EveryLaneCountMatchesSoloRun)
{
    SemanticNetwork net = makeTreeKb(600, 4);
    RelationType down = net.relationId("includes");

    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(down));
    prog.append(Instruction::searchNode(3, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;

    SnapMachine solo(cfg);
    solo.loadKb(net);
    RunResult ref = solo.run(prog);

    for (std::uint32_t lanes :
         {1u, 2u, 7u, 8u, 33u, 64u, 65u, 128u, 1024u}) {
        SnapMachine machine(cfg);
        machine.loadKb(net);
        BatchRunResult batch = machine.runBatch(prog, lanes);
        EXPECT_EQ(batch.lanes, lanes);
        EXPECT_EQ(batch.wallTicks, ref.wallTicks)
            << "lanes=" << lanes
            << ": per-lane simulated time must be bit-identical to "
               "the solo run";
        test::expectSameResults(batch.results, ref.results);
        EXPECT_GT(batch.hostEvents, 0u);
    }
}

TEST(MachineBatch, HostEventsAmortizeAcrossLanes)
{
    SemanticNetwork net = makeTreeKb(600, 4);
    RelationType down = net.relationId("includes");

    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(down));
    prog.append(Instruction::searchNode(3, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;

    SnapMachine machine(cfg);
    machine.loadKb(net);
    BatchRunResult one = machine.runBatch(prog, 1);
    machine.image().resetMarkers();
    BatchRunResult eight = machine.runBatch(prog, 8);

    // The whole batch costs one simulated run's host events, so the
    // per-lane charge drops ~8x; >= 2x is the CI perf-smoke floor.
    EXPECT_LE(eight.hostEvents / 8, one.hostEvents / 2)
        << "batched per-lane host events must be at least 2x "
           "cheaper than solo";
}

} // namespace
} // namespace snap
