/**
 * @file
 * Lane-batched execution tests.
 *
 * Three layers, mirroring the batching stack:
 *  - MultiBitVector: the lane-packed bit matrix (transpose of
 *    BitVector) — lane widths that are not multiples of 64, word-seam
 *    cases mirroring the BitVector seam tests, insert/extract
 *    round-trips, and the whole-plane kernels;
 *  - LaneMarkerStore + propagateFunctionalBatch: batched reference
 *    propagation must reproduce every lane's solo run bit-for-bit —
 *    marker state AND PropagationStats — fuzzed over random KBs,
 *    rules, marker functions, and heterogeneous per-lane sources;
 *  - SnapMachine::runBatch: per-lane results and simulated wallTicks
 *    bit-identical to a fresh solo machine at every lane count in
 *    {1, 2, 7, 8, 33, 64} (the issue's acceptance pin).
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/machine.hh"
#include "common/multibitvector.hh"
#include "common/rng.hh"
#include "runtime/lane_store.hh"
#include "runtime/propagate.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

// --- MultiBitVector ----------------------------------------------------

TEST(MultiBitVector, StartsEmptyAtOddGeometry)
{
    for (std::uint32_t lanes : {1u, 2u, 7u, 33u, 64u}) {
        MultiBitVector mv(70, lanes);
        EXPECT_EQ(mv.size(), 70u);
        EXPECT_EQ(mv.numLanes(), lanes);
        EXPECT_TRUE(mv.none());
        EXPECT_EQ(mv.count(), 0u);
        for (std::uint32_t l = 0; l < lanes; ++l)
            EXPECT_EQ(mv.countLane(l), 0u);
    }
}

TEST(MultiBitVector, LaneMaskCoversExactlyTheLanes)
{
    EXPECT_EQ(MultiBitVector(8, 1).laneMask(), 0x1u);
    EXPECT_EQ(MultiBitVector(8, 7).laneMask(), 0x7fu);
    EXPECT_EQ(MultiBitVector(8, 33).laneMask(),
              (std::uint64_t{1} << 33) - 1);
    EXPECT_EQ(MultiBitVector(8, 64).laneMask(), ~std::uint64_t{0});
}

TEST(MultiBitVector, SetTestClearPerLane)
{
    MultiBitVector mv(100, 7);
    mv.set(5, 0);
    mv.set(5, 6);
    mv.set(99, 3);
    EXPECT_TRUE(mv.test(5, 0));
    EXPECT_FALSE(mv.test(5, 1));
    EXPECT_TRUE(mv.test(5, 6));
    EXPECT_TRUE(mv.test(99, 3));
    EXPECT_EQ(mv.lanes(5), 0x41u);
    EXPECT_EQ(mv.count(), 3u);
    EXPECT_EQ(mv.countLane(6), 1u);
    mv.clear(5, 6);
    EXPECT_FALSE(mv.test(5, 6));
    EXPECT_EQ(mv.lanes(5), 0x1u);
}

TEST(MultiBitVector, SetLanesMasksTailLanes)
{
    // 7 lanes: bits 7..63 of a lane word are tail and must stay
    // clear, the lane analogue of BitVector's tail-bit masking.
    MultiBitVector mv(10, 7);
    mv.setLanes(4, ~std::uint64_t{0});
    EXPECT_EQ(mv.lanes(4), 0x7fu);
    EXPECT_EQ(mv.count(), 7u);
    mv.orLanes(4, std::uint64_t{1} << 63);
    EXPECT_EQ(mv.lanes(4), 0x7fu) << "orLanes must mask tail lanes";
}

TEST(MultiBitVector, ExtractLaneCrossesWordSeams)
{
    // Positions straddling every 64-bit boundary of the extracted
    // BitVector's packing, mirroring BitVector's seam tests.
    MultiBitVector mv(256, 3);
    for (std::uint32_t seam : {64u, 128u, 192u}) {
        mv.set(seam - 1, 1);
        mv.set(seam, 1);
    }
    mv.set(0, 1);
    mv.set(255, 1);
    BitVector lane1 = mv.extractLane(1);
    EXPECT_EQ(lane1.count(), 8u);
    for (std::uint32_t i : {0u, 63u, 64u, 127u, 128u, 191u, 192u,
                            255u})
        EXPECT_TRUE(lane1.test(i)) << "bit " << i;
    EXPECT_TRUE(mv.extractLane(0).none());
    EXPECT_TRUE(mv.extractLane(2).none());
}

TEST(MultiBitVector, InsertExtractRoundTripFuzz)
{
    Rng rng(0xba7c4);
    for (std::uint32_t bits : {1u, 63u, 64u, 65u, 200u}) {
        for (std::uint32_t lanes : {1u, 2u, 7u, 33u, 64u}) {
            MultiBitVector mv(bits, lanes);
            std::vector<BitVector> ref;
            for (std::uint32_t l = 0; l < lanes; ++l) {
                BitVector bv(bits);
                for (std::uint32_t i = 0; i < bits; ++i)
                    if (rng.chance(0.3))
                        bv.set(i);
                mv.insertLane(l, bv);
                ref.push_back(std::move(bv));
            }
            // Re-insert lane 0 with fresh content: the overwrite
            // must not disturb neighbours.
            BitVector bv0(bits);
            for (std::uint32_t i = 0; i < bits; ++i)
                if (rng.chance(0.5))
                    bv0.set(i);
            mv.insertLane(0, bv0);
            ref[0] = bv0;

            std::uint64_t total = 0;
            for (std::uint32_t l = 0; l < lanes; ++l) {
                BitVector got = mv.extractLane(l);
                ASSERT_EQ(got.size(), ref[l].size());
                for (std::uint32_t i = 0; i < bits; ++i)
                    ASSERT_EQ(got.test(i), ref[l].test(i))
                        << "bits=" << bits << " lane=" << l
                        << " bit=" << i;
                EXPECT_EQ(mv.countLane(l), ref[l].count());
                total += ref[l].count();
            }
            EXPECT_EQ(mv.count(), total);
        }
    }
}

TEST(MultiBitVector, WholePlaneKernelsMatchPerLaneOps)
{
    Rng rng(0x5ea1);
    const std::uint32_t bits = 130, lanes = 33;
    MultiBitVector a(bits, lanes), b(bits, lanes);
    for (std::uint32_t i = 0; i < bits; ++i) {
        a.setLanes(i, rng.next());
        b.setLanes(i, rng.next());
    }
    MultiBitVector or_ab = a, and_ab = a, andnot_ab = a;
    or_ab.orWith(b);
    and_ab.andWith(b);
    andnot_ab.andNotWith(b);
    for (std::uint32_t i = 0; i < bits; ++i) {
        EXPECT_EQ(or_ab.lanes(i), a.lanes(i) | b.lanes(i));
        EXPECT_EQ(and_ab.lanes(i), a.lanes(i) & b.lanes(i));
        EXPECT_EQ(andnot_ab.lanes(i), a.lanes(i) & ~b.lanes(i));
    }
    or_ab.clearAll();
    EXPECT_TRUE(or_ab.none());
}

TEST(MultiBitVector, BroadcastStampsEveryLane)
{
    MultiBitVector mv(130, 7);
    BitVector bv(130);
    bv.set(0);
    bv.set(64);
    bv.set(129);
    mv.set(5, 3);  // must be overwritten by the stamp
    mv.broadcast(bv);
    for (std::uint32_t i = 0; i < 130; ++i)
        EXPECT_EQ(mv.lanes(i), bv.test(i) ? 0x7fu : 0u) << i;
}

TEST(MultiBitVector, ForEachActiveAscendingSharedFrontier)
{
    MultiBitVector mv(200, 2);
    mv.set(7, 0);
    mv.set(7, 1);
    mv.set(64, 1);
    mv.set(199, 0);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> seen;
    mv.forEachActive([&](std::uint32_t i, std::uint64_t mask) {
        seen.emplace_back(i, mask);
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], std::make_pair(7u, std::uint64_t{3}));
    EXPECT_EQ(seen[1], std::make_pair(64u, std::uint64_t{2}));
    EXPECT_EQ(seen[2], std::make_pair(199u, std::uint64_t{1}));
}

// --- LaneMarkerStore ---------------------------------------------------

TEST(LaneMarkerStore, InsertExtractRoundTripWithValues)
{
    const std::uint32_t n = 90, lanes = 7;
    Rng rng(0x1a9e5);
    std::vector<MarkerStore> solo;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore s(n);
        for (int k = 0; k < 25; ++k) {
            auto m = static_cast<MarkerId>(
                rng.chance(0.5) ? rng.below(4) : 64 + rng.below(4));
            auto node = static_cast<NodeId>(rng.below(n));
            s.set(m, node, static_cast<float>(rng.uniform(0, 5)),
                  static_cast<NodeId>(rng.below(n)));
        }
        solo.push_back(std::move(s));
    }

    LaneMarkerStore batch(n, lanes);
    for (std::uint32_t l = 0; l < lanes; ++l)
        batch.insertLane(l, solo[l]);

    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore got = batch.extractLane(l);
        for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
            auto mid = static_cast<MarkerId>(m);
            for (NodeId node = 0; node < n; ++node) {
                ASSERT_EQ(got.test(mid, node),
                          solo[l].test(mid, node))
                    << "lane " << l << " m" << m << " node " << node;
                if (got.test(mid, node) && isComplexMarker(mid)) {
                    EXPECT_EQ(got.value(mid, node),
                              solo[l].value(mid, node));
                    EXPECT_EQ(got.origin(mid, node),
                              solo[l].origin(mid, node));
                }
            }
        }
    }
}

// --- batched reference propagation vs solo golden ----------------------

void
expectSameStats(const PropagationStats &a, const PropagationStats &b,
                std::uint32_t lane)
{
    EXPECT_EQ(a.sources, b.sources) << "lane " << lane;
    EXPECT_EQ(a.nodesMarked, b.nodesMarked) << "lane " << lane;
    EXPECT_EQ(a.linksScanned, b.linksScanned) << "lane " << lane;
    EXPECT_EQ(a.traversals, b.traversals) << "lane " << lane;
    EXPECT_EQ(a.maxDepth, b.maxDepth) << "lane " << lane;
    EXPECT_EQ(a.levelExpansions, b.levelExpansions) << "lane " << lane;
}

class BatchedPropagation
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BatchedPropagation, EveryLaneMatchesItsSoloRun)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    SemanticNetwork net = makeRandomKb(120, 3.0, 2, seed);
    RelationType r0 = net.relationId("r0");
    RelationType r1 = net.relationId("r1");

    PropRule rule;
    switch (seed % 4) {
      case 0: rule = PropRule::chain(r0); break;
      case 1: rule = PropRule::spread(r0, r1); break;
      case 2: rule = PropRule::seq(r0, r1); break;
      default: rule = PropRule::comb(r0, r1); break;
    }
    rule.maxSteps = (seed % 2 == 0) ? 100 : 2 + seed % 5;

    const MarkerFunc funcs[] = {MarkerFunc::AddWeight,
                                MarkerFunc::None, MarkerFunc::Count,
                                MarkerFunc::MaxWeight,
                                MarkerFunc::MinWeight};
    MarkerFunc func = funcs[seed % 5];

    const std::uint32_t lane_counts[] = {1, 2, 7, 8, 33};
    const std::uint32_t lanes = lane_counts[seed % 5];

    // Heterogeneous lanes: each gets its own random source set.
    std::vector<MarkerStore> solo;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        MarkerStore s(net.numNodes());
        std::uint32_t nsrc = 1 + rng.below(4);
        for (std::uint32_t k = 0; k < nsrc; ++k) {
            auto node =
                static_cast<NodeId>(rng.below(net.numNodes()));
            s.set(0, node, static_cast<float>(rng.uniform(0, 3)),
                  node);
        }
        solo.push_back(std::move(s));
    }

    LaneMarkerStore batch(net.numNodes(), lanes);
    for (std::uint32_t l = 0; l < lanes; ++l)
        batch.insertLane(l, solo[l]);

    std::vector<PropagationStats> batch_stats =
        propagateFunctionalBatch(net, batch, 0, 1, rule, func);
    ASSERT_EQ(batch_stats.size(), lanes);

    for (std::uint32_t l = 0; l < lanes; ++l) {
        PropagationStats solo_stats =
            propagateFunctional(net, solo[l], 0, 1, rule, func);
        expectSameStats(batch_stats[l], solo_stats, l);

        MarkerStore got = batch.extractLane(l);
        for (MarkerId m : {MarkerId{0}, MarkerId{1}}) {
            for (NodeId n = 0; n < net.numNodes(); ++n) {
                ASSERT_EQ(got.test(m, n), solo[l].test(m, n))
                    << "lane " << l << " m" << unsigned(m)
                    << " node " << n;
                if (!got.test(m, n))
                    continue;
                // Bit-identical, not approximately equal: the batch
                // performs each lane's merges in the lane's solo
                // order.
                EXPECT_EQ(got.value(m, n), solo[l].value(m, n))
                    << "lane " << l << " node " << n;
                EXPECT_EQ(got.origin(m, n), solo[l].origin(m, n))
                    << "lane " << l << " node " << n;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BatchedPropagation,
                         ::testing::Range<std::uint64_t>(0, 24));

// --- SnapMachine::runBatch ---------------------------------------------

TEST(MachineBatch, EveryLaneCountMatchesSoloRun)
{
    SemanticNetwork net = makeTreeKb(600, 4);
    RelationType down = net.relationId("includes");

    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(down));
    prog.append(Instruction::searchNode(3, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;

    SnapMachine solo(cfg);
    solo.loadKb(net);
    RunResult ref = solo.run(prog);

    for (std::uint32_t lanes : {1u, 2u, 7u, 8u, 33u, 64u}) {
        SnapMachine machine(cfg);
        machine.loadKb(net);
        BatchRunResult batch = machine.runBatch(prog, lanes);
        EXPECT_EQ(batch.lanes, lanes);
        EXPECT_EQ(batch.wallTicks, ref.wallTicks)
            << "lanes=" << lanes
            << ": per-lane simulated time must be bit-identical to "
               "the solo run";
        test::expectSameResults(batch.results, ref.results);
        EXPECT_GT(batch.hostEvents, 0u);
    }
}

TEST(MachineBatch, HostEventsAmortizeAcrossLanes)
{
    SemanticNetwork net = makeTreeKb(600, 4);
    RelationType down = net.relationId("includes");

    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(down));
    prog.append(Instruction::searchNode(3, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;

    SnapMachine machine(cfg);
    machine.loadKb(net);
    BatchRunResult one = machine.runBatch(prog, 1);
    machine.image().resetMarkers();
    BatchRunResult eight = machine.runBatch(prog, 8);

    // The whole batch costs one simulated run's host events, so the
    // per-lane charge drops ~8x; >= 2x is the CI perf-smoke floor.
    EXPECT_LE(eight.hostEvents / 8, one.hostEvents / 2)
        << "batched per-lane host events must be at least 2x "
           "cheaper than solo";
}

} // namespace
} // namespace snap
