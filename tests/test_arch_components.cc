/**
 * @file
 * Component tests for the architecture substrate: hypercube ICN
 * routing, multiport memories, the tiered synchronization tree,
 * the performance collection network, and the compiled KB image.
 */

#include <gtest/gtest.h>

#include "arch/icn.hh"
#include "arch/kb_image.hh"
#include "arch/multiport_mem.hh"
#include "arch/perf_net.hh"
#include "arch/sync_tree.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

// --- hypercube ICN -----------------------------------------------------------

TEST(HypercubeIcnTest, AddressFields)
{
    // Cluster 23 = 10111b: L field 3, X field 1, Y field 1.
    EXPECT_EQ(HypercubeIcn::field(23, 0), 3u);
    EXPECT_EQ(HypercubeIcn::field(23, 1), 1u);
    EXPECT_EQ(HypercubeIcn::field(23, 2), 1u);
}

TEST(HypercubeIcnTest, DistanceCountsDifferingFields)
{
    EXPECT_EQ(HypercubeIcn::distance(0, 0), 0u);
    EXPECT_EQ(HypercubeIcn::distance(0, 3), 1u);   // L only
    EXPECT_EQ(HypercubeIcn::distance(0, 4), 1u);   // X only
    EXPECT_EQ(HypercubeIcn::distance(0, 16), 1u);  // Y only
    EXPECT_EQ(HypercubeIcn::distance(0, 7), 2u);   // L + X
    EXPECT_EQ(HypercubeIcn::distance(0, 23), 3u);
}

class IcnRouting : public ::testing::TestWithParam<std::uint32_t>
{
};

/** Every pair routes in <= 3 hops through existing clusters, and
 *  each hop fixes exactly one address field. */
TEST_P(IcnRouting, AllPairsReachableWithinThreeHops)
{
    std::uint32_t n = GetParam();
    TimingParams t;
    HypercubeIcn icn(n, t);
    for (ClusterId src = 0; src < n; ++src) {
        for (ClusterId dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            ClusterId cur = src;
            std::uint32_t hops = 0;
            while (cur != dst) {
                auto [dim, nb] = icn.nextHop(cur, dst);
                ASSERT_LT(nb, n) << "routed through a ghost cluster";
                // One field changes per hop.
                EXPECT_EQ(HypercubeIcn::distance(cur, nb), 1u);
                EXPECT_NE(HypercubeIcn::field(cur, dim),
                          HypercubeIcn::field(nb, dim));
                cur = nb;
                ASSERT_LE(++hops, 3u) << src << "->" << dst;
            }
            EXPECT_EQ(hops, HypercubeIcn::distance(src, dst));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IcnRouting,
                         ::testing::Values(2u, 3u, 5u, 8u, 12u, 16u,
                                           17u, 24u, 31u, 32u));

TEST(HypercubeIcnTest, TransferTimeIs640ns)
{
    TimingParams t;
    HypercubeIcn icn(32, t);
    // 8 bytes x 80 ns port-to-port (paper §III-B).
    EXPECT_EQ(icn.transferTime(), 640 * ticksPerNs);
}

TEST(HypercubeIcnTest, MailboxWakesBlockedSenders)
{
    TimingParams t;
    t.icnMailboxDepth = 2;
    HypercubeIcn icn(4, t);

    std::vector<ClusterId> kicked;
    icn.onKickCu([&](ClusterId c) { kicked.push_back(c); });

    auto &mb = icn.mailbox(1, 0);
    mb.push(ActivationMessage{});
    mb.push(ActivationMessage{});
    EXPECT_TRUE(mb.full());
    icn.noteBlockedSender(1, 0, 2);
    icn.noteBlockedSender(1, 0, 3);
    icn.noteBlockedSender(1, 0, 2);  // duplicate: recorded once

    icn.popAndWake(1, 0);
    EXPECT_EQ(kicked, (std::vector<ClusterId>{2, 3}));
    kicked.clear();
    icn.popAndWake(1, 0);
    EXPECT_TRUE(kicked.empty());  // waiters fired once
    EXPECT_EQ(icn.blockedSends.value(), 3.0);
}

// --- multiport memory -----------------------------------------------------------

TEST(BoundedQueueTest, FifoAndStats)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.empty());
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_TRUE(q.full());
    q.noteBlocked();
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    q.push(4);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.highWater(), 3u);
    EXPECT_EQ(q.totalEnqueued(), 4u);
    EXPECT_EQ(q.blockedPushes(), 1u);
}

TEST(BoundedQueueDeath, OverflowAndUnderflowPanic)
{
    BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "full");
    q.pop();
    EXPECT_DEATH(q.pop(), "empty");
}

TEST(ClusterArbiterTest, SerializesOverlappingHolds)
{
    ClusterArbiter arb;
    // Port 1 holds [100, 150); port 2 asks at 120 -> granted at 150.
    EXPECT_EQ(arb.acquire(100, 50), 100u);
    EXPECT_EQ(arb.acquire(120, 30), 150u);
    // Port 3 asks after everything drained: immediate.
    EXPECT_EQ(arb.acquire(500, 10), 500u);
    EXPECT_EQ(arb.grants(), 3u);
    EXPECT_EQ(arb.waitedTicks(), 30u);
}

// --- sync tree ---------------------------------------------------------------------

TEST(SyncTreeTest, CompleteNeedsBarrierIdleAndDrainedCounters)
{
    SyncTree sync(2);
    EXPECT_FALSE(sync.complete());  // not at barrier

    sync.setAtBarrier(0, true);
    sync.setAtBarrier(1, true);
    EXPECT_TRUE(sync.complete());

    sync.created(0);
    EXPECT_FALSE(sync.complete());
    EXPECT_EQ(sync.inFlight(), 1);
    sync.consumed(0);
    EXPECT_TRUE(sync.complete());

    sync.setIdle(0, false);
    EXPECT_FALSE(sync.complete());
    sync.setIdle(0, true);
    EXPECT_TRUE(sync.complete());
}

TEST(SyncTreeTest, TieredLevelsTrackedSeparately)
{
    SyncTree sync(1);
    sync.created(0);
    sync.created(3);
    sync.created(3);
    EXPECT_EQ(sync.counter(0), 1);
    EXPECT_EQ(sync.counter(3), 2);
    EXPECT_EQ(sync.inFlight(), 3);
    sync.consumed(3);
    EXPECT_EQ(sync.counter(3), 1);
    EXPECT_EQ(SyncTree::level(5), 5);
    EXPECT_EQ(SyncTree::level(500), numSyncLevels - 1);
}

TEST(SyncTreeTest, CallbackFiresOnCompletion)
{
    SyncTree sync(2);
    int fired = 0;
    sync.onComplete([&] { ++fired; });
    sync.setAtBarrier(0, true);
    EXPECT_EQ(fired, 0);
    sync.created(1);
    sync.setAtBarrier(1, true);
    EXPECT_EQ(fired, 0);  // counter still nonzero
    sync.consumed(1);
    EXPECT_EQ(fired, 1);
}

TEST(SyncTreeTest, QuiescentIgnoresBarrierLines)
{
    SyncTree sync(2);
    EXPECT_TRUE(sync.quiescent());
    sync.setIdle(1, false);
    EXPECT_FALSE(sync.quiescent());
    sync.setIdle(1, true);
    sync.created(2);
    EXPECT_FALSE(sync.quiescent());
    sync.consumed(2);
    EXPECT_TRUE(sync.quiescent());
}

TEST(SyncTreeDeath, CounterUnderflowPanics)
{
    SyncTree sync(1);
    EXPECT_DEATH(sync.consumed(0), "underflow");
}

// --- perf net ----------------------------------------------------------------------

TEST(PerfNetTest, ShiftTimeAt2Mbps)
{
    TimingParams t;
    PerfNet net(4, t, true);
    // 32 bits at 2 Mb/s = 16 us.
    EXPECT_EQ(net.shiftTime(), 16 * ticksPerUs);
}

TEST(PerfNetTest, RecordsTimestampedAtArrival)
{
    TimingParams t;
    PerfNet net(4, t, true);
    net.emit(2, 1000, PerfEvent::MsgSent, 7);
    ASSERT_EQ(net.records().size(), 1u);
    EXPECT_EQ(net.records()[0].timestamp, 1000 + net.shiftTime());
    EXPECT_EQ(net.records()[0].pe, 2u);
    EXPECT_EQ(net.records()[0].event, PerfEvent::MsgSent);
    EXPECT_EQ(net.records()[0].status, 7u);
}

TEST(PerfNetTest, BusyPortDropsRecords)
{
    TimingParams t;
    PerfNet net(2, t, true);
    net.emit(0, 0, PerfEvent::TaskStart, 1);
    net.emit(0, 100, PerfEvent::TaskEnd, 2);  // port still shifting
    net.emit(1, 100, PerfEvent::TaskStart, 3);  // other PE: fine
    net.emit(0, net.shiftTime(), PerfEvent::TaskEnd, 4);  // done
    EXPECT_EQ(net.dropped(), 1u);
    EXPECT_EQ(net.records().size(), 3u);
    EXPECT_EQ(net.emitted.value(), 4.0);
}

TEST(PerfNetTest, DisabledNetworkIsSilent)
{
    TimingParams t;
    PerfNet net(2, t, false);
    net.emit(0, 0, PerfEvent::TaskStart, 1);
    EXPECT_TRUE(net.records().empty());
    EXPECT_EQ(net.emitted.value(), 0.0);
}

// --- kb image -----------------------------------------------------------------------

TEST(KbImageTest, TablesMirrorNetwork)
{
    SemanticNetwork net = makeRandomKb(100, 3.0, 3, 7);
    MachineConfig cfg;
    cfg.numClusters = 4;
    cfg.partition = PartitionStrategy::RoundRobin;
    KbImage image(net, cfg);

    EXPECT_EQ(image.numClusters(), 4u);
    EXPECT_EQ(image.numNodes(), 100u);

    std::uint64_t slots = 0;
    for (ClusterId c = 0; c < 4; ++c) {
        const ClusterKb &ckb = image.cluster(c);
        for (LocalNodeId l = 0; l < ckb.numLocalNodes(); ++l) {
            NodeId g = ckb.globalId(l);
            EXPECT_EQ(ckb.color(l), net.color(g));
            auto expect = net.links(g);
            const auto &got = ckb.slots(l);
            ASSERT_EQ(got.size(), expect.size());
            for (std::size_t k = 0; k < got.size(); ++k) {
                EXPECT_EQ(got[k].rel, expect[k].rel);
                EXPECT_EQ(got[k].destGlobal, expect[k].dst);
                Placement p = image.place(expect[k].dst);
                EXPECT_EQ(got[k].destCluster, p.cluster);
                EXPECT_EQ(got[k].destLocal, p.local);
            }
            slots += got.size();
        }
    }
    EXPECT_EQ(slots, net.numLinks());
}

TEST(KbImageTest, SubnodeChainsForHighFanout)
{
    SemanticNetwork net = makeStarKb(40);  // hub fanout 40
    MachineConfig cfg;
    cfg.numClusters = 2;
    cfg.partition = PartitionStrategy::Sequential;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    KbImage image(net, cfg);

    Placement hub = image.place(0);
    const ClusterKb &ckb = image.cluster(hub.cluster);
    // 40 slots -> ceil(40/16) = 3 relation rows (head + 2 subnodes).
    EXPECT_EQ(ckb.numRows(hub.local), 3u);
    EXPECT_EQ(ckb.subnodeRows(), 2u);

    // Leaves occupy one row even with zero links.
    Placement leaf = image.place(1);
    EXPECT_EQ(image.cluster(leaf.cluster).numRows(leaf.local), 1u);
}

TEST(KbImageTest, SlotEditing)
{
    SemanticNetwork net = makeChainKb(6);
    MachineConfig cfg;
    cfg.numClusters = 2;
    cfg.partition = PartitionStrategy::Sequential;
    KbImage image(net, cfg);

    ClusterKb &ckb = image.cluster(0);
    ckb.addSlot(0, RelSlot{9, 1, 0, 3, 2.5f});
    EXPECT_EQ(ckb.slots(0).size(), 2u);
    EXPECT_TRUE(ckb.setSlotWeight(0, 9, 3, 4.5f));
    EXPECT_FLOAT_EQ(ckb.slots(0)[1].weight, 4.5f);
    EXPECT_FALSE(ckb.setSlotWeight(0, 9, 4, 1.0f));
    EXPECT_TRUE(ckb.removeSlot(0, 9, 3));
    EXPECT_FALSE(ckb.removeSlot(0, 9, 3));
    EXPECT_EQ(ckb.slots(0).size(), 1u);
}

TEST(KbImageTest, MarkerAccessAndFlatten)
{
    SemanticNetwork net = makeChainKb(10);
    MachineConfig cfg;
    cfg.numClusters = 3;
    cfg.partition = PartitionStrategy::RoundRobin;
    KbImage image(net, cfg);

    Placement p = image.place(7);
    image.cluster(p.cluster).markers().set(5, p.local, 2.5f, 7);

    EXPECT_TRUE(image.markerSet(5, 7));
    EXPECT_FLOAT_EQ(image.markerValue(5, 7), 2.5f);
    EXPECT_EQ(image.markerOrigin(5, 7), 7u);
    EXPECT_FALSE(image.markerSet(5, 6));

    MarkerStore flat = image.flatten();
    EXPECT_TRUE(flat.test(5, 7));
    EXPECT_FLOAT_EQ(flat.value(5, 7), 2.5f);
    EXPECT_EQ(flat.count(5), 1u);
}

} // namespace
} // namespace snap
