/**
 * @file
 * Component tests for the architecture substrate: hypercube ICN
 * routing, multiport memories, the tiered synchronization tree,
 * the performance collection network, and the compiled KB image.
 */

#include <gtest/gtest.h>

#include "arch/icn.hh"
#include "arch/kb_image.hh"
#include "arch/multiport_mem.hh"
#include "arch/perf_net.hh"
#include "arch/sync_tree.hh"
#include "arch/wire.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

// --- hypercube ICN -----------------------------------------------------------

TEST(HypercubeIcnTest, AddressFields)
{
    // Cluster 23 = 10111b: L field 3, X field 1, Y field 1.
    EXPECT_EQ(HypercubeIcn::field(23, 0), 3u);
    EXPECT_EQ(HypercubeIcn::field(23, 1), 1u);
    EXPECT_EQ(HypercubeIcn::field(23, 2), 1u);
}

TEST(HypercubeIcnTest, DistanceCountsDifferingFields)
{
    EXPECT_EQ(HypercubeIcn::distance(0, 0), 0u);
    EXPECT_EQ(HypercubeIcn::distance(0, 3), 1u);   // L only
    EXPECT_EQ(HypercubeIcn::distance(0, 4), 1u);   // X only
    EXPECT_EQ(HypercubeIcn::distance(0, 16), 1u);  // Y only
    EXPECT_EQ(HypercubeIcn::distance(0, 7), 2u);   // L + X
    EXPECT_EQ(HypercubeIcn::distance(0, 23), 3u);
}

class IcnRouting : public ::testing::TestWithParam<std::uint32_t>
{
};

/** Every pair routes in <= 3 hops through existing clusters, and
 *  each hop fixes exactly one address field. */
TEST_P(IcnRouting, AllPairsReachableWithinThreeHops)
{
    std::uint32_t n = GetParam();
    TimingParams t;
    HypercubeIcn icn(n, t);
    for (ClusterId src = 0; src < n; ++src) {
        for (ClusterId dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            ClusterId cur = src;
            std::uint32_t hops = 0;
            while (cur != dst) {
                auto [dim, nb] = icn.nextHop(cur, dst);
                ASSERT_LT(nb, n) << "routed through a ghost cluster";
                // One field changes per hop.
                EXPECT_EQ(HypercubeIcn::distance(cur, nb), 1u);
                EXPECT_NE(HypercubeIcn::field(cur, dim),
                          HypercubeIcn::field(nb, dim));
                cur = nb;
                ASSERT_LE(++hops, 3u) << src << "->" << dst;
            }
            EXPECT_EQ(hops, HypercubeIcn::distance(src, dst));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IcnRouting,
                         ::testing::Values(2u, 3u, 5u, 8u, 12u, 16u,
                                           17u, 24u, 31u, 32u));

TEST(HypercubeIcnTest, TransferTimeIs640ns)
{
    TimingParams t;
    HypercubeIcn icn(32, t);
    // 8 bytes x 80 ns port-to-port (paper §III-B).
    EXPECT_EQ(icn.transferTime(), 640 * ticksPerNs);
}

// --- wire --------------------------------------------------------------------

/** Same-tick deliverables apply in the canonical (kind, sender,
 *  senderSeq) order no matter what order they were staged in. */
TEST(WireTest, SameTickAppliesInCanonicalOrder)
{
    EventQueue eq(EventQueue::Impl::Indexed);
    Wire wire(2, 1, 1000);

    struct Applied
    {
        WireKind kind;
        std::uint32_t sender;
        std::uint64_t seq;
    };
    std::vector<Applied> applied;
    wire.bindEndpoint(0, 0, &eq, [&](Deliverable &&d) {
        applied.push_back(Applied{d.kind, d.sender, d.senderSeq});
    });
    wire.bindEndpoint(1, 0, &eq, [](Deliverable &&) {});

    auto stage = [&](WireKind k, std::uint32_t sender,
                     std::uint64_t seq) {
        Deliverable d;
        d.when = 5000;
        d.kind = k;
        d.receiver = 0;
        d.sender = sender;
        d.senderSeq = seq;
        wire.send(0, std::move(d));
    };
    // Scrambled staging order.
    stage(WireKind::Instr, 1, 7);
    stage(WireKind::IcnMsg, 1, 9);
    stage(WireKind::IcnMsg, 0, 2);
    stage(WireKind::IcnCredit, 0, 1);
    stage(WireKind::IcnMsg, 0, 1);

    EXPECT_FALSE(wire.empty());
    eq.run();
    EXPECT_TRUE(wire.empty());

    ASSERT_EQ(applied.size(), 5u);
    EXPECT_EQ(applied[0].kind, WireKind::IcnMsg);    // sender 0 seq 1
    EXPECT_EQ(applied[0].seq, 1u);
    EXPECT_EQ(applied[1].kind, WireKind::IcnMsg);    // sender 0 seq 2
    EXPECT_EQ(applied[1].seq, 2u);
    EXPECT_EQ(applied[2].sender, 1u);                // sender 1 next
    EXPECT_EQ(applied[2].kind, WireKind::IcnMsg);
    EXPECT_EQ(applied[3].kind, WireKind::IcnCredit); // kinds in order
    EXPECT_EQ(applied[4].kind, WireKind::Instr);
    EXPECT_EQ(eq.curTick(), 5000u);
}

/** Cross-shard sends sit in the sender's outbox until the boundary
 *  flush, then arrive at their stamped tick on the receiver's
 *  queue. */
TEST(WireTest, CrossShardDeliveryWaitsForFlush)
{
    EventQueue eqA(EventQueue::Impl::Indexed);
    EventQueue eqB(EventQueue::Impl::Indexed);
    Wire wire(2, 2, 1000);

    std::vector<Tick> arrivals;
    wire.bindEndpoint(0, 0, &eqA, [](Deliverable &&) {});
    wire.bindEndpoint(1, 1, &eqB, [&](Deliverable &&) {
        arrivals.push_back(eqB.curTick());
    });

    Deliverable d;
    d.when = 2500;
    d.receiver = 1;
    wire.send(0, std::move(d));  // endpoint 0 lives on shard 0

    // Still in shard 0's outbox: the receiver's queue has nothing.
    EXPECT_FALSE(wire.empty());
    EXPECT_TRUE(eqB.empty());

    wire.flushOutboxes();
    EXPECT_FALSE(eqB.empty());
    eqB.run();
    EXPECT_EQ(arrivals, (std::vector<Tick>{2500}));
    EXPECT_TRUE(wire.empty());
}

// --- multiport memory -----------------------------------------------------------

TEST(BoundedQueueTest, FifoAndStats)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.empty());
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_TRUE(q.full());
    q.noteBlocked();
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    q.push(4);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.highWater(), 3u);
    EXPECT_EQ(q.totalEnqueued(), 4u);
    EXPECT_EQ(q.blockedPushes(), 1u);
}

TEST(BoundedQueueDeath, OverflowAndUnderflowPanic)
{
    BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "full");
    q.pop();
    EXPECT_DEATH(q.pop(), "empty");
}

TEST(ClusterArbiterTest, SerializesOverlappingHolds)
{
    ClusterArbiter arb;
    // Port 1 holds [100, 150); port 2 asks at 120 -> granted at 150.
    EXPECT_EQ(arb.acquire(100, 50), 100u);
    EXPECT_EQ(arb.acquire(120, 30), 150u);
    // Port 3 asks after everything drained: immediate.
    EXPECT_EQ(arb.acquire(500, 10), 500u);
    EXPECT_EQ(arb.grants(), 3u);
    EXPECT_EQ(arb.waitedTicks(), 30u);
}

// --- sync tree ---------------------------------------------------------------------

TEST(SyncTreeTest, CompleteNeedsBarrierIdleAndDrainedCounters)
{
    SyncTree sync(2);
    EXPECT_FALSE(sync.complete());  // not at barrier

    sync.setAtBarrier(0, true, 10);
    sync.setAtBarrier(1, true, 20);
    EXPECT_TRUE(sync.complete());
    EXPECT_EQ(sync.lastMutation(), 20u);

    sync.created(0, 30);
    EXPECT_FALSE(sync.complete());
    EXPECT_EQ(sync.inFlight(), 1);
    sync.consumed(0, 40);
    EXPECT_TRUE(sync.complete());
    EXPECT_EQ(sync.lastMutation(), 40u);

    sync.setIdle(0, false, 50);
    EXPECT_FALSE(sync.complete());
    sync.setIdle(0, true, 60);
    EXPECT_TRUE(sync.complete());
}

TEST(SyncTreeTest, TieredLevelsTrackedSeparately)
{
    SyncTree sync(1);
    sync.created(0, 1);
    sync.created(3, 2);
    sync.created(3, 3);
    EXPECT_EQ(sync.counter(0), 1);
    EXPECT_EQ(sync.counter(3), 2);
    EXPECT_EQ(sync.inFlight(), 3);
    sync.consumed(3, 4);
    EXPECT_EQ(sync.counter(3), 1);
    EXPECT_EQ(SyncTree::level(5), 5);
    EXPECT_EQ(SyncTree::level(500), numSyncLevels - 1);
}

TEST(SyncTreeTest, CallbackFiresOnCompletion)
{
    SyncTree sync(2);
    int fired = 0;
    sync.onComplete([&] { ++fired; });
    sync.setAtBarrier(0, true, 10);
    EXPECT_EQ(fired, 0);
    sync.created(1, 20);
    sync.setAtBarrier(1, true, 30);
    EXPECT_EQ(fired, 0);  // counter still nonzero
    sync.consumed(1, 40);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sync.lastMutation(), 40u);
}

TEST(SyncTreeTest, QuiescentIgnoresBarrierLines)
{
    SyncTree sync(2);
    EXPECT_TRUE(sync.quiescent());
    sync.setIdle(1, false, 10);
    EXPECT_FALSE(sync.quiescent());
    sync.setIdle(1, true, 20);
    sync.created(2, 30);
    EXPECT_FALSE(sync.quiescent());
    sync.consumed(2, 40);
    EXPECT_TRUE(sync.quiescent());
}

/** Counters are signed: a consumption can land on a different tree
 *  (shard) than its creation, so one tree's counter legitimately
 *  goes negative — only the cross-tree sum is meaningful. */
TEST(SyncTreeTest, CountersAreSignedAcrossTrees)
{
    SyncTree a(1);
    SyncTree b(1);
    a.created(0, 10);
    b.consumed(0, 20);
    EXPECT_EQ(a.counter(0), 1);
    EXPECT_EQ(b.counter(0), -1);
    EXPECT_EQ(a.counter(0) + b.counter(0), 0);
    EXPECT_EQ(a.totalCreated(), 1u);
    EXPECT_EQ(b.totalConsumed(), 1u);
}

// --- perf net ----------------------------------------------------------------------

TEST(PerfNetTest, ShiftTimeAt2Mbps)
{
    TimingParams t;
    PerfNet net(4, t, true);
    // 32 bits at 2 Mb/s = 16 us.
    EXPECT_EQ(net.shiftTime(), 16 * ticksPerUs);
}

TEST(PerfNetTest, RecordsTimestampedAtArrival)
{
    TimingParams t;
    PerfNet net(4, t, true);
    PerfNet::View view(&net);
    view.emit(2, 1000, PerfEvent::MsgSent, 7);
    net.fold({&view});
    ASSERT_EQ(net.records().size(), 1u);
    EXPECT_EQ(net.records()[0].timestamp, 1000 + net.shiftTime());
    EXPECT_EQ(net.records()[0].pe, 2u);
    EXPECT_EQ(net.records()[0].event, PerfEvent::MsgSent);
    EXPECT_EQ(net.records()[0].status, 7u);
}

TEST(PerfNetTest, BusyPortDropsRecords)
{
    TimingParams t;
    PerfNet net(2, t, true);
    PerfNet::View view(&net);
    view.emit(0, 0, PerfEvent::TaskStart, 1);
    view.emit(0, 100, PerfEvent::TaskEnd, 2);  // port still shifting
    view.emit(1, 100, PerfEvent::TaskStart, 3);  // other PE: fine
    view.emit(0, net.shiftTime(), PerfEvent::TaskEnd, 4);  // done
    net.fold({&view});
    EXPECT_EQ(net.dropped(), 1u);
    EXPECT_EQ(net.records().size(), 3u);
    EXPECT_EQ(net.emitted.value(), 4.0);
}

/** Two views sharing the master's per-PE serial ports: port
 *  contention spans views, and the fold orders the central FIFO by
 *  (timestamp, pe) regardless of fold argument order. */
TEST(PerfNetTest, FoldMergesViewsInTimestampOrder)
{
    TimingParams t;
    PerfNet net(3, t, true);
    PerfNet::View a(&net);
    PerfNet::View b(&net);
    b.emit(2, 500, PerfEvent::MsgReceived, 2);
    a.emit(0, 0, PerfEvent::TaskStart, 1);
    a.emit(1, 900, PerfEvent::MsgSent, 3);
    net.fold({&a, &b});
    ASSERT_EQ(net.records().size(), 3u);
    EXPECT_EQ(net.records()[0].pe, 0u);
    EXPECT_EQ(net.records()[1].pe, 2u);
    EXPECT_EQ(net.records()[2].pe, 1u);
    EXPECT_EQ(net.emitted.value(), 3.0);
    // A second fold of the (drained) views adds nothing.
    net.fold({&a, &b});
    EXPECT_EQ(net.records().size(), 3u);
    EXPECT_EQ(net.emitted.value(), 3.0);
}

TEST(PerfNetTest, DisabledNetworkIsSilent)
{
    TimingParams t;
    PerfNet net(2, t, false);
    PerfNet::View view(&net);
    view.emit(0, 0, PerfEvent::TaskStart, 1);
    net.fold({&view});
    EXPECT_TRUE(net.records().empty());
    EXPECT_EQ(net.emitted.value(), 0.0);
}

// --- kb image -----------------------------------------------------------------------

TEST(KbImageTest, TablesMirrorNetwork)
{
    SemanticNetwork net = makeRandomKb(100, 3.0, 3, 7);
    MachineConfig cfg;
    cfg.numClusters = 4;
    cfg.partition = PartitionStrategy::RoundRobin;
    KbImage image(net, cfg);

    EXPECT_EQ(image.numClusters(), 4u);
    EXPECT_EQ(image.numNodes(), 100u);

    std::uint64_t slots = 0;
    for (ClusterId c = 0; c < 4; ++c) {
        const ClusterKb &ckb = image.cluster(c);
        for (LocalNodeId l = 0; l < ckb.numLocalNodes(); ++l) {
            NodeId g = ckb.globalId(l);
            EXPECT_EQ(ckb.color(l), net.color(g));
            auto expect = net.links(g);
            const auto &got = ckb.slots(l);
            ASSERT_EQ(got.size(), expect.size());
            for (std::size_t k = 0; k < got.size(); ++k) {
                EXPECT_EQ(got[k].rel, expect[k].rel);
                EXPECT_EQ(got[k].destGlobal, expect[k].dst);
                Placement p = image.place(expect[k].dst);
                EXPECT_EQ(got[k].destCluster, p.cluster);
                EXPECT_EQ(got[k].destLocal, p.local);
            }
            slots += got.size();
        }
    }
    EXPECT_EQ(slots, net.numLinks());
}

TEST(KbImageTest, SubnodeChainsForHighFanout)
{
    SemanticNetwork net = makeStarKb(40);  // hub fanout 40
    MachineConfig cfg;
    cfg.numClusters = 2;
    cfg.partition = PartitionStrategy::Sequential;
    cfg.maxNodesPerCluster = capacity::maxNodes;
    KbImage image(net, cfg);

    Placement hub = image.place(0);
    const ClusterKb &ckb = image.cluster(hub.cluster);
    // 40 slots -> ceil(40/16) = 3 relation rows (head + 2 subnodes).
    EXPECT_EQ(ckb.numRows(hub.local), 3u);
    EXPECT_EQ(ckb.subnodeRows(), 2u);

    // Leaves occupy one row even with zero links.
    Placement leaf = image.place(1);
    EXPECT_EQ(image.cluster(leaf.cluster).numRows(leaf.local), 1u);
}

TEST(KbImageTest, SlotEditing)
{
    SemanticNetwork net = makeChainKb(6);
    MachineConfig cfg;
    cfg.numClusters = 2;
    cfg.partition = PartitionStrategy::Sequential;
    KbImage image(net, cfg);

    ClusterKb &ckb = image.cluster(0);
    ckb.addSlot(0, RelSlot{9, 1, 0, 3, 2.5f});
    EXPECT_EQ(ckb.slots(0).size(), 2u);
    EXPECT_TRUE(ckb.setSlotWeight(0, 9, 3, 4.5f));
    EXPECT_FLOAT_EQ(ckb.slots(0)[1].weight, 4.5f);
    EXPECT_FALSE(ckb.setSlotWeight(0, 9, 4, 1.0f));
    EXPECT_TRUE(ckb.removeSlot(0, 9, 3));
    EXPECT_FALSE(ckb.removeSlot(0, 9, 3));
    EXPECT_EQ(ckb.slots(0).size(), 1u);
}

TEST(KbImageTest, MarkerAccessAndFlatten)
{
    SemanticNetwork net = makeChainKb(10);
    MachineConfig cfg;
    cfg.numClusters = 3;
    cfg.partition = PartitionStrategy::RoundRobin;
    KbImage image(net, cfg);

    Placement p = image.place(7);
    image.cluster(p.cluster).markers().set(5, p.local, 2.5f, 7);

    EXPECT_TRUE(image.markerSet(5, 7));
    EXPECT_FLOAT_EQ(image.markerValue(5, 7), 2.5f);
    EXPECT_EQ(image.markerOrigin(5, 7), 7u);
    EXPECT_FALSE(image.markerSet(5, 6));

    MarkerStore flat = image.flatten();
    EXPECT_TRUE(flat.test(5, 7));
    EXPECT_FLOAT_EQ(flat.value(5, 7), 2.5f);
    EXPECT_EQ(flat.count(5), 1u);
}

} // namespace
} // namespace snap
