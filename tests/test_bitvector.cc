/**
 * @file
 * Unit and property tests for the packed bit vector behind the
 * marker status table: 64-bit backing words, word-seam behavior,
 * last-partial-word masking, and the bulk word-parallel kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvector.hh"
#include "common/rng.hh"

namespace snap
{
namespace
{

TEST(BitVector, StartsEmpty)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_EQ(bv.numWords(), 2u);  // 64-bit backing words
    EXPECT_TRUE(bv.none());
    EXPECT_FALSE(bv.any());
    EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, SetTestClear)
{
    BitVector bv(70);
    EXPECT_FALSE(bv.set(5));
    EXPECT_TRUE(bv.test(5));
    EXPECT_TRUE(bv.set(5));  // previous value
    EXPECT_FALSE(bv.set(64));
    EXPECT_TRUE(bv.test(64));
    EXPECT_EQ(bv.count(), 2u);
    EXPECT_TRUE(bv.clear(5));
    EXPECT_FALSE(bv.test(5));
    EXPECT_FALSE(bv.clear(5));
    EXPECT_EQ(bv.count(), 1u);
}

TEST(BitVector, WordAccessMasksTail)
{
    BitVector bv(72);  // 2 words, 8 tail bits in word 1
    bv.setWord(1, ~BitVector::Word{0});
    EXPECT_EQ(bv.word(1), 0xffu);
    EXPECT_EQ(bv.count(), 8u);
    bv.setAll();
    EXPECT_EQ(bv.count(), 72u);
    EXPECT_EQ(bv.word(1), 0xffu);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, FindNextWalksSetBits)
{
    BitVector bv(200);
    for (std::uint32_t i : {0u, 31u, 32u, 63u, 64u, 199u})
        bv.set(i);
    std::vector<std::uint32_t> found;
    for (std::uint32_t i = bv.findNext(0); i < bv.size();
         i = bv.findNext(i + 1)) {
        found.push_back(i);
    }
    EXPECT_EQ(found,
              (std::vector<std::uint32_t>{0, 31, 32, 63, 64, 199}));
}

TEST(BitVector, FindNextAcrossWordSeams)
{
    // Adjacent bits straddling every 64-bit boundary of four words.
    BitVector bv(256);
    for (std::uint32_t seam : {64u, 128u, 192u}) {
        bv.set(seam - 1);
        bv.set(seam);
    }
    std::vector<std::uint32_t> found;
    bv.collect(found);
    EXPECT_EQ(found, (std::vector<std::uint32_t>{63, 64, 127, 128,
                                                 191, 192}));
    // Starting exactly on a seam skips the bit just before it.
    EXPECT_EQ(bv.findNext(64), 64u);
    EXPECT_EQ(bv.findNext(65), 127u);
    // Starting mid-word finds the next seam pair.
    EXPECT_EQ(bv.findNext(129), 191u);
}

TEST(BitVector, FindNextOnEmpty)
{
    BitVector bv(65);
    EXPECT_EQ(bv.findNext(0), 65u);
    EXPECT_EQ(bv.findNext(64), 65u);
    EXPECT_EQ(bv.findNext(65), 65u);
    EXPECT_EQ(bv.findNext(9999), 65u);
}

TEST(BitVector, ForEachSetMatchesFindNext)
{
    BitVector bv(300);
    for (std::uint32_t i : {0u, 63u, 64u, 65u, 127u, 128u, 255u, 299u})
        bv.set(i);
    std::vector<std::uint32_t> viaFind, viaForEach;
    for (std::uint32_t i = bv.findNext(0); i < bv.size();
         i = bv.findNext(i + 1)) {
        viaFind.push_back(i);
    }
    bv.forEachSet([&](std::uint32_t i) { viaForEach.push_back(i); });
    EXPECT_EQ(viaForEach, viaFind);
}

TEST(BitVector, CollectMatchesTests)
{
    BitVector bv(90);
    bv.set(3);
    bv.set(89);
    bv.set(31);
    std::vector<std::uint32_t> out;
    bv.collect(out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{3, 31, 89}));
}

TEST(BitVector, EqualityComparesContent)
{
    BitVector a(50), b(50), c(51);
    a.set(10);
    b.set(10);
    EXPECT_TRUE(a == b);
    b.set(11);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVector, ZeroSize)
{
    BitVector bv(0);
    EXPECT_EQ(bv.size(), 0u);
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.findNext(0), 0u);
    bv.setAll();
    EXPECT_EQ(bv.count(), 0u);
    std::uint32_t visits = 0;
    bv.forEachSet([&](std::uint32_t) { ++visits; });
    EXPECT_EQ(visits, 0u);
}

// --- bulk word-parallel operations --------------------------------------

TEST(BitVectorBulk, AndOrAndNotBasics)
{
    BitVector a(130), b(130);
    for (std::uint32_t i : {0u, 63u, 64u, 100u, 129u})
        a.set(i);
    for (std::uint32_t i : {0u, 64u, 101u, 129u})
        b.set(i);

    BitVector conj = a;
    conj.andWith(b);
    std::vector<std::uint32_t> out;
    conj.collect(out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 64, 129}));

    BitVector disj = a;
    disj.orWith(b);
    out.clear();
    disj.collect(out);
    EXPECT_EQ(out,
              (std::vector<std::uint32_t>{0, 63, 64, 100, 101, 129}));

    BitVector diff = a;
    diff.andNotWith(b);
    out.clear();
    diff.collect(out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{63, 100}));
}

TEST(BitVectorBulk, PartialTailWordStaysMasked)
{
    // 70 bits: 6 valid bits in the last word.  Bulk ops on full
    // vectors must never resurrect tail bits past size(), and
    // count() must not see them.
    BitVector a(70), b(70);
    a.setAll();
    b.setAll();
    EXPECT_EQ(a.count(), 70u);

    BitVector disj = a;
    disj.orWith(b);
    EXPECT_EQ(disj.count(), 70u);
    EXPECT_EQ(disj.word(1), 0x3fu);
    EXPECT_EQ(disj.findNext(69), 69u);

    BitVector conj = a;
    conj.andWith(b);
    EXPECT_EQ(conj.count(), 70u);
    EXPECT_EQ(conj.word(1), 0x3fu);

    BitVector diff = a;
    diff.andNotWith(b);
    EXPECT_TRUE(diff.none());
    EXPECT_EQ(diff.word(1), 0u);
}

TEST(BitVectorBulk, EmptyAndFullOperands)
{
    BitVector full(96), empty(96);
    full.setAll();

    BitVector x = full;
    x.andWith(empty);
    EXPECT_TRUE(x.none());

    x = empty;
    x.orWith(full);
    EXPECT_EQ(x.count(), 96u);
    EXPECT_TRUE(x == full);

    x = full;
    x.andNotWith(empty);
    EXPECT_TRUE(x == full);

    x = full;
    x.andNotWith(full);
    EXPECT_TRUE(x.none());
}

class BitVectorProperty
    : public ::testing::TestWithParam<std::uint32_t>
{
};

/** Random set/clear sequence agrees with a std::set model. */
TEST_P(BitVectorProperty, AgreesWithSetModel)
{
    std::uint32_t n = GetParam();
    BitVector bv(n);
    std::set<std::uint32_t> model;
    Rng rng(n * 977 + 5);

    for (int step = 0; step < 2000; ++step) {
        auto idx = static_cast<std::uint32_t>(rng.below(n));
        if (rng.chance(0.5)) {
            bool was = bv.set(idx);
            EXPECT_EQ(was, model.count(idx) != 0);
            model.insert(idx);
        } else {
            bool was = bv.clear(idx);
            EXPECT_EQ(was, model.count(idx) != 0);
            model.erase(idx);
        }
    }
    EXPECT_EQ(bv.count(), model.size());
    std::vector<std::uint32_t> out;
    bv.collect(out);
    std::vector<std::uint32_t> expect(model.begin(), model.end());
    EXPECT_EQ(out, expect);

    // Popcount over words equals count().
    std::uint32_t pop = 0;
    for (std::uint32_t w = 0; w < bv.numWords(); ++w)
        pop += static_cast<std::uint32_t>(
            __builtin_popcountll(bv.word(w)));
    EXPECT_EQ(pop, bv.count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorProperty,
                         ::testing::Values(1u, 31u, 32u, 33u, 63u,
                                           64u, 65u, 100u, 1024u));

/** Bulk ops agree with per-bit evaluation on random vectors,
 *  including sizes that exercise the partial last word. */
TEST_P(BitVectorProperty, BulkOpsMatchScalar)
{
    std::uint32_t n = GetParam();
    BitVector a(n), b(n);
    Rng rng(n * 131 + 7);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (rng.chance(0.4))
            a.set(i);
        if (rng.chance(0.4))
            b.set(i);
    }

    BitVector conj = a, disj = a, diff = a;
    conj.andWith(b);
    disj.orWith(b);
    diff.andNotWith(b);

    std::uint32_t nAnd = 0, nOr = 0, nAndNot = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(conj.test(i), a.test(i) && b.test(i));
        EXPECT_EQ(disj.test(i), a.test(i) || b.test(i));
        EXPECT_EQ(diff.test(i), a.test(i) && !b.test(i));
        nAnd += conj.test(i);
        nOr += disj.test(i);
        nAndNot += diff.test(i);
    }
    EXPECT_EQ(conj.count(), nAnd);
    EXPECT_EQ(disj.count(), nOr);
    EXPECT_EQ(diff.count(), nAndNot);
}

TEST(BitVectorDeath, OutOfRangePanics)
{
    BitVector bv(10);
    EXPECT_DEATH(bv.test(10), "bit index");
    EXPECT_DEATH(bv.set(11), "bit index");
    EXPECT_DEATH((void)bv.word(1), "word index");
    BitVector other(11);
    EXPECT_DEATH(bv.andWith(other), "size mismatch");
}

} // namespace
} // namespace snap
