/**
 * @file
 * Unit and property tests for the packed bit vector behind the
 * marker status table.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvector.hh"
#include "common/rng.hh"

namespace snap
{
namespace
{

TEST(BitVector, StartsEmpty)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_EQ(bv.numWords(), 4u);
    EXPECT_TRUE(bv.none());
    EXPECT_FALSE(bv.any());
    EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, SetTestClear)
{
    BitVector bv(70);
    EXPECT_FALSE(bv.set(5));
    EXPECT_TRUE(bv.test(5));
    EXPECT_TRUE(bv.set(5));  // previous value
    EXPECT_FALSE(bv.set(64));
    EXPECT_TRUE(bv.test(64));
    EXPECT_EQ(bv.count(), 2u);
    EXPECT_TRUE(bv.clear(5));
    EXPECT_FALSE(bv.test(5));
    EXPECT_FALSE(bv.clear(5));
    EXPECT_EQ(bv.count(), 1u);
}

TEST(BitVector, WordAccessMasksTail)
{
    BitVector bv(40);  // 2 words, 8 tail bits in word 1
    bv.setWord(1, 0xffffffffu);
    EXPECT_EQ(bv.word(1), 0xffu);
    EXPECT_EQ(bv.count(), 8u);
    bv.setAll();
    EXPECT_EQ(bv.count(), 40u);
    EXPECT_EQ(bv.word(1), 0xffu);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
}

TEST(BitVector, FindNextWalksSetBits)
{
    BitVector bv(200);
    for (std::uint32_t i : {0u, 31u, 32u, 63u, 64u, 199u})
        bv.set(i);
    std::vector<std::uint32_t> found;
    for (std::uint32_t i = bv.findNext(0); i < bv.size();
         i = bv.findNext(i + 1)) {
        found.push_back(i);
    }
    EXPECT_EQ(found,
              (std::vector<std::uint32_t>{0, 31, 32, 63, 64, 199}));
}

TEST(BitVector, FindNextOnEmpty)
{
    BitVector bv(65);
    EXPECT_EQ(bv.findNext(0), 65u);
    EXPECT_EQ(bv.findNext(64), 65u);
    EXPECT_EQ(bv.findNext(65), 65u);
    EXPECT_EQ(bv.findNext(9999), 65u);
}

TEST(BitVector, CollectMatchesTests)
{
    BitVector bv(90);
    bv.set(3);
    bv.set(89);
    bv.set(31);
    std::vector<std::uint32_t> out;
    bv.collect(out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{3, 31, 89}));
}

TEST(BitVector, EqualityComparesContent)
{
    BitVector a(50), b(50), c(51);
    a.set(10);
    b.set(10);
    EXPECT_TRUE(a == b);
    b.set(11);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVector, ZeroSize)
{
    BitVector bv(0);
    EXPECT_EQ(bv.size(), 0u);
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.findNext(0), 0u);
}

class BitVectorProperty
    : public ::testing::TestWithParam<std::uint32_t>
{
};

/** Random set/clear sequence agrees with a std::set model. */
TEST_P(BitVectorProperty, AgreesWithSetModel)
{
    std::uint32_t n = GetParam();
    BitVector bv(n);
    std::set<std::uint32_t> model;
    Rng rng(n * 977 + 5);

    for (int step = 0; step < 2000; ++step) {
        auto idx = static_cast<std::uint32_t>(rng.below(n));
        if (rng.chance(0.5)) {
            bool was = bv.set(idx);
            EXPECT_EQ(was, model.count(idx) != 0);
            model.insert(idx);
        } else {
            bool was = bv.clear(idx);
            EXPECT_EQ(was, model.count(idx) != 0);
            model.erase(idx);
        }
    }
    EXPECT_EQ(bv.count(), model.size());
    std::vector<std::uint32_t> out;
    bv.collect(out);
    std::vector<std::uint32_t> expect(model.begin(), model.end());
    EXPECT_EQ(out, expect);

    // Popcount over words equals count().
    std::uint32_t pop = 0;
    for (std::uint32_t w = 0; w < bv.numWords(); ++w)
        pop += __builtin_popcount(bv.word(w));
    EXPECT_EQ(pop, bv.count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorProperty,
                         ::testing::Values(1u, 31u, 32u, 33u, 64u,
                                           100u, 1024u));

TEST(BitVectorDeath, OutOfRangePanics)
{
    BitVector bv(10);
    EXPECT_DEATH(bv.test(10), "bit index");
    EXPECT_DEATH(bv.set(11), "bit index");
    EXPECT_DEATH((void)bv.word(1), "word index");
}

} // namespace
} // namespace snap
