/**
 * @file
 * Tests for the concurrent query-serving subsystem: the bounded MPMC
 * queue, the latency histogram, thread-safe logging, shared-image
 * replication, and the engine's determinism / session / admission
 * semantics.  The concurrency tests double as the TSan CI workload.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/histogram.hh"
#include "common/logging.hh"
#include "serve/engine.hh"
#include "serve/request_queue.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

using serve::BoundedQueue;
using serve::Request;
using serve::RequestStatus;
using serve::Response;
using serve::ServeConfig;
using serve::ServeEngine;

// --- bounded queue ------------------------------------------------------

TEST(BoundedQueue, FifoAndBackpressure)
{
    BoundedQueue<int> q(3);
    EXPECT_EQ(q.capacity(), 3u);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_FALSE(q.tryPush(4)) << "full queue must reject";
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.highWater(), 3u);

    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_TRUE(q.tryPush(5));
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.pop().value(), 5);

    q.close();
    EXPECT_FALSE(q.tryPush(6)) << "closed queue must reject";
    EXPECT_FALSE(q.pop().has_value())
        << "pop on a closed empty queue signals consumer exit";
}

TEST(BoundedQueue, DrainsAfterClose)
{
    BoundedQueue<int> q(4);
    ASSERT_TRUE(q.tryPush(7));
    ASSERT_TRUE(q.tryPush(8));
    q.close();
    EXPECT_EQ(q.pop().value(), 7);
    EXPECT_EQ(q.pop().value(), 8);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ConcurrentProducersConsumers)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> q(64);

    std::mutex mu;
    std::set<int> received;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            while (auto v = q.pop()) {
                std::lock_guard<std::mutex> lock(mu);
                received.insert(*v);
            }
        });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int v = p * kPerProducer + i;
                // Spin through transient fullness: the queue is
                // intentionally smaller than the item count.
                while (!q.tryPush(v))
                    std::this_thread::yield();
            }
        });
    }
    for (auto &t : producers)
        t.join();
    // Wait for the consumers to drain the queue, then release them.
    while (q.depth() > 0)
        std::this_thread::yield();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(received.size(),
              static_cast<std::size_t>(kProducers * kPerProducer))
        << "every item delivered exactly once";
}

// --- histogram ----------------------------------------------------------

TEST(Histogram, ExactStatsAndQuantileBounds)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);

    // Log-linear buckets bound the relative error at ~1/8.
    EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 / 8.0);
    EXPECT_NEAR(h.quantile(0.95), 950.0, 950.0 / 8.0);
    EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 / 8.0);
    EXPECT_LE(h.quantile(1.0), 1000.0);
}

TEST(Histogram, MergeAndEdges)
{
    Histogram a, b;
    a.record(0.0);      // clamps into the bottom bucket
    a.record(1e-9);
    b.record(1e12);     // clamps into the top bucket
    b.record(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 1e12);

    Histogram empty;
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

// --- thread-safe logging ------------------------------------------------

std::mutex g_cap_mu;
std::vector<std::string> g_captured;

void
captureHook(LogLevel, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_cap_mu);
    g_captured.push_back(msg);
}

TEST(Logging, ConcurrentEmitAndHookSwap)
{
    {
        std::lock_guard<std::mutex> lock(g_cap_mu);
        g_captured.clear();
    }
    Logger::Hook old = Logger::setHook(&captureHook);

    constexpr int kThreads = 4;
    constexpr int kEach = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kEach; ++i)
                snap_warn("serve-log-test t%d i%d", t, i);
        });
    }
    // Swap the sink while writers are live: setHook must serialize
    // against in-flight emits (no torn reads of the hook pointer).
    for (int s = 0; s < 20; ++s) {
        Logger::Hook h = Logger::setHook(&captureHook);
        EXPECT_EQ(h, &captureHook);
        std::this_thread::yield();
    }
    for (auto &t : threads)
        t.join();
    Logger::setHook(old);

    std::lock_guard<std::mutex> lock(g_cap_mu);
    EXPECT_EQ(g_captured.size(),
              static_cast<std::size_t>(kThreads * kEach));
    for (const std::string &msg : g_captured) {
        EXPECT_EQ(msg.rfind("serve-log-test t", 0), 0u)
            << "interleaved/torn message: " << msg;
    }
}

// --- shared image replication -------------------------------------------

Program
countQuery(NodeId start, RelationType rel, float threshold)
{
    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(rel));
    prog.append(Instruction::searchNode(start, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    if (threshold > 0) {
        prog.append(Instruction::funcMarker(
            1, ScalarFunc{ScalarFunc::Op::ThresholdGe, threshold}));
    }
    prog.append(Instruction::collectMarker(1));
    return prog;
}

TEST(SharedImage, ReplicaMatchesDirectLoad)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    MachineConfig cfg;
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;

    KbImage master(net, cfg);

    SnapMachine direct(cfg);
    direct.loadKb(net);
    SnapMachine replica(cfg);
    replica.loadKb(master);

    Program q = countQuery(0, inc, 0.0f);
    RunResult a = direct.run(q);
    RunResult b = replica.run(q);
    test::expectSameResults(a.results, b.results);
    EXPECT_EQ(a.wallTicks, b.wallTicks);

    // The replica's marker state is private: running on it must not
    // leak into the master image.
    EXPECT_GT(replica.image().flatten().count(1), 0u);
    EXPECT_EQ(master.flatten().count(1), 0u);
}

TEST(SharedImage, ResetMarkersClearsEverything)
{
    SemanticNetwork net = makeTreeKb(120, 3);
    RelationType inc = net.relationId("includes");
    MachineConfig cfg = MachineConfig::singleCluster(2);
    SnapMachine machine(cfg);
    machine.loadKb(net);
    machine.run(countQuery(0, inc, 0.0f));
    ASSERT_GT(machine.image().flatten().count(1), 0u);

    machine.image().resetMarkers();
    MarkerStore flat = machine.image().flatten();
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m)
        EXPECT_EQ(flat.count(static_cast<MarkerId>(m)), 0u);
}

// --- the engine ---------------------------------------------------------

ServeConfig
smallEngineConfig(std::uint32_t workers)
{
    ServeConfig cfg;
    cfg.numWorkers = workers;
    cfg.machine.numClusters = 8;
    return cfg;
}

TEST(ServeEngine, MatchesDirectExecutionAndIsDeterministic)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    RelationType isa = net.relationId("is-a");

    std::vector<Program> mix;
    for (NodeId n = 0; n < 8; ++n)
        mix.push_back(countQuery(n * 37 % 300,
                                 n % 2 ? inc : isa, 0.0f));

    // Direct reference: one machine, markers cleared per query.
    MachineConfig mcfg = smallEngineConfig(1).machine;
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    std::vector<RunResult> expect;
    for (const Program &p : mix) {
        direct.image().resetMarkers();
        expect.push_back(direct.run(p));
    }

    for (std::uint32_t workers : {1u, 2u, 3u}) {
        ServeEngine engine(net, smallEngineConfig(workers));
        std::vector<std::future<Response>> futures;
        for (const Program &p : mix) {
            Request req;
            req.prog = p;
            futures.push_back(engine.submit(std::move(req)));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            Response resp = futures[i].get();
            ASSERT_EQ(resp.status, RequestStatus::Ok);
            EXPECT_EQ(resp.id, i);
            EXPECT_NE(resp.rngSeed, 0u);
            test::expectSameResults(resp.results,
                                    expect[i].results);
            EXPECT_EQ(resp.wallTicks, expect[i].wallTicks)
                << "simulated time must not depend on worker "
                   "count (query " << i << ", workers "
                << workers << ")";
        }
        serve::MetricsSnapshot m = engine.metricsSnapshot();
        EXPECT_EQ(m.completed, mix.size());
        EXPECT_EQ(m.rejected, 0u);
        EXPECT_EQ(m.totalMs.count(), mix.size());
    }
}

TEST(ServeEngine, SessionCarriesMarkerState)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");

    Program first = countQuery(0, inc, 0.0f);
    Program second;
    second.append(Instruction::funcMarker(
        1, ScalarFunc{ScalarFunc::Op::ThresholdGe, 3.0f}));
    second.append(Instruction::collectMarker(1));

    // Reference: uninterrupted run on one machine.
    MachineConfig mcfg = smallEngineConfig(1).machine;
    SnapMachine straight(mcfg);
    straight.loadKb(net);
    straight.run(first);
    RunResult expect = straight.run(second);

    ServeEngine engine(net, smallEngineConfig(2));
    Request r1;
    r1.sessionId = "parse-1";
    r1.prog = first;
    Request r2;
    r2.sessionId = "parse-1";
    r2.prog = second;
    auto f1 = engine.submit(std::move(r1));
    auto f2 = engine.submit(std::move(r2));

    ASSERT_EQ(f1.get().status, RequestStatus::Ok);
    Response resp = f2.get();
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    test::expectSameResults(resp.results, expect.results);

    // The session's checkpointable state survives the requests.
    EXPECT_EQ(engine.sessionIds(),
              std::vector<std::string>{"parse-1"});
    EXPECT_GT(engine.sessionMarkers("parse-1").count(1), 0u);
}

TEST(ServeEngine, SessionRequestsExecuteInSubmissionOrder)
{
    SemanticNetwork net = makeTreeKb(64, 4);
    constexpr int kRounds = 12;

    // Request j: collect m0 (observing round j-1's value), then
    // overwrite m0 at node 0 with value j.  Any reordering or lost
    // update shows up as a wrong observed value.
    std::vector<Program> progs;
    for (int j = 0; j < kRounds; ++j) {
        Program p;
        p.append(Instruction::collectMarker(0));
        p.append(Instruction::searchNode(
            0, 0, static_cast<float>(j + 1)));
        progs.push_back(std::move(p));
    }

    ServeEngine engine(net, smallEngineConfig(3));
    std::vector<std::future<Response>> futures;
    for (int j = 0; j < kRounds; ++j) {
        Request req;
        req.sessionId = "ordered";
        req.prog = progs[j];
        futures.push_back(engine.submit(std::move(req)));
    }
    for (int j = 0; j < kRounds; ++j) {
        Response resp = futures[j].get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        ASSERT_EQ(resp.results.size(), 1u);
        const CollectResult &c = resp.results[0];
        if (j == 0) {
            EXPECT_TRUE(c.nodes.empty())
                << "round 0 must observe pristine state";
        } else {
            ASSERT_EQ(c.nodes.size(), 1u);
            EXPECT_EQ(c.nodes[0].node, 0u);
            EXPECT_FLOAT_EQ(c.nodes[0].value,
                            static_cast<float>(j));
        }
    }
    EXPECT_FLOAT_EQ(engine.sessionMarkers("ordered").value(0, 0),
                    static_cast<float>(kRounds));
}

TEST(ServeEngine, RejectsWhenQueueFull)
{
    SemanticNetwork net = makeTreeKb(64, 4);
    RelationType inc = net.relationId("includes");

    ServeConfig cfg = smallEngineConfig(1);
    cfg.queueCapacity = 2;
    cfg.startPaused = true;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        Request req;
        req.prog = countQuery(0, inc, 0.0f);
        futures.push_back(engine.submit(std::move(req)));
    }
    // Paused engine: exactly queueCapacity admissions succeed.
    EXPECT_EQ(futures[2].get().status, RequestStatus::Rejected);
    EXPECT_EQ(futures[3].get().status, RequestStatus::Rejected);

    engine.start();
    engine.drain();
    EXPECT_EQ(futures[0].get().status, RequestStatus::Ok);
    EXPECT_EQ(futures[1].get().status, RequestStatus::Ok);

    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.submitted, 4u);
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.rejected, 2u);
    EXPECT_EQ(m.queueHighWater, 2u);
}

TEST(ServeEngine, RejectedSessionTurnDoesNotBlockSuccessors)
{
    SemanticNetwork net = makeTreeKb(64, 4);
    RelationType inc = net.relationId("includes");

    ServeConfig cfg = smallEngineConfig(1);
    cfg.queueCapacity = 1;
    cfg.startPaused = true;
    ServeEngine engine(net, cfg);

    Request a;
    a.sessionId = "s";
    a.prog = countQuery(0, inc, 0.0f);
    Request b;
    b.sessionId = "s";
    b.prog = countQuery(0, inc, 0.0f);
    auto fa = engine.submit(std::move(a));
    auto fb = engine.submit(std::move(b));  // rejected: queue full
    EXPECT_EQ(fb.get().status, RequestStatus::Rejected);

    // A third request in the same session must still run even
    // though its predecessor's turn was cancelled.
    Request c;
    c.sessionId = "s";
    c.prog = countQuery(0, inc, 0.0f);
    engine.start();
    ASSERT_EQ(fa.get().status, RequestStatus::Ok);
    auto fc = engine.submit(std::move(c));
    EXPECT_EQ(fc.get().status, RequestStatus::Ok);
}

TEST(ServeEngine, QueueDeadlineTimesOut)
{
    SemanticNetwork net = makeTreeKb(64, 4);
    RelationType inc = net.relationId("includes");

    ServeConfig cfg = smallEngineConfig(1);
    cfg.startPaused = true;
    ServeEngine engine(net, cfg);

    Request doomed;
    doomed.prog = countQuery(0, inc, 0.0f);
    doomed.timeoutMs = 1.0;
    Request fine;
    fine.prog = countQuery(0, inc, 0.0f);
    auto f1 = engine.submit(std::move(doomed));
    auto f2 = engine.submit(std::move(fine));

    // Let the deadline lapse while the engine is still paused, so
    // the outcome does not depend on scheduling.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    engine.start();

    Response r1 = f1.get();
    EXPECT_EQ(r1.status, RequestStatus::TimedOut);
    EXPECT_TRUE(r1.results.empty());
    EXPECT_EQ(f2.get().status, RequestStatus::Ok)
        << "deadline-free request is unaffected";

    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.timedOut, 1u);
    EXPECT_EQ(m.completed, 1u);
}

TEST(ServeEngine, MetricsJsonIsWellFormed)
{
    SemanticNetwork net = makeTreeKb(64, 4);
    RelationType inc = net.relationId("includes");

    ServeEngine engine(net, smallEngineConfig(2));
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 6; ++i) {
        Request req;
        req.prog = countQuery(0, inc, 0.0f);
        futures.push_back(engine.submit(std::move(req)));
    }
    for (auto &f : futures)
        ASSERT_EQ(f.get().status, RequestStatus::Ok);

    std::string json =
        serve::metricsJson(engine.metricsSnapshot());
    for (const char *key :
         {"\"submitted\": 6", "\"completed\": 6", "\"rejected\": 0",
          "\"queue_wait_ms\"", "\"service_ms\"", "\"total_ms\"",
          "\"sim_us\"", "\"p95\"", "\"workers\"",
          "\"sim_makespan_us\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key << " in:\n" << json;
    }
    // Balanced braces/brackets as a cheap well-formedness probe.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

// --- queue extraction (the batch former's gulp primitive) ---------------

TEST(BoundedQueue, ExtractMatchingPreservesBothFifoOrders)
{
    BoundedQueue<int> q(8);
    for (int v : {1, 10, 2, 20, 3, 30})
        ASSERT_TRUE(q.tryPush(v));

    std::vector<int> out;
    std::size_t n = q.extractMatching(
        [](const int &v) { return v >= 10; }, 2, out,
        std::chrono::steady_clock::now());  // past deadline: no wait
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(out, (std::vector<int>{10, 20}));

    // Survivors keep FIFO order, including the unmatched 30 (the
    // limit was hit first).
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.pop().value(), 30);
    EXPECT_EQ(q.depth(), 0u);

    // The freed slots are reusable (ring compaction intact).
    for (int v = 100; v < 108; ++v)
        EXPECT_TRUE(q.tryPush(v));
    EXPECT_FALSE(q.tryPush(200));
    for (int v = 100; v < 108; ++v)
        EXPECT_EQ(q.pop().value(), v);
}

TEST(BoundedQueue, ExtractMatchingWaitsForLatePartners)
{
    BoundedQueue<int> q(8);
    ASSERT_TRUE(q.tryPush(5));
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.tryPush(6);
        q.tryPush(7);
    });
    std::vector<int> out;
    std::size_t n = q.extractMatching(
        [](const int &v) { return v >= 6; }, 2, out,
        std::chrono::steady_clock::now() +
            std::chrono::seconds(10));
    producer.join();
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(out, (std::vector<int>{6, 7}));
    EXPECT_EQ(q.pop().value(), 5);
}

TEST(BoundedQueue, ExtractMatchingUnblocksOnClose)
{
    BoundedQueue<int> q(4);
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.close();
    });
    std::vector<int> out;
    std::size_t n = q.extractMatching(
        [](const int &) { return true; }, 4, out,
        std::chrono::steady_clock::now() +
            std::chrono::seconds(60));
    closer.join();
    EXPECT_EQ(n, 0u);
}

// The gulp primitive racing producers, a plain-pop consumer, and a
// mid-stream close: every accepted item must come out exactly once,
// through exactly one of the two consumption paths, and every
// extracted item must satisfy the predicate.  (TSan workload.)
TEST(BoundedQueue, ConcurrentExtractPushCloseAccountsForEveryItem)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 400;
    BoundedQueue<int> q(32);

    std::vector<std::thread> producers;
    std::vector<std::vector<int>> accepted(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int v = p * 10'000 + i;
                // Retry on backpressure: the queue only closes after
                // the producers join, so every item lands eventually.
                while (!q.tryPush(v))
                    std::this_thread::yield();
                accepted[p].push_back(v);
            }
        });
    }

    std::vector<int> extracted;
    std::thread extractor([&] {
        auto even = [](const int &v) { return v % 2 == 0; };
        for (;;) {
            std::size_t n = q.extractMatching(
                even, 8, extracted,
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(1));
            if (n == 0 && q.closed())
                break;
        }
    });

    std::vector<int> popped;
    std::thread popper([&] {
        while (auto v = q.pop())
            popped.push_back(*v);
    });

    for (auto &t : producers)
        t.join();
    q.close();
    extractor.join();
    popper.join();

    for (int v : extracted)
        EXPECT_EQ(v % 2, 0) << "extractMatching broke its predicate";

    std::multiset<int> got(extracted.begin(), extracted.end());
    got.insert(popped.begin(), popped.end());
    std::multiset<int> want;
    for (const auto &vec : accepted)
        want.insert(vec.begin(), vec.end());
    EXPECT_EQ(got.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    EXPECT_EQ(got, want)
        << "an accepted item was lost or duplicated across the "
           "extract/pop race";
}

// --- lane batching ------------------------------------------------------

TEST(ServeEngine, BatchedAnswersMatchSoloBitForBit)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program prog = countQuery(0, inc, 0.0f);

    // Solo reference.
    MachineConfig mcfg = smallEngineConfig(1).machine;
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    RunResult ref = direct.run(prog);

    ServeConfig cfg = smallEngineConfig(1);
    cfg.startPaused = true;  // everything queues, then one gulp
    cfg.maxBatchLanes = 8;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.prog = prog;
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.start();
    for (auto &f : futures) {
        Response resp = f.get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        EXPECT_EQ(resp.batchLanes, 8u);
        EXPECT_EQ(resp.wallTicks, ref.wallTicks)
            << "batching must not change simulated time";
        test::expectSameResults(resp.results, ref.results);
    }

    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.completed, 8u);
    EXPECT_EQ(m.batches, 1u);
    EXPECT_EQ(m.batchedRequests, 8u);
    EXPECT_DOUBLE_EQ(m.batchLanes.mean(), 8.0);
}

TEST(ServeEngine, WideBatchCrossesLaneWordSeam)
{
    // 96 lanes: two row words with a 32-lane tail — the serve path's
    // first stop past the old single-word (64-lane) ceiling.  Also
    // pins the exact batch_lanes histogram: the log-linear histogram
    // it replaced had 8-wide buckets at 96 and would misreport the
    // quantiles.
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program prog = countQuery(0, inc, 0.0f);

    MachineConfig mcfg = smallEngineConfig(1).machine;
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    RunResult ref = direct.run(prog);

    ServeConfig cfg = smallEngineConfig(1);
    cfg.startPaused = true;
    cfg.maxBatchLanes = 96;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 96; ++i) {
        Request req;
        req.prog = prog;
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.start();
    for (auto &f : futures) {
        Response resp = f.get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        EXPECT_EQ(resp.batchLanes, 96u);
        EXPECT_EQ(resp.wallTicks, ref.wallTicks)
            << "wide batching must not change simulated time";
        test::expectSameResults(resp.results, ref.results);
    }

    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.completed, 96u);
    EXPECT_EQ(m.batches, 1u);
    EXPECT_EQ(m.batchedRequests, 96u);
    EXPECT_DOUBLE_EQ(m.batchLanes.mean(), 96.0);
    EXPECT_DOUBLE_EQ(m.batchLanes.quantile(0.5), 96.0);
    EXPECT_DOUBLE_EQ(m.batchLanes.quantile(0.99), 96.0)
        << "batch_lanes must bucket exactly above 64 lanes";
    EXPECT_DOUBLE_EQ(m.batchLanes.max(), 96.0);
}

TEST(ServeEngine, BatchFormerGroupsByProgramHash)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    RelationType isa = net.relationId("is-a");
    Program down = countQuery(0, inc, 0.0f);
    Program up = countQuery(77, isa, 0.0f);

    EXPECT_EQ(down.contentHash(), countQuery(0, inc, 0.0f)
                                      .contentHash());
    EXPECT_NE(down.contentHash(), up.contentHash());

    MachineConfig mcfg = smallEngineConfig(1).machine;
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    RunResult ref_down = direct.run(down);
    direct.image().resetMarkers();
    RunResult ref_up = direct.run(up);

    ServeConfig cfg = smallEngineConfig(1);
    cfg.startPaused = true;
    cfg.maxBatchLanes = 64;
    ServeEngine engine(net, cfg);

    // Interleave the two programs: the former must split them into
    // two same-hash batches, never mix lanes across programs.
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 10; ++i) {
        Request req;
        req.prog = (i % 2 == 0) ? down : up;
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.start();
    for (std::size_t i = 0; i < futures.size(); ++i) {
        Response resp = futures[i].get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        EXPECT_EQ(resp.batchLanes, 5u);
        const RunResult &ref = (i % 2 == 0) ? ref_down : ref_up;
        EXPECT_EQ(resp.wallTicks, ref.wallTicks) << "query " << i;
        test::expectSameResults(resp.results, ref.results);
    }
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.batches, 2u);
    EXPECT_EQ(m.batchedRequests, 10u);
}

TEST(ServeEngine, StragglerFallsBackToSoloPath)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");

    ServeConfig cfg = smallEngineConfig(1);
    cfg.startPaused = true;
    cfg.maxBatchLanes = 8;  // window 0: gulp only what is queued
    ServeEngine engine(net, cfg);

    Request req;
    req.prog = countQuery(0, inc, 0.0f);
    auto fut = engine.submit(std::move(req));
    engine.start();
    Response resp = fut.get();
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    EXPECT_EQ(resp.batchLanes, 1u) << "no partner: solo service";

    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.batches, 0u) << "a solo run is not a batch";
}

TEST(ServeEngine, SessionsNeverBatch)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");

    ServeConfig cfg = smallEngineConfig(2);
    cfg.startPaused = true;
    cfg.maxBatchLanes = 8;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        Request req;
        req.sessionId = "s1";
        req.prog = countQuery(0, inc, 0.0f);
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.start();
    for (auto &f : futures) {
        Response resp = f.get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        EXPECT_EQ(resp.batchLanes, 1u)
            << "session requests carry state and must run solo";
    }
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.batches, 0u);
}

TEST(ServeEngine, BatchWindowCollectsLateArrivals)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program prog = countQuery(0, inc, 0.0f);

    ServeConfig cfg = smallEngineConfig(1);
    cfg.maxBatchLanes = 4;
    cfg.batchWindowMs = 2000.0;  // worker waits for partners
    ServeEngine engine(net, cfg);

    // Engine running: the worker pops the first request, then parks
    // in the window until the remaining lanes (or the cap) arrive.
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        Request req;
        req.prog = prog;
        futures.push_back(engine.submit(std::move(req)));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::uint64_t total_lanes = 0;
    for (auto &f : futures) {
        Response resp = f.get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        total_lanes += resp.batchLanes;
    }
    // Timing-dependent split, but the window must have merged at
    // least once (4 solo runs would sum to 4).
    EXPECT_GT(total_lanes, 4u) << "window formed no batch at all";
}

TEST(ServeEngine, ResponseSlotPathMatchesFuturePath)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program prog = countQuery(0, inc, 0.0f);

    MachineConfig mcfg = smallEngineConfig(1).machine;
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    RunResult ref = direct.run(prog);

    ServeConfig cfg = smallEngineConfig(2);
    ServeEngine engine(net, cfg);

    serve::ResponseSlot slot;
    for (int round = 0; round < 3; ++round) {  // slot is reusable
        Request req;
        req.prog = prog;
        engine.submit(std::move(req), slot);
        Response resp = slot.wait();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        EXPECT_EQ(resp.wallTicks, ref.wallTicks);
        test::expectSameResults(resp.results, ref.results);
    }

    // Rejection is delivered through the slot too.
    ServeConfig tiny = smallEngineConfig(1);
    tiny.startPaused = true;
    tiny.queueCapacity = 1;
    ServeEngine full(net, tiny);
    serve::ResponseSlot s1, s2;
    Request r1, r2;
    r1.prog = prog;
    r2.prog = prog;
    full.submit(std::move(r1), s1);
    full.submit(std::move(r2), s2);
    Response rejected = s2.wait();
    EXPECT_EQ(rejected.status, RequestStatus::Rejected);
    full.start();
    EXPECT_EQ(s1.wait().status, RequestStatus::Ok);
}

TEST(RequestSeed, DeterministicAndSpread)
{
    EXPECT_EQ(serve::requestSeed(1, 0), serve::requestSeed(1, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(serve::requestSeed(42, i));
    EXPECT_EQ(seeds.size(), 1000u) << "seed chain must not collide";
    EXPECT_NE(serve::requestSeed(1, 5), serve::requestSeed(2, 5));
}

} // namespace
} // namespace snap
