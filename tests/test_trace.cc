/**
 * @file
 * Tests for the snaptrace subsystem: off-by-default guard, ring-buffer
 * drop-oldest semantics, category parsing, flow arming, and — the
 * load-bearing invariant — that traced span durations reproduce the
 * ExecBreakdown counters exactly (per-category active time and
 * per-cluster MU busy time).
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "arch/machine.hh"
#include "common/strutil.hh"
#include "isa/instruction.hh"
#include "trace/trace.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

Program
countQuery(NodeId start, RelationType rel)
{
    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(rel));
    prog.append(Instruction::searchNode(start, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));
    return prog;
}

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;
    return cfg;
}

// RAII guard: every test leaves tracing fully off and drained.
struct TraceGuard
{
    ~TraceGuard() { trace::reset(); }
};

// --- mask / guard ----------------------------------------------------------

TEST(Trace, OffByDefaultAndAfterReset)
{
    TraceGuard guard;
    trace::reset();
    EXPECT_FALSE(trace::active());
    EXPECT_FALSE(SNAP_TRACE_ON(trace::kInstr));
    EXPECT_FALSE(SNAP_TRACE_ON(trace::kAllCategories));

    trace::start(trace::kIcn | trace::kServe);
    EXPECT_TRUE(trace::active());
    EXPECT_TRUE(SNAP_TRACE_ON(trace::kIcn));
    EXPECT_FALSE(SNAP_TRACE_ON(trace::kInstr));

    trace::stop();
    EXPECT_FALSE(trace::active());
}

TEST(Trace, StopKeepsEventsResetDropsThem)
{
    TraceGuard guard;
    trace::start(trace::kAllCategories);
    trace::simInstant(trace::kMachine, trace::kSimPidBase,
                      trace::kTidMachine, "mark", 1);
    trace::stop();
    EXPECT_EQ(trace::snapshotEvents().size(), 1u);

    trace::reset();
    EXPECT_TRUE(trace::snapshotEvents().empty());
    EXPECT_EQ(trace::droppedCount(), 0u);
}

// --- ring buffer -----------------------------------------------------------

TEST(Trace, RingDropsOldestWhenFull)
{
    TraceGuard guard;
    constexpr std::size_t cap = 8;
    trace::start(trace::kAllCategories, cap);
    for (std::uint64_t i = 0; i < 20; ++i) {
        trace::simInstantArg(trace::kMachine, trace::kSimPidBase,
                             trace::kTidMachine, "tick", i, i);
    }
    trace::stop();

    std::vector<trace::Event> events = trace::snapshotEvents();
    ASSERT_EQ(events.size(), cap);
    EXPECT_EQ(trace::droppedCount(), 20u - cap);
    // Drop-oldest: the survivors are the 8 newest, in order.
    for (std::size_t i = 0; i < cap; ++i)
        EXPECT_EQ(events[i].arg, 20 - cap + i);
}

// --- category parsing ------------------------------------------------------

TEST(Trace, ParseCategories)
{
    std::uint32_t mask = 0;
    EXPECT_TRUE(trace::parseCategories("all", mask));
    EXPECT_EQ(mask, trace::kAllCategories);

    EXPECT_TRUE(trace::parseCategories("instr,icn,serve", mask));
    EXPECT_EQ(mask, trace::kInstr | trace::kIcn | trace::kServe);

    EXPECT_TRUE(trace::parseCategories("machine", mask));
    EXPECT_EQ(mask, trace::kMachine);

    EXPECT_FALSE(trace::parseCategories("bogus", mask));
    EXPECT_FALSE(trace::parseCategories("instr,bogus", mask));

    // Every advertised name must parse back to a single bit.
    std::uint32_t all = 0;
    for (const std::string &name :
         tokenize(trace::categoryNames(), ",")) {
        std::uint32_t m = 0;
        EXPECT_TRUE(trace::parseCategories(name, m)) << name;
        EXPECT_EQ(m & (m - 1), 0u) << name;
        all |= m;
    }
    EXPECT_EQ(all, trace::kAllCategories);
}

// --- flow arming -----------------------------------------------------------

TEST(Trace, FlowIdsAndArming)
{
    TraceGuard guard;
    trace::start(trace::kAllCategories);
    std::uint64_t a = trace::nextFlowId();
    std::uint64_t b = trace::nextFlowId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);

    EXPECT_EQ(trace::takeArmedFlow(), 0u);
    trace::armFlow(a);
    EXPECT_EQ(trace::takeArmedFlow(), a);
    EXPECT_EQ(trace::takeArmedFlow(), 0u);
}

// --- traced machine run vs ExecBreakdown -----------------------------------

TEST(Trace, MachineSpansMatchExecStats)
{
    TraceGuard guard;
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    trace::start(trace::kAllCategories);
    SnapMachine machine(smallConfig());
    machine.loadKb(net);

    std::uint64_t flow = trace::nextFlowId();
    trace::hostFlowStart(trace::kMachine, trace::kTidAdmission, flow,
                         trace::hostNowNs());
    trace::armFlow(flow);
    RunResult run = machine.run(q);
    trace::stop();

    ASSERT_FALSE(run.results.empty());
    std::vector<trace::Event> events = trace::snapshotEvents();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(trace::droppedCount(), 0u);

    const std::uint32_t sim_pid = trace::kSimPidBase;

    // 1. Summed B/E durations on each instr-category track must equal
    //    the ActiveTimer's accumulated active time for that category.
    std::map<std::uint32_t, Tick> cat_total;
    std::map<std::uint32_t, Tick> open_since;
    // 2. Summed 'X' durations on the cluster tracks must equal the
    //    machine-wide MU busy tick count.
    Tick mu_span_total = 0;
    // 3. The armed flow must surface as exactly one 'f' event bound
    //    to the machine.run span's start.
    int flow_ends = 0;
    Tick flow_end_ts = 0;
    Tick machine_span_start = 0, machine_span_dur = 0;

    for (const trace::Event &ev : events) {
        if (ev.pid != sim_pid)
            continue;
        if (ev.cat == trace::kInstr) {
            if (ev.ph == 'B') {
                open_since[ev.tid] = ev.ts;
            } else if (ev.ph == 'E') {
                ASSERT_TRUE(open_since.count(ev.tid));
                cat_total[ev.tid] += ev.ts - open_since[ev.tid];
            }
        } else if (ev.cat == trace::kCluster && ev.ph == 'X') {
            mu_span_total += ev.dur;
        } else if (ev.cat == trace::kMachine && ev.ph == 'f') {
            ++flow_ends;
            flow_end_ts = ev.ts;
            EXPECT_EQ(ev.id, flow);
        } else if (ev.cat == trace::kMachine && ev.ph == 'X') {
            machine_span_start = ev.ts;
            machine_span_dur = ev.dur;
        }
    }

    for (std::size_t c = 0;
         c < static_cast<std::size_t>(InstrCategory::NumCategories);
         ++c) {
        auto cat = static_cast<InstrCategory>(c);
        std::uint32_t tid =
            trace::tidInstr(static_cast<std::uint32_t>(c));
        Tick traced = cat_total.count(tid) ? cat_total[tid] : 0;
        EXPECT_EQ(traced, run.stats.categoryTicks(cat))
            << "category " << categoryName(cat);
    }

    EXPECT_EQ(mu_span_total, run.stats.muBusyTicks);
    EXPECT_EQ(flow_ends, 1);
    EXPECT_EQ(machine_span_dur, run.stats.wallTicks);
    // The 'f' binds to the run span's start tick by design.
    EXPECT_EQ(flow_end_ts, machine_span_start);

    // The JSON writer must produce a parsable-looking document with
    // both clock domains and the flow pair present.
    std::ostringstream os;
    trace::writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("machine.run"), std::string::npos);
}

// --- disabled path is inert ------------------------------------------------

TEST(Trace, DisabledRunRecordsNothing)
{
    TraceGuard guard;
    trace::reset();
    SemanticNetwork net = makeTreeKb(120, 3);
    Program q = countQuery(0, net.relationId("includes"));

    SnapMachine machine(smallConfig());
    machine.loadKb(net);
    RunResult run = machine.run(q);
    ASSERT_FALSE(run.results.empty());
    EXPECT_TRUE(trace::snapshotEvents().empty());
    EXPECT_EQ(trace::droppedCount(), 0u);
}

} // namespace
} // namespace snap
