/**
 * @file
 * Tests for the deterministic fault-injection subsystem and the
 * serving layer's recovery machinery: spec round-trips, rate-zero
 * bit-identity, seed reproducibility, detection soundness (no
 * corrupted answer survives), wedge repair, and the engine's
 * retry / quarantine / shed / hung-worker-watchdog policies.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "arch/machine.hh"
#include "fault/fault_plan.hh"
#include "serve/engine.hh"
#include "tests/test_helpers.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

using serve::Request;
using serve::RequestStatus;
using serve::Response;
using serve::ServeConfig;
using serve::ServeEngine;

Program
countQuery(NodeId start, RelationType rel)
{
    Program prog;
    RuleId rule = prog.addRule(PropRule::chain(rel));
    prog.append(Instruction::searchNode(start, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rule,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));
    return prog;
}

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.numClusters = 8;
    cfg.perfNetEnabled = false;
    return cfg;
}

// --- spec ----------------------------------------------------------------

TEST(FaultSpec, JsonRoundTrip)
{
    FaultSpec spec;
    spec.seed = 0xdeadbeefcafef00dull;
    spec.icnDropRate = 0.125;
    spec.icnCorruptRate = 0.25;
    spec.icnDelayRate = 0.0625;
    spec.semStallRate = 0.03125;
    spec.markerFlipRate = 0.5;
    spec.markerStickRate = 0.015625;
    spec.syncWedgeRate = 0.75;
    spec.deadClusterRate = 0.875;
    spec.icnDelayTicks = 1234567;
    spec.semStallTicks = 7654321;
    spec.scheduleWindowTicks = 99999999;
    spec.watchdogTicks = 4200000000;

    FaultSpec back;
    ASSERT_TRUE(FaultSpec::fromJson(spec.toJson(), back));
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_DOUBLE_EQ(back.icnDropRate, spec.icnDropRate);
    EXPECT_DOUBLE_EQ(back.icnCorruptRate, spec.icnCorruptRate);
    EXPECT_DOUBLE_EQ(back.icnDelayRate, spec.icnDelayRate);
    EXPECT_DOUBLE_EQ(back.semStallRate, spec.semStallRate);
    EXPECT_DOUBLE_EQ(back.markerFlipRate, spec.markerFlipRate);
    EXPECT_DOUBLE_EQ(back.markerStickRate, spec.markerStickRate);
    EXPECT_DOUBLE_EQ(back.syncWedgeRate, spec.syncWedgeRate);
    EXPECT_DOUBLE_EQ(back.deadClusterRate, spec.deadClusterRate);
    EXPECT_EQ(back.icnDelayTicks, spec.icnDelayTicks);
    EXPECT_EQ(back.semStallTicks, spec.semStallTicks);
    EXPECT_EQ(back.scheduleWindowTicks, spec.scheduleWindowTicks);
    EXPECT_EQ(back.watchdogTicks, spec.watchdogTicks);

    FaultSpec junk;
    EXPECT_FALSE(FaultSpec::fromJson("not json at all", junk));
}

TEST(FaultSpec, MessageFaultsSplitsAggregateRate)
{
    FaultSpec spec = FaultSpec::messageFaults(7, 0.05);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_TRUE(spec.any());
    EXPECT_DOUBLE_EQ(spec.icnDropRate + spec.icnCorruptRate +
                         spec.icnDelayRate,
                     0.05);
    EXPECT_DOUBLE_EQ(spec.semStallRate, 0.0);
    EXPECT_DOUBLE_EQ(spec.syncWedgeRate, 0.0);
    EXPECT_FALSE(FaultSpec{}.any());
}

// --- rate zero == no plan ------------------------------------------------

TEST(FaultInjection, RateZeroIsBitIdenticalToNoPlan)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    SnapMachine bare(smallConfig());
    bare.loadKb(net);

    SnapMachine armed(smallConfig());
    armed.loadKb(net);
    FaultSpec zero;
    zero.seed = 42;  // a seed but no rates: the plan can never fire
    armed.installFaults(zero);

    for (std::uint32_t lanes : {1u, 2u, 4u, 8u, 64u}) {
        bare.image().resetMarkers();
        armed.image().resetMarkers();
        BatchRunResult a = bare.runBatch(q, lanes);
        BatchRunResult b = armed.runBatch(q, lanes);
        test::expectSameResults(a.results, b.results);
        EXPECT_EQ(a.wallTicks, b.wallTicks) << "lanes " << lanes;
        EXPECT_EQ(a.hostEvents, b.hostEvents) << "lanes " << lanes;
        EXPECT_FALSE(b.fault.enabled)
            << "zero-rate plan must take the fault-free fast path";
        test::expectSameMarkers(armed.image(), bare.image().flatten(),
                                net.numNodes());
    }
}

// --- determinism ---------------------------------------------------------

TEST(FaultInjection, SameSeedSameFaultsSameResults)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);
    FaultSpec spec = FaultSpec::messageFaults(1234, 0.02);

    auto runSequence = [&](std::vector<FaultReport> &reports,
                           std::vector<RunResult> &runs) {
        SnapMachine m(smallConfig());
        m.loadKb(net);
        m.installFaults(spec);
        for (int i = 0; i < 4; ++i) {
            m.image().resetMarkers();
            if (m.poisoned())
                m.repair();
            RunResult r = m.run(q);
            reports.push_back(r.fault);
            runs.push_back(std::move(r));
        }
    };

    std::vector<FaultReport> ra, rb;
    std::vector<RunResult> xa, xb;
    runSequence(ra, xa);
    runSequence(rb, xb);

    std::uint64_t injected = 0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].icnDropped, rb[i].icnDropped) << "run " << i;
        EXPECT_EQ(ra[i].icnCorrupted, rb[i].icnCorrupted)
            << "run " << i;
        EXPECT_EQ(ra[i].icnDelayed, rb[i].icnDelayed) << "run " << i;
        EXPECT_EQ(ra[i].wedged, rb[i].wedged) << "run " << i;
        EXPECT_EQ(xa[i].wallTicks, xb[i].wallTicks) << "run " << i;
        test::expectSameResults(xa[i].results, xb[i].results);
        injected += ra[i].injected();
    }
    EXPECT_GT(injected, 0u)
        << "a 2% message-fault plan over an ICN-heavy program must "
           "actually inject";
}

// --- detection soundness -------------------------------------------------

// The contract the serving layer relies on: whenever a run reports
// ok(), its answer equals the fault-free answer.  Detection may
// over-reject (a harmless injection flagged by a conservative check)
// but must never under-reject.
TEST(FaultDetection, OkRunsAreAlwaysCorrect)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    SnapMachine clean(smallConfig());
    clean.loadKb(net);
    RunResult golden = clean.run(q);

    std::uint64_t injected = 0, rejected = 0, accepted = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SnapMachine m(smallConfig());
        m.loadKb(net);
        m.installFaults(FaultSpec::messageFaults(seed, 0.01));
        m.setIntegrityShadow(&net);
        RunResult r = m.run(q);
        injected += r.fault.injected();
        if (!r.fault.ok()) {
            ++rejected;
            continue;
        }
        ++accepted;
        EXPECT_TRUE(r.fault.integrityChecked) << "seed " << seed;
        test::expectSameResults(r.results, golden.results);
    }
    EXPECT_GT(injected, 0u);
    EXPECT_GT(rejected, 0u)
        << "1% message faults over 20 seeds should corrupt at least "
           "one run — otherwise the battery proves nothing";
}

TEST(FaultDetection, DelayOnlyFaultsKeepAnswersAndPassIntegrity)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    SnapMachine clean(smallConfig());
    clean.loadKb(net);
    RunResult golden = clean.run(q);

    FaultSpec spec;
    spec.seed = 5;
    spec.icnDelayRate = 0.5;
    SnapMachine m(smallConfig());
    m.loadKb(net);
    m.installFaults(spec);
    m.setIntegrityShadow(&net);
    RunResult r = m.run(q);

    EXPECT_GT(r.fault.icnDelayed, 0u);
    EXPECT_TRUE(r.fault.ok())
        << "delays perturb timing, never answers";
    EXPECT_TRUE(r.fault.integrityChecked);
    test::expectSameResults(r.results, golden.results);
    EXPECT_GT(r.wallTicks, golden.wallTicks)
        << "stalled transfers must cost simulated time";
}

TEST(FaultDetection, MarkerFaultsAreCaughtByTheShadow)
{
    SemanticNetwork net = makeTreeKb(120, 3);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    FaultSpec spec;
    spec.markerFlipRate = 1.0;  // armed once per run, seed-placed
    // Land the flip early in the run: a tick past run end would be
    // descheduled and never fire.
    spec.scheduleWindowTicks = 5'000'000;  // first 5 us
    bool caught = false;
    std::uint64_t flips = 0;
    for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
        spec.seed = seed;
        SnapMachine m(smallConfig());
        m.loadKb(net);
        m.installFaults(spec);
        m.setIntegrityShadow(&net);
        RunResult r = m.run(q);
        EXPECT_LE(r.fault.markerFlips, 1u) << "seed " << seed;
        flips += r.fault.markerFlips;
        if (r.fault.integrityFailed)
            caught = true;
    }
    EXPECT_GT(flips, 0u);
    EXPECT_TRUE(caught)
        << "ten seeded single-bit marker flips with none detected";
}

// --- wedges, watchdog, repair --------------------------------------------

TEST(FaultRecovery, WedgeIsDetectedAndRepairable)
{
    SemanticNetwork net = makeTreeKb(120, 3);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    SnapMachine clean(smallConfig());
    clean.loadKb(net);
    RunResult golden = clean.run(q);

    FaultSpec spec;
    spec.seed = 9;
    spec.syncWedgeRate = 1.0;  // swallow a completion credit
    spec.scheduleWindowTicks = 1'000'000;  // fire within 1 us
    SnapMachine m(smallConfig());
    m.loadKb(net);
    m.installFaults(spec);
    RunResult r = m.run(q);

    EXPECT_FALSE(r.fault.ok());
    EXPECT_TRUE(r.fault.wedged || r.fault.watchdogFired);
    EXPECT_EQ(r.fault.syncWedges, 1u);
    EXPECT_TRUE(m.poisoned());
    // A wedge abort leaves units mid-work; the run must still hand
    // back a closed ActiveTimer (closeAll on the abort path) or the
    // serving layer's stats merge would assert.
    EXPECT_TRUE(r.stats.categoryTimer.allClosed());

    // repair() + a zero-rate plan: the machine must serve correct
    // answers again on the same image.
    m.repair();
    EXPECT_FALSE(m.poisoned());
    m.clearFaults();
    m.image().resetMarkers();
    RunResult again = m.run(q);
    test::expectSameResults(again.results, golden.results);
    EXPECT_EQ(again.wallTicks, golden.wallTicks);
}

TEST(FaultRecovery, DeadClusterStallsTheRunNotTheHost)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    FaultSpec spec;
    spec.seed = 3;
    spec.deadClusterRate = 1.0;
    spec.scheduleWindowTicks = 1'000'000;  // fire within 1 us
    SnapMachine m(smallConfig());
    m.loadKb(net);
    m.installFaults(spec);
    RunResult r = m.run(q);

    EXPECT_EQ(r.fault.deadClusters, 1u);
    EXPECT_FALSE(r.fault.ok())
        << "a cluster that stops participating must wedge or trip "
           "the watchdog, not return a partial answer";
    EXPECT_TRUE(r.stats.categoryTimer.allClosed());
    if (m.poisoned())
        m.repair();
    EXPECT_FALSE(m.poisoned());
}

// --- the serving layer ---------------------------------------------------

ServeConfig
faultEngineConfig(std::uint32_t workers, std::uint64_t seed,
                  double rate)
{
    ServeConfig cfg;
    cfg.numWorkers = workers;
    cfg.machine.numClusters = 8;
    cfg.faults = FaultSpec::messageFaults(seed, rate);
    return cfg;
}

TEST(ServeFaults, OkResponsesAlwaysMatchTheCleanAnswer)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    MachineConfig mcfg = smallConfig();
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    RunResult golden = direct.run(q);

    ServeConfig cfg = faultEngineConfig(2, 77, 0.002);
    cfg.maxRetries = 10;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 16; ++i) {
        Request req;
        req.prog = q;
        futures.push_back(engine.submit(std::move(req)));
    }
    std::uint64_t ok = 0;
    for (auto &f : futures) {
        Response resp = f.get();
        ASSERT_TRUE(resp.status == RequestStatus::Ok ||
                    resp.status == RequestStatus::Failed)
            << "unexpected status "
            << serve::requestStatusName(resp.status);
        if (resp.status == RequestStatus::Ok) {
            ++ok;
            test::expectSameResults(resp.results, golden.results);
            EXPECT_EQ(resp.wallTicks, golden.wallTicks)
                << "a recovered run must be a clean run, timing "
                   "included";
        } else {
            EXPECT_TRUE(resp.results.empty())
                << "a Failed response must never carry results";
        }
    }
    EXPECT_GT(ok, 0u);
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.completed + m.failed, 16u);
    EXPECT_GE(m.retries, m.recovered)
        << "every recovery costs at least one retry";
}

TEST(ServeFaults, QuarantineRestampsAfterConsecutiveFaults)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    // A rate high enough that nearly every attempt faults: health
    // hits the quarantine threshold quickly on the single worker.
    ServeConfig cfg = faultEngineConfig(1, 5, 0.05);
    cfg.maxRetries = 6;
    cfg.quarantineThreshold = 3;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        Request req;
        req.prog = q;
        futures.push_back(engine.submit(std::move(req)));
    }
    for (auto &f : futures)
        f.get();
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_GT(m.faultsDetected, 0u);
    EXPECT_GT(m.quarantines, 0u)
        << "sustained faults on one replica must trigger quarantine";
}

TEST(ServeFaults, StatelessLoadIsShedDuringAStorm)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    ServeConfig cfg = faultEngineConfig(1, 5, 0.05);
    cfg.maxRetries = 0;   // fail fast: one fault = one storm tick
    cfg.shedThreshold = 1;
    ServeEngine engine(net, cfg);

    // First request fails (5% message faults make a clean pass over
    // this program astronomically unlikely) and arms the storm.
    Request first;
    first.prog = q;
    Response r1 = engine.submit(std::move(first)).get();
    engine.drain();
    ASSERT_EQ(r1.status, RequestStatus::Failed);

    // With the storm armed, the next stateless admission is shed.
    Request second;
    second.prog = q;
    Response r2 = engine.submit(std::move(second)).get();
    EXPECT_EQ(r2.status, RequestStatus::Rejected);
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.shed, 1u);

    // Sessions are exempt from shedding.
    Request sess;
    sess.prog = q;
    sess.sessionId = "s1";
    Response r3 = engine.submit(std::move(sess)).get();
    EXPECT_NE(r3.status, RequestStatus::Rejected)
        << "session requests must never be shed";
}

TEST(ServeFaults, BatchFallsBackToSoloOnPoisonedRun)
{
    SemanticNetwork net = makeTreeKb(300, 4);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    MachineConfig mcfg = smallConfig();
    SnapMachine direct(mcfg);
    direct.loadKb(net);
    RunResult golden = direct.run(q);

    ServeConfig cfg = faultEngineConfig(1, 2, 0.01);
    cfg.maxRetries = 30;
    cfg.maxBatchLanes = 8;
    cfg.startPaused = true;
    ServeEngine engine(net, cfg);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.prog = q;
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.start();
    std::uint64_t ok = 0;
    for (auto &f : futures) {
        Response resp = f.get();
        if (resp.status == RequestStatus::Ok) {
            ++ok;
            test::expectSameResults(resp.results, golden.results);
        }
    }
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    // One worker, one gulp, a fixed seed: the run is deterministic.
    // At a 1% message-fault rate the shared pilot run trips
    // detection, so the batch must have been evicted to the solo
    // path, where per-lane retries recover clean runs.
    EXPECT_GT(m.batchFallbacks, 0u);
    EXPECT_GT(ok, 0u)
        << "30 per-lane retries at 1% faults should recover "
           "someone";
}

// --- hung-worker watchdog (satellite: shutdown hardening) ---------------

TEST(ServeFaults, ShutdownWatchdogForceFailsHungWorker)
{
    SemanticNetwork net = makeTreeKb(120, 3);
    RelationType inc = net.relationId("includes");
    Program q = countQuery(0, inc);

    std::atomic<bool> release{false};
    std::atomic<int> hooked{0};

    ServeConfig cfg;
    cfg.numWorkers = 1;
    cfg.machine.numClusters = 4;
    cfg.hungWorkerTimeoutMs = 50.0;
    cfg.preRunHook = [&](std::uint32_t) {
        // Wedge the worker on its first request only.
        if (hooked.fetch_add(1) == 0) {
            while (!release.load(std::memory_order_acquire))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
    };
    ServeEngine engine(net, cfg);

    Request a;
    a.prog = q;
    std::future<Response> fa = engine.submit(std::move(a));
    // Wait until the worker is actually wedged inside the hook so
    // the second request is guaranteed to still be queued.
    while (hooked.load() == 0)
        std::this_thread::yield();
    Request b;
    b.prog = q;
    std::future<Response> fb = engine.submit(std::move(b));

    // Un-wedge the worker *after* the watchdog grace period so
    // shutdown() can join it once the clients have their answers.
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        release.store(true, std::memory_order_release);
    });
    engine.shutdown();
    releaser.join();

    Response ra = fa.get();
    Response rb = fb.get();
    EXPECT_EQ(ra.status, RequestStatus::Hung)
        << "the in-flight request on the wedged worker";
    EXPECT_EQ(rb.status, RequestStatus::Hung)
        << "the request stranded behind it in the queue";
    serve::MetricsSnapshot m = engine.metricsSnapshot();
    EXPECT_EQ(m.hung, 2u);
}

} // namespace
} // namespace snap
