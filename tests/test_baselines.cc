/**
 * @file
 * Tests for the uniprocessor and CM-2 baselines: functional equality
 * with the golden model and the cost-model properties Fig. 15
 * depends on.
 */

#include <gtest/gtest.h>

#include "baseline/cm2_sim.hh"
#include "baseline/seq_sim.hh"
#include "tests/test_helpers.hh"
#include "workload/alpha_beta.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

Program
inheritanceProgram(SemanticNetwork &net, std::uint32_t max_steps)
{
    RelationType inc = net.relationId("includes");
    Program prog;
    PropRule down = PropRule::chain(inc);
    down.maxSteps = max_steps;
    RuleId rid = prog.addRule(std::move(down));
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));
    return prog;
}

TEST(SeqBaseline, FunctionallyMatchesGolden)
{
    SemanticNetwork net_a = makeTreeKb(200, 4);
    SemanticNetwork net_b = makeTreeKb(200, 4);
    Program prog = inheritanceProgram(net_a, 32);

    SeqBaseline seq(net_a);
    SeqRunResult sres = seq.run(prog);

    ReferenceInterpreter golden(net_b);
    ResultSet gres = golden.run(prog);
    test::expectSameResults(sres.results, gres);
    EXPECT_GT(sres.wallTicks, 0u);
}

TEST(SeqBaseline, TimeScalesWithWork)
{
    // Twice the tree, roughly twice the propagation time.
    SemanticNetwork small = makeTreeKb(500, 4);
    SemanticNetwork large = makeTreeKb(1000, 4);
    Program p_small = inheritanceProgram(small, 32);
    Program p_large = inheritanceProgram(large, 32);

    Tick t_small = SeqBaseline(small).run(p_small).wallTicks;
    Tick t_large = SeqBaseline(large).run(p_large).wallTicks;
    double ratio = static_cast<double>(t_large) /
                   static_cast<double>(t_small);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.6);
}

TEST(SeqBaseline, CategoryBreakdownSums)
{
    SemanticNetwork net = makeTreeKb(100, 4);
    Program prog = inheritanceProgram(net, 32);
    SeqRunResult res = SeqBaseline(net).run(prog);

    Tick sum = 0;
    std::uint64_t count = 0;
    for (std::size_t c = 0; c < res.categoryTicks.size(); ++c) {
        sum += res.categoryTicks[c];
        count += res.categoryCounts[c];
    }
    EXPECT_EQ(sum, res.wallTicks);
    EXPECT_EQ(count, prog.size());
}

TEST(Cm2Baseline, FunctionallyMatchesGolden)
{
    SemanticNetwork net_a = makeTreeKb(200, 4);
    SemanticNetwork net_b = makeTreeKb(200, 4);
    Program prog = inheritanceProgram(net_a, 32);

    Cm2Baseline cm2(net_a);
    Cm2RunResult cres = cm2.run(prog);

    ReferenceInterpreter golden(net_b);
    ResultSet gres = golden.run(prog);
    test::expectSameResults(cres.results, gres);
    EXPECT_GT(cres.propagationSteps, 0u);
}

TEST(Cm2Baseline, PaysPerStepNotPerNode)
{
    // CM-2's propagation cost is dominated by depth (controller
    // iterations), nearly flat in knowledge-base width: a tree 8x
    // wider but 1 level deeper costs only slightly more.
    SemanticNetwork shallow = makeTreeKb(400, 4);   // depth 4
    SemanticNetwork wide = makeTreeKb(3200, 4);     // depth 5-6
    Program p1 = inheritanceProgram(shallow, 32);
    Program p2 = inheritanceProgram(wide, 32);

    Tick t1 = Cm2Baseline(shallow).run(p1).wallTicks;
    Tick t2 = Cm2Baseline(wide).run(p2).wallTicks;
    double ratio = static_cast<double>(t2) /
                   static_cast<double>(t1);
    EXPECT_LT(ratio, 2.0);  // 8x the nodes, < 2x the time
    EXPECT_GT(ratio, 1.0);  // deeper tree still costs something
}

TEST(Cm2Baseline, StepCountMatchesTreeDepth)
{
    SemanticNetwork net = makeTreeKb(1000, 4);
    Program prog = inheritanceProgram(net, 32);
    Cm2RunResult res = Cm2Baseline(net).run(prog);
    // Levels 0..depth: one controller iteration per level.
    EXPECT_EQ(res.propagationSteps, treeDepth(1000, 4) + 1u);
}

TEST(Cm2Baseline, SeqFasterThanCm2OnSmallKbs)
{
    // Fig. 15's premise at the small end: the uniprocessor beats
    // CM-2's per-step overheads on tiny knowledge bases.
    SemanticNetwork net_a = makeTreeKb(100, 4);
    SemanticNetwork net_b = makeTreeKb(100, 4);
    Program pa = inheritanceProgram(net_a, 32);
    Program pb = inheritanceProgram(net_b, 32);
    Tick t_seq = SeqBaseline(net_a).run(pa).wallTicks;
    Tick t_cm2 = Cm2Baseline(net_b).run(pb).wallTicks;
    EXPECT_LT(t_seq, t_cm2);
}

TEST(Baselines, MarkerStatePersistsAcrossRuns)
{
    SemanticNetwork net = makeTreeKb(50, 4);
    SeqBaseline seq(net);
    Program p1;
    p1.append(Instruction::searchNode(3, 0, 1.0f));
    seq.run(p1);
    Program p2;
    p2.append(Instruction::collectMarker(0));
    SeqRunResult res = seq.run(p2);
    ASSERT_EQ(res.results.size(), 1u);
    EXPECT_EQ(res.results[0].nodes.size(), 1u);
}

} // namespace
} // namespace snap
