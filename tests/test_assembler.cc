/**
 * @file
 * Tests for the SNAP text assembler, including the paper's Fig. 5
 * program written literally.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "runtime/reference.hh"
#include "workload/kb_gen.hh"

namespace snap
{
namespace
{

SemanticNetwork
fig1Network()
{
    // A miniature of the paper's Fig. 1 knowledge base: lexical
    // nodes, syntax nodes, and one concept sequence.
    SemanticNetwork net;
    for (const char *n :
         {"we", "see", "a", "plane", "NP", "VP", "DO", "animate",
          "seeing-event", "experiencer", "see-elem", "object"})
        net.addNode(n);
    NodeId we = net.node("we"), np = net.node("NP");
    NodeId see = net.node("see"), vp = net.node("VP");
    NodeId plane = net.node("plane"), dobj = net.node("DO");
    NodeId animate = net.node("animate");
    NodeId root = net.node("seeing-event");
    NodeId e1 = net.node("experiencer"), e2 = net.node("see-elem");
    NodeId e3 = net.node("object");
    net.addLink(we, "is-a", np, 1);
    net.addLink(we, "is-a", animate, 1);
    net.addLink(see, "is-a", vp, 1);
    net.addLink(plane, "is-a", dobj, 1);
    net.addLink(np, "last", e1, 1);
    net.addLink(vp, "last", e2, 1);
    net.addLink(dobj, "last", e3, 1);
    net.addLink(e1, "part-of", root, 1);
    net.addLink(e2, "part-of", root, 1);
    net.addLink(e3, "part-of", root, 1);
    return net;
}

TEST(Assembler, Fig5StyleProgram)
{
    SemanticNetwork net = fig1Network();
    Program prog = assemble(
        "# Fig. 5 of the paper, in assembler syntax\n"
        "rule up spread(is-a, last)\n"
        "rule bind step(part-of)\n"
        "search-node NP m1 0      # L1\n"
        "search-node VP m2 0      # L2\n"
        "search-node DO m2 0      # L3\n"
        "propagate m2 m3 up add-weight   # L4\n"
        "propagate m1 m4 up add-weight   # L5\n"
        "barrier\n"
        "and-marker m3 m4 m5 sum         # L6\n"
        "collect-marker m5               # L7\n",
        net);

    EXPECT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog.rules().size(), 2u);
    EXPECT_EQ(prog[0].op, Opcode::SearchNode);
    EXPECT_EQ(prog[3].op, Opcode::Propagate);
    EXPECT_EQ(prog[3].func, MarkerFunc::AddWeight);

    // And it runs: elements reachable from both marker streams.
    ReferenceInterpreter interp(net);
    ResultSet res = interp.run(prog);
    ASSERT_EQ(res.size(), 1u);
}

TEST(Assembler, AllMnemonics)
{
    SemanticNetwork net = fig1Network();
    Program prog = assemble(
        "rule r1 chain(is-a) max=5\n"
        "rule r2 seq(is-a, last)\n"
        "rule r3 comb(is-a, last)\n"
        "rule r4 custom [ {is-a}* {last} ] max=9\n"
        "create we likes plane 0.5\n"
        "delete we likes plane\n"
        "set-color we lexical\n"
        "set-weight we is-a NP 0.9\n"
        "search-node we m0 1.5\n"
        "search-relation is-a m1 0\n"
        "search-color lexical m2 0\n"
        "propagate m0 m3 r4 count\n"
        "barrier\n"
        "marker-create m3 filled-by seeing-event binds\n"
        "marker-delete m3 filled-by seeing-event binds\n"
        "marker-set-color m3 active\n"
        "and-marker m1 m2 m4 min\n"
        "or-marker m1 m2 m5 max\n"
        "not-marker m4 m6\n"
        "set-marker m64 0\n"
        "clear-marker m64\n"
        "func-marker m0 threshold-ge 1.0\n"
        "collect-marker m3\n"
        "collect-relation m3 is-a\n"
        "collect-color lexical\n",
        net);
    EXPECT_EQ(prog.size(), 21u);
    EXPECT_EQ(prog.rules().size(), 4u);
    EXPECT_EQ(prog.rules().rule(0).maxSteps, 5u);
    EXPECT_EQ(prog.rules().rule(3).maxSteps, 9u);
    ASSERT_EQ(prog.rules().rule(3).segments.size(), 2u);
    EXPECT_TRUE(prog.rules().rule(3).segments[0].star);
    EXPECT_FALSE(prog.rules().rule(3).segments[1].star);
}

TEST(Assembler, CustomRuleMultiRelationSegment)
{
    SemanticNetwork net = fig1Network();
    Program prog = assemble(
        "rule r custom [ {is-a, last}* {part-of} ]\n", net);
    const PropRule &rule = prog.rules().rule(0);
    ASSERT_EQ(rule.segments.size(), 2u);
    EXPECT_EQ(rule.segments[0].rels.size(), 2u);
}

TEST(Assembler, RepeatUnrolls)
{
    SemanticNetwork net = fig1Network();
    Program prog = assemble(
        "repeat 3\n"
        "set-marker m0 1.0\n"
        "clear-marker m0\n"
        "end\n"
        "barrier\n",
        net);
    EXPECT_EQ(prog.size(), 7u);  // 3 x 2 + barrier
    EXPECT_EQ(prog[0].op, Opcode::SetMarker);
    EXPECT_EQ(prog[4].op, Opcode::SetMarker);
    EXPECT_EQ(prog[6].op, Opcode::Barrier);
}

TEST(Assembler, NestedRepeat)
{
    SemanticNetwork net = fig1Network();
    Program prog = assemble(
        "repeat 2\n"
        "clear-marker m0\n"
        "repeat 3\n"
        "clear-marker m1\n"
        "end\n"
        "end\n",
        net);
    // Inner: 1 + 3 = 4 per outer iteration; outer x2 = 8.
    EXPECT_EQ(prog.size(), 8u);
}

TEST(AssemblerDeath, UnterminatedRepeat)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("repeat 2\nclear-marker m0\n", net),
                ::testing::ExitedWithCode(1), "unterminated");
}

TEST(AssemblerDeath, EndWithoutRepeat)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("end\n", net),
                ::testing::ExitedWithCode(1), "without matching");
}

TEST(AssemblerDeath, UnknownMnemonic)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("frobnicate m1\n", net),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AssemblerDeath, UnknownNode)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("search-node ghost m0 0\n", net),
                ::testing::ExitedWithCode(1), "unknown node");
}

TEST(AssemblerDeath, UnknownRule)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("propagate m0 m1 nope add-weight\n", net),
                ::testing::ExitedWithCode(1), "unknown rule");
}

TEST(AssemblerDeath, BadMarker)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("search-node we m200 0\n", net),
                ::testing::ExitedWithCode(1), "bad marker");
    EXPECT_EXIT(assemble("search-node we q1 0\n", net),
                ::testing::ExitedWithCode(1), "bad marker");
}

TEST(AssemblerDeath, WrongArity)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("search-node we m0\n", net),
                ::testing::ExitedWithCode(1), "usage");
}

TEST(AssemblerDeath, DuplicateRule)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("rule r chain(is-a)\nrule r chain(last)\n",
                         net),
                ::testing::ExitedWithCode(1), "duplicate rule");
}

TEST(AssemblerDeath, LineNumberInError)
{
    SemanticNetwork net = fig1Network();
    EXPECT_EXIT(assemble("rule r chain(is-a)\n\n\nbogus\n", net),
                ::testing::ExitedWithCode(1), "line 4");
}

} // namespace
} // namespace snap
