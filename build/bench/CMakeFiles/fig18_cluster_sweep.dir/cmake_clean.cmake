file(REMOVE_RECURSE
  "CMakeFiles/fig18_cluster_sweep.dir/fig18_cluster_sweep.cc.o"
  "CMakeFiles/fig18_cluster_sweep.dir/fig18_cluster_sweep.cc.o.d"
  "fig18_cluster_sweep"
  "fig18_cluster_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cluster_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
