# Empty compiler generated dependencies file for fig18_cluster_sweep.
# This may be replaced when dependencies are built.
