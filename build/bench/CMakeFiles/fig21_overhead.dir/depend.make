# Empty dependencies file for fig21_overhead.
# This may be replaced when dependencies are built.
