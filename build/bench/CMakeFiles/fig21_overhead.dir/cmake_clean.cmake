file(REMOVE_RECURSE
  "CMakeFiles/fig21_overhead.dir/fig21_overhead.cc.o"
  "CMakeFiles/fig21_overhead.dir/fig21_overhead.cc.o.d"
  "fig21_overhead"
  "fig21_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
