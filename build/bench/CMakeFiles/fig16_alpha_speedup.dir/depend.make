# Empty dependencies file for fig16_alpha_speedup.
# This may be replaced when dependencies are built.
