file(REMOVE_RECURSE
  "CMakeFiles/fig16_alpha_speedup.dir/fig16_alpha_speedup.cc.o"
  "CMakeFiles/fig16_alpha_speedup.dir/fig16_alpha_speedup.cc.o.d"
  "fig16_alpha_speedup"
  "fig16_alpha_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_alpha_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
