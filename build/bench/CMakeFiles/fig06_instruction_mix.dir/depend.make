# Empty dependencies file for fig06_instruction_mix.
# This may be replaced when dependencies are built.
