# Empty dependencies file for fig20_prop_count.
# This may be replaced when dependencies are built.
