file(REMOVE_RECURSE
  "CMakeFiles/fig20_prop_count.dir/fig20_prop_count.cc.o"
  "CMakeFiles/fig20_prop_count.dir/fig20_prop_count.cc.o.d"
  "fig20_prop_count"
  "fig20_prop_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_prop_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
