# Empty dependencies file for beta_analysis.
# This may be replaced when dependencies are built.
