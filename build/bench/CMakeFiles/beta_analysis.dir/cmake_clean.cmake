file(REMOVE_RECURSE
  "CMakeFiles/beta_analysis.dir/beta_analysis.cc.o"
  "CMakeFiles/beta_analysis.dir/beta_analysis.cc.o.d"
  "beta_analysis"
  "beta_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beta_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
