file(REMOVE_RECURSE
  "CMakeFiles/scaling_kb.dir/scaling_kb.cc.o"
  "CMakeFiles/scaling_kb.dir/scaling_kb.cc.o.d"
  "scaling_kb"
  "scaling_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
