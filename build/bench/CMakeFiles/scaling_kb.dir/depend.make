# Empty dependencies file for scaling_kb.
# This may be replaced when dependencies are built.
