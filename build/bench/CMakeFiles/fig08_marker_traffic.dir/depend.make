# Empty dependencies file for fig08_marker_traffic.
# This may be replaced when dependencies are built.
