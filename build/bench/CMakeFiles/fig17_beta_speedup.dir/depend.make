# Empty dependencies file for fig17_beta_speedup.
# This may be replaced when dependencies are built.
