file(REMOVE_RECURSE
  "CMakeFiles/fig17_beta_speedup.dir/fig17_beta_speedup.cc.o"
  "CMakeFiles/fig17_beta_speedup.dir/fig17_beta_speedup.cc.o.d"
  "fig17_beta_speedup"
  "fig17_beta_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_beta_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
