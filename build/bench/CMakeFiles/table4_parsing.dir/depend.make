# Empty dependencies file for table4_parsing.
# This may be replaced when dependencies are built.
