file(REMOVE_RECURSE
  "CMakeFiles/table4_parsing.dir/table4_parsing.cc.o"
  "CMakeFiles/table4_parsing.dir/table4_parsing.cc.o.d"
  "table4_parsing"
  "table4_parsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_parsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
