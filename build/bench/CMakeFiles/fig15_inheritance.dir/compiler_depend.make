# Empty compiler generated dependencies file for fig15_inheritance.
# This may be replaced when dependencies are built.
