file(REMOVE_RECURSE
  "CMakeFiles/fig15_inheritance.dir/fig15_inheritance.cc.o"
  "CMakeFiles/fig15_inheritance.dir/fig15_inheritance.cc.o.d"
  "fig15_inheritance"
  "fig15_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
