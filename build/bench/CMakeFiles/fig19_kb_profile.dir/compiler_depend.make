# Empty compiler generated dependencies file for fig19_kb_profile.
# This may be replaced when dependencies are built.
