file(REMOVE_RECURSE
  "CMakeFiles/fig19_kb_profile.dir/fig19_kb_profile.cc.o"
  "CMakeFiles/fig19_kb_profile.dir/fig19_kb_profile.cc.o.d"
  "fig19_kb_profile"
  "fig19_kb_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_kb_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
