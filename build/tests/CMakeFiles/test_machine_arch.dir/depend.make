# Empty dependencies file for test_machine_arch.
# This may be replaced when dependencies are built.
