file(REMOVE_RECURSE
  "CMakeFiles/test_machine_arch.dir/test_machine_arch.cc.o"
  "CMakeFiles/test_machine_arch.dir/test_machine_arch.cc.o.d"
  "test_machine_arch"
  "test_machine_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
