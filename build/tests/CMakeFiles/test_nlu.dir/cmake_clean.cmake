file(REMOVE_RECURSE
  "CMakeFiles/test_nlu.dir/test_nlu.cc.o"
  "CMakeFiles/test_nlu.dir/test_nlu.cc.o.d"
  "test_nlu"
  "test_nlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
