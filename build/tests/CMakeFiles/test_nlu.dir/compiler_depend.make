# Empty compiler generated dependencies file for test_nlu.
# This may be replaced when dependencies are built.
