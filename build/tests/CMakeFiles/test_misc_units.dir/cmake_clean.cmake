file(REMOVE_RECURSE
  "CMakeFiles/test_misc_units.dir/test_misc_units.cc.o"
  "CMakeFiles/test_misc_units.dir/test_misc_units.cc.o.d"
  "test_misc_units"
  "test_misc_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
