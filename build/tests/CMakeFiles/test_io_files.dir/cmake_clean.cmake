file(REMOVE_RECURSE
  "CMakeFiles/test_io_files.dir/test_io_files.cc.o"
  "CMakeFiles/test_io_files.dir/test_io_files.cc.o.d"
  "test_io_files"
  "test_io_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
