# Empty dependencies file for test_io_files.
# This may be replaced when dependencies are built.
