file(REMOVE_RECURSE
  "CMakeFiles/test_propagate_props.dir/test_propagate_props.cc.o"
  "CMakeFiles/test_propagate_props.dir/test_propagate_props.cc.o.d"
  "test_propagate_props"
  "test_propagate_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propagate_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
