# Empty compiler generated dependencies file for test_propagate_props.
# This may be replaced when dependencies are built.
