file(REMOVE_RECURSE
  "CMakeFiles/test_machine_equiv.dir/test_machine_equiv.cc.o"
  "CMakeFiles/test_machine_equiv.dir/test_machine_equiv.cc.o.d"
  "test_machine_equiv"
  "test_machine_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
