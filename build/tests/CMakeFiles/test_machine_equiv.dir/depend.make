# Empty dependencies file for test_machine_equiv.
# This may be replaced when dependencies are built.
