# Empty compiler generated dependencies file for test_machine_basic.
# This may be replaced when dependencies are built.
