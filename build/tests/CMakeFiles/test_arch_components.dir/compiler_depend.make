# Empty compiler generated dependencies file for test_arch_components.
# This may be replaced when dependencies are built.
