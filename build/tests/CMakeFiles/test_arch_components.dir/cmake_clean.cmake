file(REMOVE_RECURSE
  "CMakeFiles/test_arch_components.dir/test_arch_components.cc.o"
  "CMakeFiles/test_arch_components.dir/test_arch_components.cc.o.d"
  "test_arch_components"
  "test_arch_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
