file(REMOVE_RECURSE
  "CMakeFiles/speech_lattice.dir/speech_lattice.cpp.o"
  "CMakeFiles/speech_lattice.dir/speech_lattice.cpp.o.d"
  "speech_lattice"
  "speech_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
