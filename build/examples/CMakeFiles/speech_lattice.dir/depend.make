# Empty dependencies file for speech_lattice.
# This may be replaced when dependencies are built.
