# Empty compiler generated dependencies file for inheritance.
# This may be replaced when dependencies are built.
