file(REMOVE_RECURSE
  "CMakeFiles/inheritance.dir/inheritance.cpp.o"
  "CMakeFiles/inheritance.dir/inheritance.cpp.o.d"
  "inheritance"
  "inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
