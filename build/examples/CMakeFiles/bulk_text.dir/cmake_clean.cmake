file(REMOVE_RECURSE
  "CMakeFiles/bulk_text.dir/bulk_text.cpp.o"
  "CMakeFiles/bulk_text.dir/bulk_text.cpp.o.d"
  "bulk_text"
  "bulk_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
