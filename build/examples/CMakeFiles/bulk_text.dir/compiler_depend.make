# Empty compiler generated dependencies file for bulk_text.
# This may be replaced when dependencies are built.
