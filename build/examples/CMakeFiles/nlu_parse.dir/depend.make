# Empty dependencies file for nlu_parse.
# This may be replaced when dependencies are built.
