file(REMOVE_RECURSE
  "CMakeFiles/nlu_parse.dir/nlu_parse.cpp.o"
  "CMakeFiles/nlu_parse.dir/nlu_parse.cpp.o.d"
  "nlu_parse"
  "nlu_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlu_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
