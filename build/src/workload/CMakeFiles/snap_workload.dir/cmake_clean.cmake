file(REMOVE_RECURSE
  "CMakeFiles/snap_workload.dir/alpha_beta.cc.o"
  "CMakeFiles/snap_workload.dir/alpha_beta.cc.o.d"
  "CMakeFiles/snap_workload.dir/kb_gen.cc.o"
  "CMakeFiles/snap_workload.dir/kb_gen.cc.o.d"
  "libsnap_workload.a"
  "libsnap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
