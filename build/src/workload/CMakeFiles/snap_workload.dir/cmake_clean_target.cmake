file(REMOVE_RECURSE
  "libsnap_workload.a"
)
