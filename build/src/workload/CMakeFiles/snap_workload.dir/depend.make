# Empty dependencies file for snap_workload.
# This may be replaced when dependencies are built.
