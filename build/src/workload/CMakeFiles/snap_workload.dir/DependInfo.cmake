
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/alpha_beta.cc" "src/workload/CMakeFiles/snap_workload.dir/alpha_beta.cc.o" "gcc" "src/workload/CMakeFiles/snap_workload.dir/alpha_beta.cc.o.d"
  "/root/repo/src/workload/kb_gen.cc" "src/workload/CMakeFiles/snap_workload.dir/kb_gen.cc.o" "gcc" "src/workload/CMakeFiles/snap_workload.dir/kb_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/snap_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/snap_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/snap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
