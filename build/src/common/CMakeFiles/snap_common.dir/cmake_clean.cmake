file(REMOVE_RECURSE
  "CMakeFiles/snap_common.dir/logging.cc.o"
  "CMakeFiles/snap_common.dir/logging.cc.o.d"
  "CMakeFiles/snap_common.dir/stats.cc.o"
  "CMakeFiles/snap_common.dir/stats.cc.o.d"
  "CMakeFiles/snap_common.dir/strutil.cc.o"
  "CMakeFiles/snap_common.dir/strutil.cc.o.d"
  "libsnap_common.a"
  "libsnap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
