file(REMOVE_RECURSE
  "CMakeFiles/snap_isa.dir/assembler.cc.o"
  "CMakeFiles/snap_isa.dir/assembler.cc.o.d"
  "CMakeFiles/snap_isa.dir/encoding.cc.o"
  "CMakeFiles/snap_isa.dir/encoding.cc.o.d"
  "CMakeFiles/snap_isa.dir/function.cc.o"
  "CMakeFiles/snap_isa.dir/function.cc.o.d"
  "CMakeFiles/snap_isa.dir/instruction.cc.o"
  "CMakeFiles/snap_isa.dir/instruction.cc.o.d"
  "CMakeFiles/snap_isa.dir/program.cc.o"
  "CMakeFiles/snap_isa.dir/program.cc.o.d"
  "CMakeFiles/snap_isa.dir/prop_rule.cc.o"
  "CMakeFiles/snap_isa.dir/prop_rule.cc.o.d"
  "libsnap_isa.a"
  "libsnap_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
