# Empty compiler generated dependencies file for snap_isa.
# This may be replaced when dependencies are built.
