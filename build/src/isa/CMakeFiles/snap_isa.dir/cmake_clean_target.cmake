file(REMOVE_RECURSE
  "libsnap_isa.a"
)
