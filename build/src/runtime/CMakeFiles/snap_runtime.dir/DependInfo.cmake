
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/propagate.cc" "src/runtime/CMakeFiles/snap_runtime.dir/propagate.cc.o" "gcc" "src/runtime/CMakeFiles/snap_runtime.dir/propagate.cc.o.d"
  "/root/repo/src/runtime/reference.cc" "src/runtime/CMakeFiles/snap_runtime.dir/reference.cc.o" "gcc" "src/runtime/CMakeFiles/snap_runtime.dir/reference.cc.o.d"
  "/root/repo/src/runtime/snapshot.cc" "src/runtime/CMakeFiles/snap_runtime.dir/snapshot.cc.o" "gcc" "src/runtime/CMakeFiles/snap_runtime.dir/snapshot.cc.o.d"
  "/root/repo/src/runtime/validate.cc" "src/runtime/CMakeFiles/snap_runtime.dir/validate.cc.o" "gcc" "src/runtime/CMakeFiles/snap_runtime.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/snap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/snap_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/snap_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
