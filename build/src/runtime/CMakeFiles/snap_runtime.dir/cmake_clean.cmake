file(REMOVE_RECURSE
  "CMakeFiles/snap_runtime.dir/propagate.cc.o"
  "CMakeFiles/snap_runtime.dir/propagate.cc.o.d"
  "CMakeFiles/snap_runtime.dir/reference.cc.o"
  "CMakeFiles/snap_runtime.dir/reference.cc.o.d"
  "CMakeFiles/snap_runtime.dir/snapshot.cc.o"
  "CMakeFiles/snap_runtime.dir/snapshot.cc.o.d"
  "CMakeFiles/snap_runtime.dir/validate.cc.o"
  "CMakeFiles/snap_runtime.dir/validate.cc.o.d"
  "libsnap_runtime.a"
  "libsnap_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
