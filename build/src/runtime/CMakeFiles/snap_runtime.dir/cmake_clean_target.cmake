file(REMOVE_RECURSE
  "libsnap_runtime.a"
)
