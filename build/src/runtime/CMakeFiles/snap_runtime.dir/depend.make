# Empty dependencies file for snap_runtime.
# This may be replaced when dependencies are built.
