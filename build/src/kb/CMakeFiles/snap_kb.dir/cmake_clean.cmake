file(REMOVE_RECURSE
  "CMakeFiles/snap_kb.dir/kb_io.cc.o"
  "CMakeFiles/snap_kb.dir/kb_io.cc.o.d"
  "CMakeFiles/snap_kb.dir/partition.cc.o"
  "CMakeFiles/snap_kb.dir/partition.cc.o.d"
  "CMakeFiles/snap_kb.dir/semantic_network.cc.o"
  "CMakeFiles/snap_kb.dir/semantic_network.cc.o.d"
  "libsnap_kb.a"
  "libsnap_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
