
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/kb_io.cc" "src/kb/CMakeFiles/snap_kb.dir/kb_io.cc.o" "gcc" "src/kb/CMakeFiles/snap_kb.dir/kb_io.cc.o.d"
  "/root/repo/src/kb/partition.cc" "src/kb/CMakeFiles/snap_kb.dir/partition.cc.o" "gcc" "src/kb/CMakeFiles/snap_kb.dir/partition.cc.o.d"
  "/root/repo/src/kb/semantic_network.cc" "src/kb/CMakeFiles/snap_kb.dir/semantic_network.cc.o" "gcc" "src/kb/CMakeFiles/snap_kb.dir/semantic_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/snap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
