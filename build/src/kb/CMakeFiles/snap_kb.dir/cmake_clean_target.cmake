file(REMOVE_RECURSE
  "libsnap_kb.a"
)
