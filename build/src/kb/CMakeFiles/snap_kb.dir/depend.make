# Empty dependencies file for snap_kb.
# This may be replaced when dependencies are built.
