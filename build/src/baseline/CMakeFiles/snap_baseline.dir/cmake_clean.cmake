file(REMOVE_RECURSE
  "CMakeFiles/snap_baseline.dir/cm2_sim.cc.o"
  "CMakeFiles/snap_baseline.dir/cm2_sim.cc.o.d"
  "CMakeFiles/snap_baseline.dir/seq_sim.cc.o"
  "CMakeFiles/snap_baseline.dir/seq_sim.cc.o.d"
  "libsnap_baseline.a"
  "libsnap_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
