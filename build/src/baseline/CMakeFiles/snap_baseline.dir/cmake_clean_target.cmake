file(REMOVE_RECURSE
  "libsnap_baseline.a"
)
