# Empty dependencies file for snap_baseline.
# This may be replaced when dependencies are built.
