file(REMOVE_RECURSE
  "CMakeFiles/snapkb-gen.dir/snapkb_gen.cc.o"
  "CMakeFiles/snapkb-gen.dir/snapkb_gen.cc.o.d"
  "snapkb-gen"
  "snapkb-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapkb-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
