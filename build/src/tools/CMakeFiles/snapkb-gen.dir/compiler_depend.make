# Empty compiler generated dependencies file for snapkb-gen.
# This may be replaced when dependencies are built.
