file(REMOVE_RECURSE
  "CMakeFiles/snapvm.dir/snapvm.cc.o"
  "CMakeFiles/snapvm.dir/snapvm.cc.o.d"
  "snapvm"
  "snapvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
