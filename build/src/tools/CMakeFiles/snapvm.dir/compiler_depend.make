# Empty compiler generated dependencies file for snapvm.
# This may be replaced when dependencies are built.
