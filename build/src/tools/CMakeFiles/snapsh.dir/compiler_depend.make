# Empty compiler generated dependencies file for snapsh.
# This may be replaced when dependencies are built.
