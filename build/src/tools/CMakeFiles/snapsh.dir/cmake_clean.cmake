file(REMOVE_RECURSE
  "CMakeFiles/snapsh.dir/snapsh.cc.o"
  "CMakeFiles/snapsh.dir/snapsh.cc.o.d"
  "snapsh"
  "snapsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
