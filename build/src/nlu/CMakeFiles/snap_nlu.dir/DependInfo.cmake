
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlu/corpus.cc" "src/nlu/CMakeFiles/snap_nlu.dir/corpus.cc.o" "gcc" "src/nlu/CMakeFiles/snap_nlu.dir/corpus.cc.o.d"
  "/root/repo/src/nlu/kb_factory.cc" "src/nlu/CMakeFiles/snap_nlu.dir/kb_factory.cc.o" "gcc" "src/nlu/CMakeFiles/snap_nlu.dir/kb_factory.cc.o.d"
  "/root/repo/src/nlu/lexicon.cc" "src/nlu/CMakeFiles/snap_nlu.dir/lexicon.cc.o" "gcc" "src/nlu/CMakeFiles/snap_nlu.dir/lexicon.cc.o.d"
  "/root/repo/src/nlu/mb_parser.cc" "src/nlu/CMakeFiles/snap_nlu.dir/mb_parser.cc.o" "gcc" "src/nlu/CMakeFiles/snap_nlu.dir/mb_parser.cc.o.d"
  "/root/repo/src/nlu/phrasal_parser.cc" "src/nlu/CMakeFiles/snap_nlu.dir/phrasal_parser.cc.o" "gcc" "src/nlu/CMakeFiles/snap_nlu.dir/phrasal_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/snap_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/snap_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/snap_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/snap_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/snap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
