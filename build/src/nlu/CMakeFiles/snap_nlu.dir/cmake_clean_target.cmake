file(REMOVE_RECURSE
  "libsnap_nlu.a"
)
