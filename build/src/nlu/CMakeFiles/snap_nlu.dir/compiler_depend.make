# Empty compiler generated dependencies file for snap_nlu.
# This may be replaced when dependencies are built.
