file(REMOVE_RECURSE
  "CMakeFiles/snap_nlu.dir/corpus.cc.o"
  "CMakeFiles/snap_nlu.dir/corpus.cc.o.d"
  "CMakeFiles/snap_nlu.dir/kb_factory.cc.o"
  "CMakeFiles/snap_nlu.dir/kb_factory.cc.o.d"
  "CMakeFiles/snap_nlu.dir/lexicon.cc.o"
  "CMakeFiles/snap_nlu.dir/lexicon.cc.o.d"
  "CMakeFiles/snap_nlu.dir/mb_parser.cc.o"
  "CMakeFiles/snap_nlu.dir/mb_parser.cc.o.d"
  "CMakeFiles/snap_nlu.dir/phrasal_parser.cc.o"
  "CMakeFiles/snap_nlu.dir/phrasal_parser.cc.o.d"
  "libsnap_nlu.a"
  "libsnap_nlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_nlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
