file(REMOVE_RECURSE
  "libsnap_arch.a"
)
