file(REMOVE_RECURSE
  "CMakeFiles/snap_arch.dir/cluster.cc.o"
  "CMakeFiles/snap_arch.dir/cluster.cc.o.d"
  "CMakeFiles/snap_arch.dir/controller.cc.o"
  "CMakeFiles/snap_arch.dir/controller.cc.o.d"
  "CMakeFiles/snap_arch.dir/exec_stats.cc.o"
  "CMakeFiles/snap_arch.dir/exec_stats.cc.o.d"
  "CMakeFiles/snap_arch.dir/icn.cc.o"
  "CMakeFiles/snap_arch.dir/icn.cc.o.d"
  "CMakeFiles/snap_arch.dir/kb_image.cc.o"
  "CMakeFiles/snap_arch.dir/kb_image.cc.o.d"
  "CMakeFiles/snap_arch.dir/machine.cc.o"
  "CMakeFiles/snap_arch.dir/machine.cc.o.d"
  "CMakeFiles/snap_arch.dir/perf_net.cc.o"
  "CMakeFiles/snap_arch.dir/perf_net.cc.o.d"
  "libsnap_arch.a"
  "libsnap_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
