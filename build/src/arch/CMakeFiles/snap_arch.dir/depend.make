# Empty dependencies file for snap_arch.
# This may be replaced when dependencies are built.
