
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cluster.cc" "src/arch/CMakeFiles/snap_arch.dir/cluster.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/cluster.cc.o.d"
  "/root/repo/src/arch/controller.cc" "src/arch/CMakeFiles/snap_arch.dir/controller.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/controller.cc.o.d"
  "/root/repo/src/arch/exec_stats.cc" "src/arch/CMakeFiles/snap_arch.dir/exec_stats.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/exec_stats.cc.o.d"
  "/root/repo/src/arch/icn.cc" "src/arch/CMakeFiles/snap_arch.dir/icn.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/icn.cc.o.d"
  "/root/repo/src/arch/kb_image.cc" "src/arch/CMakeFiles/snap_arch.dir/kb_image.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/kb_image.cc.o.d"
  "/root/repo/src/arch/machine.cc" "src/arch/CMakeFiles/snap_arch.dir/machine.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/machine.cc.o.d"
  "/root/repo/src/arch/perf_net.cc" "src/arch/CMakeFiles/snap_arch.dir/perf_net.cc.o" "gcc" "src/arch/CMakeFiles/snap_arch.dir/perf_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/snap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/snap_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/snap_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/snap_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
