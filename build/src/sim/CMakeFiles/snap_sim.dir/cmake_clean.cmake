file(REMOVE_RECURSE
  "CMakeFiles/snap_sim.dir/event_queue.cc.o"
  "CMakeFiles/snap_sim.dir/event_queue.cc.o.d"
  "libsnap_sim.a"
  "libsnap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
