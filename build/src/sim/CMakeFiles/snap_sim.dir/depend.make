# Empty dependencies file for snap_sim.
# This may be replaced when dependencies are built.
