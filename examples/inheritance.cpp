/**
 * @file
 * Property inheritance over a concept-type hierarchy — the paper's
 * Fig. 15 experiment as a runnable program.  Inherits from the root
 * to every leaf by marker propagation along `includes` links,
 * comparing the SNAP-1 machine against the CM-2-style SIMD baseline
 * and the uniprocessor.
 *
 *   ./inheritance               # default 6400-node hierarchy
 *   ./inheritance 2000 4        # nodes, branching factor
 */

#include <cstdio>
#include <cstdlib>

#include "arch/machine.hh"
#include "baseline/cm2_sim.hh"
#include "baseline/seq_sim.hh"
#include "workload/kb_gen.hh"

using namespace snap;

int
main(int argc, char **argv)
{
    std::uint32_t nodes = 6400;
    std::uint32_t branching = 4;
    if (argc > 1)
        nodes = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        branching = static_cast<std::uint32_t>(std::atoi(argv[2]));

    std::printf("concept hierarchy: %u nodes, branching %u, depth "
                "%u\n\n", nodes, branching,
                treeDepth(nodes, branching));

    SemanticNetwork net = makeTreeKb(nodes, branching);
    RelationType inc = net.relationId("includes");

    Program prog;
    PropRule down = PropRule::chain(inc);
    down.maxSteps = 40;
    RuleId rid = prog.addRule(std::move(down));
    // Root holds the property; its cost accumulates down the
    // hierarchy, so every concept ends up with its inheritance
    // distance from the root.
    prog.append(Instruction::searchNode(0, 0, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::AddWeight));
    prog.append(Instruction::barrier());
    prog.append(Instruction::collectMarker(1));

    // SNAP-1 (paper setup: 16 clusters, 72 processors).
    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.maxNodesPerCluster = capacity::maxNodes;
    SnapMachine machine(cfg);
    machine.loadKb(net);
    RunResult snap_run = machine.run(prog);

    // Baselines (functionally identical, different cost models).
    SemanticNetwork net_cm2 = makeTreeKb(nodes, branching);
    Cm2Baseline cm2(net_cm2);
    Cm2RunResult cm2_run = cm2.run(prog);

    SemanticNetwork net_seq = makeTreeKb(nodes, branching);
    SeqBaseline seq(net_seq);
    SeqRunResult seq_run = seq.run(prog);

    std::printf("inherited to %zu concepts\n",
                snap_run.results.back().nodes.size());
    std::printf("  SNAP-1 (72 PEs): %10.3f ms\n", snap_run.wallMs());
    std::printf("  CM-2 baseline:   %10.3f ms  (%u controller-array "
                "iterations)\n", cm2_run.wallMs(),
                static_cast<unsigned>(cm2_run.propagationSteps));
    std::printf("  uniprocessor:    %10.3f ms\n", seq_run.wallMs());

    // Sanity: every node got the marker, deepest value = depth.
    float deepest = 0;
    for (const CollectedNode &c : snap_run.results.back().nodes)
        deepest = std::max(deepest, c.value);
    std::printf("\ndeepest inheritance cost: %.0f (tree depth %u)\n",
                deepest, treeDepth(nodes, branching));
    return 0;
}
