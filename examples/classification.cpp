/**
 * @file
 * Concept classification by marker intersection — the third
 * application family the paper's instruction set was validated on
 * ("NLU, concept classification, and property inheritance
 * applications were coded with these instructions", §II-B).
 *
 * Given a set of property constraints, find the concepts satisfying
 * all of them: one upward propagation per property plus AND-MARKER
 * intersections, then COLLECT.
 *
 *   ./classification
 */

#include <cstdio>

#include "arch/machine.hh"
#include "common/rng.hh"
#include "runtime/validate.hh"
#include "workload/kb_gen.hh"

using namespace snap;

int
main()
{
    // A type hierarchy plus property attachments: each concept
    // has-property links to a few of 24 property nodes.
    SemanticNetwork net = makeTreeKb(2000, 4);
    RelationType hasprop = net.relation("has-property");
    RelationType propof = net.relation("property-of");

    std::vector<NodeId> props;
    for (int p = 0; p < 24; ++p)
        props.push_back(net.addNode("prop" + std::to_string(p),
                                    "property"));
    Rng rng(99);
    for (NodeId c = 0; c < 2000; ++c) {
        std::uint32_t k = 1 + static_cast<std::uint32_t>(
            rng.below(4));
        for (std::uint32_t i = 0; i < k; ++i) {
            NodeId p = props[rng.below(props.size())];
            net.addLink(c, hasprop, p, 1.0f);
            net.addLink(p, propof, c, 1.0f);
        }
    }

    // Query: concepts with prop3 AND prop7 AND prop11.
    const NodeId query[] = {props[3], props[7], props[11]};

    Program prog;
    RuleId back = prog.addRule(PropRule::step1(propof));
    // One marker pair per property: activate the property node, then
    // mark every concept holding it (three independent PROPAGATEs —
    // β-parallelism).
    for (int q = 0; q < 3; ++q) {
        prog.append(Instruction::searchNode(
            query[q], static_cast<MarkerId>(2 * q), 1.0f));
    }
    for (int q = 0; q < 3; ++q) {
        prog.append(Instruction::propagate(
            static_cast<MarkerId>(2 * q),
            static_cast<MarkerId>(2 * q + 1), back,
            MarkerFunc::Count));
    }
    prog.append(Instruction::barrier());
    // Intersect: m10 = m1 & m3, m11 = m10 & m5.
    prog.append(Instruction::andMarker(1, 3, 10, CombineOp::Sum));
    prog.append(Instruction::andMarker(10, 5, 11, CombineOp::Sum));
    prog.append(Instruction::collectMarker(11));
    requireRaceFree(prog);

    SnapMachine machine(MachineConfig::paperSetup());
    machine.loadKb(net);
    RunResult run = machine.run(prog);

    const auto &hits = run.results.back().nodes;
    std::printf("classification query: prop3 AND prop7 AND prop11\n");
    std::printf("machine time: %.1f us, %llu messages, "
                "%zu matching concepts\n\n",
                run.wallUs(),
                static_cast<unsigned long long>(
                    run.stats.messagesSent),
                hits.size());
    std::size_t shown = 0;
    for (const CollectedNode &c : hits) {
        if (shown++ >= 12) {
            std::printf("  ... and %zu more\n", hits.size() - 12);
            break;
        }
        std::printf("  %s\n", net.nodeName(c.node).c_str());
    }

    // Verify one hit by direct inspection.
    if (!hits.empty()) {
        NodeId c = hits.front().node;
        int found = 0;
        for (const Link &l : net.links(c))
            for (NodeId q : query)
                if (l.rel == hasprop && l.dst == q)
                    ++found;
        std::printf("\nspot check: %s holds %d of 3 queried "
                    "properties\n", net.nodeName(c).c_str(), found);
    }
    return 0;
}
