/**
 * @file
 * Quickstart: build a miniature of the paper's Fig. 1 knowledge base,
 * write the Fig. 5 marker-propagation program in SNAP assembler, run
 * it on the simulated SNAP-1, and print what came back.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "arch/machine.hh"
#include "isa/assembler.hh"
#include "runtime/validate.hh"

using namespace snap;

int
main()
{
    // --- 1. the knowledge base (Fig. 1, miniature) ---------------------
    // Lexical layer at the bottom, syntactic/semantic constraints in
    // the middle, one "seeing-event" concept sequence on top.
    SemanticNetwork net;
    for (const char *name :
         {"we", "see", "a", "plane",            // lexical layer
          "NP", "VP", "DO", "animate",          // constraints
          "experiencer", "see-act", "object",   // sequence elements
          "seeing-event"})                      // sequence root
        net.addNode(name);

    auto link = [&](const char *a, const char *rel, const char *b,
                    float w) {
        net.addLink(net.node(a), rel, net.node(b), w);
    };
    link("we", "is-a", "NP", 0.2f);
    link("we", "is-a", "animate", 0.2f);
    link("see", "is-a", "VP", 0.2f);
    link("a", "is-a", "DO", 0.4f);
    link("plane", "is-a", "DO", 0.2f);
    link("NP", "last", "experiencer", 0.5f);
    link("animate", "last", "experiencer", 0.3f);
    link("VP", "last", "see-act", 0.5f);
    link("DO", "last", "object", 0.5f);
    link("experiencer", "part-of", "seeing-event", 1.0f);
    link("see-act", "part-of", "seeing-event", 1.0f);
    link("object", "part-of", "seeing-event", 1.0f);

    // --- 2. the program (Fig. 5, literally) --------------------------------
    Program prog = assemble(
        // Climb is-a links, step onto a sequence element via last,
        // then bind to the sequence root via part-of.
        "rule up custom [ {is-a}* {last} {part-of} ]\n"
        "search-node NP m1 0             # L1\n"
        "search-node VP m2 0             # L2\n"
        "search-node DO m2 0             # L3\n"
        "propagate m2 m3 up add-weight   # L4\n"
        "propagate m1 m4 up add-weight   # L5\n"
        "barrier\n"
        "and-marker m3 m4 m5 sum         # L6\n"
        "collect-marker m5               # L7\n",
        net);
    requireRaceFree(prog);

    // --- 3. the machine ------------------------------------------------------
    // The paper's experimental setup: 16 clusters, 72 processors,
    // 32 MHz controller, 25 MHz array PEs.
    SnapMachine machine(MachineConfig::paperSetup());
    machine.loadKb(net);
    RunResult run = machine.run(prog);

    // --- 4. results ---------------------------------------------------------
    std::printf("executed %zu SNAP instructions in %.1f us of "
                "simulated machine time\n",
                prog.size(), run.wallUs());
    std::printf("%llu inter-cluster marker messages, %llu barrier "
                "synchronizations\n\n",
                static_cast<unsigned long long>(
                    run.stats.messagesSent),
                static_cast<unsigned long long>(run.stats.barriers));

    std::printf("nodes holding m5 (reachable from both marker "
                "streams):\n");
    for (const CollectedNode &c : run.results.back().nodes) {
        std::printf("  %-12s value %.2f (origin %s)\n",
                    net.nodeName(c.node).c_str(), c.value,
                    c.origin == invalidNode
                        ? "-"
                        : net.nodeName(c.origin).c_str());
    }
    return 0;
}
