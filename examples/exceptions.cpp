/**
 * @file
 * Property inheritance with exceptions — the classic
 * marker-propagation workload behind the paper's reference [13]
 * (property inheritance applications used to validate the
 * instruction set).
 *
 * "Birds fly.  Penguins are birds.  Penguins don't fly."
 *
 * Inheritance pushes the `flies` property down the taxonomy; a
 * second propagation pushes the *exception* down from every blocker;
 * AND-NOT (NOT-MARKER + AND-MARKER) cancels the blocked subtree —
 * exactly the cancel pattern the NLU parser uses for hypothesis
 * resolution.
 *
 *   ./exceptions
 */

#include <cstdio>

#include "arch/machine.hh"
#include "runtime/validate.hh"

using namespace snap;

int
main()
{
    // A small taxonomy with two exception sites.
    SemanticNetwork net;
    for (const char *n :
         {"animal", "bird", "mammal", "penguin", "ostrich", "robin",
          "sparrow", "bat", "dog", "emperor-penguin",
          "adelie-penguin", "kiwi"})
        net.addNode(n);

    auto child = [&](const char *c, const char *p) {
        net.addLink(net.node(p), "includes", net.node(c), 1.0f);
        net.addLink(net.node(c), "is-a", net.node(p), 1.0f);
    };
    child("bird", "animal");
    child("mammal", "animal");
    child("penguin", "bird");
    child("ostrich", "bird");
    child("robin", "bird");
    child("sparrow", "bird");
    child("kiwi", "bird");
    child("bat", "mammal");
    child("dog", "mammal");
    child("emperor-penguin", "penguin");
    child("adelie-penguin", "penguin");

    NodeId bird = net.node("bird");
    NodeId bat = net.node("bat");
    NodeId penguin = net.node("penguin");
    NodeId ostrich = net.node("ostrich");
    NodeId kiwi = net.node("kiwi");

    Program prog;
    RelationType inc = net.relationId("includes");
    PropRule down = PropRule::chain(inc);
    down.maxSteps = 16;
    RuleId rid = prog.addRule(down);
    RuleId rid2 = prog.addRule(down);

    // m0/m1: `flies` sources and their downward closure.
    prog.append(Instruction::searchNode(bird, 0, 0.0f));
    prog.append(Instruction::searchNode(bat, 0, 0.0f));
    // m2/m3: exception sources (flightless) and their closure.
    prog.append(Instruction::searchNode(penguin, 2, 0.0f));
    prog.append(Instruction::searchNode(ostrich, 2, 0.0f));
    prog.append(Instruction::searchNode(kiwi, 2, 0.0f));
    prog.append(Instruction::propagate(0, 1, rid,
                                       MarkerFunc::Count));
    prog.append(Instruction::propagate(2, 3, rid2,
                                       MarkerFunc::Count));
    prog.append(Instruction::barrier());
    // Sources carry their own properties/exceptions too.
    prog.append(Instruction::orMarker(1, 0, 1, CombineOp::First));
    prog.append(Instruction::orMarker(3, 2, 3, CombineOp::First));
    // flies := inherited AND NOT blocked.
    prog.append(Instruction::notMarker(3, 4));
    prog.append(Instruction::andMarker(1, 4, 5, CombineOp::First));
    prog.append(Instruction::collectMarker(5));
    requireRaceFree(prog);

    SnapMachine machine(MachineConfig::singleCluster(2));
    machine.loadKb(net);
    RunResult run = machine.run(prog);

    std::printf("who flies (inheritance with exceptions):\n");
    for (const CollectedNode &c : run.results.back().nodes)
        std::printf("  %s\n", net.nodeName(c.node).c_str());

    std::printf("\nblocked by an exception:\n");
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        if (machine.markerSet(3, n) && machine.markerSet(1, n))
            std::printf("  %s\n", net.nodeName(n).c_str());
    }
    std::printf("\nmachine time: %.1f us\n", run.wallUs());
    return 0;
}
