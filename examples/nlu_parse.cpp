/**
 * @file
 * End-to-end natural-language understanding on the simulated SNAP-1:
 * build the layered linguistic knowledge base, run the phrasal parser
 * (serial, on the controller) and the memory-based parser (marker
 * propagation on the array) over newswire sentences, and report the
 * winning concept sequences with the paper's timing breakdown.
 *
 *   ./nlu_parse                 # parse the S1-S4 benchmark sentences
 *   ./nlu_parse 5000 8          # KB size and number of random
 *                               # newswire sentences
 */

#include <cstdio>
#include <cstdlib>

#include "arch/machine.hh"
#include "nlu/corpus.hh"
#include "nlu/kb_factory.hh"
#include "nlu/mb_parser.hh"

using namespace snap;

int
main(int argc, char **argv)
{
    std::uint32_t kb_size = 5000;
    std::uint32_t batch = 0;
    if (argc > 1)
        kb_size = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        batch = static_cast<std::uint32_t>(std::atoi(argv[2]));

    std::printf("building the layered linguistic knowledge base "
                "(%u nonlexical concepts)...\n", kb_size);
    LinguisticKbParams params;
    params.nonlexicalNodes = kb_size;
    params.vocabulary = 700;
    LinguisticKb kb(params);
    std::printf("  %u nodes, %llu links: %u concept-sequence roots, "
                "%u elements, %u types, %u syntax, %u auxiliary, "
                "%u words\n\n",
                kb.net().numNodes(),
                static_cast<unsigned long long>(kb.net().numLinks()),
                kb.numRoots(), kb.numElements(), kb.numTypes(),
                kb.numSyntax(), kb.numAux(), kb.lexicon().size());

    SnapMachine machine(MachineConfig::paperSetup());
    machine.loadKb(kb.net());
    MemoryBasedParser parser(kb);

    std::vector<Sentence> sentences =
        batch ? makeNewswireBatch(kb.lexicon(), batch, 2026)
              : makeMuc4Sentences(kb.lexicon());

    std::printf("%-4s %-6s %-7s %-10s %-10s %-8s %s\n", "id",
                "words", "instrs", "P.P. (ms)", "M.B. (ms)",
                "rounds", "parse");
    for (const Sentence &s : sentences) {
        ParseOutcome out = parser.parseOn(machine, s);
        std::printf("%-4s %-6u %-7zu %-10.3f %-10.3f %-8u ",
                    s.id.c_str(), s.length(), out.instructions,
                    out.ppMs(), out.mbMs(), out.cancelRounds);
        if (out.bestRoot == invalidNode) {
            std::printf("<no parse>\n");
            continue;
        }
        std::printf("%s (score %.2f, %zu candidates)\n",
                    kb.net().nodeName(out.bestRoot).c_str(),
                    out.bestScore, out.candidates.size());

        // The extracted meaning: the winning event template's
        // slots, with the filled elements bound to the root.
        auto slots = parser.extractMeaning(machine, out.bestRoot);
        for (const auto &slot : slots) {
            std::printf("       slot %-10s expects %-12s %s",
                        kb.net().nodeName(slot.element).c_str(),
                        kb.net().nodeName(slot.expectedType).c_str(),
                        slot.filled ? "filled" : "empty");
            if (slot.filled)
                std::printf(" (%.2f)", slot.score);
            std::printf("\n");
        }
    }

    std::printf("\nsentences text:\n");
    for (const Sentence &s : sentences)
        std::printf("  %s: %s\n", s.id.c_str(), s.text().c_str());
    return 0;
}
