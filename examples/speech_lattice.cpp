/**
 * @file
 * Speech understanding over a word lattice — the paper's other
 * primary application family (the PASS program of §II-C).
 *
 * A speech front end produces several word hypotheses per position;
 * each position's hypotheses activate and propagate *concurrently*
 * (that is where PASS's higher β-parallelism, 2.8-6, comes from),
 * and the concept sequences resolve which reading fits.
 *
 *   ./speech_lattice [positions] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "arch/machine.hh"
#include "nlu/corpus.hh"
#include "nlu/kb_factory.hh"
#include "nlu/mb_parser.hh"
#include "runtime/validate.hh"
#include "workload/alpha_beta.hh"

using namespace snap;

int
main(int argc, char **argv)
{
    std::uint32_t positions = 12;
    std::uint64_t seed = 3;
    if (argc > 1)
        positions = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    LinguisticKbParams params;
    params.nonlexicalNodes = 4000;
    params.vocabulary = 500;
    LinguisticKb kb(params);
    MemoryBasedParser parser(kb);

    auto lattice = makeSpeechLattice(kb.lexicon(), positions, seed);
    std::printf("word lattice (%u positions):\n", positions);
    for (std::size_t p = 0; p < lattice.size(); ++p) {
        std::printf("  t%-2zu:", p);
        for (const auto &w : lattice[p])
            std::printf(" %s", w.c_str());
        std::printf("\n");
    }

    Program prog = parser.buildLatticeProgram(lattice);
    requireRaceFree(prog);
    BetaStats beta = analyzeBeta(prog);
    std::printf("\nprogram: %zu instructions; overlapped "
                "propagations per epoch: min %.0f avg %.2f max %.0f "
                "(PASS: 2.8-6)\n",
                prog.size(), beta.betaMin, beta.betaAvg,
                beta.betaMax);

    SnapMachine machine(MachineConfig::paperSetup());
    machine.loadKb(kb.net());
    RunResult run = machine.run(prog);

    std::printf("understanding time: %.3f ms  (%llu messages, "
                "%llu sync points, α mean %.1f)\n\n", run.wallMs(),
                static_cast<unsigned long long>(
                    run.stats.messagesSent),
                static_cast<unsigned long long>(run.stats.barriers),
                run.stats.alphaDist.mean());

    const auto &hits = run.results.back().nodes;
    std::printf("surviving concept-sequence hypotheses: %zu\n",
                hits.size());
    NodeId best = invalidNode;
    float best_score = 0;
    for (const CollectedNode &c : hits) {
        if (best == invalidNode || c.value > best_score) {
            best = c.node;
            best_score = c.value;
        }
    }
    if (best != invalidNode) {
        std::printf("best reading: %s (score %.2f)\n",
                    kb.net().nodeName(best).c_str(), best_score);
    }

    // Full recognition: the host resolves each position by semantic
    // support and produces the recognized word sequence.
    SnapMachine machine2(MachineConfig::paperSetup());
    LinguisticKbParams params2 = params;
    LinguisticKb kb2(params2);
    machine2.loadKb(kb2.net());
    MemoryBasedParser parser2(kb2);
    auto rec = parser2.recognizeLattice(machine2, lattice);
    std::printf("\nrecognized (%zu instructions, %.3f ms):\n  ",
                rec.instructions, ticksToMs(rec.machineTime));
    for (std::size_t p = 0; p < rec.words.size(); ++p)
        std::printf("%s ", rec.words[p].c_str());
    std::printf("\n");
    if (rec.bestRoot != invalidNode) {
        std::printf("interpretation: %s (score %.2f)\n",
                    kb2.net().nodeName(rec.bestRoot).c_str(),
                    rec.bestScore);
    }
    return 0;
}
