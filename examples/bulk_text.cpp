/**
 * @file
 * Bulk text understanding — the paper's headline application:
 * "Within this domain, we have processed tens of pages of newswire
 * text by performing inferencing operations on the semantic
 * network" (§I-B), with information extraction output (§IV).
 *
 * Parses a batch of newswire sentences on the paper's 16-cluster
 * setup, extracts the winning event template for each, and reports
 * throughput plus the aggregate statistics behind Figs. 6/8/20.
 *
 *   ./bulk_text [sentences] [kb-size]
 */

#include <cstdio>
#include <cstdlib>

#include "arch/machine.hh"
#include "nlu/corpus.hh"
#include "nlu/kb_factory.hh"
#include "nlu/mb_parser.hh"

using namespace snap;

int
main(int argc, char **argv)
{
    std::uint32_t count = 20;
    std::uint32_t kb_size = 5000;
    if (argc > 1)
        count = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        kb_size = static_cast<std::uint32_t>(std::atoi(argv[2]));

    LinguisticKbParams params;
    params.nonlexicalNodes = kb_size;
    params.vocabulary = 700;
    LinguisticKb kb(params);
    MemoryBasedParser parser(kb);

    MachineConfig cfg = MachineConfig::paperSetup();
    cfg.partition = PartitionStrategy::RoundRobin;
    SnapMachine machine(cfg);
    machine.loadKb(kb.net());

    auto sentences = makeNewswireBatch(kb.lexicon(), count, 1991);

    ExecBreakdown total;
    Tick machine_time = 0;
    Tick host_time = 0;
    std::uint32_t parsed = 0, filled_slots = 0, total_slots = 0;
    std::uint32_t words = 0;

    for (const Sentence &s : sentences) {
        ParseOutcome out = parser.parseOn(machine, s);
        machine_time += out.mbTime;
        host_time += out.ppTime;
        words += s.length();
        total.merge(out.stats);
        if (out.bestRoot == invalidNode)
            continue;
        ++parsed;
        auto slots = parser.extractMeaning(machine, out.bestRoot);
        for (const auto &slot : slots) {
            ++total_slots;
            filled_slots += slot.filled;
        }
    }

    double secs = ticksToSec(machine_time + host_time);
    std::printf("processed %u sentences (%u words) of newswire in "
                "%.3f s of machine time\n", count, words, secs);
    std::printf("  throughput: %.0f words/s — \"sentences can be "
                "parsed more quickly than a human can read them\"\n",
                words / secs);
    std::printf("  parsed: %u/%u; template slots filled: %u/%u\n",
                parsed, count, filled_slots, total_slots);
    std::printf("\naggregate dynamic statistics:\n");
    std::printf("  instructions: %llu (propagate %llu, set/clear "
                "%llu, boolean %llu, collect %llu)\n",
                static_cast<unsigned long long>(
                    total.categoryCounts[0] + total.categoryCounts[1] +
                    total.categoryCounts[2] + total.categoryCounts[3] +
                    total.categoryCounts[4] + total.categoryCounts[5] +
                    total.categoryCounts[6] + total.categoryCounts[7]),
                static_cast<unsigned long long>(
                    total.categoryCounts[static_cast<std::size_t>(
                        InstrCategory::Propagation)]),
                static_cast<unsigned long long>(
                    total.categoryCounts[static_cast<std::size_t>(
                        InstrCategory::SetClear)]),
                static_cast<unsigned long long>(
                    total.categoryCounts[static_cast<std::size_t>(
                        InstrCategory::Boolean)]),
                static_cast<unsigned long long>(
                    total.categoryCounts[static_cast<std::size_t>(
                        InstrCategory::Collection)]));
    std::printf("  marker messages: %llu over %llu sync points "
                "(mean %.1f/sync, α mean %.1f)\n",
                static_cast<unsigned long long>(total.messagesSent),
                static_cast<unsigned long long>(total.barriers),
                total.meanMsgsPerEpoch(), total.alphaDist.mean());
    std::printf("  propagation wall share: %.1f%%\n",
                100.0 *
                    static_cast<double>(total.categoryTicks(
                        InstrCategory::Propagation)) /
                    static_cast<double>(machine_time));
    return 0;
}
