#include "runtime/validate.hh"

#include <map>

#include "common/logging.hh"

namespace snap
{

namespace
{

/** Markers an instruction reads (membership or value). */
void
markersRead(const Instruction &i, std::vector<MarkerId> &out)
{
    out.clear();
    switch (i.op) {
      case Opcode::Propagate:
        out.push_back(i.m1);
        break;
      case Opcode::MarkerCreate:
      case Opcode::MarkerDelete:
      case Opcode::MarkerSetColor:
      case Opcode::CollectMarker:
      case Opcode::CollectRelation:
        out.push_back(i.m1);
        break;
      case Opcode::AndMarker:
      case Opcode::OrMarker:
        out.push_back(i.m1);
        out.push_back(i.m2);
        break;
      case Opcode::NotMarker:
      case Opcode::FuncMarker:
        out.push_back(i.m1);
        break;
      default:
        break;
    }
}

/** Markers an instruction writes. */
void
markersWritten(const Instruction &i, std::vector<MarkerId> &out)
{
    out.clear();
    switch (i.op) {
      case Opcode::SearchNode:
      case Opcode::SearchRelation:
      case Opcode::SearchColor:
      case Opcode::SetMarker:
      case Opcode::ClearMarker:
      case Opcode::FuncMarker:
        out.push_back(i.m1);
        break;
      case Opcode::Propagate:
        out.push_back(i.m2);
        break;
      case Opcode::AndMarker:
      case Opcode::OrMarker:
      case Opcode::NotMarker:
        out.push_back(i.m3);
        break;
      default:
        break;
    }
}

} // namespace

std::vector<RaceViolation>
validateProgram(const Program &prog)
{
    std::vector<RaceViolation> violations;
    // Marker -> index of the unbarriered PROPAGATE writing it (m2).
    std::map<MarkerId, std::size_t> inflightWrites;
    // Marker -> index of the unbarriered PROPAGATE reading it (m1):
    // source scans execute asynchronously per cluster, so a later
    // write to m1 can land before some cluster's scan.
    std::map<MarkerId, std::size_t> inflightReads;
    // Marker -> index of the last non-propagate instruction touching
    // it in this epoch.  A later PROPAGATE into such a marker races
    // backward: its remote deliveries can reach a cluster that has
    // not yet executed the earlier (locally-ordered) instruction.
    std::map<MarkerId, std::size_t> epochTouched;

    std::vector<MarkerId> reads, writes;
    for (std::size_t idx = 0; idx < prog.size(); ++idx) {
        const Instruction &i = prog[idx];

        if (i.op == Opcode::Barrier) {
            inflightWrites.clear();
            inflightReads.clear();
            epochTouched.clear();
            continue;
        }

        markersRead(i, reads);
        markersWritten(i, writes);

        auto check = [&](MarkerId m, const char *what) {
            auto it = inflightWrites.find(m);
            if (it == inflightWrites.end())
                return;
            if (it->second == idx)
                return;
            violations.push_back(RaceViolation{
                idx, it->second, m,
                formatString(
                    "instruction %zu (%s) %s marker m%u while "
                    "PROPAGATE at %zu may still deliver it; "
                    "insert BARRIER",
                    idx, opcodeName(i.op), what,
                    static_cast<unsigned>(m), it->second)});
        };
        auto check_read = [&](MarkerId m) {
            auto it = inflightReads.find(m);
            if (it == inflightReads.end())
                return;
            if (it->second == idx)
                return;
            violations.push_back(RaceViolation{
                idx, it->second, m,
                formatString(
                    "instruction %zu (%s) writes marker m%u while "
                    "PROPAGATE at %zu may still be scanning it; "
                    "insert BARRIER",
                    idx, opcodeName(i.op),
                    static_cast<unsigned>(m), it->second)});
        };

        for (MarkerId m : reads)
            check(m, "reads");
        for (MarkerId m : writes) {
            check(m, "writes");
            check_read(m);
        }

        if (i.op == Opcode::Propagate) {
            if (i.m1 == i.m2) {
                violations.push_back(RaceViolation{
                    idx, idx, i.m1,
                    formatString("instruction %zu: PROPAGATE with "
                                 "m1 == m2 (m%u)", idx,
                                 static_cast<unsigned>(i.m1))});
            }
            auto et = epochTouched.find(i.m2);
            if (et != epochTouched.end()) {
                violations.push_back(RaceViolation{
                    idx, et->second, i.m2,
                    formatString(
                        "instruction %zu (PROPAGATE) delivers into "
                        "m%u, which instruction %zu touches earlier "
                        "in the same epoch; a slow cluster may "
                        "execute that instruction after deliveries "
                        "arrive — insert BARRIER between them",
                        idx, static_cast<unsigned>(i.m2),
                        et->second)});
            }
            inflightWrites[i.m2] = idx;
            inflightReads[i.m1] = idx;
        } else {
            for (MarkerId m : reads)
                epochTouched[m] = idx;
            for (MarkerId m : writes)
                epochTouched[m] = idx;
        }
    }
    return violations;
}

void
requireRaceFree(const Program &prog)
{
    auto violations = validateProgram(prog);
    if (violations.empty())
        return;
    for (const auto &v : violations)
        snap_warn("%s", v.message.c_str());
    snap_fatal("program has %zu barrier-discipline violation(s)",
               violations.size());
}

} // namespace snap
