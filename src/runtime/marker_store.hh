/**
 * @file
 * Functional marker state over a whole network.
 *
 * Used by the golden-model reference interpreter and the baseline
 * simulators.  The SNAP machine model keeps its own per-cluster
 * bit-packed tables (arch/kb_image); this class is the flat,
 * machine-independent equivalent: 64 complex markers (float value +
 * origin binding) and 64 binary markers per node (paper Fig. 4).
 */

#ifndef SNAP_RUNTIME_MARKER_STORE_HH
#define SNAP_RUNTIME_MARKER_STORE_HH

#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"
#include "isa/function.hh"

namespace snap
{

/** Flat marker state: 128 marker planes over N nodes. */
class MarkerStore
{
  public:
    explicit MarkerStore(std::uint32_t num_nodes)
        : numNodes_(num_nodes),
          bits_(capacity::numMarkers, BitVector(num_nodes)),
          values_(capacity::numComplexMarkers)
    {}

    std::uint32_t numNodes() const { return numNodes_; }

    bool
    test(MarkerId m, NodeId n) const
    {
        return bits_[m].test(n);
    }

    /** Set the marker bit only (value untouched). */
    void
    setBit(MarkerId m, NodeId n)
    {
        bits_[m].set(n);
    }

    /** Set bit and, for complex markers, the value register. */
    void
    set(MarkerId m, NodeId n, float value, NodeId origin)
    {
        bits_[m].set(n);
        if (isComplexMarker(m)) {
            auto &vals = plane(m);
            vals[n].value = value;
            vals[n].origin = origin;
        }
    }

    void
    clear(MarkerId m, NodeId n)
    {
        bits_[m].clear(n);
    }

    /** Value register (0 for binary markers). */
    float
    value(MarkerId m, NodeId n) const
    {
        if (!isComplexMarker(m) || values_[m].empty())
            return 0.0f;
        return values_[m][n].value;
    }

    NodeId
    origin(MarkerId m, NodeId n) const
    {
        if (!isComplexMarker(m) || values_[m].empty())
            return invalidNode;
        return values_[m][n].origin;
    }

    void
    setValue(MarkerId m, NodeId n, float value, NodeId origin)
    {
        if (isComplexMarker(m)) {
            auto &vals = plane(m);
            vals[n].value = value;
            vals[n].origin = origin;
        }
    }

    /** Direct row access for word-parallel boolean ops. */
    BitVector &bits(MarkerId m) { return bits_[m]; }
    const BitVector &bits(MarkerId m) const { return bits_[m]; }

    std::uint32_t count(MarkerId m) const { return bits_[m].count(); }

    void
    clearAll(MarkerId m)
    {
        bits_[m].clearAll();
    }

    void
    reset()
    {
        for (auto &b : bits_)
            b.clearAll();
        for (auto &v : values_)
            v.clear();
    }

  private:
    /** Lazily allocated value plane for complex marker @p m. */
    std::vector<MarkerValue> &
    plane(MarkerId m)
    {
        auto &vals = values_[m];
        if (vals.empty())
            vals.resize(numNodes_);
        return vals;
    }

    std::uint32_t numNodes_;
    std::vector<BitVector> bits_;
    std::vector<std::vector<MarkerValue>> values_;
};

} // namespace snap

#endif // SNAP_RUNTIME_MARKER_STORE_HH
