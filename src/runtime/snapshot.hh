/**
 * @file
 * Marker-state snapshots.
 *
 * Applications issue many programs against persistent marker state
 * (the parser's per-sentence programs, host-driven resolution
 * loops).  Snapshots let a long-running application checkpoint the
 * dynamic state between programs and restore it later — on the same
 * machine, on a differently-partitioned machine, or on the golden
 * model.
 *
 * Format (line oriented):
 *
 *     snapmarkers 1 <num-nodes>
 *     m <marker> <node> [value origin]     # value/origin for
 *                                          # complex markers
 */

#ifndef SNAP_RUNTIME_SNAPSHOT_HH
#define SNAP_RUNTIME_SNAPSHOT_HH

#include <iosfwd>
#include <string>

#include "runtime/marker_store.hh"

namespace snap
{

/** Serialize all marker state to @p os. */
void saveMarkers(const MarkerStore &store, std::ostream &os);

/**
 * Parse marker state from @p is.  Malformed input is a fatal (user)
 * error.
 */
MarkerStore loadMarkers(std::istream &is);

/** File variants (fatal on IO failure). */
void saveMarkersFile(const MarkerStore &store,
                     const std::string &path);
MarkerStore loadMarkersFile(const std::string &path);

} // namespace snap

#endif // SNAP_RUNTIME_SNAPSHOT_HH
