#include "runtime/reference.hh"

#include "common/logging.hh"

namespace snap
{

ResultSet
ReferenceInterpreter::run(const Program &prog)
{
    ResultSet results;
    for (const Instruction &i : prog.instructions())
        execute(i, prog.rules(), results);
    return results;
}

void
ReferenceInterpreter::reset()
{
    store_.reset();
    stats_ = ReferenceStats{};
}

std::uint64_t
ReferenceInterpreter::nodeRows(NodeId u) const
{
    std::uint32_t f = net_.fanout(u);
    return f <= capacity::relationSlotsPerNode
               ? 1
               : (f + capacity::relationSlotsPerNode - 1) /
                     capacity::relationSlotsPerNode;
}

void
ReferenceInterpreter::execute(const Instruction &i,
                              const RuleTable &rules,
                              ResultSet &results)
{
    ++stats_.instructions;
    std::uint32_t n = net_.numNodes();
    std::uint64_t words = (n + capacity::wordBits - 1) /
                          capacity::wordBits;

    work_ = InstrWork{};
    work_.op = i.op;

    switch (i.op) {
      case Opcode::Create:
        net_.addLink(i.node, i.rel, i.endNode, i.value);
        work_.linkEdits = 1;
        break;

      case Opcode::Delete:
        net_.removeLink(i.node, i.rel, i.endNode);
        work_.linkEdits = 1;
        break;

      case Opcode::SetColor:
        net_.setColor(i.node, i.color);
        work_.nodeScans = 1;
        break;

      case Opcode::SetWeight:
        net_.setWeight(i.node, i.rel, i.endNode, i.value);
        work_.linkEdits = 1;
        break;

      case Opcode::SearchNode:
        store_.set(i.m1, i.node, i.value, i.node);
        work_.wordOps = 1;
        work_.valueOps = 1;
        break;

      case Opcode::SearchRelation:
        doSearchRelation(i);
        break;

      case Opcode::SearchColor:
        for (NodeId u = 0; u < n; ++u) {
            if (net_.color(u) == i.color) {
                store_.set(i.m1, u, i.value, u);
                ++work_.valueOps;
            }
        }
        work_.nodeScans = n;
        break;

      case Opcode::Propagate: {
        const PropRule &rule = rules.rule(i.rule);
        PropagationStats st = propagateFunctional(net_, store_, i.m1,
                                                  i.m2, rule, i.func);
        ++stats_.propagations;
        stats_.traversals += st.traversals;
        stats_.nodesMarked += st.nodesMarked;
        if (st.maxDepth > stats_.maxDepth)
            stats_.maxDepth = st.maxDepth;

        std::uint64_t expansions = 0;
        for (auto e : st.levelExpansions)
            expansions += e;
        work_.wordOps = words;  // source status-table scan
        work_.sources = st.sources;
        work_.rowFetches = expansions +
                           st.linksScanned /
                               capacity::relationSlotsPerNode;
        work_.slotScans = st.linksScanned;
        work_.deliveries = st.traversals;
        work_.valueOps = st.traversals;
        work_.levelExpansions = st.levelExpansions;
        break;
      }

      case Opcode::MarkerCreate:
      case Opcode::MarkerDelete:
        doMarkerMaintenance(i);
        break;

      case Opcode::MarkerSetColor:
        work_.wordOps = words;
        for (NodeId u = 0; u < n; ++u) {
            if (store_.test(i.m1, u)) {
                net_.setColor(u, i.color);
                ++work_.nodeScans;
            }
        }
        break;

      case Opcode::AndMarker:
      case Opcode::OrMarker:
      case Opcode::NotMarker:
        work_.wordOps = 3 * words;
        doBoolean(i);
        break;

      case Opcode::SetMarker:
        for (NodeId u = 0; u < n; ++u)
            store_.set(i.m1, u, i.value, u);
        work_.wordOps = words;
        work_.valueOps = isComplexMarker(i.m1) ? n : 0;
        break;

      case Opcode::ClearMarker:
        store_.clearAll(i.m1);
        work_.wordOps = words;
        break;

      case Opcode::FuncMarker:
        work_.wordOps = words;
        doFuncMarker(i);
        break;

      case Opcode::CollectMarker:
      case Opcode::CollectRelation:
      case Opcode::CollectColor:
        doCollect(i, results);
        break;

      case Opcode::Barrier:
        // Sequential execution: propagation is already complete.
        break;

      default:
        snap_panic("reference: bad opcode %d",
                   static_cast<int>(i.op));
    }
}

void
ReferenceInterpreter::doSearchRelation(const Instruction &i)
{
    for (NodeId u = 0; u < net_.numNodes(); ++u) {
        work_.rowFetches += nodeRows(u);
        for (const Link &l : net_.links(u)) {
            if (l.rel == i.rel) {
                store_.set(i.m1, u, i.value, u);
                ++work_.valueOps;
                break;
            }
        }
    }
}

void
ReferenceInterpreter::doBoolean(const Instruction &i)
{
    std::uint32_t n = net_.numNodes();
    for (NodeId u = 0; u < n; ++u) {
        bool s1 = store_.test(i.m1, u);

        if (i.op == Opcode::NotMarker) {
            if (!s1) {
                store_.set(i.m3, u, 0.0f, u);
                ++work_.valueOps;
            } else {
                store_.clear(i.m3, u);
            }
            continue;
        }

        bool s2 = store_.test(i.m2, u);
        float v1 = store_.value(i.m1, u);
        float v2 = store_.value(i.m2, u);
        NodeId o1 = isComplexMarker(i.m1) && s1 ? store_.origin(i.m1, u)
                                                : invalidNode;
        NodeId o2 = isComplexMarker(i.m2) && s2 ? store_.origin(i.m2, u)
                                                : invalidNode;

        bool s3;
        float v3 = 0.0f;
        NodeId o3 = u;
        if (i.op == Opcode::AndMarker) {
            s3 = s1 && s2;
            if (s3) {
                v3 = combine(i.comb, v1, v2);
                o3 = o1 != invalidNode ? o1
                     : o2 != invalidNode ? o2 : u;
            }
        } else {  // OrMarker
            s3 = s1 || s2;
            if (s1 && s2) {
                v3 = combine(i.comb, v1, v2);
                o3 = o1 != invalidNode ? o1
                     : o2 != invalidNode ? o2 : u;
            } else if (s1) {
                v3 = v1;
                o3 = o1 != invalidNode ? o1 : u;
            } else if (s2) {
                v3 = v2;
                o3 = o2 != invalidNode ? o2 : u;
            }
        }

        if (s3) {
            store_.set(i.m3, u, v3, o3);
            ++work_.valueOps;
        } else {
            store_.clear(i.m3, u);
        }
    }
}

void
ReferenceInterpreter::doMarkerMaintenance(const Instruction &i)
{
    // Snapshot the marked set first: MARKER-CREATE must not react to
    // links it creates itself (the end node may gain the marker's
    // relation but never holds the marker).
    std::vector<NodeId> marked;
    store_.bits(i.m1).collect(marked);

    work_.wordOps = (net_.numNodes() + capacity::wordBits - 1) /
                    capacity::wordBits;
    for (NodeId u : marked) {
        if (i.op == Opcode::MarkerCreate) {
            net_.addLink(u, i.rel, i.endNode, 0.0f);
            net_.addLink(i.endNode, i.rel2, u, 0.0f);
        } else {
            net_.removeLink(u, i.rel, i.endNode);
            net_.removeLink(i.endNode, i.rel2, u);
        }
        work_.linkEdits += 2;
    }
}

void
ReferenceInterpreter::doFuncMarker(const Instruction &i)
{
    std::uint32_t n = net_.numNodes();
    for (NodeId u = 0; u < n; ++u) {
        if (!store_.test(i.m1, u))
            continue;
        float v = store_.value(i.m1, u);
        bool keep = i.sfunc.apply(v);
        if (!keep) {
            store_.clear(i.m1, u);
        } else if (isComplexMarker(i.m1)) {
            store_.setValue(i.m1, u, v, store_.origin(i.m1, u));
        }
        ++work_.valueOps;
    }
}

void
ReferenceInterpreter::doCollect(const Instruction &i,
                                ResultSet &results)
{
    CollectResult res;
    res.op = i.op;
    res.marker = i.m1;
    res.color = i.color;
    res.rel = i.rel;

    std::uint32_t n = net_.numNodes();
    switch (i.op) {
      case Opcode::CollectMarker:
        for (NodeId u = 0; u < n; ++u) {
            if (store_.test(i.m1, u)) {
                res.nodes.push_back(CollectedNode{
                    u, store_.value(i.m1, u),
                    store_.origin(i.m1, u)});
            }
        }
        break;
      case Opcode::CollectRelation:
        for (NodeId u = 0; u < n; ++u) {
            if (!store_.test(i.m1, u))
                continue;
            for (const Link &l : net_.links(u)) {
                if (l.rel == i.rel) {
                    res.links.push_back(
                        CollectedLink{u, l.rel, l.dst, l.weight});
                }
            }
        }
        break;
      case Opcode::CollectColor:
        for (NodeId u = 0; u < n; ++u) {
            if (net_.color(u) == i.color) {
                res.nodes.push_back(
                    CollectedNode{u, 0.0f, invalidNode});
            }
        }
        break;
      default:
        snap_panic("doCollect: bad opcode");
    }
    if (i.op == Opcode::CollectColor) {
        work_.nodeScans = n;
    } else {
        work_.wordOps = (n + capacity::wordBits - 1) /
                        capacity::wordBits;
    }
    if (i.op == Opcode::CollectRelation) {
        for (NodeId u = 0; u < n; ++u)
            if (store_.test(i.m1, u))
                work_.rowFetches += nodeRows(u);
    }
    work_.items = res.nodes.size() + res.links.size();
    results.push_back(std::move(res));
}

} // namespace snap
