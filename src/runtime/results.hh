/**
 * @file
 * Result records returned by the retrieval instructions.
 *
 * "Results are collected by retrieval operations which return to the
 * controller the ID's of nodes with a specific marker, relation, or
 * color."  (paper §II-B)
 */

#ifndef SNAP_RUNTIME_RESULTS_HH
#define SNAP_RUNTIME_RESULTS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace snap
{

/** One node returned by COLLECT-MARKER / COLLECT-COLOR. */
struct CollectedNode
{
    NodeId node = invalidNode;
    /** Marker value (0 for binary markers and COLLECT-COLOR). */
    float value = 0.0f;
    /** Origin binding (invalidNode when not applicable). */
    NodeId origin = invalidNode;

    bool
    operator==(const CollectedNode &o) const
    {
        return node == o.node && value == o.value &&
               origin == o.origin;
    }
};

/** One link returned by COLLECT-RELATION. */
struct CollectedLink
{
    NodeId src = invalidNode;
    RelationType rel = 0;
    NodeId dst = invalidNode;
    float weight = 0.0f;

    bool
    operator==(const CollectedLink &o) const
    {
        return src == o.src && rel == o.rel && dst == o.dst &&
               weight == o.weight;
    }
};

/**
 * The data returned by one retrieval instruction.  Node entries
 * appear in machine collection order (cluster by cluster); use
 * sortNodes() before comparing against a reference.
 */
struct CollectResult
{
    Opcode op = Opcode::CollectMarker;
    MarkerId marker = 0;
    Color color = 0;
    RelationType rel = 0;
    std::vector<CollectedNode> nodes;
    std::vector<CollectedLink> links;

    void
    sortNodes()
    {
        std::sort(nodes.begin(), nodes.end(),
                  [](const CollectedNode &a, const CollectedNode &b) {
                      return a.node < b.node;
                  });
        std::sort(links.begin(), links.end(),
                  [](const CollectedLink &a, const CollectedLink &b) {
                      if (a.src != b.src)
                          return a.src < b.src;
                      if (a.rel != b.rel)
                          return a.rel < b.rel;
                      if (a.dst != b.dst)
                          return a.dst < b.dst;
                      // Parallel links: keep the order total so
                      // machine/golden comparisons are stable.
                      return a.weight < b.weight;
                  });
    }
};

/** All retrieval results of one program run, in program order. */
using ResultSet = std::vector<CollectResult>;

} // namespace snap

#endif // SNAP_RUNTIME_RESULTS_HH
