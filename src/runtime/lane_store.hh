/**
 * @file
 * Lane-packed marker state for a batch of queries.
 *
 * The batch-execution analogue of MarkerStore: each of the 128 marker
 * planes is a MultiBitVector over (node x lane), so one row
 * operation (W = ceil(lanes/64) words, executed by the pluggable
 * lane backend) touches one node's marker status for every query in
 * the batch, and complex-marker value registers are kept per (node,
 * lane).  Solo state moves in and out per lane (insertLane /
 * extractLane), which is how the batch former stages queued queries
 * into a LaneBatch and how per-query answers are pulled back out.
 */

#ifndef SNAP_RUNTIME_LANE_STORE_HH
#define SNAP_RUNTIME_LANE_STORE_HH

#include <vector>

#include "common/multibitvector.hh"
#include "common/types.hh"
#include "isa/function.hh"
#include "runtime/marker_store.hh"

namespace snap
{

/** 128 lane-packed marker planes over N nodes x L lanes. */
class LaneMarkerStore
{
  public:
    LaneMarkerStore(std::uint32_t num_nodes, std::uint32_t num_lanes)
        : numNodes_(num_nodes), numLanes_(num_lanes),
          bits_(capacity::numMarkers,
                MultiBitVector(num_nodes, num_lanes)),
          values_(capacity::numComplexMarkers)
    {}

    std::uint32_t numNodes() const { return numNodes_; }
    std::uint32_t numLanes() const { return numLanes_; }

    bool
    test(MarkerId m, NodeId n, std::uint32_t lane) const
    {
        return bits_[m].test(n, lane);
    }

    /** Lanes holding marker @p m at node @p n — single-word form,
     *  valid only for batches of <= 64 lanes; wide callers read
     *  bits(m).row(n) instead. */
    MultiBitVector::Word
    lanes(MarkerId m, NodeId n) const
    {
        return bits_[m].lanes(n);
    }

    /** Set bit and, for complex markers, the value register. */
    void
    set(MarkerId m, NodeId n, std::uint32_t lane, float value,
        NodeId origin)
    {
        bits_[m].set(n, lane);
        if (isComplexMarker(m)) {
            MarkerValue &v = slot(m, n, lane);
            v.value = value;
            v.origin = origin;
        }
    }

    /** Value register (0 for binary markers / untouched planes). */
    float
    value(MarkerId m, NodeId n, std::uint32_t lane) const
    {
        if (!isComplexMarker(m) || values_[m].empty())
            return 0.0f;
        return values_[m][idx(n, lane)].value;
    }

    NodeId
    origin(MarkerId m, NodeId n, std::uint32_t lane) const
    {
        if (!isComplexMarker(m) || values_[m].empty())
            return invalidNode;
        return values_[m][idx(n, lane)].origin;
    }

    void
    setValue(MarkerId m, NodeId n, std::uint32_t lane, float value,
             NodeId origin)
    {
        if (isComplexMarker(m)) {
            MarkerValue &v = slot(m, n, lane);
            v.value = value;
            v.origin = origin;
        }
    }

    MultiBitVector &bits(MarkerId m) { return bits_[m]; }
    const MultiBitVector &bits(MarkerId m) const { return bits_[m]; }

    /** Stage one query's solo marker state into lane @p lane. */
    void
    insertLane(std::uint32_t lane, const MarkerStore &solo)
    {
        snap_assert(solo.numNodes() == numNodes_,
                    "node count mismatch %u vs %u", solo.numNodes(),
                    numNodes_);
        for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
            const MarkerId mid = static_cast<MarkerId>(m);
            bits_[m].insertLane(lane, solo.bits(mid));
            if (!isComplexMarker(mid))
                continue;
            solo.bits(mid).forEachSet([&](std::uint32_t n) {
                MarkerValue &v = slot(mid, n, lane);
                v.value = solo.value(mid, n);
                v.origin = solo.origin(mid, n);
            });
        }
    }

    /** Pull lane @p lane's state back out as a solo MarkerStore. */
    MarkerStore
    extractLane(std::uint32_t lane) const
    {
        MarkerStore solo(numNodes_);
        for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
            const MarkerId mid = static_cast<MarkerId>(m);
            bits_[m].extractLane(lane).forEachSet(
                [&](std::uint32_t n) {
                    solo.set(mid, n, value(mid, n, lane),
                             origin(mid, n, lane));
                });
        }
        return solo;
    }

    void
    reset()
    {
        for (MultiBitVector &b : bits_)
            b.clearAll();
        for (auto &v : values_)
            v.clear();
    }

  private:
    std::size_t
    idx(NodeId n, std::uint32_t lane) const
    {
        return static_cast<std::size_t>(n) * numLanes_ + lane;
    }

    /** Lazily allocated per-(node, lane) value plane. */
    MarkerValue &
    slot(MarkerId m, NodeId n, std::uint32_t lane)
    {
        auto &vals = values_[m];
        if (vals.empty())
            vals.resize(static_cast<std::size_t>(numNodes_) *
                        numLanes_);
        return vals[idx(n, lane)];
    }

    std::uint32_t numNodes_;
    std::uint32_t numLanes_;
    std::vector<MultiBitVector> bits_;
    std::vector<std::vector<MarkerValue>> values_;
};

} // namespace snap

#endif // SNAP_RUNTIME_LANE_STORE_HH
