/**
 * @file
 * Static race validation for SNAP programs.
 *
 * On the machine, marker delivery from PROPAGATE is asynchronous:
 * remote activations may still be in flight when later instructions
 * execute.  "Before L6 can be executed, the PE's which are propagating
 * markers need to be synchronized because of the data dependency with
 * {L4, L5}" (paper §II-C, Fig. 7).  The hardware provides BARRIER;
 * placing it is software's responsibility.
 *
 * This validator reproduces that discipline statically: within one
 * barrier epoch, any instruction that reads or writes a marker still
 * being propagated into (the m2 of an unbarriered PROPAGATE), or that
 * re-propagates from it, is reported.  Such programs have
 * timing-dependent results on real hardware and on this model.
 */

#ifndef SNAP_RUNTIME_VALIDATE_HH
#define SNAP_RUNTIME_VALIDATE_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace snap
{

/** One detected ordering hazard. */
struct RaceViolation
{
    /** Index of the conflicting instruction. */
    std::size_t instrIndex;
    /** Index of the unbarriered PROPAGATE it conflicts with. */
    std::size_t propagateIndex;
    /** The marker both touch. */
    MarkerId marker;
    std::string message;
};

/**
 * Scan @p prog for barrier-discipline violations.
 * @return all violations, empty when the program is race free.
 */
std::vector<RaceViolation> validateProgram(const Program &prog);

/** Fatal error if @p prog has any violation (user error). */
void requireRaceFree(const Program &prog);

} // namespace snap

#endif // SNAP_RUNTIME_VALIDATE_HH
