/**
 * @file
 * Golden-model reference interpreter for the SNAP instruction set.
 *
 * Executes programs sequentially on flat state, defining the
 * functional meaning of every instruction in Table II.  The SNAP
 * machine model (arch/) must produce identical marker state and
 * collection results for race-free programs; randomized equivalence
 * tests enforce this.
 */

#ifndef SNAP_RUNTIME_REFERENCE_HH
#define SNAP_RUNTIME_REFERENCE_HH

#include <cstdint>

#include "isa/program.hh"
#include "kb/semantic_network.hh"
#include "runtime/marker_store.hh"
#include "runtime/propagate.hh"
#include "runtime/results.hh"

namespace snap
{

/** Aggregate work counters over a reference run. */
struct ReferenceStats
{
    std::uint64_t instructions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t traversals = 0;
    std::uint64_t nodesMarked = 0;
    std::uint32_t maxDepth = 0;
};

/**
 * Machine-independent work performed by one instruction.  The
 * baseline simulators (uniprocessor, CM-2) convert these counts into
 * time under their own cost models.
 */
struct InstrWork
{
    Opcode op = Opcode::Barrier;
    /** 32-bit status words touched. */
    std::uint64_t wordOps = 0;
    /** Complex-marker value-register updates. */
    std::uint64_t valueOps = 0;
    /** Node-table entries scanned (color checks etc.). */
    std::uint64_t nodeScans = 0;
    /** 16-slot relation rows fetched. */
    std::uint64_t rowFetches = 0;
    /** Relation slots examined. */
    std::uint64_t slotScans = 0;
    /** Marker deliveries (traversals performed). */
    std::uint64_t deliveries = 0;
    /** Items returned to the host (retrieval ops). */
    std::uint64_t items = 0;
    /** Link insertions/removals. */
    std::uint64_t linkEdits = 0;
    /** PROPAGATE only: expansions per BFS level. */
    std::vector<std::uint64_t> levelExpansions;
    /** PROPAGATE only: source activations (α). */
    std::uint64_t sources = 0;
};

/**
 * Sequential interpreter over a SemanticNetwork.
 *
 * The network reference is mutable: node-maintenance and
 * marker-maintenance instructions modify it, exactly as they modify
 * the distributed tables on the machine.
 */
class ReferenceInterpreter
{
  public:
    explicit ReferenceInterpreter(SemanticNetwork &net)
        : net_(net), store_(net.numNodes())
    {}

    /**
     * Execute @p prog from the current state; collection results
     * are appended to the returned set in program order.
     */
    ResultSet run(const Program &prog);

    /** Execute one instruction (BARRIER is a no-op here). */
    void execute(const Instruction &instr, const RuleTable &rules,
                 ResultSet &results);

    /** Marker state access for tests. */
    MarkerStore &store() { return store_; }
    const MarkerStore &store() const { return store_; }

    const ReferenceStats &stats() const { return stats_; }

    /** Work performed by the most recently executed instruction. */
    const InstrWork &lastWork() const { return work_; }

    /** Clear marker state and counters (network untouched). */
    void reset();

  private:
    void doSearchRelation(const Instruction &i);
    void doBoolean(const Instruction &i);
    void doMarkerMaintenance(const Instruction &i);
    void doFuncMarker(const Instruction &i);
    void doCollect(const Instruction &i, ResultSet &results);

    /** Relation rows a node occupies (subnode chains included). */
    std::uint64_t nodeRows(NodeId u) const;

    SemanticNetwork &net_;
    MarkerStore store_;
    ReferenceStats stats_;
    InstrWork work_;
};

} // namespace snap

#endif // SNAP_RUNTIME_REFERENCE_HH
