#include "runtime/propagate.hh"

#include <deque>

#include "common/logging.hh"
#include "runtime/frontier_map.hh"

namespace snap
{

namespace
{

/** True for functions whose merge order prefers larger values. */
bool
maxOrder(MarkerFunc f)
{
    return f == MarkerFunc::MaxWeight || f == MarkerFunc::MulWeight;
}

} // namespace

bool
betterArrival(MarkerFunc f, float v1, NodeId o1, float v2, NodeId o2)
{
    if (maxOrder(f)) {
        if (v1 != v2)
            return v1 > v2;
    } else {
        if (v1 != v2)
            return v1 < v2;
    }
    return o1 < o2;
}

namespace
{

/**
 * a dominates b: a's continuations are guaranteed to win or tie
 * every downstream merge b's could, within b's remaining step
 * budget.  Requires all three of:
 *   - better-or-equal in the function's (value, origin) order,
 *   - origin <= origin: values can saturate to equality downstream
 *     (Min/Max functions), where the merge falls back to the origin
 *     tie-break — a better value with a larger origin may LOSE after
 *     saturation, so it must not prune,
 *   - steps <= steps: the pruned label must not out-reach the
 *     dominator under the rule's step bound.
 */
bool
dominates(MarkerFunc f, const PropLabel &a, const PropLabel &b)
{
    if (betterArrival(f, b.value, b.origin, a.value, a.origin))
        return false;  // b strictly better in (value, origin)
    return a.origin <= b.origin && a.steps <= b.steps;
}

} // namespace

bool
frontierAdmit(MarkerFunc f, std::vector<PropLabel> &frontier,
              const PropLabel &cand)
{
    for (const PropLabel &e : frontier)
        if (dominates(f, e, cand))
            return false;
    // Remove entries the candidate dominates.
    std::size_t out = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (!dominates(f, cand, frontier[i]))
            frontier[out++] = frontier[i];
    }
    frontier.resize(out);
    frontier.push_back(cand);
    return true;
}

PropagationStats
propagateFunctional(const SemanticNetwork &net, MarkerStore &store,
                    MarkerId m1, MarkerId m2, const PropRule &rule,
                    MarkerFunc func)
{
    snap_assert(m1 != m2,
                "PROPAGATE with identical source and destination "
                "marker m%u", static_cast<unsigned>(m1));

    PropagationStats st;

    struct Arrival
    {
        NodeId node;
        std::uint8_t state;
        float value;
        NodeId origin;
        std::uint32_t steps;
    };

    // Non-dominated label frontier per (node, state): controls
    // re-propagation.
    FrontierMap best;
    auto key = [](NodeId n, std::uint8_t s) {
        return (static_cast<std::uint64_t>(n) << 8) | s;
    };

    std::deque<Arrival> queue;

    // Seed from every node currently holding marker-1, in node order
    // (the MU scans the m1 status table row by row, ctz per word).
    const BitVector &src_bits = store.bits(m1);
    src_bits.forEachSet([&](std::uint32_t u) {
        ++st.sources;
        float v0 = store.value(m1, u);
        queue.push_back(Arrival{u, 0, v0, u, 0});
        frontierAdmit(func, best[key(u, 0)], PropLabel{v0, u, 0});
    });

    std::vector<std::uint8_t> next_states;
    while (!queue.empty()) {
        Arrival a = queue.front();
        queue.pop_front();

        if (!rule.live(a.state))
            continue;
        if (a.steps >= rule.maxSteps)
            continue;

        if (st.levelExpansions.size() <= a.steps)
            st.levelExpansions.resize(a.steps + 1, 0);
        ++st.levelExpansions[a.steps];

        for (const Link &l : net.links(a.node)) {
            ++st.linksScanned;
            next_states.clear();
            rule.step(a.state, l.rel, next_states);
            if (next_states.empty())
                continue;

            float nv = applyStep(func, a.value, l.weight);
            std::uint32_t nsteps = a.steps + 1;
            if (nsteps > st.maxDepth)
                st.maxDepth = nsteps;

            // Deliver marker-2 to the destination node (merge).
            bool already = store.test(m2, l.dst);
            if (!already) {
                store.set(m2, l.dst, nv, a.origin);
                ++st.nodesMarked;
            } else if (betterArrival(func, nv, a.origin,
                                     store.value(m2, l.dst),
                                     store.origin(m2, l.dst))) {
                store.setValue(m2, l.dst, nv, a.origin);
            }

            // Continue propagation per reachable rule state.
            for (std::uint8_t ns : next_states) {
                ++st.traversals;
                if (!frontierAdmit(func, best[key(l.dst, ns)],
                                   PropLabel{nv, a.origin, nsteps}))
                    continue;  // dominated: do not re-propagate
                queue.push_back(
                    Arrival{l.dst, ns, nv, a.origin, nsteps});
            }
        }
    }
    return st;
}

} // namespace snap
