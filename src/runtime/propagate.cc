#include "runtime/propagate.hh"

#include <deque>

#include "common/lane_backend.hh"
#include "common/logging.hh"
#include "runtime/frontier_map.hh"

namespace snap
{

namespace
{

/** True for functions whose merge order prefers larger values. */
bool
maxOrder(MarkerFunc f)
{
    return f == MarkerFunc::MaxWeight || f == MarkerFunc::MulWeight;
}

} // namespace

bool
betterArrival(MarkerFunc f, float v1, NodeId o1, float v2, NodeId o2)
{
    if (maxOrder(f)) {
        if (v1 != v2)
            return v1 > v2;
    } else {
        if (v1 != v2)
            return v1 < v2;
    }
    return o1 < o2;
}

namespace
{

/**
 * a dominates b: a's continuations are guaranteed to win or tie
 * every downstream merge b's could, within b's remaining step
 * budget.  Requires all three of:
 *   - better-or-equal in the function's (value, origin) order,
 *   - origin <= origin: values can saturate to equality downstream
 *     (Min/Max functions), where the merge falls back to the origin
 *     tie-break — a better value with a larger origin may LOSE after
 *     saturation, so it must not prune,
 *   - steps <= steps: the pruned label must not out-reach the
 *     dominator under the rule's step bound.
 */
bool
dominates(MarkerFunc f, const PropLabel &a, const PropLabel &b)
{
    if (betterArrival(f, b.value, b.origin, a.value, a.origin))
        return false;  // b strictly better in (value, origin)
    return a.origin <= b.origin && a.steps <= b.steps;
}

} // namespace

bool
frontierAdmit(MarkerFunc f, std::vector<PropLabel> &frontier,
              const PropLabel &cand)
{
    for (const PropLabel &e : frontier)
        if (dominates(f, e, cand))
            return false;
    // Remove entries the candidate dominates.
    std::size_t out = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (!dominates(f, cand, frontier[i]))
            frontier[out++] = frontier[i];
    }
    frontier.resize(out);
    frontier.push_back(cand);
    return true;
}

PropagationStats
propagateFunctional(const SemanticNetwork &net, MarkerStore &store,
                    MarkerId m1, MarkerId m2, const PropRule &rule,
                    MarkerFunc func)
{
    snap_assert(m1 != m2,
                "PROPAGATE with identical source and destination "
                "marker m%u", static_cast<unsigned>(m1));

    PropagationStats st;

    struct Arrival
    {
        NodeId node;
        std::uint8_t state;
        float value;
        NodeId origin;
        std::uint32_t steps;
    };

    // Non-dominated label frontier per (node, state): controls
    // re-propagation.
    FrontierMap best;
    auto key = [](NodeId n, std::uint8_t s) {
        return (static_cast<std::uint64_t>(n) << 8) | s;
    };

    std::deque<Arrival> queue;

    // Seed from every node currently holding marker-1, in node order
    // (the MU scans the m1 status table row by row, ctz per word).
    const BitVector &src_bits = store.bits(m1);
    src_bits.forEachSet([&](std::uint32_t u) {
        ++st.sources;
        float v0 = store.value(m1, u);
        queue.push_back(Arrival{u, 0, v0, u, 0});
        frontierAdmit(func, best[key(u, 0)], PropLabel{v0, u, 0});
    });

    std::vector<std::uint8_t> next_states;
    while (!queue.empty()) {
        Arrival a = queue.front();
        queue.pop_front();

        if (!rule.live(a.state))
            continue;
        if (a.steps >= rule.maxSteps)
            continue;

        if (st.levelExpansions.size() <= a.steps)
            st.levelExpansions.resize(a.steps + 1, 0);
        ++st.levelExpansions[a.steps];

        for (const Link &l : net.links(a.node)) {
            ++st.linksScanned;
            next_states.clear();
            rule.step(a.state, l.rel, next_states);
            if (next_states.empty())
                continue;

            float nv = applyStep(func, a.value, l.weight);
            std::uint32_t nsteps = a.steps + 1;
            if (nsteps > st.maxDepth)
                st.maxDepth = nsteps;

            // Deliver marker-2 to the destination node (merge).
            bool already = store.test(m2, l.dst);
            if (!already) {
                store.set(m2, l.dst, nv, a.origin);
                ++st.nodesMarked;
            } else if (betterArrival(func, nv, a.origin,
                                     store.value(m2, l.dst),
                                     store.origin(m2, l.dst))) {
                store.setValue(m2, l.dst, nv, a.origin);
            }

            // Continue propagation per reachable rule state.
            for (std::uint8_t ns : next_states) {
                ++st.traversals;
                if (!frontierAdmit(func, best[key(l.dst, ns)],
                                   PropLabel{nv, a.origin, nsteps}))
                    continue;  // dominated: do not re-propagate
                queue.push_back(
                    Arrival{l.dst, ns, nv, a.origin, nsteps});
            }
        }
    }
    return st;
}

std::vector<PropagationStats>
propagateFunctionalBatch(const SemanticNetwork &net,
                         LaneMarkerStore &store, MarkerId m1,
                         MarkerId m2, const PropRule &rule,
                         MarkerFunc func)
{
    snap_assert(m1 != m2,
                "PROPAGATE with identical source and destination "
                "marker m%u", static_cast<unsigned>(m1));

    using Word = MultiBitVector::Word;
    constexpr std::uint32_t wb = MultiBitVector::bitsPerWord;
    const std::uint32_t num_lanes = store.numLanes();
    const std::uint32_t lane_words =
        store.bits(m1).laneWords();
    const LaneOps &ops = laneOps();
    std::vector<PropagationStats> st(num_lanes);

    // One shared queue entry: (node, state, steps) plus the lanes
    // present as a W-word row mask, with per-lane labels packed in
    // ascending lane order (entry i of values/origins belongs to the
    // i-th set bit of mask, rows scanned low to high).  state and
    // steps are shared by construction — see the header comment's
    // order-preservation argument.
    struct BatchArrival
    {
        NodeId node;
        std::uint8_t state;
        std::uint32_t steps;
        std::vector<Word> mask;
        std::vector<float> values;
        std::vector<NodeId> origins;
    };

    // Per-lane non-dominated label frontiers (admission control is a
    // per-query decision; only the traversal is shared).
    std::vector<FrontierMap> best(num_lanes);
    auto key = [](NodeId n, std::uint8_t s) {
        return (static_cast<std::uint64_t>(n) << 8) | s;
    };
    // Row-then-ctz scan: global lane order stays ascending across
    // word seams, so packed label order matches solo FIFO order.
    auto forEachLane = [lane_words](const Word *mask, auto &&fn) {
        std::uint32_t i = 0;
        for (std::uint32_t w = 0; w < lane_words; ++w) {
            Word m = mask[w];
            while (m) {
                std::uint32_t lane =
                    w * wb + static_cast<std::uint32_t>(
                                 __builtin_ctzll(m));
                m &= m - 1;
                fn(lane, i++);
            }
        }
    };

    std::deque<BatchArrival> queue;

    // Seed: one pass over the lane-packed m1 status plane, ascending
    // node order; each active row yields the whole batch's sources
    // at that node.
    store.bits(m1).forEachActiveRow(
        [&](std::uint32_t u, const Word *mask) {
        BatchArrival a{u, 0, 0,
                       std::vector<Word>(mask, mask + lane_words),
                       {}, {}};
        forEachLane(mask, [&](std::uint32_t lane, std::uint32_t) {
            ++st[lane].sources;
            float v0 = store.value(m1, u, lane);
            a.values.push_back(v0);
            a.origins.push_back(u);
            frontierAdmit(func, best[lane][key(u, 0)],
                          PropLabel{v0, u, 0});
        });
        queue.push_back(std::move(a));
    });

    std::vector<std::uint8_t> next_states;
    std::vector<float> cand_values;
    std::vector<NodeId> cand_origins;
    std::vector<Word> have(lane_words);
    std::vector<Word> admit(lane_words);
    while (!queue.empty()) {
        BatchArrival a = std::move(queue.front());
        queue.pop_front();

        // Liveness and the step bound depend only on the shared
        // (state, steps), so the whole wave passes or dies together —
        // exactly as each lane would solo.
        if (!rule.live(a.state))
            continue;
        if (a.steps >= rule.maxSteps)
            continue;

        forEachLane(a.mask.data(),
                    [&](std::uint32_t lane, std::uint32_t) {
            if (st[lane].levelExpansions.size() <= a.steps)
                st[lane].levelExpansions.resize(a.steps + 1, 0);
            ++st[lane].levelExpansions[a.steps];
        });

        for (const Link &l : net.links(a.node)) {
            forEachLane(a.mask.data(),
                        [&](std::uint32_t lane, std::uint32_t) {
                            ++st[lane].linksScanned;
                        });
            next_states.clear();
            rule.step(a.state, l.rel, next_states);
            if (next_states.empty())
                continue;

            std::uint32_t nsteps = a.steps + 1;

            // Deliver marker-2 to the destination for every lane of
            // the wave: one backend fetch-and-OR reads the whole
            // batch's already-marked row and sets the newcomers.
            // The wave mask is a subset of the valid lanes, so the
            // tail-lane invariant is preserved without re-masking.
            ops.orFetch(store.bits(m2).rowMut(l.dst), a.mask.data(),
                        have.data(), lane_words);
            forEachLane(a.mask.data(),
                        [&](std::uint32_t lane, std::uint32_t i) {
                float nv = applyStep(func, a.values[i], l.weight);
                if (nsteps > st[lane].maxDepth)
                    st[lane].maxDepth = nsteps;
                if (!((have[lane / wb] >> (lane % wb)) & 1u)) {
                    store.setValue(m2, l.dst, lane, nv,
                                   a.origins[i]);
                    ++st[lane].nodesMarked;
                } else if (betterArrival(
                               func, nv, a.origins[i],
                               store.value(m2, l.dst, lane),
                               store.origin(m2, l.dst, lane))) {
                    store.setValue(m2, l.dst, lane, nv,
                                   a.origins[i]);
                }
            });

            // Continue per reachable rule state: per-lane admission,
            // one shared child entry for all admitted lanes.
            for (std::uint8_t ns : next_states) {
                ops.fill(admit.data(), 0, lane_words);
                cand_values.clear();
                cand_origins.clear();
                forEachLane(a.mask.data(), [&](std::uint32_t lane,
                                               std::uint32_t i) {
                    ++st[lane].traversals;
                    float nv =
                        applyStep(func, a.values[i], l.weight);
                    if (!frontierAdmit(
                            func, best[lane][key(l.dst, ns)],
                            PropLabel{nv, a.origins[i], nsteps}))
                        return;  // dominated: no re-propagation
                    admit[lane / wb] |= Word{1} << (lane % wb);
                    cand_values.push_back(nv);
                    cand_origins.push_back(a.origins[i]);
                });
                if (ops.any(admit.data(), lane_words)) {
                    queue.push_back(BatchArrival{
                        l.dst, ns, nsteps, admit, cand_values,
                        cand_origins});
                }
            }
        }
    }
    return st;
}

} // namespace snap
