/**
 * @file
 * Functional (machine-independent) propagation engine.
 *
 * Defines the reference semantics of PROPAGATE that the SNAP machine
 * model must reproduce, and supplies the per-level expansion counts
 * the baseline simulators (uniprocessor, CM-2) convert into time.
 *
 * Semantics (DESIGN.md §5): from every node with marker-1 set, a
 * marker-2 instance propagates along rule-admissible paths; the
 * carried function updates its value per traversed link; every
 * reached node receives marker-2 (merged by the function's order);
 * a (node, rule-state) pair re-propagates only on first arrival or
 * strict improvement under the deterministic total order
 * (value, then origin id), which makes the fixpoint independent of
 * processing order for monotone functions when the rule's step bound
 * does not bind.
 */

#ifndef SNAP_RUNTIME_PROPAGATE_HH
#define SNAP_RUNTIME_PROPAGATE_HH

#include <cstdint>
#include <vector>

#include "isa/function.hh"
#include "isa/prop_rule.hh"
#include "kb/semantic_network.hh"
#include "runtime/lane_store.hh"
#include "runtime/marker_store.hh"

namespace snap
{

/**
 * True when arrival (v1, o1) beats incumbent (v2, o2) under function
 * @p f: min-order functions prefer smaller values, max-order larger;
 * ties break toward the smaller origin id so results are
 * deterministic.  MarkerFunc::None uses min order (its value never
 * changes along a path, so this reduces to "smallest (value, origin)
 * among reaching sources").
 */
bool betterArrival(MarkerFunc f, float v1, NodeId o1, float v2,
                   NodeId o2);

/**
 * One propagation label at a (node, rule-state): the carried value,
 * origin binding, and steps consumed.
 */
struct PropLabel
{
    float value;
    NodeId origin;
    std::uint32_t steps;
};

/**
 * Pareto-frontier admission for re-propagation.
 *
 * Because the rule's step bound cuts paths, a label may only prune
 * continuations it *dominates*: better-or-equal in the function's
 * (value, origin) order AND no more steps consumed.  Keeping the
 * non-dominated frontier per (node, state) makes the propagation
 * fixpoint independent of processing order for monotone functions —
 * the property the machine-vs-golden equivalence tests rely on.
 *
 * @return true if @p cand is admitted (caller re-propagates);
 *         the frontier is updated in place (dominated entries
 *         removed).
 */
bool frontierAdmit(MarkerFunc f, std::vector<PropLabel> &frontier,
                   const PropLabel &cand);

/** Work counters produced by one functional propagation. */
struct PropagationStats
{
    /** Nodes where marker-2 was newly set. */
    std::uint64_t nodesMarked = 0;
    /** Links examined at expanded nodes (relation-table scans). */
    std::uint64_t linksScanned = 0;
    /** Admissible traversals performed (marker movements). */
    std::uint64_t traversals = 0;
    /** Source nodes (the instruction's α contribution). */
    std::uint64_t sources = 0;
    /** Deepest path, in steps. */
    std::uint32_t maxDepth = 0;
    /** Expansions per BFS level; size = maxDepth + 1.  Level L holds
     *  the number of (node, state) expansions at depth L — the CM-2
     *  baseline pays one controller-array iteration per level. */
    std::vector<std::uint64_t> levelExpansions;
};

/**
 * Run one PROPAGATE to fixpoint on flat state.
 *
 * @param net   the network (read only)
 * @param store marker state (marker-2 plane updated)
 * @param m1    source marker
 * @param m2    propagated marker (must differ from m1)
 * @param rule  compiled propagation rule
 * @param func  per-step value function
 */
PropagationStats propagateFunctional(const SemanticNetwork &net,
                                     MarkerStore &store, MarkerId m1,
                                     MarkerId m2, const PropRule &rule,
                                     MarkerFunc func);

/**
 * Lane-batched PROPAGATE: one shared traversal serves every lane.
 *
 * Runs the same fixpoint as propagateFunctional for up to
 * MultiBitVector::maxLanes (2048) independent queries whose marker
 * state is lane-packed in @p store.  Row arithmetic (delivery merge,
 * admission masks, active-row scans) goes through the pluggable lane
 * backend (common/lane_backend.hh); every backend computes the same
 * boolean function, so results are backend-invariant as well as
 * batch-invariant.
 * The traversal is shared — one relation-table scan per expanded
 * (node, state) wave and one status-word merge per delivery cover
 * every lane present — while admission, value merging, and every
 * work counter stay per-lane, so each lane's final marker state AND
 * its PropagationStats are bit-identical to running that lane solo.
 *
 * Why per-lane results are exact: batch queue entries carry a lane
 * mask plus per-lane labels, and an entry's (state, steps) are shared
 * by construction (seeds start at (0, 0); expansion children inherit
 * parent steps + 1).  The global FIFO preserves each lane's relative
 * push order, and expanding an entry emits a lane's arrivals in the
 * same link/state order as its solo run, so the subsequence of
 * entries containing lane L is exactly L's solo FIFO — admission
 * decisions, frontier contents, and counters then match solo run for
 * run, not just at the fixpoint.
 *
 * @return per-lane statistics, indexed by lane.
 */
std::vector<PropagationStats> propagateFunctionalBatch(
    const SemanticNetwork &net, LaneMarkerStore &store, MarkerId m1,
    MarkerId m2, const PropRule &rule, MarkerFunc func);

} // namespace snap

#endif // SNAP_RUNTIME_PROPAGATE_HH
