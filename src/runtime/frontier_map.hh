/**
 * @file
 * Flat hash map for propagation frontiers.
 *
 * Profiling the fig17 beta-speedup workload showed two thirds of host
 * time inside the `std::unordered_map<key, std::vector<PropLabel>>`
 * that backs the per-propagation dominance frontier: node-based
 * buckets allocate per insert, and clear() destroys every label
 * vector just to rebuild identical ones next round.
 *
 * FrontierMap is a drop-in replacement for the two operations the
 * simulator actually uses — operator[] and clear():
 *
 *  - open addressing with linear probing over a power-of-two slot
 *    array (one cache line probe instead of a bucket chain);
 *  - epoch-stamped slots: clear() bumps a counter in O(1) and every
 *    slot instantly reads as empty, while the label vectors keep
 *    their heap capacity for reuse;
 *  - no erase — frontiers only grow within an epoch — so probe runs
 *    stay contiguous and lookups need no tombstone handling.
 *
 * Entry iteration order is never observed by the simulator, so the
 * change cannot affect simulated results.  A legacy mode wrapping
 * std::unordered_map is kept as the measurement baseline for
 * bench/host_perf (MachineConfig::seedHotPath).
 */

#ifndef SNAP_RUNTIME_FRONTIER_MAP_HH
#define SNAP_RUNTIME_FRONTIER_MAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/propagate.hh"

namespace snap
{

class FrontierMap
{
  public:
    explicit FrontierMap(bool legacy = false) : legacy_(legacy)
    {
        if (!legacy_)
            slots_.resize(initialCapacity);
    }

    /** Label list for @p key, default-constructed on first access. */
    std::vector<PropLabel> &
    operator[](std::uint64_t key)
    {
        if (legacy_)
            return legacyMap_[key];

        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();

        Slot *s = probe(key);
        if (s->epoch != epoch_) {
            s->key = key;
            s->epoch = epoch_;
            s->labels.clear();
            ++size_;
        }
        return s->labels;
    }

    /** Drop all entries; flat mode keeps slot and label capacity. */
    void
    clear()
    {
        if (legacy_) {
            legacyMap_.clear();
            return;
        }
        ++epoch_;
        size_ = 0;
    }

    std::size_t size() const { return legacy_ ? legacyMap_.size() : size_; }

  private:
    static constexpr std::size_t initialCapacity = 1024;

    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t epoch = 0;  ///< live iff equal to map epoch
        std::vector<PropLabel> labels;
    };

    static std::uint64_t
    mix(std::uint64_t x)
    {
        // splitmix64 finalizer: full-avalanche spread of the packed
        // (prop, node, state) key bits.
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    Slot *
    probe(std::uint64_t key)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
        for (;;) {
            Slot &s = slots_[i];
            if (s.epoch != epoch_ || s.key == key)
                return &s;
            i = (i + 1) & mask;
        }
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(old.size() * 2);
        const std::uint64_t oldEpoch = epoch_;
        epoch_ = 1;
        for (Slot &s : old) {
            if (s.epoch != oldEpoch)
                continue;
            Slot *dst = probe(s.key);
            dst->key = s.key;
            dst->epoch = epoch_;
            dst->labels = std::move(s.labels);
        }
    }

    bool legacy_;
    std::vector<Slot> slots_;
    std::uint64_t epoch_ = 1;
    std::size_t size_ = 0;
    std::unordered_map<std::uint64_t, std::vector<PropLabel>> legacyMap_;
};

} // namespace snap

#endif // SNAP_RUNTIME_FRONTIER_MAP_HH
