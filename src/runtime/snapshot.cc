#include "runtime/snapshot.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace snap
{

void
saveMarkers(const MarkerStore &store, std::ostream &os)
{
    os << "snapmarkers 1 " << store.numNodes() << "\n";
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
        auto mid = static_cast<MarkerId>(m);
        const BitVector &bits = store.bits(mid);
        for (std::uint32_t n = bits.findNext(0); n < bits.size();
             n = bits.findNext(n + 1)) {
            os << "m " << m << " " << n;
            if (isComplexMarker(mid)) {
                os << " "
                   << formatString("%.9g", static_cast<double>(
                                               store.value(mid, n)))
                   << " " << store.origin(mid, n);
            }
            os << "\n";
        }
    }
}

MarkerStore
loadMarkers(std::istream &is)
{
    std::string line;
    int lineno = 0;

    if (!std::getline(is, line))
        snap_fatal("empty marker snapshot");
    ++lineno;
    std::vector<std::string> head = tokenize(trim(line));
    long long nodes;
    if (head.size() != 3 || head[0] != "snapmarkers" ||
        head[1] != "1" || !parseInt(head[2], nodes) || nodes < 0) {
        snap_fatal("bad snapshot header '%s'", line.c_str());
    }

    MarkerStore store(static_cast<std::uint32_t>(nodes));
    while (std::getline(is, line)) {
        ++lineno;
        std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::vector<std::string> tok = tokenize(body);
        long long m, n;
        if (tok.size() < 3 || tok[0] != "m" ||
            !parseInt(tok[1], m) || !parseInt(tok[2], n) || m < 0 ||
            m >= static_cast<long long>(capacity::numMarkers) ||
            n < 0 || n >= nodes) {
            snap_fatal("snapshot line %d: bad record '%s'", lineno,
                       body.c_str());
        }
        auto mid = static_cast<MarkerId>(m);
        if (isComplexMarker(mid)) {
            double value;
            long long origin;
            if (tok.size() != 5 || !parseDouble(tok[3], value) ||
                !parseInt(tok[4], origin)) {
                snap_fatal("snapshot line %d: complex marker needs "
                           "value and origin", lineno);
            }
            store.set(mid, static_cast<NodeId>(n),
                      static_cast<float>(value),
                      static_cast<NodeId>(
                          static_cast<std::uint64_t>(origin)));
        } else {
            if (tok.size() != 3)
                snap_fatal("snapshot line %d: binary marker takes "
                           "no value", lineno);
            store.setBit(mid, static_cast<NodeId>(n));
        }
    }
    return store;
}

void
saveMarkersFile(const MarkerStore &store, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        snap_fatal("cannot open '%s' for writing", path.c_str());
    saveMarkers(store, os);
    if (!os)
        snap_fatal("write error on '%s'", path.c_str());
}

MarkerStore
loadMarkersFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        snap_fatal("cannot open '%s'", path.c_str());
    return loadMarkers(is);
}

} // namespace snap
