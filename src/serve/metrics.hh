/**
 * @file
 * Serving observability: counters, gauges, latency histograms.
 *
 * The serving-layer analogue of the machine model's "integrated
 * measurement system" (§II-B): every request's queue wait, service
 * time, end-to-end latency (host milliseconds), and simulated
 * execution time feed log-bucketed histograms; admission outcomes
 * feed counters; the queue reports depth/high-water gauges.  A
 * snapshot renders as a JSON document (metricsJson) for dashboards
 * and the bench harness.
 *
 * Recording is mutex-serialized — one short critical section per
 * request completion, negligible next to a multi-millisecond
 * machine-model run.
 */

#ifndef SNAP_SERVE_METRICS_HH
#define SNAP_SERVE_METRICS_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/metrics_registry.hh"
#include "common/multibitvector.hh"
#include "common/types.hh"

namespace snap
{
namespace serve
{

/**
 * Lane-occupancy distribution: one exact bucket per possible lane
 * count.  The log-linear Histogram buckets coarsen to 8..128 lanes
 * wide above 64, which silently blurred wide batches (and reported
 * bucket-midpoint "lane counts" no batch could have); lane counts
 * are small integers, so exact buckets cost one word each.
 */
using BatchLanesHistogram = LinearHistogram<MultiBitVector::maxLanes>;

/** Per-worker serving tallies. */
struct WorkerStats
{
    std::uint64_t served = 0;
    /** Simulated machine time spent executing (sum of wallTicks). */
    Tick busyTicks = 0;
    /** Host milliseconds spent executing. */
    double busyMs = 0.0;
};

/** Point-in-time copy of every serving metric. */
struct MetricsSnapshot
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t timedOut = 0;

    /** Lane batches served (>= 2 lanes; solo runs are not batches). */
    std::uint64_t batches = 0;
    /** Requests that were served inside those batches. */
    std::uint64_t batchedRequests = 0;

    // --- robustness (all zero unless fault injection is armed) ---------
    /** Run attempts that tripped fault detection (integrity mismatch,
     *  wedge, or simulated-time watchdog). */
    std::uint64_t faultsDetected = 0;
    /** Subset of faultsDetected where the machine wedged or the
     *  watchdog fired (vs a caught-but-completed corruption). */
    std::uint64_t wedges = 0;
    /** Re-execution attempts issued after detected faults. */
    std::uint64_t retries = 0;
    /** Requests answered Ok only after >= 1 retry. */
    std::uint64_t recovered = 0;
    /** Requests answered Failed (retry budget exhausted). */
    std::uint64_t failed = 0;
    /** Requests force-failed Hung by the shutdown watchdog. */
    std::uint64_t hung = 0;
    /** Stateless requests shed at admission during a fault storm. */
    std::uint64_t shed = 0;
    /** Replica quarantines (re-stamped from the master image). */
    std::uint64_t quarantines = 0;
    /** Lane batches evicted to solo re-serves after a poisoned run. */
    std::uint64_t batchFallbacks = 0;
    /** Knowledge-image hot-swaps applied (epoch flips). */
    std::uint64_t imageSwaps = 0;

    std::size_t queueDepth = 0;
    std::size_t queueHighWater = 0;
    std::size_t queueCapacity = 0;

    /** Host wall-clock seconds since the engine started. */
    double uptimeSec = 0.0;

    Histogram queueWaitMs;
    Histogram serviceMs;
    Histogram totalMs;
    Histogram simUs;
    /** Occupancy (lanes filled) per lane batch — exact buckets so
     *  wide batches (65..2048 lanes) are not blurred. */
    BatchLanesHistogram batchLanes;

    std::vector<WorkerStats> workers;

    /** Completed requests per host wall-clock second. */
    double
    throughputQps() const
    {
        return uptimeSec > 0.0
                   ? static_cast<double>(completed) / uptimeSec
                   : 0.0;
    }

    /** Longest per-replica simulated busy time: the makespan of the
     *  simulated machine farm under the actual assignment. */
    Tick
    simMakespanTicks() const
    {
        Tick makespan = 0;
        for (const WorkerStats &w : workers)
            if (w.busyTicks > makespan)
                makespan = w.busyTicks;
        return makespan;
    }

    /** Push every serving counter, queue gauge, histogram summary,
     *  and per-worker tally into the unified MetricsRegistry under
     *  the snap_serve_* prefix; `labels` is applied to each sample. */
    void exportMetrics(MetricsRegistry &reg,
                       MetricsRegistry::Labels labels = {}) const;
};

/** Render @p snap as a pretty-printed JSON object. */
std::string metricsJson(const MetricsSnapshot &snap);

/** Shared recording surface for the engine's workers. */
class ServeMetrics
{
  public:
    explicit ServeMetrics(std::uint32_t num_workers)
        : workers_(num_workers)
    {}

    void
    noteSubmitted()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
    }

    void
    noteRejected()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
        ++rejected_;
    }

    void
    noteTimedOut(double queue_ms)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++timedOut_;
        queueWaitMs_.record(queue_ms);
    }

    void
    noteCompleted(std::uint32_t worker, double queue_ms,
                  double service_ms, Tick sim_ticks)
    {
        noteCompletedShared(worker, queue_ms, service_ms, service_ms,
                            sim_ticks, sim_ticks);
    }

    /**
     * Completion of one request served inside a lane batch.  The
     * request-facing histograms record the full batch cost (that is
     * what the request experienced); the worker's busy tallies take
     * only this request's *share*, so utilization and the simulated
     * makespan reflect the amortization instead of double-counting
     * the shared run once per lane.
     */
    void
    noteCompletedShared(std::uint32_t worker, double queue_ms,
                        double service_ms, double busy_share_ms,
                        Tick sim_ticks, Tick sim_share_ticks)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++completed_;
        queueWaitMs_.record(queue_ms);
        serviceMs_.record(service_ms);
        totalMs_.record(queue_ms + service_ms);
        simUs_.record(ticksToUs(sim_ticks));
        WorkerStats &w = workers_.at(worker);
        ++w.served;
        w.busyTicks += sim_share_ticks;
        w.busyMs += busy_share_ms;
    }

    /** One lane batch was formed and served with @p lanes lanes. */
    void
    noteBatch(std::uint32_t lanes)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++batches_;
        batchedRequests_ += lanes;
        batchLanes_.record(static_cast<double>(lanes));
    }

    /** One run attempt tripped fault detection. */
    void
    noteFaultDetected(bool wedged)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++faultsDetected_;
        if (wedged)
            ++wedges_;
    }

    void
    noteRetry()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++retries_;
    }

    /** Request answered Ok after at least one retry. */
    void
    noteRecovered()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++recovered_;
    }

    /** Retry budget exhausted; request answered Failed. */
    void
    noteFailed(double queue_ms)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++failed_;
        queueWaitMs_.record(queue_ms);
    }

    /** Shutdown watchdog force-failed a request as Hung. */
    void
    noteHung()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++hung_;
    }

    /** Stateless request shed at admission under a fault storm. */
    void
    noteShed()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
        ++shed_;
    }

    /** Replica quarantined and re-stamped from the master image. */
    void
    noteQuarantine()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++quarantines_;
    }

    /** Lane batch evicted to solo re-serves after a poisoned run. */
    void
    noteBatchFallback()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++batchFallbacks_;
    }

    /** One knowledge-image hot-swap (epoch flip) was applied. */
    void
    noteImageSwap()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++imageSwaps_;
    }

    /** Copy everything out; queue gauges and uptime are supplied by
     *  the engine (it owns the queue and the start timestamp). */
    MetricsSnapshot
    snapshot(std::size_t queue_depth, std::size_t queue_high_water,
             std::size_t queue_capacity, double uptime_sec) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        MetricsSnapshot s;
        s.submitted = submitted_;
        s.completed = completed_;
        s.rejected = rejected_;
        s.timedOut = timedOut_;
        s.batches = batches_;
        s.batchedRequests = batchedRequests_;
        s.faultsDetected = faultsDetected_;
        s.wedges = wedges_;
        s.retries = retries_;
        s.recovered = recovered_;
        s.failed = failed_;
        s.hung = hung_;
        s.shed = shed_;
        s.quarantines = quarantines_;
        s.batchFallbacks = batchFallbacks_;
        s.imageSwaps = imageSwaps_;
        s.queueDepth = queue_depth;
        s.queueHighWater = queue_high_water;
        s.queueCapacity = queue_capacity;
        s.uptimeSec = uptime_sec;
        s.queueWaitMs = queueWaitMs_;
        s.serviceMs = serviceMs_;
        s.totalMs = totalMs_;
        s.simUs = simUs_;
        s.batchLanes = batchLanes_;
        s.workers = workers_;
        return s;
    }

  private:
    mutable std::mutex mu_;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batchedRequests_ = 0;
    std::uint64_t faultsDetected_ = 0;
    std::uint64_t wedges_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t recovered_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t hung_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t quarantines_ = 0;
    std::uint64_t batchFallbacks_ = 0;
    std::uint64_t imageSwaps_ = 0;
    Histogram queueWaitMs_;
    Histogram serviceMs_;
    Histogram totalMs_;
    Histogram simUs_;
    BatchLanesHistogram batchLanes_;
    std::vector<WorkerStats> workers_;
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_METRICS_HH
