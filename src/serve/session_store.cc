#include "serve/session_store.hh"

#include "common/logging.hh"

namespace snap
{
namespace serve
{

SessionStore::State &
SessionStore::stateOf(const std::string &id)
{
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        it = sessions_.emplace(id, State(numNodes_)).first;
    return it->second;
}

std::uint64_t
SessionStore::admit(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mu_);
    return stateOf(id).submitSeq++;
}

void
SessionStore::awaitTurn(const std::string &id, std::uint64_t seq)
{
    std::unique_lock<std::mutex> lock(mu_);
    State &s = stateOf(id);
    turn_.wait(lock, [&] { return s.doneSeq >= seq; });
    snap_assert(s.doneSeq == seq,
                "session turn %llu already passed (doneSeq %llu)",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(s.doneSeq));
}

MarkerStore
SessionStore::fetch(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    snap_assert(it != sessions_.end(), "fetch of unknown session");
    return it->second.markers;
}

bool
SessionStore::tryFetch(const std::string &id, MarkerStore &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return false;
    out = it->second.markers;
    return true;
}

void
SessionStore::restore(const std::string &id, MarkerStore state)
{
    snap_assert(state.numNodes() == numNodes_,
                "session restore with %u nodes into a %u-node store",
                state.numNodes(), numNodes_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        stateOf(id).markers = std::move(state);
    }
    turn_.notify_all();
}

void
SessionStore::skipCancelled(State &s)
{
    while (true) {
        auto it = s.cancelled.find(s.doneSeq);
        if (it == s.cancelled.end())
            break;
        s.cancelled.erase(it);
        ++s.doneSeq;
    }
}

void
SessionStore::complete(const std::string &id, std::uint64_t seq,
                       MarkerStore state)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        State &s = stateOf(id);
        snap_assert(s.doneSeq == seq, "completion out of turn");
        s.markers = std::move(state);
        s.doneSeq = seq + 1;
        skipCancelled(s);
    }
    turn_.notify_all();
}

void
SessionStore::cancel(const std::string &id, std::uint64_t seq)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        State &s = stateOf(id);
        if (s.doneSeq == seq) {
            ++s.doneSeq;
            skipCancelled(s);
        } else {
            snap_assert(seq > s.doneSeq, "cancel of finished turn");
            s.cancelled.insert(seq);
        }
    }
    turn_.notify_all();
}

std::size_t
SessionStore::numSessions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
}

std::vector<std::string>
SessionStore::sessionIds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> ids;
    ids.reserve(sessions_.size());
    for (const auto &kv : sessions_)
        ids.push_back(kv.first);
    return ids;
}

} // namespace serve
} // namespace snap
