/**
 * @file
 * ServeEngine: the concurrent batch query-serving engine.
 *
 * Models the deployment the paper argues for — one SNAP-1 knowledge
 * base answering many independent marker-propagation queries — as a
 * host-parallel farm of simulated machines:
 *
 *     submit() ──► bounded MPMC queue ──► worker 0 ─ SnapMachine #0
 *        │  reject-on-full backpressure   worker 1 ─ SnapMachine #1
 *        │                                   ...        ...
 *        └─► future<Response>  ◄─── completion (promise)
 *
 * One immutable master KbImage is compiled at construction; every
 * worker gets a replica stamped from it (SnapMachine::loadKb(image)),
 * so bring-up cost is paid once and all replicas are bit-identical.
 *
 * Determinism guarantees (see docs/serving.md):
 *  - stateless requests run against cleared marker state on an
 *    otherwise-identical replica, so results AND simulated wallTicks
 *    depend only on the program — never on the worker count, the
 *    host scheduler, or what ran before;
 *  - session requests execute in submission order against the
 *    session's marker state, so the state sequence is reproducible;
 *  - every request carries a deterministic seed (requestSeed) echoed
 *    in its response.
 *
 * Lane batching (ServeConfig::maxBatchLanes > 1): a worker that pops
 * a stateless request gulps queued stateless requests with the same
 * Program::contentHash (waiting up to batchWindowMs for more) and
 * serves the whole group as one lane-batched traversal.  Because the
 * lanes are same-program over cleared state, each one's results and
 * simulated wallTicks are bit-identical to its solo run — batching
 * changes host cost only, never answers.  Stragglers that find no
 * partner fall back to the solo path.
 *
 * Non-goals in this layer: running programs with structural KB edits
 * (CREATE/DELETE) outside a session is undefined — edits would make
 * one replica diverge from the others.  Programs are assumed
 * assembled and validated on the submission side; a malformed
 * program is a fatal user error, as everywhere else in the tree.
 */

#ifndef SNAP_SERVE_ENGINE_HH
#define SNAP_SERVE_ENGINE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/machine.hh"
#include "common/metrics_registry.hh"
#include "fault/fault_plan.hh"
#include "kb/semantic_network.hh"
#include "serve/metrics.hh"
#include "serve/request.hh"
#include "serve/request_queue.hh"
#include "serve/session_store.hh"

namespace snap
{
namespace serve
{

struct ServeConfig
{
    /** Worker threads == machine replicas. */
    std::uint32_t numWorkers = 2;
    /** Admission-queue capacity; a full queue rejects. */
    std::size_t queueCapacity = 256;
    /** Base of the deterministic per-request seed chain. */
    std::uint64_t baseSeed = 0x5eed5eed5eed5eedull;
    /** Default queue-wait deadline (host ms); 0 = none. */
    double defaultTimeoutMs = 0.0;
    /**
     * Lane-batch former: a worker that pops a stateless request may
     * gulp up to this many queued stateless requests with the same
     * Program::contentHash and serve them as one lane-batched
     * traversal (SnapMachine::runBatch) — identical per-request
     * results and simulated wallTicks, one simulated run's host cost.
     * 1 disables batching; capped at MultiBitVector::maxLanes
     * (2048 — the lane planes carry ceil(lanes/64) words per node).
     */
    std::uint32_t maxBatchLanes = 1;
    /**
     * Host milliseconds a worker holding a partial batch waits for
     * more same-program arrivals before serving what it has.
     * 0 = batch only what is already queued (never wait).
     */
    double batchWindowMs = 0.0;
    /**
     * Construct workers idle: requests only queue until start() is
     * called.  Gives tests and the load generator a deterministic
     * enqueue-then-serve boundary.
     */
    bool startPaused = false;
    /**
     * Fault-injection plan armed on every replica (all-zero rates =
     * disabled, the default).  Each worker's plan is re-seeded from
     * faults.seed and the worker index, so replicas inject
     * independent, individually reproducible fault streams, and a
     * retry of a request on the same replica sees fresh draws rather
     * than deterministically re-hitting the same fault.
     */
    FaultSpec faults{};
    /**
     * Recovery policy: how many times a worker re-executes a request
     * whose run tripped fault detection (wedge, simulated-time
     * watchdog, or integrity-check failure) before answering Failed.
     * 0 = fail fast.  Detection always wins over delivery: a
     * corrupted answer is never returned.
     */
    std::uint32_t maxRetries = 3;
    /** Host milliseconds slept before retry n (doubled each retry);
     *  0 = retry immediately. */
    double retryBackoffMs = 0.0;
    /**
     * Health scoring: a replica whose runs trip fault detection this
     * many times consecutively (no intervening clean run) is
     * quarantined — re-stamped from the master image and its fault
     * stream re-seeded.  0 disables quarantine.
     */
    std::uint32_t quarantineThreshold = 3;
    /**
     * Graceful degradation: once this many faults have been detected
     * engine-wide without an intervening success (a "fault storm"),
     * stateless requests are shed at admission (status Rejected)
     * until a run succeeds.  Session requests are never shed.
     * 0 = never shed (default).
     */
    std::uint32_t shedThreshold = 0;
    /**
     * Shutdown watchdog: host milliseconds shutdown() waits for the
     * workers to drain after closing the queue.  If any worker is
     * still running past the grace period, its in-flight requests
     * (and everything left queued) are force-failed with status Hung
     * so no client blocks forever on a wedged worker thread.
     * 0 = wait indefinitely (default; preserves strict semantics for
     * well-behaved workloads).
     */
    double hungWorkerTimeoutMs = 0.0;
    /**
     * Test hook: invoked by worker @p idx in serveOne() between
     * deadline triage and machine execution.  Lets tests wedge a
     * worker deterministically (hung-worker watchdog coverage).
     * Null in production.
     */
    std::function<void(std::uint32_t)> preRunHook;
    /**
     * Replica machine configuration.  The performance-collection
     * network defaults off for serving: its record FIFO grows per
     * run, which a long-lived replica must not.
     */
    MachineConfig machine;

    ServeConfig() { machine.perfNetEnabled = false; }
};

class ServeEngine
{
  public:
    /** Compiles the master image and spins up the worker pool. */
    ServeEngine(const SemanticNetwork &net, ServeConfig cfg);

    /**
     * Adopt a pre-compiled master image (the .kbimg bulk-load path:
     * a shard process deserializes the image and stamps replicas
     * from it without ever re-partitioning or re-compiling).  @p net
     * must be the network the image was compiled from; @p image must
     * be non-null.  cfg.machine.numClusters is overridden to the
     * image's cluster count.
     */
    ServeEngine(const SemanticNetwork &net,
                std::unique_ptr<KbImage> image, ServeConfig cfg);

    /** Drains admissions, joins workers. */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Admission control.  Assigns id/seed, applies the default
     * deadline, and enqueues.  The returned future resolves with the
     * response — immediately, with status Rejected, when the queue
     * is full or the engine is shut down.
     */
    std::future<Response> submit(Request req);

    /**
     * Allocation-free admission: like submit(Request) but the
     * response is delivered into caller-owned @p slot instead of a
     * freshly allocated promise/future pair.  With a warm pending
     * pool, the whole admission path performs no heap allocation
     * (asserted by the host-perf harness).  @p slot must outlive the
     * request and serve one request at a time.
     */
    void submit(Request req, ResponseSlot &slot);

    /**
     * Callback admission: @p done is invoked with the response from
     * whichever thread completes the request (a worker, the shutdown
     * watchdog, or — on immediate rejection — the submitting thread).
     * The shard server's delivery mode: its connection writers
     * serialize responses straight out of the callback instead of
     * parking a thread per in-flight request.  @p done must not
     * re-enter the engine.
     */
    void submit(Request req, std::function<void(Response &&)> done);

    /**
     * Epoch hot-swap: replace the master image (and every replica's
     * stamped copy) with @p image, compiled from @p net.  Blocks new
     * admissions, drains everything already admitted, re-stamps the
     * pool, then reopens — so every request executes entirely against
     * the old image or entirely against the new one, never a mix.
     * Session marker state is preserved; the node count must match
     * the serving image (session stores and wire node ids are sized
     * by it).  Cluster-count and node-count mismatches are reported
     * by returning false with @p err set (typed rejection, not
     * fatal: the input is an operator-supplied file).
     * Must be called from a non-worker thread.
     */
    bool swapImage(const SemanticNetwork &net,
                   std::unique_ptr<KbImage> image, std::string &err);

    /** Launch the workers of a startPaused engine (idempotent). */
    void start();

    /** Block until every admitted request has a response. */
    void drain();

    /** Stop admissions, drain the queue, join the workers.  Called
     *  by the destructor; safe to call explicitly first. */
    void shutdown();

    MetricsSnapshot metricsSnapshot() const;

    /**
     * Unified observability export: pushes the serving counters
     * (snap_serve_*), the aggregated simulated-execution breakdown
     * of every run attempt (snap_exec_*), and each replica's
     * component stats (ICN, perf net, sync tree, queues; labelled
     * worker="N") into one MetricsRegistry.  Replica component stats
     * are read without synchronization, so call after drain() or
     * shutdown() for exact values; mid-flight reads are approximate.
     */
    void exportMetrics(MetricsRegistry &reg) const;

    /** Marker state of session @p id (checkpoint via
     *  runtime/snapshot's saveMarkers). */
    MarkerStore sessionMarkers(const std::string &id) const;
    std::vector<std::string> sessionIds() const;

    /** Non-asserting checkpoint pull: false when the session does
     *  not exist on this engine. */
    bool trySessionMarkers(const std::string &id, MarkerStore &out) const;

    /** Restore (create-or-overwrite) session @p id from a
     *  checkpoint.  Rejects a node-count mismatch with @p err set
     *  (typed: the checkpoint crossed a trust boundary). */
    bool restoreSession(const std::string &id, MarkerStore state,
                        std::string &err);

    const KbImage &sharedImage() const { return *master_; }
    std::uint32_t numWorkers() const { return cfg_.numWorkers; }
    const ServeConfig &config() const { return cfg_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending;

    /** Per-worker registry of requests currently being served, for
     *  the shutdown watchdog (see forceFailHung). */
    struct WorkerSlot
    {
        std::mutex mu;
        std::vector<Pending *> inflight;
    };

    struct Pending
    {
        Request req;
        std::promise<Response> promise;
        /** Non-null: deliver through the slot, not the promise. */
        ResponseSlot *slot = nullptr;
        /** Non-null: deliver by invoking this (beats slot/promise). */
        std::function<void(Response &&)> callback;
        Clock::time_point enqueuedAt;
        Clock::time_point deadline;
        bool hasDeadline = false;
        std::uint64_t sessionSeq = 0;
        /** Stateless and batching enabled: a gulp candidate. */
        bool batchable = false;
        /** Program::contentHash, hoisted to admission (stateless
         *  only) — workers group on it without touching the queue's
         *  programs. */
        std::uint64_t progHash = 0;
        /** Exactly-once delivery: set by whoever answers first — the
         *  serving worker or the shutdown watchdog. */
        std::atomic<bool> answered{false};
        /** Host-ns admission timestamp (trace epoch); 0 when tracing
         *  was off at admission.  Anchors the queue.wait span. */
        std::uint64_t traceAdmitNs = 0;
        /** Worker registry holding this request (worker-thread
         *  private; registered/unregistered under owner->mu). */
        WorkerSlot *owner = nullptr;
    };

    void workerMain(std::uint32_t idx);
    void serveOne(std::uint32_t idx, std::unique_ptr<Pending> p);
    void gatherBatch(std::vector<std::unique_ptr<Pending>> &batch);
    void serveBatch(std::uint32_t idx,
                    std::vector<std::unique_ptr<Pending>> &batch);
    bool admit(Request &&req, std::unique_ptr<Pending> &pending,
               Response &early);
    void deliverResponse(std::unique_ptr<Pending> p, Response &&resp);
    std::unique_ptr<Pending> acquirePending();
    void releasePending(std::unique_ptr<Pending> p);
    void noteDone();
    std::uint64_t outstandingCount() const;
    /** Fold one run attempt's ExecBreakdown into the engine-wide
     *  aggregate (under statsMu_). */
    void accumulateRunStats(const ExecBreakdown &stats);

    // --- recovery machinery -------------------------------------------
    void registerInflight(std::uint32_t idx, Pending *p);
    void unregisterInflight(Pending *p);
    /** Repair, score health, maybe quarantine, bump the storm. */
    void noteReplicaFault(std::uint32_t idx, const FaultReport &r);
    void noteReplicaOk(std::uint32_t idx);
    /** Re-stamp the replica from the master image and re-seed its
     *  fault stream. */
    void quarantineReplica(std::uint32_t idx);
    /** Shutdown watchdog: force-fail everything in flight or queued
     *  with status Hung. */
    void forceFailHung();

    ServeConfig cfg_;
    std::unique_ptr<KbImage> master_;
    /** Functional shadow of the KB for integrity checks (only
     *  allocated when fault injection is armed). */
    std::unique_ptr<SemanticNetwork> shadowNet_;
    std::vector<std::unique_ptr<SnapMachine>> machines_;
    /** Consecutive detected faults per replica (owning worker thread
     *  only). */
    std::vector<std::uint32_t> health_;
    /** Engine-wide consecutive detected faults (any worker); reset on
     *  any clean run.  Drives admission shedding. */
    std::atomic<std::uint32_t> stormFaults_{0};
    /** Watchdog bookkeeping. */
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::atomic<std::uint32_t> workersExited_{0};

    BoundedQueue<std::unique_ptr<Pending>> queue_;
    SessionStore sessions_;
    ServeMetrics metrics_;
    Clock::time_point startedAt_;

    /** Engine-wide sum of every run attempt's ExecBreakdown (the
     *  simulated-execution island of exportMetrics).  msgsPerEpoch
     *  is dropped on each merge so a long-lived engine stays
     *  bounded. */
    mutable std::mutex statsMu_;
    ExecBreakdown aggExec_;

    /** Admission lock: id/seed assignment, session sequencing, and
     *  the queue push happen atomically so queue order == session
     *  order. */
    std::mutex admitMu_;
    std::uint64_t nextId_ = 0;

    /** Pending-record pool: admissions reuse retired records (and
     *  their Request buffers) instead of allocating. */
    std::mutex poolMu_;
    std::vector<std::unique_ptr<Pending>> pool_;

    /** drain() bookkeeping: admitted-but-unanswered requests. */
    mutable std::mutex doneMu_;
    std::condition_variable allDone_;
    std::uint64_t outstanding_ = 0;

    std::mutex lifecycleMu_;
    std::vector<std::thread> workers_;
    bool started_ = false;
    bool shutdown_ = false;
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_ENGINE_HH
