#include "serve/engine.hh"

#include <utility>

#include "common/logging.hh"

namespace snap
{
namespace serve
{

namespace
{

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace

const char *
requestStatusName(RequestStatus s)
{
    switch (s) {
      case RequestStatus::Ok: return "ok";
      case RequestStatus::Rejected: return "rejected";
      case RequestStatus::TimedOut: return "timed-out";
    }
    return "?";
}

std::uint64_t
requestSeed(std::uint64_t base_seed, std::uint64_t request_id)
{
    // One splitmix64 step over the combined word: well-mixed,
    // platform-independent, and trivially replayable.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (request_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ServeEngine::ServeEngine(const SemanticNetwork &net, ServeConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queueCapacity),
      sessions_(net.numNodes()),
      metrics_(cfg_.numWorkers),
      startedAt_(Clock::now())
{
    if (cfg_.numWorkers < 1)
        snap_fatal("ServeConfig.numWorkers must be >= 1");
    if (cfg_.maxBatchLanes < 1 || cfg_.maxBatchLanes > 64)
        snap_fatal("ServeConfig.maxBatchLanes must be 1..64");
    cfg_.machine.validate();

    // Warm pending pool: sized so steady-state admission never
    // allocates (every queued request plus one in flight per worker).
    const std::size_t pool_target =
        cfg_.queueCapacity + cfg_.numWorkers;
    pool_.reserve(pool_target);
    for (std::size_t i = 0; i < pool_target; ++i)
        pool_.push_back(std::make_unique<Pending>());

    // Compile once; stamp bit-identical replicas from the master.
    master_ = std::make_unique<KbImage>(net, cfg_.machine);
    machines_.reserve(cfg_.numWorkers);
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w) {
        machines_.push_back(
            std::make_unique<SnapMachine>(cfg_.machine));
        machines_.back()->loadKb(*master_);
    }

    if (!cfg_.startPaused)
        start();
}

ServeEngine::~ServeEngine()
{
    shutdown();
}

void
ServeEngine::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    if (started_ || shutdown_)
        return;
    started_ = true;
    workers_.reserve(cfg_.numWorkers);
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
}

void
ServeEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMu_);
        if (shutdown_)
            return;
        shutdown_ = true;
        // A paused engine must still drain whatever was admitted.
        if (!started_ && outstandingCount() > 0) {
            started_ = true;
            workers_.reserve(cfg_.numWorkers);
            for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w)
                workers_.emplace_back([this, w] { workerMain(w); });
        }
    }
    queue_.close();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

std::uint64_t
ServeEngine::outstandingCount() const
{
    std::lock_guard<std::mutex> lock(doneMu_);
    return outstanding_;
}

std::unique_ptr<ServeEngine::Pending>
ServeEngine::acquirePending()
{
    {
        std::lock_guard<std::mutex> lock(poolMu_);
        if (!pool_.empty()) {
            auto p = std::move(pool_.back());
            pool_.pop_back();
            return p;
        }
    }
    return std::make_unique<Pending>();
}

void
ServeEngine::releasePending(std::unique_ptr<Pending> p)
{
    p->slot = nullptr;
    p->batchable = false;
    p->progHash = 0;
    p->sessionSeq = 0;
    p->hasDeadline = false;
    // p->req keeps its buffers: the next admission's move-assign
    // recycles or releases them without allocating here.
    std::lock_guard<std::mutex> lock(poolMu_);
    if (pool_.size() < cfg_.queueCapacity + cfg_.numWorkers)
        pool_.push_back(std::move(p));
}

/**
 * Shared admission: assign id/seed/deadline, take the session turn,
 * hoist the batching key, and enqueue — all under admitMu_ so queue
 * order == session order.  On reject (@return false) the response is
 * in @p early, the session turn is released, and @p pending has been
 * recycled.  Allocation-free on the admit path: every derived field
 * lands in the pooled Pending, and contentHash() does not allocate.
 */
bool
ServeEngine::admit(Request &&req, std::unique_ptr<Pending> &pending,
                   Response &early)
{
    std::lock_guard<std::mutex> admit_lock(admitMu_);

    req.id = nextId_++;
    if (req.rngSeed == 0)
        req.rngSeed = requestSeed(cfg_.baseSeed, req.id);
    if (req.timeoutMs == 0.0)
        req.timeoutMs = cfg_.defaultTimeoutMs;

    pending->enqueuedAt = Clock::now();
    if (req.timeoutMs > 0.0) {
        pending->hasDeadline = true;
        pending->deadline =
            pending->enqueuedAt +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    req.timeoutMs));
    }

    const bool sessioned = !req.sessionId.empty();
    if (sessioned)
        pending->sessionSeq = sessions_.admit(req.sessionId);
    pending->batchable = !sessioned && cfg_.maxBatchLanes > 1;
    pending->progHash =
        pending->batchable ? req.prog.contentHash() : 0;

    early.id = req.id;
    early.rngSeed = req.rngSeed;

    pending->req = std::move(req);

    {
        std::lock_guard<std::mutex> lock(doneMu_);
        ++outstanding_;
    }
    if (!queue_.tryPush(pending)) {
        // Backpressure: answer immediately and release the session
        // turn so successors are not blocked behind a hole.
        if (sessioned)
            sessions_.cancel(pending->req.sessionId,
                             pending->sessionSeq);
        metrics_.noteRejected();
        early.status = RequestStatus::Rejected;
        releasePending(std::move(pending));
        noteDone();
        return false;
    }
    metrics_.noteSubmitted();
    return true;
}

std::future<Response>
ServeEngine::submit(Request req)
{
    auto pending = acquirePending();
    pending->promise = std::promise<Response>();
    pending->slot = nullptr;
    std::future<Response> fut = pending->promise.get_future();

    Response early;
    if (!admit(std::move(req), pending, early)) {
        std::promise<Response> p;
        fut = p.get_future();
        p.set_value(std::move(early));
    }
    return fut;
}

void
ServeEngine::submit(Request req, ResponseSlot &slot)
{
    auto pending = acquirePending();
    pending->slot = &slot;
    slot.reset();

    Response early;
    if (!admit(std::move(req), pending, early))
        slot.deliver(std::move(early));
}

void
ServeEngine::deliverResponse(std::unique_ptr<Pending> p,
                             Response &&resp)
{
    if (p->slot)
        p->slot->deliver(std::move(resp));
    else
        p->promise.set_value(std::move(resp));
    releasePending(std::move(p));
    noteDone();
}

void
ServeEngine::workerMain(std::uint32_t idx)
{
    std::vector<std::unique_ptr<Pending>> batch;
    batch.reserve(cfg_.maxBatchLanes);
    while (auto pending = queue_.pop()) {
        std::unique_ptr<Pending> p = std::move(*pending);
        if (p->batchable) {
            batch.clear();
            batch.push_back(std::move(p));
            gatherBatch(batch);
            serveBatch(idx, batch);
            batch.clear();
        } else {
            serveOne(idx, std::move(p));
        }
    }
}

/**
 * The batch former's gulp: pull queued stateless requests with the
 * same program hash as batch.front(), waiting up to batchWindowMs
 * for the lanes to fill.  FIFO order is preserved both inside the
 * batch and among the requests left behind.
 */
void
ServeEngine::gatherBatch(std::vector<std::unique_ptr<Pending>> &batch)
{
    const std::size_t want = cfg_.maxBatchLanes;
    if (batch.size() >= want)
        return;
    Clock::time_point deadline = Clock::now();
    if (cfg_.batchWindowMs > 0.0) {
        deadline += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                cfg_.batchWindowMs));
    }
    const std::uint64_t h = batch.front()->progHash;
    queue_.extractMatching(
        [h](const std::unique_ptr<Pending> &q) {
            return q->batchable && q->progHash == h;
        },
        want - batch.size(), batch, deadline);
}

void
ServeEngine::serveOne(std::uint32_t idx, std::unique_ptr<Pending> p)
{
    Request &req = p->req;
    const bool sessioned = !req.sessionId.empty();

    // Take the session turn first: deadline time spent waiting for a
    // predecessor counts against the request, like queue time.
    if (sessioned)
        sessions_.awaitTurn(req.sessionId, p->sessionSeq);

    Clock::time_point begin = Clock::now();
    double queue_ms = msBetween(p->enqueuedAt, begin);

    Response resp;
    resp.id = req.id;
    resp.rngSeed = req.rngSeed;
    resp.worker = idx;
    resp.queueMs = queue_ms;

    if (p->hasDeadline && begin > p->deadline) {
        if (sessioned)
            sessions_.cancel(req.sessionId, p->sessionSeq);
        metrics_.noteTimedOut(queue_ms);
        resp.status = RequestStatus::TimedOut;
        deliverResponse(std::move(p), std::move(resp));
        return;
    }

    SnapMachine &machine = *machines_.at(idx);
    if (sessioned) {
        machine.image().restoreMarkers(
            sessions_.fetch(req.sessionId));
    } else {
        // Fresh-query state: the determinism anchor for stateless
        // requests (identical replicas + cleared markers => the run
        // is a pure function of the program).
        machine.image().resetMarkers();
    }

    RunResult run = machine.run(req.prog);
    Clock::time_point end = Clock::now();

    if (sessioned) {
        sessions_.complete(req.sessionId, p->sessionSeq,
                           machine.image().flatten());
    }

    resp.status = RequestStatus::Ok;
    resp.results = std::move(run.results);
    resp.wallTicks = run.wallTicks;
    resp.serviceMs = msBetween(begin, end);
    metrics_.noteCompleted(idx, queue_ms, resp.serviceMs,
                           resp.wallTicks);
    deliverResponse(std::move(p), std::move(resp));
}

/**
 * Serve a gulped group as one lane-batched run.  Every member is
 * stateless and same-program by construction (gatherBatch matched on
 * progHash over batchable == stateless entries), so one run over
 * cleared markers is each lane's solo run — per-request results and
 * wallTicks are bit-identical to the unbatched path.
 */
void
ServeEngine::serveBatch(std::uint32_t idx,
                        std::vector<std::unique_ptr<Pending>> &batch)
{
    Clock::time_point begin = Clock::now();

    // Deadline triage per member (stateless: no session turn to
    // release).  Expired members leave before the run.
    std::size_t live = 0;
    for (auto &p : batch) {
        if (p->hasDeadline && begin > p->deadline) {
            double queue_ms = msBetween(p->enqueuedAt, begin);
            Response resp;
            resp.id = p->req.id;
            resp.rngSeed = p->req.rngSeed;
            resp.worker = idx;
            resp.queueMs = queue_ms;
            resp.status = RequestStatus::TimedOut;
            metrics_.noteTimedOut(queue_ms);
            deliverResponse(std::move(p), std::move(resp));
        } else {
            batch[live++] = std::move(p);
        }
    }
    batch.resize(live);
    if (batch.empty())
        return;
    if (batch.size() == 1) {
        // Straggler: no partner arrived inside the window.
        serveOne(idx, std::move(batch.front()));
        batch.clear();
        return;
    }

    const std::uint32_t lanes =
        static_cast<std::uint32_t>(batch.size());
    SnapMachine &machine = *machines_.at(idx);
    machine.image().resetMarkers();
    BatchRunResult run =
        machine.runBatch(batch.front()->req.prog, lanes);
    Clock::time_point end = Clock::now();
    double service_ms = msBetween(begin, end);

    metrics_.noteBatch(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i) {
        std::unique_ptr<Pending> p = std::move(batch[i]);
        Response resp;
        resp.id = p->req.id;
        resp.rngSeed = p->req.rngSeed;
        resp.worker = idx;
        resp.queueMs = msBetween(p->enqueuedAt, begin);
        resp.status = RequestStatus::Ok;
        if (i + 1 < lanes)
            resp.results = run.results;
        else
            resp.results = std::move(run.results);
        resp.wallTicks = run.wallTicks;
        resp.serviceMs = service_ms;
        resp.batchLanes = lanes;
        // Request-facing metrics take the full batch cost; the
        // worker's busy share divides it, and the simulated run is
        // billed to the farm once (first lane), so utilization and
        // the sim makespan show the amortization.
        metrics_.noteCompletedShared(
            idx, resp.queueMs, service_ms, service_ms / lanes,
            run.wallTicks, i == 0 ? run.wallTicks : 0);
        deliverResponse(std::move(p), std::move(resp));
    }
    batch.clear();
}

void
ServeEngine::noteDone()
{
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        snap_assert(outstanding_ > 0, "noteDone underflow");
        --outstanding_;
        if (outstanding_ > 0)
            return;
    }
    allDone_.notify_all();
}

void
ServeEngine::drain()
{
    std::unique_lock<std::mutex> lock(doneMu_);
    allDone_.wait(lock, [&] { return outstanding_ == 0; });
}

MetricsSnapshot
ServeEngine::metricsSnapshot() const
{
    double uptime = std::chrono::duration<double>(
                        Clock::now() - startedAt_).count();
    return metrics_.snapshot(queue_.depth(), queue_.highWater(),
                             queue_.capacity(), uptime);
}

MarkerStore
ServeEngine::sessionMarkers(const std::string &id) const
{
    return sessions_.fetch(id);
}

std::vector<std::string>
ServeEngine::sessionIds() const
{
    return sessions_.sessionIds();
}

} // namespace serve
} // namespace snap
