#include "serve/engine.hh"

#include <utility>

#include "common/logging.hh"

namespace snap
{
namespace serve
{

namespace
{

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace

const char *
requestStatusName(RequestStatus s)
{
    switch (s) {
      case RequestStatus::Ok: return "ok";
      case RequestStatus::Rejected: return "rejected";
      case RequestStatus::TimedOut: return "timed-out";
    }
    return "?";
}

std::uint64_t
requestSeed(std::uint64_t base_seed, std::uint64_t request_id)
{
    // One splitmix64 step over the combined word: well-mixed,
    // platform-independent, and trivially replayable.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (request_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ServeEngine::ServeEngine(const SemanticNetwork &net, ServeConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queueCapacity),
      sessions_(net.numNodes()),
      metrics_(cfg_.numWorkers),
      startedAt_(Clock::now())
{
    if (cfg_.numWorkers < 1)
        snap_fatal("ServeConfig.numWorkers must be >= 1");
    cfg_.machine.validate();

    // Compile once; stamp bit-identical replicas from the master.
    master_ = std::make_unique<KbImage>(net, cfg_.machine);
    machines_.reserve(cfg_.numWorkers);
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w) {
        machines_.push_back(
            std::make_unique<SnapMachine>(cfg_.machine));
        machines_.back()->loadKb(*master_);
    }

    if (!cfg_.startPaused)
        start();
}

ServeEngine::~ServeEngine()
{
    shutdown();
}

void
ServeEngine::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    if (started_ || shutdown_)
        return;
    started_ = true;
    workers_.reserve(cfg_.numWorkers);
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
}

void
ServeEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMu_);
        if (shutdown_)
            return;
        shutdown_ = true;
        // A paused engine must still drain whatever was admitted.
        if (!started_ && outstandingCount() > 0) {
            started_ = true;
            workers_.reserve(cfg_.numWorkers);
            for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w)
                workers_.emplace_back([this, w] { workerMain(w); });
        }
    }
    queue_.close();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

std::uint64_t
ServeEngine::outstandingCount() const
{
    std::lock_guard<std::mutex> lock(doneMu_);
    return outstanding_;
}

std::future<Response>
ServeEngine::submit(Request req)
{
    auto pending = std::make_unique<Pending>();
    std::future<Response> fut = pending->promise.get_future();

    std::lock_guard<std::mutex> admit(admitMu_);

    req.id = nextId_++;
    if (req.rngSeed == 0)
        req.rngSeed = requestSeed(cfg_.baseSeed, req.id);
    if (req.timeoutMs == 0.0)
        req.timeoutMs = cfg_.defaultTimeoutMs;

    pending->enqueuedAt = Clock::now();
    if (req.timeoutMs > 0.0) {
        pending->hasDeadline = true;
        pending->deadline =
            pending->enqueuedAt +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    req.timeoutMs));
    }

    bool sessioned = !req.sessionId.empty();
    if (sessioned)
        pending->sessionSeq = sessions_.admit(req.sessionId);

    Response early;
    early.id = req.id;
    early.rngSeed = req.rngSeed;

    std::string session_id = req.sessionId;
    std::uint64_t session_seq = pending->sessionSeq;
    pending->req = std::move(req);

    {
        std::lock_guard<std::mutex> lock(doneMu_);
        ++outstanding_;
    }
    if (!queue_.tryPush(std::move(pending))) {
        // Backpressure: answer immediately and release the session
        // turn so successors are not blocked behind a hole.
        if (sessioned)
            sessions_.cancel(session_id, session_seq);
        metrics_.noteRejected();
        early.status = RequestStatus::Rejected;
        std::promise<Response> p;
        fut = p.get_future();
        p.set_value(std::move(early));
        noteDone();
        return fut;
    }
    metrics_.noteSubmitted();
    return fut;
}

void
ServeEngine::workerMain(std::uint32_t idx)
{
    while (auto pending = queue_.pop())
        serveOne(idx, std::move(**pending));
}

void
ServeEngine::serveOne(std::uint32_t idx, Pending p)
{
    Request &req = p.req;
    const bool sessioned = !req.sessionId.empty();

    // Take the session turn first: deadline time spent waiting for a
    // predecessor counts against the request, like queue time.
    if (sessioned)
        sessions_.awaitTurn(req.sessionId, p.sessionSeq);

    Clock::time_point begin = Clock::now();
    double queue_ms = msBetween(p.enqueuedAt, begin);

    Response resp;
    resp.id = req.id;
    resp.rngSeed = req.rngSeed;
    resp.worker = idx;
    resp.queueMs = queue_ms;

    if (p.hasDeadline && begin > p.deadline) {
        if (sessioned)
            sessions_.cancel(req.sessionId, p.sessionSeq);
        metrics_.noteTimedOut(queue_ms);
        resp.status = RequestStatus::TimedOut;
        p.promise.set_value(std::move(resp));
        noteDone();
        return;
    }

    SnapMachine &machine = *machines_.at(idx);
    if (sessioned) {
        machine.image().restoreMarkers(
            sessions_.fetch(req.sessionId));
    } else {
        // Fresh-query state: the determinism anchor for stateless
        // requests (identical replicas + cleared markers => the run
        // is a pure function of the program).
        machine.image().resetMarkers();
    }

    RunResult run = machine.run(req.prog);
    Clock::time_point end = Clock::now();

    if (sessioned) {
        sessions_.complete(req.sessionId, p.sessionSeq,
                           machine.image().flatten());
    }

    resp.status = RequestStatus::Ok;
    resp.results = std::move(run.results);
    resp.wallTicks = run.wallTicks;
    resp.serviceMs = msBetween(begin, end);
    metrics_.noteCompleted(idx, queue_ms, resp.serviceMs,
                           resp.wallTicks);
    p.promise.set_value(std::move(resp));
    noteDone();
}

void
ServeEngine::noteDone()
{
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        snap_assert(outstanding_ > 0, "noteDone underflow");
        --outstanding_;
        if (outstanding_ > 0)
            return;
    }
    allDone_.notify_all();
}

void
ServeEngine::drain()
{
    std::unique_lock<std::mutex> lock(doneMu_);
    allDone_.wait(lock, [&] { return outstanding_ == 0; });
}

MetricsSnapshot
ServeEngine::metricsSnapshot() const
{
    double uptime = std::chrono::duration<double>(
                        Clock::now() - startedAt_).count();
    return metrics_.snapshot(queue_.depth(), queue_.highWater(),
                             queue_.capacity(), uptime);
}

MarkerStore
ServeEngine::sessionMarkers(const std::string &id) const
{
    return sessions_.fetch(id);
}

std::vector<std::string>
ServeEngine::sessionIds() const
{
    return sessions_.sessionIds();
}

} // namespace serve
} // namespace snap
