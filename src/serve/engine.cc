#include "serve/engine.hh"

#include <string>
#include <utility>

#include "common/lane_backend.hh"
#include "common/logging.hh"
#include "trace/trace.hh"

namespace snap
{
namespace serve
{

namespace
{

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace

const char *
requestStatusName(RequestStatus s)
{
    switch (s) {
      case RequestStatus::Ok: return "ok";
      case RequestStatus::Rejected: return "rejected";
      case RequestStatus::TimedOut: return "timed-out";
      case RequestStatus::Failed: return "failed";
      case RequestStatus::Hung: return "hung";
    }
    return "?";
}

std::uint64_t
requestSeed(std::uint64_t base_seed, std::uint64_t request_id)
{
    // One splitmix64 step over the combined word: well-mixed,
    // platform-independent, and trivially replayable.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (request_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ServeEngine::ServeEngine(const SemanticNetwork &net, ServeConfig cfg)
    : ServeEngine(net, nullptr, std::move(cfg))
{
}

ServeEngine::ServeEngine(const SemanticNetwork &net,
                         std::unique_ptr<KbImage> image, ServeConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queueCapacity),
      sessions_(net.numNodes()),
      metrics_(cfg_.numWorkers),
      startedAt_(Clock::now())
{
    if (cfg_.numWorkers < 1)
        snap_fatal("ServeConfig.numWorkers must be >= 1");
    if (cfg_.maxBatchLanes < 1 ||
        cfg_.maxBatchLanes > MultiBitVector::maxLanes)
        snap_fatal("ServeConfig.maxBatchLanes must be 1..%u",
                   MultiBitVector::maxLanes);
    if (image) {
        // Adopting a deserialized image: its partition decides the
        // cluster count, not the configured default.
        if (image->numNodes() != net.numNodes()) {
            snap_fatal("adopted image holds %u nodes but the network "
                       "has %u", image->numNodes(), net.numNodes());
        }
        cfg_.machine.numClusters = image->numClusters();
    }
    cfg_.machine.validate();
    cfg_.faults.validate();

    // Warm pending pool: sized so steady-state admission never
    // allocates (every queued request plus one in flight per worker).
    const std::size_t pool_target =
        cfg_.queueCapacity + cfg_.numWorkers;
    pool_.reserve(pool_target);
    for (std::size_t i = 0; i < pool_target; ++i)
        pool_.push_back(std::make_unique<Pending>());

    // Compile once (or adopt the pre-compiled image); stamp
    // bit-identical replicas from the master.
    master_ = image ? std::move(image)
                    : std::make_unique<KbImage>(net, cfg_.machine);
    const bool faulty = cfg_.faults.any();
    if (faulty) {
        // Functional shadow for end-of-run integrity checks: a plain
        // copy of the source network, replayed by the reference
        // interpreter against each run's entry marker state.
        shadowNet_ = std::make_unique<SemanticNetwork>(net);
    }
    machines_.reserve(cfg_.numWorkers);
    health_.assign(cfg_.numWorkers, 0);
    slots_.reserve(cfg_.numWorkers);
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w) {
        // Each replica gets its own trace domain (Perfetto
        // "process"), so the per-machine simulated-time tracks of
        // different workers never interleave.
        MachineConfig worker_cfg = cfg_.machine;
        worker_cfg.traceDomain = w;
        machines_.push_back(
            std::make_unique<SnapMachine>(worker_cfg));
        machines_.back()->loadKb(*master_);
        slots_.push_back(std::make_unique<WorkerSlot>());
        if (faulty) {
            // Independent per-replica fault stream: same plan, seed
            // re-mixed with the worker index.
            FaultSpec spec = cfg_.faults;
            spec.seed = requestSeed(spec.seed, w);
            machines_.back()->installFaults(spec);
            machines_.back()->setIntegrityShadow(shadowNet_.get());
        }
    }

    if (trace::active()) {
        trace::nameProcess(trace::kHostPid, "snapserve host (ns)");
        trace::nameTrack(trace::kHostPid, trace::kTidAdmission,
                         "admission");
        for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w) {
            trace::nameTrack(trace::kHostPid, trace::tidWorker(w),
                             formatString("worker %u", w));
        }
    }

    if (!cfg_.startPaused)
        start();
}

ServeEngine::~ServeEngine()
{
    shutdown();
}

void
ServeEngine::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    if (started_ || shutdown_)
        return;
    started_ = true;
    workers_.reserve(cfg_.numWorkers);
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
}

void
ServeEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMu_);
        if (shutdown_)
            return;
        shutdown_ = true;
        // A paused engine must still drain whatever was admitted.
        if (!started_ && outstandingCount() > 0) {
            started_ = true;
            workers_.reserve(cfg_.numWorkers);
            for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w)
                workers_.emplace_back([this, w] { workerMain(w); });
        }
    }
    queue_.close();
    if (cfg_.hungWorkerTimeoutMs > 0.0 && !workers_.empty()) {
        // Hung-worker watchdog: grant the workers a grace period to
        // drain, then force-fail whatever is still unfinished so no
        // client blocks forever behind a wedged worker thread.
        const Clock::time_point grace =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    cfg_.hungWorkerTimeoutMs));
        while (workersExited_.load(std::memory_order_acquire) <
                   workers_.size() &&
               Clock::now() < grace) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        if (workersExited_.load(std::memory_order_acquire) <
            workers_.size())
            forceFailHung();
    }
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

/**
 * The shutdown grace period expired with at least one worker still
 * running.  Answer every request registered in flight, and everything
 * left in the queue, with status Hung — exactly once per request (the
 * answered flag arbitrates against a slow worker finishing late).
 * Requests on workers that were merely slow are failed too: past the
 * grace period, "still unfinished" is the definition of hung.  The
 * worker threads themselves are still joined afterwards — the
 * guarantee is that no *client* waits forever, not that a wedged
 * thread is reaped.
 */
void
ServeEngine::forceFailHung()
{
    auto hungResponse = [](const Request &req) {
        Response resp;
        resp.id = req.id;
        resp.rngSeed = req.rngSeed;
        resp.status = RequestStatus::Hung;
        return resp;
    };
    for (auto &slot : slots_) {
        std::lock_guard<std::mutex> lock(slot->mu);
        for (Pending *p : slot->inflight) {
            if (p->answered.exchange(true))
                continue;
            metrics_.noteHung();
            if (SNAP_TRACE_ON(trace::kServe)) {
                trace::hostInstant(trace::kServe,
                                   trace::kTidAdmission,
                                   "request.hung");
                trace::hostAsyncEnd(trace::kServe,
                                    trace::kTidAdmission, "request",
                                    p->req.id);
            }
            if (p->callback)
                p->callback(hungResponse(p->req));
            else if (p->slot)
                p->slot->deliver(hungResponse(p->req));
            else
                p->promise.set_value(hungResponse(p->req));
            noteDone();
            // The Pending record itself stays with the worker; it is
            // recycled if the worker ever finishes, leaked into the
            // wedged thread otherwise.
        }
    }
    // Whatever is still queued will never be popped by a hung worker;
    // a live worker racing this drain is harmless (pop hands each
    // entry to exactly one side).
    while (auto pending = queue_.pop()) {
        std::unique_ptr<Pending> p = std::move(*pending);
        if (!p->req.sessionId.empty())
            sessions_.cancel(p->req.sessionId, p->sessionSeq);
        metrics_.noteHung();
        Response resp = hungResponse(p->req);
        deliverResponse(std::move(p), std::move(resp));
    }
}

std::uint64_t
ServeEngine::outstandingCount() const
{
    std::lock_guard<std::mutex> lock(doneMu_);
    return outstanding_;
}

std::unique_ptr<ServeEngine::Pending>
ServeEngine::acquirePending()
{
    {
        std::lock_guard<std::mutex> lock(poolMu_);
        if (!pool_.empty()) {
            auto p = std::move(pool_.back());
            pool_.pop_back();
            return p;
        }
    }
    return std::make_unique<Pending>();
}

void
ServeEngine::releasePending(std::unique_ptr<Pending> p)
{
    p->slot = nullptr;
    p->callback = nullptr;
    p->batchable = false;
    p->progHash = 0;
    p->sessionSeq = 0;
    p->hasDeadline = false;
    p->answered.store(false, std::memory_order_relaxed);
    p->owner = nullptr;
    p->traceAdmitNs = 0;
    // p->req keeps its buffers: the next admission's move-assign
    // recycles or releases them without allocating here.
    std::lock_guard<std::mutex> lock(poolMu_);
    if (pool_.size() < cfg_.queueCapacity + cfg_.numWorkers)
        pool_.push_back(std::move(p));
}

/**
 * Shared admission: assign id/seed/deadline, take the session turn,
 * hoist the batching key, and enqueue — all under admitMu_ so queue
 * order == session order.  On reject (@return false) the response is
 * in @p early, the session turn is released, and @p pending has been
 * recycled.  Allocation-free on the admit path: every derived field
 * lands in the pooled Pending, and contentHash() does not allocate.
 */
bool
ServeEngine::admit(Request &&req, std::unique_ptr<Pending> &pending,
                   Response &early)
{
    std::lock_guard<std::mutex> admit_lock(admitMu_);

    req.id = nextId_++;
    if (req.rngSeed == 0)
        req.rngSeed = requestSeed(cfg_.baseSeed, req.id);
    if (req.timeoutMs == 0.0)
        req.timeoutMs = cfg_.defaultTimeoutMs;

    pending->enqueuedAt = Clock::now();
    if (req.timeoutMs > 0.0) {
        pending->hasDeadline = true;
        pending->deadline =
            pending->enqueuedAt +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    req.timeoutMs));
    }

    const bool sessioned = !req.sessionId.empty();

    // Graceful degradation: during a fault storm, shed stateless
    // load at admission so retries of already-admitted work get the
    // capacity.  Session requests are never shed — their marker
    // state must advance in submission order.
    if (!sessioned && cfg_.shedThreshold > 0 &&
        stormFaults_.load(std::memory_order_relaxed) >=
            cfg_.shedThreshold) {
        metrics_.noteShed();
        if (SNAP_TRACE_ON(trace::kServe)) {
            trace::hostInstant(trace::kServe, trace::kTidAdmission,
                               "admit.shed");
        }
        early.id = req.id;
        early.rngSeed = req.rngSeed;
        early.status = RequestStatus::Rejected;
        pending->req = std::move(req);
        releasePending(std::move(pending));
        return false;
    }

    if (sessioned)
        pending->sessionSeq = sessions_.admit(req.sessionId);
    pending->batchable = !sessioned && cfg_.maxBatchLanes > 1;
    pending->progHash =
        pending->batchable ? req.prog.contentHash() : 0;

    early.id = req.id;
    early.rngSeed = req.rngSeed;

    pending->req = std::move(req);

    const std::uint64_t rid = pending->req.id;
    if (SNAP_TRACE_ON(trace::kServe))
        pending->traceAdmitNs = trace::hostNowNs();

    {
        std::lock_guard<std::mutex> lock(doneMu_);
        ++outstanding_;
    }
    if (!queue_.tryPush(pending)) {
        // Backpressure: answer immediately and release the session
        // turn so successors are not blocked behind a hole.
        if (sessioned)
            sessions_.cancel(pending->req.sessionId,
                             pending->sessionSeq);
        metrics_.noteRejected();
        if (SNAP_TRACE_ON(trace::kServe)) {
            trace::hostInstant(trace::kServe, trace::kTidAdmission,
                               "admit.reject");
        }
        early.status = RequestStatus::Rejected;
        releasePending(std::move(pending));
        noteDone();
        return false;
    }
    metrics_.noteSubmitted();
    if (SNAP_TRACE_ON(trace::kServe)) {
        // One async-nestable lifecycle per request on the admission
        // track; closed by deliverResponse (or the hung watchdog).
        trace::hostAsyncBegin(trace::kServe, trace::kTidAdmission,
                              "request", rid);
    }
    return true;
}

std::future<Response>
ServeEngine::submit(Request req)
{
    auto pending = acquirePending();
    pending->promise = std::promise<Response>();
    pending->slot = nullptr;
    std::future<Response> fut = pending->promise.get_future();

    Response early;
    if (!admit(std::move(req), pending, early)) {
        std::promise<Response> p;
        fut = p.get_future();
        p.set_value(std::move(early));
    }
    return fut;
}

void
ServeEngine::submit(Request req, ResponseSlot &slot)
{
    auto pending = acquirePending();
    pending->slot = &slot;
    slot.reset();

    Response early;
    if (!admit(std::move(req), pending, early))
        slot.deliver(std::move(early));
}

void
ServeEngine::submit(Request req, std::function<void(Response &&)> done)
{
    snap_assert(done != nullptr, "submit with a null callback");
    auto pending = acquirePending();
    // admit() recycles the record (clearing its callback) on the
    // reject path, so keep a handle for the early answer.
    pending->callback = done;

    Response early;
    if (!admit(std::move(req), pending, early))
        done(std::move(early));
}

void
ServeEngine::deliverResponse(std::unique_ptr<Pending> p,
                             Response &&resp)
{
    unregisterInflight(p.get());
    // Exactly-once: the shutdown watchdog may have already answered
    // this request Hung while the worker was stuck; in that case the
    // late result is dropped and only the record is recycled.
    if (!p->answered.exchange(true)) {
        if (SNAP_TRACE_ON(trace::kServe)) {
            trace::hostAsyncEnd(trace::kServe, trace::kTidAdmission,
                                "request", resp.id);
        }
        if (p->callback)
            p->callback(std::move(resp));
        else if (p->slot)
            p->slot->deliver(std::move(resp));
        else
            p->promise.set_value(std::move(resp));
        noteDone();
    }
    releasePending(std::move(p));
}

void
ServeEngine::registerInflight(std::uint32_t idx, Pending *p)
{
    WorkerSlot &slot = *slots_[idx];
    std::lock_guard<std::mutex> lock(slot.mu);
    p->owner = &slot;
    slot.inflight.push_back(p);
}

void
ServeEngine::unregisterInflight(Pending *p)
{
    WorkerSlot *slot = p->owner;
    if (!slot)
        return;
    // Serializes against the watchdog's force-fail scan: once we are
    // out of the registry, only this thread can answer the request.
    std::lock_guard<std::mutex> lock(slot->mu);
    auto &v = slot->inflight;
    for (auto it = v.begin(); it != v.end(); ++it) {
        if (*it == p) {
            v.erase(it);
            break;
        }
    }
    p->owner = nullptr;
}

void
ServeEngine::workerMain(std::uint32_t idx)
{
    std::vector<std::unique_ptr<Pending>> batch;
    batch.reserve(cfg_.maxBatchLanes);
    while (auto pending = queue_.pop()) {
        std::unique_ptr<Pending> p = std::move(*pending);
        if (p->batchable) {
            batch.clear();
            batch.push_back(std::move(p));
            std::uint64_t form_ns =
                SNAP_TRACE_ON(trace::kServe) ? trace::hostNowNs()
                                             : 0;
            gatherBatch(batch);
            if (form_ns != 0) {
                trace::hostSpanArg(trace::kServe,
                                   trace::tidWorker(idx),
                                   "batch.form", form_ns,
                                   trace::hostNowNs(), batch.size());
            }
            for (auto &q : batch)
                registerInflight(idx, q.get());
            serveBatch(idx, batch);
            batch.clear();
        } else {
            registerInflight(idx, p.get());
            serveOne(idx, std::move(p));
        }
    }
    workersExited_.fetch_add(1, std::memory_order_release);
}

/**
 * The batch former's gulp: pull queued stateless requests with the
 * same program hash as batch.front(), waiting up to batchWindowMs
 * for the lanes to fill.  FIFO order is preserved both inside the
 * batch and among the requests left behind.
 */
void
ServeEngine::gatherBatch(std::vector<std::unique_ptr<Pending>> &batch)
{
    const std::size_t want = cfg_.maxBatchLanes;
    if (batch.size() >= want)
        return;
    Clock::time_point deadline = Clock::now();
    if (cfg_.batchWindowMs > 0.0) {
        deadline += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                cfg_.batchWindowMs));
    }
    const std::uint64_t h = batch.front()->progHash;
    queue_.extractMatching(
        [h](const std::unique_ptr<Pending> &q) {
            return q->batchable && q->progHash == h;
        },
        want - batch.size(), batch, deadline);
}

void
ServeEngine::serveOne(std::uint32_t idx, std::unique_ptr<Pending> p)
{
    Request &req = p->req;
    const bool sessioned = !req.sessionId.empty();

    // Take the session turn first: deadline time spent waiting for a
    // predecessor counts against the request, like queue time.
    if (sessioned)
        sessions_.awaitTurn(req.sessionId, p->sessionSeq);

    Clock::time_point begin = Clock::now();
    double queue_ms = msBetween(p->enqueuedAt, begin);

    if (SNAP_TRACE_ON(trace::kServe) && p->traceAdmitNs != 0) {
        trace::hostSpan(trace::kServe, trace::tidWorker(idx),
                        "queue.wait", p->traceAdmitNs,
                        trace::hostNowNs());
    }
    if (SNAP_TRACE_ON(trace::kServe) && req.traceSampled) {
        // Stamp the inbound fleet trace id on the worker track, so
        // the serve/machine spans that follow carry the distributed
        // context a merged timeline groups by.
        trace::hostInstant(trace::kServe, trace::tidWorker(idx),
                           "trace.ctx", req.traceId, true);
    }

    Response resp;
    resp.id = req.id;
    resp.rngSeed = req.rngSeed;
    resp.worker = idx;
    resp.queueMs = queue_ms;

    if (p->hasDeadline && begin > p->deadline) {
        if (sessioned)
            sessions_.cancel(req.sessionId, p->sessionSeq);
        metrics_.noteTimedOut(queue_ms);
        if (SNAP_TRACE_ON(trace::kServe)) {
            trace::hostInstant(trace::kServe, trace::tidWorker(idx),
                               "deadline.expired");
        }
        resp.status = RequestStatus::TimedOut;
        deliverResponse(std::move(p), std::move(resp));
        return;
    }

    if (cfg_.preRunHook)
        cfg_.preRunHook(idx);

    SnapMachine &machine = *machines_.at(idx);

    // Execute-with-recovery: re-run (from re-stamped marker state) as
    // long as fault detection trips and the retry budget allows.  On
    // a fault-free engine run.fault.ok() is vacuously true and the
    // loop is a single pass with no extra work.
    RunResult run;
    std::uint32_t attempts = 0;
    for (;;) {
        if (sessioned) {
            machine.image().restoreMarkers(
                sessions_.fetch(req.sessionId));
        } else {
            // Fresh-query state: the determinism anchor for stateless
            // requests (identical replicas + cleared markers => the
            // run is a pure function of the program).  It also wipes
            // any marker corruption a faulted attempt left behind.
            machine.image().resetMarkers();
        }
        std::uint64_t flow_id = 0;
        std::uint64_t attempt_ns = 0;
        if (SNAP_TRACE_ON(trace::kServe)) {
            // Link this host-side attempt to the simulated-time
            // machine.run span it is about to produce: emit the
            // flow start here and arm the id; SnapMachine::run
            // consumes it and emits the matching finish.
            flow_id = trace::nextFlowId();
            attempt_ns = trace::hostNowNs();
            trace::hostFlowStart(trace::kServe,
                                 trace::tidWorker(idx), flow_id,
                                 attempt_ns);
            trace::armFlow(flow_id);
        }
        run = machine.run(req.prog);
        accumulateRunStats(run.stats);
        if (flow_id != 0) {
            trace::hostSpanArgs(trace::kServe, trace::tidWorker(idx),
                                "attempt", attempt_ns,
                                trace::hostNowNs(), attempts,
                                laneOps().name);
        }
        if (run.fault.ok())
            break;
        noteReplicaFault(idx, run.fault);
        if (attempts >= cfg_.maxRetries)
            break;
        ++attempts;
        metrics_.noteRetry();
        if (SNAP_TRACE_ON(trace::kServe)) {
            trace::hostInstant(trace::kServe, trace::tidWorker(idx),
                               "retry", attempts, true);
        }
        if (cfg_.retryBackoffMs > 0.0) {
            const std::uint32_t shift =
                attempts - 1 < 10 ? attempts - 1 : 10;
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    cfg_.retryBackoffMs *
                    static_cast<double>(1u << shift)));
        }
    }
    Clock::time_point end = Clock::now();
    resp.serviceMs = msBetween(begin, end);
    resp.retries = attempts;

    if (!run.fault.ok()) {
        // Retry budget exhausted; the answer is untrustworthy and is
        // withheld.  A typed failure, never a silently wrong result.
        if (sessioned)
            sessions_.cancel(req.sessionId, p->sessionSeq);
        resp.status = RequestStatus::Failed;
        resp.faultDetected = true;
        metrics_.noteFailed(queue_ms);
        deliverResponse(std::move(p), std::move(resp));
        return;
    }

    noteReplicaOk(idx);
    if (sessioned) {
        sessions_.complete(req.sessionId, p->sessionSeq,
                           machine.image().flatten());
    }

    resp.status = RequestStatus::Ok;
    resp.results = std::move(run.results);
    resp.wallTicks = run.wallTicks;
    resp.faultDetected = attempts > 0;
    metrics_.noteCompleted(idx, queue_ms, resp.serviceMs,
                           resp.wallTicks);
    if (attempts > 0)
        metrics_.noteRecovered();
    deliverResponse(std::move(p), std::move(resp));
}

/**
 * Serve a gulped group as one lane-batched run.  Every member is
 * stateless and same-program by construction (gatherBatch matched on
 * progHash over batchable == stateless entries), so one run over
 * cleared markers is each lane's solo run — per-request results and
 * wallTicks are bit-identical to the unbatched path.
 */
void
ServeEngine::serveBatch(std::uint32_t idx,
                        std::vector<std::unique_ptr<Pending>> &batch)
{
    Clock::time_point begin = Clock::now();

    // Deadline triage per member (stateless: no session turn to
    // release).  Expired members leave before the run.
    std::size_t live = 0;
    for (auto &p : batch) {
        if (p->hasDeadline && begin > p->deadline) {
            double queue_ms = msBetween(p->enqueuedAt, begin);
            Response resp;
            resp.id = p->req.id;
            resp.rngSeed = p->req.rngSeed;
            resp.worker = idx;
            resp.queueMs = queue_ms;
            resp.status = RequestStatus::TimedOut;
            metrics_.noteTimedOut(queue_ms);
            if (SNAP_TRACE_ON(trace::kServe)) {
                trace::hostInstant(trace::kServe,
                                   trace::tidWorker(idx),
                                   "deadline.expired");
            }
            deliverResponse(std::move(p), std::move(resp));
        } else {
            batch[live++] = std::move(p);
        }
    }
    batch.resize(live);
    if (batch.empty())
        return;
    if (batch.size() == 1) {
        // Straggler: no partner arrived inside the window.
        serveOne(idx, std::move(batch.front()));
        batch.clear();
        return;
    }

    const std::uint32_t lanes =
        static_cast<std::uint32_t>(batch.size());
    SnapMachine &machine = *machines_.at(idx);
    machine.image().resetMarkers();
    std::uint64_t flow_id = 0;
    std::uint64_t attempt_ns = 0;
    if (SNAP_TRACE_ON(trace::kServe)) {
        flow_id = trace::nextFlowId();
        attempt_ns = trace::hostNowNs();
        trace::hostFlowStart(trace::kServe, trace::tidWorker(idx),
                             flow_id, attempt_ns);
        trace::armFlow(flow_id);
    }
    BatchRunResult run =
        machine.runBatch(batch.front()->req.prog, lanes);
    if (flow_id != 0) {
        // Lane width + backend name: the trace attributes this
        // span's sim amortization to the kernel that produced it.
        trace::hostSpanArgs(trace::kServe, trace::tidWorker(idx),
                            "batch.attempt", attempt_ns,
                            trace::hostNowNs(), lanes,
                            laneOps().name);
    }

    if (!run.fault.ok()) {
        // The shared traversal is poisoned, so no lane's answer is
        // trustworthy.  Evict the batch and re-serve every lane solo;
        // each gets its own retry budget, and lanes unaffected by the
        // re-drawn fault stream commit normally.
        noteReplicaFault(idx, run.fault);
        metrics_.noteBatchFallback();
        if (SNAP_TRACE_ON(trace::kServe)) {
            trace::hostInstant(trace::kServe, trace::tidWorker(idx),
                               "batch.fallback", lanes, true);
        }
        for (auto &p : batch)
            serveOne(idx, std::move(p));
        batch.clear();
        return;
    }
    noteReplicaOk(idx);
    accumulateRunStats(run.stats);
    Clock::time_point end = Clock::now();
    double service_ms = msBetween(begin, end);

    metrics_.noteBatch(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i) {
        std::unique_ptr<Pending> p = std::move(batch[i]);
        Response resp;
        resp.id = p->req.id;
        resp.rngSeed = p->req.rngSeed;
        resp.worker = idx;
        resp.queueMs = msBetween(p->enqueuedAt, begin);
        resp.status = RequestStatus::Ok;
        if (i + 1 < lanes)
            resp.results = run.results;
        else
            resp.results = std::move(run.results);
        resp.wallTicks = run.wallTicks;
        resp.serviceMs = service_ms;
        resp.batchLanes = lanes;
        // Request-facing metrics take the full batch cost; the
        // worker's busy share divides it, and the simulated run is
        // billed to the farm once (first lane), so utilization and
        // the sim makespan show the amortization.
        metrics_.noteCompletedShared(
            idx, resp.queueMs, service_ms, service_ms / lanes,
            run.wallTicks, i == 0 ? run.wallTicks : 0);
        deliverResponse(std::move(p), std::move(resp));
    }
    batch.clear();
}

/**
 * One run attempt on replica @p idx tripped fault detection.  Repair
 * the machine if the fault wedged it, score the replica's health
 * (quarantine after quarantineThreshold consecutive faults), and
 * advance the engine-wide storm counter that drives admission
 * shedding.  health_[idx] is only ever touched by worker idx.
 */
void
ServeEngine::noteReplicaFault(std::uint32_t idx, const FaultReport &r)
{
    SnapMachine &machine = *machines_.at(idx);
    if (machine.poisoned())
        machine.repair();
    metrics_.noteFaultDetected(r.wedged || r.watchdogFired);
    // Fault storms produce one of these per failing attempt;
    // rate-limit so the log stays readable under sustained injection.
    SNAP_LOG_EVERY_N(Warn, 64,
                     "serve: replica %u tripped fault detection "
                     "(wedged=%d watchdog=%d)",
                     idx, r.wedged ? 1 : 0, r.watchdogFired ? 1 : 0);
    if (SNAP_TRACE_ON(trace::kServe)) {
        trace::hostInstant(trace::kServe, trace::tidWorker(idx),
                           "replica.fault");
    }
    stormFaults_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.quarantineThreshold > 0 &&
        ++health_[idx] >= cfg_.quarantineThreshold) {
        quarantineReplica(idx);
        health_[idx] = 0;
    }
}

void
ServeEngine::noteReplicaOk(std::uint32_t idx)
{
    health_[idx] = 0;
    stormFaults_.store(0, std::memory_order_relaxed);
}

/**
 * The replica's runs keep tripping detection: distrust its state
 * wholesale.  Re-stamp the knowledge base from the immutable master
 * image and bump the fault plan's generation so subsequent draws come
 * from a fresh stream (re-seeded replica selection — the retry does
 * not deterministically re-hit the same fault).
 */
void
ServeEngine::quarantineReplica(std::uint32_t idx)
{
    SnapMachine &machine = *machines_.at(idx);
    machine.loadKb(*master_);
    if (machine.faultPlan())
        machine.faultPlan()->bumpGeneration();
    metrics_.noteQuarantine();
    SNAP_LOG_EVERY_N(Warn, 64,
                     "serve: replica %u quarantined (re-stamped "
                     "from master, fault stream re-seeded)",
                     idx);
    if (SNAP_TRACE_ON(trace::kServe)) {
        trace::hostInstant(trace::kServe, trace::tidWorker(idx),
                           "replica.quarantine");
    }
}

/**
 * Epoch hot-swap.  Admissions are blocked (admitMu_ held) while
 * everything already admitted drains, so no request ever runs half on
 * the old image and half on the new; then every replica is re-stamped
 * — the same machinery quarantine uses, pointed at a new master.
 * Session marker stores are global-node-id keyed and survive as long
 * as the node count matches, which is checked up front.
 */
bool
ServeEngine::swapImage(const SemanticNetwork &net,
                       std::unique_ptr<KbImage> image, std::string &err)
{
    snap_assert(image != nullptr, "swapImage(null)");
    if (image->numClusters() != cfg_.machine.numClusters) {
        err = formatString("new image has %u clusters but the pool "
                           "was stamped for %u",
                           image->numClusters(),
                           cfg_.machine.numClusters);
        return false;
    }
    if (image->numNodes() != master_->numNodes()) {
        err = formatString("new image holds %u nodes but the serving "
                           "image holds %u (sessions and wire node "
                           "ids are sized by it)",
                           image->numNodes(), master_->numNodes());
        return false;
    }
    if (image->numNodes() != net.numNodes()) {
        err = formatString("new image holds %u nodes but its network "
                           "has %u", image->numNodes(), net.numNodes());
        return false;
    }

    std::lock_guard<std::mutex> admit_lock(admitMu_);
    drain();

    // All workers are parked in queue_.pop() now: nothing reads
    // master_ or the shadow, so the swap is plain stores.
    master_ = std::move(image);
    if (shadowNet_) {
        auto shadow = std::make_unique<SemanticNetwork>(net);
        shadowNet_ = std::move(shadow);
    }
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w) {
        machines_[w]->loadKb(*master_);
        if (shadowNet_)
            machines_[w]->setIntegrityShadow(shadowNet_.get());
    }
    metrics_.noteImageSwap();
    snap_inform("serve: hot-swapped knowledge image (%u nodes, %u "
                "clusters); %u replicas re-stamped",
                master_->numNodes(), master_->numClusters(),
                cfg_.numWorkers);
    return true;
}

void
ServeEngine::noteDone()
{
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        snap_assert(outstanding_ > 0, "noteDone underflow");
        --outstanding_;
        if (outstanding_ > 0)
            return;
    }
    allDone_.notify_all();
}

void
ServeEngine::drain()
{
    std::unique_lock<std::mutex> lock(doneMu_);
    allDone_.wait(lock, [&] { return outstanding_ == 0; });
}

void
ServeEngine::accumulateRunStats(const ExecBreakdown &stats)
{
    std::lock_guard<std::mutex> lock(statsMu_);
    aggExec_.merge(stats);
    // The per-epoch message series grows with every run and is not
    // exported; drop it so a long-lived engine stays bounded.
    aggExec_.msgsPerEpoch.clear();
    aggExec_.msgsPerEpoch.shrink_to_fit();
}

void
ServeEngine::exportMetrics(MetricsRegistry &reg) const
{
    metricsSnapshot().exportMetrics(reg);
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        aggExec_.exportMetrics(reg);
    }
    for (std::uint32_t w = 0; w < cfg_.numWorkers; ++w) {
        machines_[w]->exportMetrics(reg,
                                    {{"worker", std::to_string(w)}});
    }
}

MetricsSnapshot
ServeEngine::metricsSnapshot() const
{
    double uptime = std::chrono::duration<double>(
                        Clock::now() - startedAt_).count();
    return metrics_.snapshot(queue_.depth(), queue_.highWater(),
                             queue_.capacity(), uptime);
}

MarkerStore
ServeEngine::sessionMarkers(const std::string &id) const
{
    return sessions_.fetch(id);
}

std::vector<std::string>
ServeEngine::sessionIds() const
{
    return sessions_.sessionIds();
}

bool
ServeEngine::trySessionMarkers(const std::string &id,
                               MarkerStore &out) const
{
    return sessions_.tryFetch(id, out);
}

bool
ServeEngine::restoreSession(const std::string &id, MarkerStore state,
                            std::string &err)
{
    if (state.numNodes() != master_->numNodes()) {
        err = formatString("session checkpoint has %u nodes, the "
                           "served image has %u",
                           state.numNodes(), master_->numNodes());
        return false;
    }
    sessions_.restore(id, std::move(state));
    return true;
}

} // namespace serve
} // namespace snap
