#include "serve/metrics.hh"

#include <sstream>

#include "common/logging.hh"

namespace snap
{
namespace serve
{

namespace
{

void
histJson(std::ostringstream &os, const char *name,
         const Histogram &h, const char *indent)
{
    os << indent << "\"" << name << "\": {"
       << "\"count\": " << h.count()
       << ", \"mean\": " << formatString("%.6g", h.mean())
       << ", \"min\": " << formatString("%.6g", h.min())
       << ", \"p50\": " << formatString("%.6g", h.quantile(0.50))
       << ", \"p95\": " << formatString("%.6g", h.quantile(0.95))
       << ", \"p99\": " << formatString("%.6g", h.quantile(0.99))
       << ", \"max\": " << formatString("%.6g", h.max()) << "}";
}

} // namespace

std::string
metricsJson(const MetricsSnapshot &s)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"submitted\": " << s.submitted << ",\n";
    os << "  \"completed\": " << s.completed << ",\n";
    os << "  \"rejected\": " << s.rejected << ",\n";
    os << "  \"timed_out\": " << s.timedOut << ",\n";
    os << "  \"batching\": {\"batches\": " << s.batches
       << ", \"batched_requests\": " << s.batchedRequests
       << ", \"mean_lanes\": "
       << formatString("%.6g", s.batchLanes.mean()) << "},\n";
    os << "  \"robustness\": {\"faults_detected\": " << s.faultsDetected
       << ", \"wedges\": " << s.wedges
       << ", \"retries\": " << s.retries
       << ", \"recovered\": " << s.recovered
       << ", \"failed\": " << s.failed
       << ", \"hung\": " << s.hung
       << ", \"shed\": " << s.shed
       << ", \"quarantines\": " << s.quarantines
       << ", \"batch_fallbacks\": " << s.batchFallbacks << "},\n";
    os << "  \"queue\": {\"depth\": " << s.queueDepth
       << ", \"high_water\": " << s.queueHighWater
       << ", \"capacity\": " << s.queueCapacity << "},\n";
    os << "  \"uptime_sec\": "
       << formatString("%.6g", s.uptimeSec) << ",\n";
    os << "  \"throughput_qps\": "
       << formatString("%.6g", s.throughputQps()) << ",\n";
    histJson(os, "queue_wait_ms", s.queueWaitMs, "  ");
    os << ",\n";
    histJson(os, "service_ms", s.serviceMs, "  ");
    os << ",\n";
    histJson(os, "total_ms", s.totalMs, "  ");
    os << ",\n";
    histJson(os, "sim_us", s.simUs, "  ");
    os << ",\n";
    histJson(os, "batch_lanes", s.batchLanes, "  ");
    os << ",\n";
    os << "  \"sim_makespan_us\": "
       << formatString("%.6g", ticksToUs(s.simMakespanTicks()))
       << ",\n";
    os << "  \"workers\": [\n";
    for (std::size_t i = 0; i < s.workers.size(); ++i) {
        const WorkerStats &w = s.workers[i];
        os << "    {\"worker\": " << i << ", \"served\": " << w.served
           << ", \"busy_sim_us\": "
           << formatString("%.6g", ticksToUs(w.busyTicks))
           << ", \"busy_host_ms\": "
           << formatString("%.6g", w.busyMs) << "}"
           << (i + 1 < s.workers.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace serve
} // namespace snap
