#include "serve/metrics.hh"

#include <sstream>

#include "common/logging.hh"

namespace snap
{
namespace serve
{

namespace
{

// Histogram and LinearHistogram expose the same summary surface;
// templating keeps the JSON and registry shapes identical for both.
template <typename Hist>
void
histJson(std::ostringstream &os, const char *name, const Hist &h,
         const char *indent)
{
    os << indent << "\"" << name << "\": {"
       << "\"count\": " << h.count()
       << ", \"mean\": " << formatString("%.6g", h.mean())
       << ", \"min\": " << formatString("%.6g", h.min())
       << ", \"p50\": " << formatString("%.6g", h.quantile(0.50))
       << ", \"p95\": " << formatString("%.6g", h.quantile(0.95))
       << ", \"p99\": " << formatString("%.6g", h.quantile(0.99))
       << ", \"max\": " << formatString("%.6g", h.max()) << "}";
}

template <typename Hist>
void
histMetrics(MetricsRegistry &reg, const std::string &base,
            const Hist &h, const char *help,
            const MetricsRegistry::Labels &labels)
{
    reg.counter(base + "_count", static_cast<double>(h.count()),
                help, labels);
    reg.counter(base + "_sum", h.sum(), help, labels);
    reg.gauge(base + "_min", h.min(), help, labels);
    reg.gauge(base + "_max", h.max(), help, labels);
    reg.gauge(base + "_p50", h.quantile(0.50), help, labels);
    reg.gauge(base + "_p95", h.quantile(0.95), help, labels);
    reg.gauge(base + "_p99", h.quantile(0.99), help, labels);
}

} // namespace

void
MetricsSnapshot::exportMetrics(MetricsRegistry &reg,
                               MetricsRegistry::Labels labels) const
{
    auto cnt = [&](const char *name, std::uint64_t v,
                   const char *help) {
        reg.counter(name, static_cast<double>(v), help, labels);
    };
    auto gau = [&](const char *name, double v, const char *help) {
        reg.gauge(name, v, help, labels);
    };

    cnt("snap_serve_submitted_total", submitted,
        "Requests admitted (including rejected and shed)");
    cnt("snap_serve_completed_total", completed,
        "Requests answered Ok");
    cnt("snap_serve_rejected_total", rejected,
        "Requests rejected at admission (backpressure)");
    cnt("snap_serve_timed_out_total", timedOut,
        "Requests expired before service");
    cnt("snap_serve_batches_total", batches,
        "Lane batches served (>= 2 lanes)");
    cnt("snap_serve_batched_requests_total", batchedRequests,
        "Requests served inside lane batches");
    cnt("snap_serve_faults_detected_total", faultsDetected,
        "Run attempts that tripped fault detection");
    cnt("snap_serve_wedges_total", wedges,
        "Detected faults that wedged the machine");
    cnt("snap_serve_retries_total", retries,
        "Re-execution attempts after detected faults");
    cnt("snap_serve_recovered_total", recovered,
        "Requests answered Ok after >= 1 retry");
    cnt("snap_serve_failed_total", failed,
        "Requests answered Failed (retry budget exhausted)");
    cnt("snap_serve_hung_total", hung,
        "Requests force-failed by the shutdown watchdog");
    cnt("snap_serve_shed_total", shed,
        "Stateless requests shed during a fault storm");
    cnt("snap_serve_quarantines_total", quarantines,
        "Replica quarantines (re-stamped from master)");
    cnt("snap_serve_batch_fallbacks_total", batchFallbacks,
        "Lane batches evicted to solo re-serves");
    cnt("snap_serve_image_swaps_total", imageSwaps,
        "Knowledge-image hot-swaps applied (epoch flips)");

    gau("snap_serve_queue_depth", static_cast<double>(queueDepth),
        "Admission queue depth at snapshot time");
    gau("snap_serve_queue_high_water",
        static_cast<double>(queueHighWater),
        "Admission queue high-water mark");
    gau("snap_serve_queue_capacity",
        static_cast<double>(queueCapacity),
        "Admission queue capacity");
    gau("snap_serve_uptime_seconds", uptimeSec,
        "Host seconds since engine start");
    gau("snap_serve_throughput_qps", throughputQps(),
        "Completed requests per host second");
    gau("snap_serve_sim_makespan_us",
        ticksToUs(simMakespanTicks()),
        "Simulated makespan of the replica farm");

    histMetrics(reg, "snap_serve_queue_wait_ms", queueWaitMs,
                "Queue wait latency (host ms)", labels);
    histMetrics(reg, "snap_serve_service_ms", serviceMs,
                "Service latency (host ms)", labels);
    histMetrics(reg, "snap_serve_total_ms", totalMs,
                "End-to-end latency (host ms)", labels);
    histMetrics(reg, "snap_serve_sim_us", simUs,
                "Simulated execution time (us)", labels);
    histMetrics(reg, "snap_serve_batch_lanes", batchLanes,
                "Lanes filled per lane batch", labels);

    for (std::size_t i = 0; i < workers.size(); ++i) {
        MetricsRegistry::Labels wl = labels;
        wl.emplace_back("worker", std::to_string(i));
        reg.counter("snap_serve_worker_served_total",
                    static_cast<double>(workers[i].served),
                    "Requests served by this worker", wl);
        reg.counter("snap_serve_worker_busy_sim_ticks",
                    static_cast<double>(workers[i].busyTicks),
                    "Simulated busy ticks of this worker's replica",
                    wl);
        reg.gauge("snap_serve_worker_busy_host_ms",
                  workers[i].busyMs,
                  "Host milliseconds this worker spent executing",
                  wl);
    }
}

std::string
metricsJson(const MetricsSnapshot &s)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"submitted\": " << s.submitted << ",\n";
    os << "  \"completed\": " << s.completed << ",\n";
    os << "  \"rejected\": " << s.rejected << ",\n";
    os << "  \"timed_out\": " << s.timedOut << ",\n";
    os << "  \"batching\": {\"batches\": " << s.batches
       << ", \"batched_requests\": " << s.batchedRequests
       << ", \"mean_lanes\": "
       << formatString("%.6g", s.batchLanes.mean()) << "},\n";
    os << "  \"robustness\": {\"faults_detected\": " << s.faultsDetected
       << ", \"wedges\": " << s.wedges
       << ", \"retries\": " << s.retries
       << ", \"recovered\": " << s.recovered
       << ", \"failed\": " << s.failed
       << ", \"hung\": " << s.hung
       << ", \"shed\": " << s.shed
       << ", \"quarantines\": " << s.quarantines
       << ", \"batch_fallbacks\": " << s.batchFallbacks
       << ", \"image_swaps\": " << s.imageSwaps << "},\n";
    os << "  \"queue\": {\"depth\": " << s.queueDepth
       << ", \"high_water\": " << s.queueHighWater
       << ", \"capacity\": " << s.queueCapacity << "},\n";
    os << "  \"uptime_sec\": "
       << formatString("%.6g", s.uptimeSec) << ",\n";
    os << "  \"throughput_qps\": "
       << formatString("%.6g", s.throughputQps()) << ",\n";
    histJson(os, "queue_wait_ms", s.queueWaitMs, "  ");
    os << ",\n";
    histJson(os, "service_ms", s.serviceMs, "  ");
    os << ",\n";
    histJson(os, "total_ms", s.totalMs, "  ");
    os << ",\n";
    histJson(os, "sim_us", s.simUs, "  ");
    os << ",\n";
    histJson(os, "batch_lanes", s.batchLanes, "  ");
    os << ",\n";
    os << "  \"sim_makespan_us\": "
       << formatString("%.6g", ticksToUs(s.simMakespanTicks()))
       << ",\n";
    os << "  \"workers\": [\n";
    for (std::size_t i = 0; i < s.workers.size(); ++i) {
        const WorkerStats &w = s.workers[i];
        os << "    {\"worker\": " << i << ", \"served\": " << w.served
           << ", \"busy_sim_us\": "
           << formatString("%.6g", ticksToUs(w.busyTicks))
           << ", \"busy_host_ms\": "
           << formatString("%.6g", w.busyMs) << "}"
           << (i + 1 < s.workers.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace serve
} // namespace snap
