/**
 * @file
 * Per-session marker state with submission-order execution.
 *
 * A session is a sequence of queries sharing marker state — the
 * serving analogue of the applications that "issue multiple programs
 * against persistent marker state" (the parser's per-sentence
 * programs, host-driven resolution loops).  State is kept in the
 * runtime/snapshot layer's currency: a flat MarkerStore over global
 * node ids, so a session is partition-independent and can be served
 * by any replica (and checkpointed to disk with saveMarkers()).
 *
 * Ordering protocol: submitters call admit() (under the engine's
 * admission lock) to draw a per-session sequence number; the worker
 * that dequeues the request calls awaitTurn() before touching the
 * session, then either complete() (publishing the post-run state) or
 * cancel() (timeout/rejection — state unchanged, the sequence hole
 * is skipped so successors are never deadlocked).
 */

#ifndef SNAP_SERVE_SESSION_STORE_HH
#define SNAP_SERVE_SESSION_STORE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "runtime/marker_store.hh"

namespace snap
{
namespace serve
{

class SessionStore
{
  public:
    /** @p num_nodes sizes each new session's marker state (must
     *  match the served knowledge base). */
    explicit SessionStore(std::uint32_t num_nodes)
        : numNodes_(num_nodes)
    {}

    /** Draw the next sequence number of session @p id (creating the
     *  session on first use).  Call under the engine admission lock
     *  so sequence order matches queue order. */
    std::uint64_t admit(const std::string &id);

    /** Block until every predecessor of @p seq has completed or been
     *  cancelled. */
    void awaitTurn(const std::string &id, std::uint64_t seq);

    /** Copy out the session's current marker state.  Only valid for
     *  the holder of the current turn. */
    MarkerStore fetch(const std::string &id) const;

    /** Non-asserting fetch: false when the session does not exist.
     *  Used by the migration pull path, where "no such session yet"
     *  is a normal answer, not a protocol error. */
    bool tryFetch(const std::string &id, MarkerStore &out) const;

    /** Create-or-overwrite a session's marker state from a
     *  checkpoint (drain migration / warm-backup replication onto
     *  this replica).  Turn bookkeeping is preserved for an existing
     *  session and starts fresh for a new one. */
    void restore(const std::string &id, MarkerStore state);

    /** Publish the post-run state of turn @p seq and pass the turn
     *  on. */
    void complete(const std::string &id, std::uint64_t seq,
                  MarkerStore state);

    /** Give up turn @p seq without running (admission reject or
     *  queue-wait timeout); state is unchanged. */
    void cancel(const std::string &id, std::uint64_t seq);

    std::size_t numSessions() const;

    /** Session ids in lexicographic order (checkpoint dumps). */
    std::vector<std::string> sessionIds() const;

  private:
    struct State
    {
        explicit State(std::uint32_t num_nodes)
            : markers(num_nodes)
        {}
        std::uint64_t submitSeq = 0;
        std::uint64_t doneSeq = 0;
        /** Cancelled turns not yet reached by doneSeq. */
        std::set<std::uint64_t> cancelled;
        MarkerStore markers;
    };

    /** Advance doneSeq over contiguous cancelled turns (caller holds
     *  mu_). */
    static void skipCancelled(State &s);

    State &stateOf(const std::string &id);

    mutable std::mutex mu_;
    std::condition_variable turn_;
    std::map<std::string, State> sessions_;
    std::uint32_t numNodes_;
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_SESSION_STORE_HH
