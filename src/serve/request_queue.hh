/**
 * @file
 * Bounded MPMC work queue with reject-on-full admission control.
 *
 * The serving engine's backpressure point: producers tryPush() and
 * get an immediate reject when the queue is at capacity (the caller
 * answers RequestStatus::Rejected), consumers block in pop() until an
 * item or shutdown arrives.  FIFO order is total across producers —
 * the engine relies on this for per-session ordering (a session's
 * requests are admitted under one lock, so queue order == submission
 * order == session sequence order).
 *
 * Storage is a fixed ring buffer sized at construction, so the
 * admission path (tryPush) never allocates — a property the serving
 * engine's alloc-free submit depends on.  T must therefore be
 * default-constructible and move-assignable.
 *
 * extractMatching() is the lane-batch former's gulp primitive: it
 * removes up to N items satisfying a predicate, preserving FIFO
 * order both among the extracted items and among the survivors, and
 * optionally waits until a deadline for more matches to arrive.
 *
 * Header-only template so tests can exercise it on plain ints; the
 * engine instantiates it over move-only pending-request records.
 */

#ifndef SNAP_SERVE_REQUEST_QUEUE_HH
#define SNAP_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace snap
{
namespace serve
{

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : slots_(capacity), cap_(capacity)
    {
        snap_assert(capacity > 0, "BoundedQueue capacity 0");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Admit @p item unless the queue is full or closed.
     * @return true when enqueued; on false @p item is left unmoved,
     *         so the caller can recycle it (rejection path).
     */
    bool
    tryPush(T &item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || size_ >= cap_)
                return false;
            slots_[(head_ + size_) % cap_] = std::move(item);
            ++size_;
            ++pushes_;
            if (size_ > highWater_)
                highWater_ = size_;
        }
        // notify_all, not notify_one: a consumer parked in
        // extractMatching() may wake, find no match, and sleep again
        // — a plain pop() waiter must still learn about the item.
        notEmpty_.notify_all();
        return true;
    }

    bool
    tryPush(T &&item)
    {
        return tryPush(item);
    }

    /**
     * Blocking dequeue.  @return the next item in FIFO order, or
     * nullopt once the queue is closed and drained (consumer exit
     * signal).
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock, [&] { return closed_ || size_ > 0; });
        if (size_ == 0)
            return std::nullopt;
        T item = std::move(slots_[head_]);
        head_ = (head_ + 1) % cap_;
        --size_;
        return item;
    }

    /**
     * Remove up to @p max_items queued items satisfying @p pred,
     * appending them to @p out in FIFO order; survivors keep their
     * relative FIFO order.  When fewer than @p max_items match
     * immediately, blocks until @p deadline for more matching pushes
     * (returns early when filled or the queue closes).  A deadline in
     * the past means "scan once, never wait".
     *
     * @return the number of items extracted.
     */
    template <typename Pred>
    std::size_t
    extractMatching(Pred &&pred, std::size_t max_items,
                    std::vector<T> &out,
                    std::chrono::steady_clock::time_point deadline)
    {
        std::size_t taken = 0;
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            taken += extractLocked(pred, max_items - taken, out);
            if (taken >= max_items || closed_)
                break;
            std::uint64_t seen = pushes_;
            if (!notEmpty_.wait_until(lock, deadline, [&] {
                    return closed_ || pushes_ != seen;
                }))
                break;  // deadline, and no push happened: done
        }
        return taken;
    }

    /** Stop admissions and wake every blocked consumer; already-
     *  queued items still drain. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return size_;
    }

    std::size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return highWater_;
    }

    std::size_t capacity() const { return cap_; }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    /** One compacting scan under mu_: move matches out, close the
     *  holes.  Two-pointer sweep over logical indices, so both the
     *  extracted and the surviving subsequences keep FIFO order. */
    template <typename Pred>
    std::size_t
    extractLocked(Pred &pred, std::size_t limit, std::vector<T> &out)
    {
        std::size_t kept = 0;
        std::size_t taken = 0;
        for (std::size_t i = 0; i < size_; ++i) {
            T &slot = slots_[(head_ + i) % cap_];
            if (taken < limit &&
                pred(static_cast<const T &>(slot))) {
                out.push_back(std::move(slot));
                ++taken;
            } else {
                if (kept != i)
                    slots_[(head_ + kept) % cap_] = std::move(slot);
                ++kept;
            }
        }
        size_ = kept;
        return taken;
    }

    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::vector<T> slots_;  // fixed ring; tryPush never allocates
    const std::size_t cap_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t pushes_ = 0;
    bool closed_ = false;
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_REQUEST_QUEUE_HH
