/**
 * @file
 * Bounded MPMC work queue with reject-on-full admission control.
 *
 * The serving engine's backpressure point: producers tryPush() and
 * get an immediate reject when the queue is at capacity (the caller
 * answers RequestStatus::Rejected), consumers block in pop() until an
 * item or shutdown arrives.  FIFO order is total across producers —
 * the engine relies on this for per-session ordering (a session's
 * requests are admitted under one lock, so queue order == submission
 * order == session sequence order).
 *
 * Header-only template so tests can exercise it on plain ints; the
 * engine instantiates it over move-only pending-request records.
 */

#ifndef SNAP_SERVE_REQUEST_QUEUE_HH
#define SNAP_SERVE_REQUEST_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.hh"

namespace snap
{
namespace serve
{

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : cap_(capacity)
    {
        snap_assert(capacity > 0, "BoundedQueue capacity 0");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Admit @p item unless the queue is full or closed.
     * @return true when enqueued; false = rejected (item unmoved on
     *         the false path only if the caller passed an lvalue —
     *         pass by value and reuse accordingly).
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= cap_)
                return false;
            q_.push_back(std::move(item));
            if (q_.size() > highWater_)
                highWater_ = q_.size();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Blocking dequeue.  @return the next item in FIFO order, or
     * nullopt once the queue is closed and drained (consumer exit
     * signal).
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock, [&] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        return item;
    }

    /** Stop admissions and wake every blocked consumer; already-
     *  queued items still drain. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    std::size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return highWater_;
    }

    std::size_t capacity() const { return cap_; }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::deque<T> q_;
    const std::size_t cap_;
    std::size_t highWater_ = 0;
    bool closed_ = false;
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_REQUEST_QUEUE_HH
