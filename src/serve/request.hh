/**
 * @file
 * Request/response records of the snapserve query-serving engine.
 *
 * A request is one SNAP program to execute against the shared
 * knowledge base.  Stateless requests (empty sessionId) run against
 * cleared marker state so the answer — results *and* simulated
 * wallTicks — depends only on the program, never on which worker
 * serves it or what ran before.  Session requests carry marker state
 * across a session's queries (see serve/session_store.hh) and are
 * executed in submission order.
 */

#ifndef SNAP_SERVE_REQUEST_HH
#define SNAP_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/program.hh"
#include "runtime/results.hh"

namespace snap
{
namespace serve
{

/** Terminal state of one request. */
enum class RequestStatus
{
    /** Executed; results are valid. */
    Ok,
    /** Refused at admission: the bounded queue was full (back-
     *  pressure) or the engine was shutting down. */
    Rejected,
    /** Deadline expired before execution started; never ran. */
    TimedOut,
};

const char *requestStatusName(RequestStatus s);

/**
 * Deterministic per-request seed: splitmix64 over the engine base
 * seed and the request id.  Reproducible regardless of submission
 * threading or worker scheduling, so any stochastic choice keyed on
 * it (e.g. a load generator picking query start nodes) replays
 * identically.
 */
std::uint64_t requestSeed(std::uint64_t base_seed,
                          std::uint64_t request_id);

/** One query submitted to the engine. */
struct Request
{
    /** Assigned by the engine at admission (submission order). */
    std::uint64_t id = 0;
    /** Empty = stateless; otherwise queries with the same id share
     *  marker state and execute in submission order. */
    std::string sessionId;
    /** The program to execute (pre-assembled; assembly mutates the
     *  SemanticNetwork symbol tables and is therefore done on the
     *  submission side, not by workers). */
    Program prog;
    /**
     * Queue-wait deadline in host milliseconds from submission;
     * 0 = use the engine default (which may also be 0 = none).  A
     * request whose deadline passes before execution starts is
     * answered TimedOut without running; execution itself is never
     * preempted.
     */
    double timeoutMs = 0.0;
    /** Per-request seed; 0 = derive via requestSeed() at admission. */
    std::uint64_t rngSeed = 0;
};

/** The engine's answer to one request. */
struct Response
{
    std::uint64_t id = 0;
    RequestStatus status = RequestStatus::Ok;
    /** Retrieval results in program order (status Ok only). */
    ResultSet results;
    /** Simulated execution time on the SNAP-1 replica. */
    Tick wallTicks = 0;
    /** Seed the request ran under (echoed for reproduction). */
    std::uint64_t rngSeed = 0;
    /** Host milliseconds spent queued (admission to execution). */
    double queueMs = 0.0;
    /** Host milliseconds spent executing on the replica. */
    double serviceMs = 0.0;
    /** Worker replica that served the request. */
    std::uint32_t worker = 0;

    double wallUs() const { return ticksToUs(wallTicks); }
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_REQUEST_HH
