/**
 * @file
 * Request/response records of the snapserve query-serving engine.
 *
 * A request is one SNAP program to execute against the shared
 * knowledge base.  Stateless requests (empty sessionId) run against
 * cleared marker state so the answer — results *and* simulated
 * wallTicks — depends only on the program, never on which worker
 * serves it or what ran before.  Session requests carry marker state
 * across a session's queries (see serve/session_store.hh) and are
 * executed in submission order.
 */

#ifndef SNAP_SERVE_REQUEST_HH
#define SNAP_SERVE_REQUEST_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "runtime/results.hh"

namespace snap
{
namespace serve
{

/** Terminal state of one request. */
enum class RequestStatus
{
    /** Executed; results are valid. */
    Ok,
    /** Refused at admission: the bounded queue was full (back-
     *  pressure) or the engine was shutting down. */
    Rejected,
    /** Deadline expired before execution started; never ran. */
    TimedOut,
    /**
     * Executed, but every attempt (initial + retries) tripped fault
     * detection — a wedge, a watchdog abort, or an integrity-check
     * failure.  No possibly-corrupt results are ever attached; the
     * results field is empty.
     */
    Failed,
    /**
     * Force-failed by the shutdown watchdog: the request was in
     * flight on (or queued behind) a worker that never drained
     * within the hung-worker grace period.  It may or may not have
     * partially executed; no results are attached.
     */
    Hung,
};

const char *requestStatusName(RequestStatus s);

/**
 * Deterministic per-request seed: splitmix64 over the engine base
 * seed and the request id.  Reproducible regardless of submission
 * threading or worker scheduling, so any stochastic choice keyed on
 * it (e.g. a load generator picking query start nodes) replays
 * identically.
 */
std::uint64_t requestSeed(std::uint64_t base_seed,
                          std::uint64_t request_id);

/** One query submitted to the engine. */
struct Request
{
    /** Assigned by the engine at admission (submission order). */
    std::uint64_t id = 0;
    /** Empty = stateless; otherwise queries with the same id share
     *  marker state and execute in submission order. */
    std::string sessionId;
    /** The program to execute (pre-assembled; assembly mutates the
     *  SemanticNetwork symbol tables and is therefore done on the
     *  submission side, not by workers). */
    Program prog;
    /**
     * Queue-wait deadline in host milliseconds from submission;
     * 0 = use the engine default (which may also be 0 = none).  A
     * request whose deadline passes before execution starts is
     * answered TimedOut without running; execution itself is never
     * preempted.
     */
    double timeoutMs = 0.0;
    /** Per-request seed; 0 = derive via requestSeed() at admission. */
    std::uint64_t rngSeed = 0;
    /** Inbound distributed-trace context (shard mode): the fleet
     *  trace id and the router attempt span this execution belongs
     *  to.  0/false outside a sampled fleet request; never affects
     *  execution, only what the serve spans are stamped with. */
    std::uint64_t traceId = 0;
    std::uint64_t traceParent = 0;
    bool traceSampled = false;
};

/** The engine's answer to one request. */
struct Response
{
    std::uint64_t id = 0;
    RequestStatus status = RequestStatus::Ok;
    /** Retrieval results in program order (status Ok only). */
    ResultSet results;
    /** Simulated execution time on the SNAP-1 replica. */
    Tick wallTicks = 0;
    /** Seed the request ran under (echoed for reproduction). */
    std::uint64_t rngSeed = 0;
    /** Host milliseconds spent queued (admission to execution). */
    double queueMs = 0.0;
    /** Host milliseconds spent executing on the replica. */
    double serviceMs = 0.0;
    /** Worker replica that served the request. */
    std::uint32_t worker = 0;
    /** Lanes in the batch this request was served in (1 = solo). */
    std::uint32_t batchLanes = 1;
    /** Re-executions needed after detected faults (0 = clean first
     *  try).  Ok with retries > 0 means the engine recovered. */
    std::uint32_t retries = 0;
    /** At least one attempt tripped fault detection. */
    bool faultDetected = false;

    double wallUs() const { return ticksToUs(wallTicks); }
};

/**
 * In-place completion slot: the zero-allocation alternative to the
 * future returned by ServeEngine::submit(Request).
 *
 * std::promise allocates its shared state on every submission; a
 * caller that instead owns a ResponseSlot (stack or pre-allocated
 * pool) and submits via submit(req, slot) keeps the whole admission
 * path allocation-free — the property the host-perf harness asserts.
 *
 * One outstanding request per slot: submit() arms it, deliver() (the
 * engine) publishes the response, wait() blocks for and consumes it.
 * Reusable for the next request after wait() returns.
 */
class ResponseSlot
{
  public:
    ResponseSlot() = default;
    ResponseSlot(const ResponseSlot &) = delete;
    ResponseSlot &operator=(const ResponseSlot &) = delete;

    /** Arm for one request (engine calls this at submission). */
    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ready_ = false;
    }

    /** Publish the response and wake the waiter. */
    void
    deliver(Response &&resp)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            snap_assert(!ready_, "ResponseSlot delivered twice");
            resp_ = std::move(resp);
            ready_ = true;
        }
        cv_.notify_all();
    }

    /** Block until delivered; consumes the response (the slot can be
     *  reused for the next submission afterwards). */
    Response
    wait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return ready_; });
        ready_ = false;
        return std::move(resp_);
    }

    bool
    ready() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return ready_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool ready_ = false;
    Response resp_;
};

} // namespace serve
} // namespace snap

#endif // SNAP_SERVE_REQUEST_HH
