/**
 * @file
 * Streaming .snapkb text generators.
 *
 * The in-memory generators in workload/kb_gen build a SemanticNetwork
 * and hand it to saveNetwork(); that materializes every node, link,
 * and name before the first byte is written, which stops working at
 * the million-node KBs the sharded serving layer targets (and which
 * capacity::maxNodes would reject anyway).  These functions emit the
 * identical byte stream directly — node lines, then per-source link
 * lines in the same insertion order kb_gen would have produced — so
 *
 *     streamTreeKb(n, b, os)  ==  saveNetwork(makeTreeKb(n, b), os)
 *
 * byte for byte whenever n fits in memory (a unit test holds the
 * generators to this), while arbitrarily large n streams in O(1)
 * memory.
 */

#ifndef SNAP_WORKLOAD_KB_STREAM_HH
#define SNAP_WORKLOAD_KB_STREAM_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace snap
{

/** Stream the byte-identical text form of makeTreeKb(). */
void streamTreeKb(std::uint64_t num_nodes, std::uint32_t branching,
                  std::ostream &os);

/** Stream the byte-identical text form of makeRandomKb().  Replays
 *  the same seeded Rng call sequence, so the emitted links match the
 *  in-memory generator draw for draw. */
void streamRandomKb(std::uint64_t num_nodes, double avg_fanout,
                    std::uint32_t num_rel_types, std::uint64_t seed,
                    std::ostream &os);

/** Stream the byte-identical text form of makeChainKb(). */
void streamChainKb(std::uint64_t length, std::ostream &os,
                   const std::string &rel = "next",
                   float weight = 1.0f);

} // namespace snap

#endif // SNAP_WORKLOAD_KB_STREAM_HH
