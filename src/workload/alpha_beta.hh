/**
 * @file
 * Workloads with controllable α- and β-parallelism.
 *
 * α (intra-propagation parallelism) is "the number of nodes activated
 * simultaneously by a propagate instruction"; β (inter-propagation
 * parallelism) is "the number of overlapped propagation statements"
 * (paper §II-C).  These generators produce knowledge bases and SNAP
 * programs where both are exact, explicit knobs — the inputs of the
 * speedup studies in Figs. 16 and 17.
 */

#ifndef SNAP_WORKLOAD_ALPHA_BETA_HH
#define SNAP_WORKLOAD_ALPHA_BETA_HH

#include <cstdint>

#include "isa/program.hh"
#include "kb/semantic_network.hh"

namespace snap
{

/** A generated (network, program) pair. */
struct Workload
{
    SemanticNetwork net;
    Program prog;
};

/**
 * α-parallelism workload: a knowledge base of @p num_nodes random
 * nodes where exactly @p alpha source nodes carry the color `source`.
 * The program runs @p rounds rounds of {SEARCH-COLOR; PROPAGATE a
 * @p depth-step rule; BARRIER; CLEAR}.  Every PROPAGATE has exactly
 * α source activations.
 */
Workload makeAlphaWorkload(std::uint32_t num_nodes,
                           std::uint32_t alpha, std::uint32_t depth,
                           std::uint32_t rounds, std::uint64_t seed);

/**
 * β-parallelism workload: @p beta mutually independent PROPAGATEs
 * (disjoint relation chains, disjoint markers) issued back to back
 * between one pair of barriers, repeated @p rounds times.  With
 * @p overlap false, a barrier separates every propagate instead —
 * the β=1 serialization used as the comparison point.
 *
 * β is capped by the architectural marker budget (the program needs
 * 2β complex markers).
 */
Workload makeBetaWorkload(std::uint32_t nodes_per_chain,
                          std::uint32_t beta, std::uint32_t alpha,
                          std::uint32_t rounds, bool overlap,
                          std::uint64_t seed);

/**
 * Measured β statistics of a program: for every barrier epoch, the
 * number of PROPAGATE instructions it contains (the overlappable
 * window).  Used by the β-analysis experiment reproducing the
 * PASS/DMSNAP numbers of §II-C.
 */
struct BetaStats
{
    double betaMin = 0;
    double betaMax = 0;
    double betaAvg = 0;
    std::uint32_t epochs = 0;
};

BetaStats analyzeBeta(const Program &prog);

} // namespace snap

#endif // SNAP_WORKLOAD_ALPHA_BETA_HH
