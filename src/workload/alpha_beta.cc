#include "workload/alpha_beta.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace snap
{

Workload
makeAlphaWorkload(std::uint32_t num_nodes, std::uint32_t alpha,
                  std::uint32_t depth, std::uint32_t rounds,
                  std::uint64_t seed)
{
    snap_assert(alpha >= 1 && depth >= 1 && rounds >= 1,
                "makeAlphaWorkload(%u,%u,%u)", alpha, depth, rounds);
    std::uint32_t needed = alpha * (depth + 1);
    snap_assert(num_nodes >= needed,
                "alpha workload needs %u nodes, got %u", needed,
                num_nodes);

    Workload w;
    SemanticNetwork &net = w.net;

    // α disjoint chains source -> c1 -> ... -> c_depth, so every
    // PROPAGATE does exactly alpha * depth traversals over depth
    // levels with no work collapsing between sources.
    Color src_color = net.colorNames().intern("source");
    RelationType hop = net.relation("hop");
    for (std::uint32_t i = 0; i < alpha; ++i) {
        NodeId prev = net.addNode("s" + std::to_string(i), src_color);
        for (std::uint32_t d = 1; d <= depth; ++d) {
            NodeId next = net.addNode(
                "c" + std::to_string(i) + "_" + std::to_string(d));
            net.addLink(prev, hop, next, 1.0f);
            prev = next;
        }
    }
    // Filler nodes so the knowledge-base size is the requested one
    // (status-table scans cover them).
    Rng rng(seed);
    for (std::uint32_t i = needed; i < num_nodes; ++i)
        net.addNode("f" + std::to_string(i));

    PropRule rule = PropRule::chain(hop);
    rule.maxSteps = depth;
    RuleId rid = w.prog.addRule(std::move(rule));

    MarkerId m_src = 0;
    MarkerId m_dst = 1;
    for (std::uint32_t r = 0; r < rounds; ++r) {
        w.prog.append(
            Instruction::searchColor(src_color, m_src, 0.0f));
        w.prog.append(Instruction::propagate(m_src, m_dst, rid,
                                             MarkerFunc::AddWeight));
        w.prog.append(Instruction::barrier());
        w.prog.append(Instruction::clearMarker(m_src));
        w.prog.append(Instruction::clearMarker(m_dst));
        // Close the epoch before the next round re-propagates into
        // the cleared markers (backward-hazard discipline).
        w.prog.append(Instruction::barrier());
    }
    return w;
}

Workload
makeBetaWorkload(std::uint32_t nodes_per_chain, std::uint32_t beta,
                 std::uint32_t alpha, std::uint32_t rounds,
                 bool overlap, std::uint64_t seed)
{
    snap_assert(beta >= 1 &&
                2 * beta <= capacity::numComplexMarkers,
                "beta %u exceeds the marker budget", beta);
    snap_assert(nodes_per_chain >= 2, "chain of %u", nodes_per_chain);
    (void)seed;

    Workload w;
    SemanticNetwork &net = w.net;

    std::uint32_t depth = nodes_per_chain - 1;
    std::vector<RuleId> rules;
    std::vector<Color> colors;

    // β independent groups: separate relations, colors, and markers,
    // so the propagates have no data dependencies (the paper's
    // overlap condition between L4 and L5).
    for (std::uint32_t j = 0; j < beta; ++j) {
        RelationType hop =
            net.relation("hop" + std::to_string(j));
        Color c = net.colorNames().intern("src" + std::to_string(j));
        colors.push_back(c);
        for (std::uint32_t i = 0; i < alpha; ++i) {
            NodeId prev = net.addNode(
                "g" + std::to_string(j) + "s" + std::to_string(i), c);
            for (std::uint32_t d = 1; d <= depth; ++d) {
                NodeId next = net.addNode(
                    "g" + std::to_string(j) + "c" +
                    std::to_string(i) + "_" + std::to_string(d));
                net.addLink(prev, hop, next, 1.0f);
                prev = next;
            }
        }
        PropRule rule = PropRule::chain(hop);
        rule.maxSteps = depth;
        rules.push_back(w.prog.addRule(std::move(rule)));
    }

    for (std::uint32_t r = 0; r < rounds; ++r) {
        for (std::uint32_t j = 0; j < beta; ++j) {
            auto m_src = static_cast<MarkerId>(2 * j);
            w.prog.append(
                Instruction::searchColor(colors[j], m_src, 0.0f));
        }
        for (std::uint32_t j = 0; j < beta; ++j) {
            auto m_src = static_cast<MarkerId>(2 * j);
            auto m_dst = static_cast<MarkerId>(2 * j + 1);
            w.prog.append(Instruction::propagate(
                m_src, m_dst, rules[j], MarkerFunc::AddWeight));
            if (!overlap)
                w.prog.append(Instruction::barrier());
        }
        if (overlap)
            w.prog.append(Instruction::barrier());
        for (std::uint32_t j = 0; j < 2 * beta; ++j) {
            w.prog.append(Instruction::clearMarker(
                static_cast<MarkerId>(j)));
        }
        w.prog.append(Instruction::barrier());
    }
    return w;
}

BetaStats
analyzeBeta(const Program &prog)
{
    BetaStats st;
    std::vector<std::uint32_t> per_epoch;
    std::uint32_t current = 0;
    for (const Instruction &i : prog.instructions()) {
        if (i.op == Opcode::Propagate) {
            ++current;
        } else if (i.op == Opcode::Barrier) {
            if (current > 0)
                per_epoch.push_back(current);
            current = 0;
        }
    }
    if (current > 0)
        per_epoch.push_back(current);

    if (per_epoch.empty())
        return st;
    st.epochs = static_cast<std::uint32_t>(per_epoch.size());
    st.betaMin = *std::min_element(per_epoch.begin(),
                                   per_epoch.end());
    st.betaMax = *std::max_element(per_epoch.begin(),
                                   per_epoch.end());
    double sum = 0;
    for (auto v : per_epoch)
        sum += v;
    st.betaAvg = sum / per_epoch.size();
    return st;
}

} // namespace snap
