#include "workload/kb_stream.hh"

#include <ostream>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "common/types.hh"

namespace snap
{

namespace
{

/** Weight text exactly as saveNetwork() prints it. */
std::string
weightText(float w)
{
    return formatString("%.9g", static_cast<double>(w));
}

} // namespace

void
streamTreeKb(std::uint64_t num_nodes, std::uint32_t branching,
             std::ostream &os)
{
    snap_assert(num_nodes >= 1 && branching >= 1,
                "streamTreeKb(%llu,%u)",
                static_cast<unsigned long long>(num_nodes), branching);
    os << "snapkb 1\n";
    for (std::uint64_t i = 0; i < num_nodes; ++i) {
        os << "node n" << i << " " << (i == 0 ? "root" : "concept")
           << "\n";
    }
    // saveNetwork() walks sources in id order and prints each node's
    // links in insertion order; makeTreeKb inserts node i's is-a link
    // at iteration i and parent->child includes links at each child's
    // iteration, so per source: is-a first, then includes by child id.
    for (std::uint64_t i = 0; i < num_nodes; ++i) {
        if (i > 0)
            os << "link n" << i << " is-a n" << (i - 1) / branching
               << " 1\n";
        const std::uint64_t first = i * branching + 1;
        for (std::uint64_t c = first;
             c < first + branching && c < num_nodes; ++c)
            os << "link n" << i << " includes n" << c << " 1\n";
    }
}

void
streamRandomKb(std::uint64_t num_nodes, double avg_fanout,
               std::uint32_t num_rel_types, std::uint64_t seed,
               std::ostream &os)
{
    snap_assert(num_nodes >= 2 && num_rel_types >= 1,
                "streamRandomKb(%llu,%u)",
                static_cast<unsigned long long>(num_nodes),
                num_rel_types);
    os << "snapkb 1\n";
    for (std::uint64_t i = 0; i < num_nodes; ++i)
        os << "node n" << i << " concept\n";

    // Replay makeRandomKb's Rng draw sequence exactly; every link is
    // emitted the moment it would have been inserted, which is also
    // its saveNetwork() output position (one source at a time).
    Rng rng(seed);
    for (std::uint64_t u = 0; u < num_nodes; ++u) {
        std::uint32_t fan =
            rng.truncExp(avg_fanout, capacity::relationSlotsPerNode);
        for (std::uint32_t k = 0; k < fan; ++k) {
            std::uint64_t v = rng.below(num_nodes);
            if (v == u)
                v = (v + 1) % num_nodes;
            std::uint64_t rel = rng.below(num_rel_types);
            float w = static_cast<float>(rng.uniform(0.1, 2.0));
            os << "link n" << u << " r" << rel << " n" << v << " "
               << weightText(w) << "\n";
        }
    }
}

void
streamChainKb(std::uint64_t length, std::ostream &os,
              const std::string &rel, float weight)
{
    snap_assert(length >= 1, "streamChainKb(%llu)",
                static_cast<unsigned long long>(length));
    os << "snapkb 1\n";
    for (std::uint64_t i = 0; i < length; ++i)
        os << "node n" << i << " concept\n";
    const std::string w = weightText(weight);
    for (std::uint64_t i = 0; i + 1 < length; ++i)
        os << "link n" << i << " " << rel << " n" << (i + 1) << " "
           << w << "\n";
}

} // namespace snap
