#include "workload/kb_gen.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strutil.hh"

namespace snap
{

SemanticNetwork
makeTreeKb(std::uint32_t num_nodes, std::uint32_t branching)
{
    snap_assert(num_nodes >= 1 && branching >= 1,
                "makeTreeKb(%u,%u)", num_nodes, branching);
    SemanticNetwork net;
    for (std::uint32_t i = 0; i < num_nodes; ++i)
        net.addNode("n" + std::to_string(i),
                    i == 0 ? "root" : "concept");
    RelationType isa = net.relation("is-a");
    RelationType inc = net.relation("includes");
    for (std::uint32_t i = 1; i < num_nodes; ++i) {
        std::uint32_t parent = (i - 1) / branching;
        net.addLink(i, isa, parent, 1.0f);
        net.addLink(parent, inc, i, 1.0f);
    }
    return net;
}

std::uint32_t
treeDepth(std::uint32_t num_nodes, std::uint32_t branching)
{
    std::uint32_t depth = 0;
    std::uint32_t i = num_nodes - 1;  // deepest node
    while (i != 0) {
        i = (i - 1) / branching;
        ++depth;
    }
    return depth;
}

SemanticNetwork
makeRandomKb(std::uint32_t num_nodes, double avg_fanout,
             std::uint32_t num_rel_types, std::uint64_t seed)
{
    snap_assert(num_nodes >= 2 && num_rel_types >= 1,
                "makeRandomKb(%u,%u)", num_nodes, num_rel_types);
    SemanticNetwork net;
    for (std::uint32_t i = 0; i < num_nodes; ++i)
        net.addNode("n" + std::to_string(i));

    std::vector<RelationType> rels;
    for (std::uint32_t r = 0; r < num_rel_types; ++r)
        rels.push_back(net.relation("r" + std::to_string(r)));

    Rng rng(seed);
    for (NodeId u = 0; u < num_nodes; ++u) {
        std::uint32_t fan =
            rng.truncExp(avg_fanout, capacity::relationSlotsPerNode);
        for (std::uint32_t k = 0; k < fan; ++k) {
            NodeId v = static_cast<NodeId>(rng.below(num_nodes));
            if (v == u)
                v = (v + 1) % num_nodes;
            RelationType rel = rels[rng.below(rels.size())];
            float w = static_cast<float>(rng.uniform(0.1, 2.0));
            net.addLink(u, rel, v, w);
        }
    }
    return net;
}

SemanticNetwork
makeChainKb(std::uint32_t length, const std::string &rel, float weight)
{
    snap_assert(length >= 1, "makeChainKb(%u)", length);
    SemanticNetwork net;
    for (std::uint32_t i = 0; i < length; ++i)
        net.addNode("n" + std::to_string(i));
    RelationType r = net.relation(rel);
    for (std::uint32_t i = 0; i + 1 < length; ++i)
        net.addLink(i, r, i + 1, weight);
    return net;
}

SemanticNetwork
makeStarKb(std::uint32_t spokes, const std::string &rel)
{
    SemanticNetwork net;
    net.addNode("hub");
    RelationType r = net.relation(rel);
    for (std::uint32_t i = 0; i < spokes; ++i) {
        NodeId leaf = net.addNode("leaf" + std::to_string(i));
        net.addLink(0, r, leaf, 1.0f);
    }
    return net;
}

} // namespace snap
