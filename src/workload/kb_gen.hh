/**
 * @file
 * Synthetic knowledge-base generators.
 *
 * Deterministic (seeded) generators for the network shapes the
 * evaluation sweeps over: concept-type hierarchies (trees) for the
 * inheritance experiment (Fig. 15), random graphs with controlled
 * fanout for the α/β speedup studies (Figs. 16/17), and simple
 * chains/grids for unit tests.
 */

#ifndef SNAP_WORKLOAD_KB_GEN_HH
#define SNAP_WORKLOAD_KB_GEN_HH

#include <cstdint>

#include "kb/semantic_network.hh"

namespace snap
{

/**
 * Concept-type hierarchy for property inheritance: node 0 is the
 * root; every other node has one parent.  Links: child --is-a-->
 * parent (weight 1) and parent --includes--> child (weight 1), so
 * inheritance propagates root-to-leaf along `includes`.
 *
 * @param num_nodes total nodes (>= 1)
 * @param branching children per parent
 */
SemanticNetwork makeTreeKb(std::uint32_t num_nodes,
                           std::uint32_t branching = 4);

/** Depth (root to deepest leaf, in links) of a makeTreeKb network. */
std::uint32_t treeDepth(std::uint32_t num_nodes,
                        std::uint32_t branching = 4);

/**
 * Random directed graph: each node gets ~avg_fanout outgoing links
 * of relation types r0..r{num_rel_types-1} with weights in [0.1, 2).
 */
SemanticNetwork makeRandomKb(std::uint32_t num_nodes,
                             double avg_fanout,
                             std::uint32_t num_rel_types,
                             std::uint64_t seed);

/** Straight chain n0 -next-> n1 -next-> ... (unit tests). */
SemanticNetwork makeChainKb(std::uint32_t length,
                            const std::string &rel = "next",
                            float weight = 1.0f);

/**
 * Star: one hub with @p spokes children via `spoke` links — a
 * fanout > 16 subnode-splitting stressor.
 */
SemanticNetwork makeStarKb(std::uint32_t spokes,
                           const std::string &rel = "spoke");

} // namespace snap

#endif // SNAP_WORKLOAD_KB_GEN_HH
