/**
 * @file
 * snapvm — run a SNAP assembler program against a knowledge base on
 * the simulated SNAP-1 machine.
 *
 *   snapvm <kb.snapkb> <program.snap> [options]
 *     --clusters N          array size (1..32, default 16)
 *     --partition seq|rr|sem  allocation strategy (default sem)
 *     --mus N               marker units per cluster (default: the
 *                           prototype's 3/2 mix)
 *     --threads N           host worker threads sharding the
 *                           cluster array (1..64, default 1)
 *     --relax-capacity      lift the 1024-nodes-per-cluster limit
 *     --stats               print the full execution breakdown
 *     --disasm              print the program before running
 *     --perf-csv FILE       dump performance-network records as CSV
 *     --fault-seed N        seed for deterministic fault injection
 *     --fault-rate X        inject ICN message faults at rate X
 *     --fault-spec FILE     load a full fault plan from JSON
 *     --trace-out FILE      write a Chrome trace-event JSON of the
 *                           run (load in Perfetto / chrome://tracing)
 *     --trace-categories L  comma list of trace categories (default
 *                           all; see docs/observability.md)
 *     --metrics-out FILE    export the unified metrics registry
 *     --metrics-format F    json|prometheus (default json)
 *
 * Exit status: 0 on success, 1 on user error (bad input files or
 * configuration, and runs rejected by fault detection), 2 on a
 * command-line usage error (unknown arguments or out-of-range flag
 * values).  This convention is shared by snapsh, snapkb-gen, and
 * snapserve.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/machine.hh"
#include "common/logging.hh"
#include "common/metrics_registry.hh"
#include "common/strutil.hh"
#include "fault/fault_plan.hh"
#include "trace/trace.hh"
#include "isa/assembler.hh"
#include "kb/kb_io.hh"
#include "runtime/validate.hh"

using namespace snap;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: snapvm <kb.snapkb> <program.snap> [options]\n"
        "  --clusters N           array size (1..32, default 16)\n"
        "  --partition seq|rr|sem allocation (default sem)\n"
        "  --mus N                marker units per cluster\n"
        "  --threads N            host worker threads (1..64, default 1)\n"
        "  --relax-capacity       lift the 1024 nodes/cluster cap\n"
        "  --stats                print the execution breakdown\n"
        "  --disasm               print the program first\n"
        "  --perf-csv FILE        dump performance-network records\n"
        "  --fault-seed N         deterministic fault-injection seed\n"
        "  --fault-rate X         ICN message-fault rate (0..1)\n"
        "  --fault-spec FILE      full fault plan from JSON\n"
        "  --trace-out FILE       write Chrome trace-event JSON\n"
        "  --trace-categories L   trace category list (default all)\n"
        "  --metrics-out FILE     export the unified metrics "
        "registry\n"
        "  --metrics-format F     json|prometheus (default json)\n");
    std::exit(2);
}

/** Out-of-range or malformed flag value: a usage error (exit 2),
 *  distinct from the snap_fatal path (exit 1, bad input files). */
[[noreturn]] void
usageError(const char *msg)
{
    std::fprintf(stderr, "snapvm: %s\n", msg);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string kb_path = argv[1];
    std::string prog_path = argv[2];

    MachineConfig cfg = MachineConfig::paperSetup();
    bool stats = false;
    bool disasm = false;
    std::string perf_csv;
    std::uint64_t fault_seed = 1;
    bool fault_seed_set = false;
    double fault_rate = 0.0;
    std::string fault_spec_path;
    std::string trace_out;
    std::string trace_categories = "all";
    std::string metrics_out;
    std::string metrics_format = "json";

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--clusters") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 32)
                usageError("--clusters must be 1..32");
            cfg.numClusters = static_cast<std::uint32_t>(n);
        } else if (arg == "--partition") {
            std::string p = next();
            if (p == "seq")
                cfg.partition = PartitionStrategy::Sequential;
            else if (p == "rr")
                cfg.partition = PartitionStrategy::RoundRobin;
            else if (p == "sem")
                cfg.partition = PartitionStrategy::Semantic;
            else
                usageError("--partition must be seq, rr, or sem");
        } else if (arg == "--mus") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 3)
                usageError("--mus must be 1..3");
            cfg.musPerCluster.assign(32,
                                     static_cast<std::uint32_t>(n));
        } else if (arg == "--threads") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 64)
                usageError("--threads must be 1..64");
            cfg.hostThreads = static_cast<std::uint32_t>(n);
        } else if (arg == "--fault-seed") {
            long long n;
            if (!parseInt(next(), n))
                usageError("--fault-seed must be an integer");
            fault_seed = static_cast<std::uint64_t>(n);
            fault_seed_set = true;
        } else if (arg == "--fault-rate") {
            double x;
            if (!parseDouble(next(), x) || x < 0.0 || x > 1.0)
                usageError("--fault-rate must be 0..1");
            fault_rate = x;
        } else if (arg == "--fault-spec") {
            fault_spec_path = next();
        } else if (arg == "--relax-capacity") {
            cfg.maxNodesPerCluster = capacity::maxNodes;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--disasm") {
            disasm = true;
        } else if (arg == "--perf-csv") {
            perf_csv = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-categories") {
            trace_categories = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--metrics-format") {
            metrics_format = next();
            if (metrics_format != "json" &&
                metrics_format != "prometheus")
                usageError("--metrics-format must be json or "
                           "prometheus");
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }

    SemanticNetwork net = loadNetworkFile(kb_path);
    std::printf("loaded %s: %u nodes, %llu links\n", kb_path.c_str(),
                net.numNodes(),
                static_cast<unsigned long long>(net.numLinks()));

    Program prog = assembleFile(prog_path, net);
    std::printf("assembled %s: %zu instructions, %u rules\n",
                prog_path.c_str(), prog.size(), prog.rules().size());
    if (disasm)
        std::printf("\n%s\n", prog.toString().c_str());

    auto violations = validateProgram(prog);
    for (const auto &v : violations)
        snap_warn("%s", v.message.c_str());
    if (!violations.empty()) {
        snap_warn("program has %zu barrier-discipline hazard(s); "
                  "results may be timing dependent",
                  violations.size());
    }

    // Optional deterministic fault injection: a JSON plan, or the
    // canonical ICN message-fault mix at --fault-rate.
    FaultSpec fspec;
    if (!fault_spec_path.empty()) {
        std::ifstream is(fault_spec_path);
        if (!is)
            snap_fatal("cannot open fault spec '%s'",
                       fault_spec_path.c_str());
        std::ostringstream buf;
        buf << is.rdbuf();
        if (!FaultSpec::fromJson(buf.str(), fspec))
            snap_fatal("cannot parse fault spec '%s'",
                       fault_spec_path.c_str());
        if (fault_seed_set)
            fspec.seed = fault_seed;
    } else if (fault_rate > 0.0) {
        fspec = FaultSpec::messageFaults(fault_seed, fault_rate);
    }

    // Tracing must be armed before the machine is built: track names
    // are registered at wire-up only while tracing is active.
    if (!trace_out.empty()) {
        std::uint32_t mask = 0;
        if (!trace::parseCategories(trace_categories, mask) ||
            mask == 0) {
            usageError("--trace-categories must be a comma list "
                       "from: all,instr,cluster,icn,sync,sem,fault,"
                       "machine,serve");
        }
        trace::start(mask);
        trace::nameProcess(trace::kHostPid, "snapvm host (ns)");
        trace::nameTrack(trace::kHostPid, trace::kTidAdmission,
                         "driver");
    }

    SnapMachine machine(cfg);
    machine.loadKb(net);
    if (fspec.any()) {
        machine.installFaults(fspec);
        machine.setIntegrityShadow(&net);
        std::printf("fault injection armed (seed %llu)\n",
                    static_cast<unsigned long long>(fspec.seed));
    }
    std::printf("machine: %u clusters, %u processors, %s "
                "allocation\n\n", cfg.numClusters,
                cfg.numProcessors(),
                partitionStrategyName(cfg.partition));

    // Flow-link the host-side driver span to the simulated run so
    // even a snapvm trace carries at least one 's'/'f' pair.
    std::uint64_t flow_id = 0;
    std::uint64_t run_ns = 0;
    if (SNAP_TRACE_ON(trace::kMachine)) {
        flow_id = trace::nextFlowId();
        run_ns = trace::hostNowNs();
        trace::hostFlowStart(trace::kMachine, trace::kTidAdmission,
                             flow_id, run_ns);
        trace::armFlow(flow_id);
    }
    RunResult run = machine.run(prog);
    if (flow_id != 0) {
        trace::hostSpan(trace::kMachine, trace::kTidAdmission, "run",
                        run_ns, trace::hostNowNs());
    }

    auto writeTrace = [&]() {
        if (trace_out.empty())
            return;
        trace::stop();
        if (trace::writeJsonFile(trace_out)) {
            std::printf("wrote trace to %s (%llu events dropped)\n",
                        trace_out.c_str(),
                        static_cast<unsigned long long>(
                            trace::droppedCount()));
        }
    };

    if (fspec.any()) {
        std::printf("fault report: %s\n\n",
                    run.fault.summary().c_str());
        if (!run.fault.ok()) {
            writeTrace();
            // Detection turned a possibly-wrong answer into a typed
            // error; refuse to print results.
            std::fprintf(stderr,
                         "run rejected by fault detection (re-run "
                         "with a different --fault-seed to vary the "
                         "injection)\n");
            return 1;
        }
    }

    int idx = 0;
    for (const CollectResult &res : run.results) {
        std::printf("collect #%d (%s):\n", idx++,
                    opcodeName(res.op));
        for (const CollectedNode &c : res.nodes) {
            std::printf("  %-24s value %-10.4f origin %s\n",
                        net.nodeName(c.node).c_str(), c.value,
                        c.origin == invalidNode
                            ? "-"
                            : net.nodeName(c.origin).c_str());
        }
        for (const CollectedLink &l : res.links) {
            std::printf("  %s -%s-> %s (w %.4f)\n",
                        net.nodeName(l.src).c_str(),
                        net.relations().name(l.rel).c_str(),
                        net.nodeName(l.dst).c_str(), l.weight);
        }
        if (res.nodes.empty() && res.links.empty())
            std::printf("  (empty)\n");
    }

    std::printf("\nexecution time: %.3f ms (%.1f us)\n", run.wallMs(),
                run.wallUs());
    if (stats) {
        std::printf("\n%s", run.stats.summary().c_str());
        std::printf("\n%s",
                    machine.formatComponentStats().c_str());
    }

    if (!perf_csv.empty()) {
        // The instrumentation system's central FIFO, as CSV:
        // timestamped event records from every PE's serial link.
        std::FILE *f = std::fopen(perf_csv.c_str(), "w");
        if (!f)
            snap_fatal("cannot open '%s'", perf_csv.c_str());
        std::fprintf(f, "timestamp_us,pe,event,status\n");
        for (const PerfRecord &r : machine.perfNet().records()) {
            std::fprintf(f, "%.3f,%u,%u,%u\n",
                         ticksToUs(r.timestamp), r.pe,
                         static_cast<unsigned>(r.event), r.status);
        }
        std::fclose(f);
        std::printf("wrote %zu performance records to %s "
                    "(%llu dropped by busy serial ports)\n",
                    machine.perfNet().records().size(),
                    perf_csv.c_str(),
                    static_cast<unsigned long long>(
                        machine.perfNet().dropped()));
    }

    writeTrace();

    if (!metrics_out.empty()) {
        // Unified export: the run's ExecBreakdown plus the machine's
        // component stats, one registry, one format switch.
        MetricsRegistry reg;
        run.stats.exportMetrics(reg);
        machine.exportMetrics(reg);
        std::ofstream os(metrics_out);
        if (!os)
            snap_fatal("cannot open '%s' for writing",
                       metrics_out.c_str());
        if (metrics_format == "prometheus")
            reg.writePrometheus(os);
        else
            reg.writeJson(os);
        std::printf("wrote %zu metrics (%s) to %s\n", reg.size(),
                    metrics_format.c_str(), metrics_out.c_str());
    }
    return 0;
}
