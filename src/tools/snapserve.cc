/**
 * @file
 * snapserve — drive the concurrent query-serving engine from a
 * request file (see docs/serving.md for the architecture).
 *
 *   snapserve <kb.snapkb|kb.kbimg> <requests.txt> [options]
 *   snapserve <kb.snapkb|kb.kbimg> --listen <endpoint> [options]
 *     --workers N           worker replicas (default 2)
 *     --threads N           host threads per worker machine
 *     --queue N             admission queue capacity (default 256)
 *     --timeout-ms X        default per-request queue deadline
 *     --batch-lanes N       lane-batch up to N same-program stateless
 *                           queries per simulated run (1..2048,
 *                           default 1)
 *     --batch-window X      host ms to wait filling a batch
 *     --lane-backend B      lane-kernel backend: auto (default,
 *                           widest compiled + CPU-supported), scalar,
 *                           avx2, avx512.  A backend this build or
 *                           CPU lacks is a usage error (exit 2)
 *     --clusters N          replica array size (1..32, default 16)
 *     --partition seq|rr|sem  allocation strategy (default sem)
 *     --relax-capacity      lift the 1024-nodes-per-cluster limit
 *     --seed N              base of the per-request seed chain
 *     --metrics FILE        write the metrics JSON dump to FILE
 *     --metrics-format F    serve-json (default; the legacy rich
 *                           document) | json | prometheus (the
 *                           unified MetricsRegistry export covering
 *                           serving counters, aggregated execution
 *                           stats, and per-replica component stats)
 *     --trace-out FILE      write a Chrome trace-event JSON with
 *                           host request spans flow-linked to the
 *                           replicas' simulated-time machine spans
 *     --trace-categories L  comma list of trace categories (default
 *                           all; see docs/observability.md)
 *     --sessions-out DIR    checkpoint final session marker state to
 *                           DIR/<session>.snapmarkers
 *     --quiet               suppress per-request result listings
 *     --fault-seed N        seed for deterministic fault injection
 *     --fault-rate X        inject ICN message faults at rate X
 *     --fault-spec FILE     load a full fault plan from JSON
 *     --max-retries N       re-executions after a detected fault
 *     --retry-backoff X     base host ms between retries (doubling)
 *     --quarantine N        consecutive faults before a replica is
 *                           quarantined and re-stamped (0 = never)
 *     --shed-threshold N    engine-wide consecutive faults before
 *                           stateless load is shed (0 = never)
 *     --listen ENDPOINT     shard mode: serve the shard wire protocol
 *                           on "unix:/path" or "host:port" until a
 *                           Shutdown frame arrives (no request file;
 *                           see docs/sharding.md)
 *     --fleet-fault-seed N  seed for wire-layer fault injection
 *                           (shard mode only)
 *     --fleet-fault-rate X  inject wire faults on the Response path
 *                           at combined rate X, split evenly over
 *                           connection drops, truncated frames,
 *                           corrupt payloads, and slow responses
 *                           (shard mode only; chaos testing)
 *     --fleet-fault-spec F  load a full FleetFaultSpec from JSON
 *                           (shard mode only)
 *     --answers-out FILE    write the canonical answer text (status +
 *                           results by name) for diffing against a
 *                           snaprouter run over the same requests
 *
 * The knowledge base may be .snapkb text or a binary .kbimg snapshot
 * (sniffed by magic).  A .kbimg is bulk-loaded into the compiled
 * tables — replica stamping starts from the deserialized image, with
 * no re-partitioning or recompilation — and a corrupt one exits with
 * status 2 and the typed KbImgStatus name.
 *
 * Request file format (line oriented, '#' comments):
 *
 *     query <program.snap>            # stateless request
 *     session <id> <program.snap>     # request in session <id>
 *
 * Program paths are relative to the request file's directory and are
 * assembled once up front (assembly resolves symbols against the
 * knowledge base and must not race the workers).
 *
 * Exit status: 0 on success, 1 on user error (bad input files or
 * configuration), 2 on a command-line usage error (unknown arguments
 * or out-of-range flag values).  This convention is shared by snapvm,
 * snapsh, and snapkb-gen.
 */

#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arch/kb_image_io.hh"
#include "common/lane_backend.hh"
#include "common/logging.hh"
#include "common/metrics_registry.hh"
#include "common/multibitvector.hh"
#include "common/strutil.hh"
#include "fault/fault_plan.hh"
#include "trace/trace.hh"
#include "isa/assembler.hh"
#include "kb/kb_io.hh"
#include "runtime/snapshot.hh"
#include "runtime/validate.hh"
#include "serve/engine.hh"
#include "shard/answers.hh"
#include "shard/shard_server.hh"

using namespace snap;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: snapserve <kb.snapkb|kb.kbimg> <requests.txt> "
        "[options]\n"
        "       snapserve <kb.snapkb|kb.kbimg> --listen <endpoint> "
        "[options]\n"
        "  --workers N            worker replicas (default 2)\n"
        "  --threads N            host threads per worker machine "
        "(1..64, default 1)\n"
        "  --queue N              admission queue capacity "
        "(default 256)\n"
        "  --timeout-ms X         default queue deadline, host ms\n"
        "  --batch-lanes N        lane-batch same-program queries "
        "(1..2048)\n"
        "  --batch-window X       host ms to wait filling a batch\n"
        "  --lane-backend B       auto|scalar|avx2|avx512 "
        "(default auto)\n"
        "  --clusters N           replica array size (1..32)\n"
        "  --partition seq|rr|sem allocation (default sem)\n"
        "  --relax-capacity       lift the 1024 nodes/cluster cap\n"
        "  --seed N               base request-seed chain\n"
        "  --metrics FILE         write metrics JSON to FILE\n"
        "  --metrics-format F     serve-json|json|prometheus\n"
        "  --trace-out FILE       write Chrome trace-event JSON\n"
        "  --trace-categories L   trace category list (default all)\n"
        "  --sessions-out DIR     checkpoint session marker state\n"
        "  --quiet                suppress per-request results\n"
        "  --fault-seed N         deterministic fault-injection seed\n"
        "  --fault-rate X         ICN message-fault rate (0..1)\n"
        "  --fault-spec FILE      full fault plan from JSON\n"
        "  --max-retries N        retries after a detected fault\n"
        "  --retry-backoff X      base retry backoff, host ms\n"
        "  --quarantine N         replica quarantine threshold\n"
        "  --shed-threshold N     fault-storm shedding threshold\n"
        "  --listen ENDPOINT      shard mode (unix:/path or "
        "host:port)\n"
        "  --fleet-fault-seed N   wire fault seed (shard mode)\n"
        "  --fleet-fault-rate X   wire fault rate 0..1 (shard mode)\n"
        "  --fleet-fault-spec F   FleetFaultSpec JSON (shard mode)\n"
        "  --answers-out FILE     write canonical answer text\n");
    std::exit(2);
}

/** Out-of-range or malformed flag value: a usage error (exit 2),
 *  distinct from the snap_fatal path (exit 1, bad input files). */
[[noreturn]] void
usageError(const char *msg)
{
    std::fprintf(stderr, "snapserve: %s\n", msg);
    std::exit(2);
}

/** One parsed request-file line. */
struct RequestSpec
{
    std::string sessionId;  // empty = stateless
    std::string progPath;
    int line = 0;
};

std::string
dirOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

std::vector<RequestSpec>
parseRequestFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        snap_fatal("cannot open request file '%s'", path.c_str());

    std::string base = dirOf(path);
    std::vector<RequestSpec> specs;
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::vector<std::string> tok = tokenize(body);
        RequestSpec spec;
        spec.line = lineno;
        if (tok.size() == 2 && tok[0] == "query") {
            spec.progPath = tok[1];
        } else if (tok.size() == 3 && tok[0] == "session") {
            spec.sessionId = tok[1];
            spec.progPath = tok[2];
        } else {
            snap_fatal("%s:%d: expected 'query <prog>' or "
                       "'session <id> <prog>', got '%s'",
                       path.c_str(), lineno, body.c_str());
        }
        if (spec.progPath[0] != '/')
            spec.progPath = base + "/" + spec.progPath;
        specs.push_back(std::move(spec));
    }
    if (specs.empty())
        snap_fatal("request file '%s' holds no requests",
                   path.c_str());
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string kb_path = argv[1];
    // The request file is positional; shard mode (--listen) has no
    // request file, so argv[2] may already be an option.
    std::string req_path;
    int opt_start = 2;
    if (argv[2][0] != '-') {
        req_path = argv[2];
        opt_start = 3;
    }

    serve::ServeConfig cfg;
    cfg.machine = MachineConfig::paperSetup();
    cfg.machine.perfNetEnabled = false;
    std::string metrics_path;
    std::string metrics_format = "serve-json";
    std::string trace_out;
    std::string trace_categories = "all";
    std::string sessions_dir;
    bool quiet = false;
    std::uint64_t fault_seed = 1;
    bool fault_seed_set = false;
    double fault_rate = 0.0;
    std::string fault_spec_path;
    std::uint64_t fleet_seed = 1;
    bool fleet_seed_set = false;
    double fleet_rate = 0.0;
    std::string fleet_spec_path;
    std::string listen_ep;
    std::string answers_path;

    for (int i = opt_start; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--workers") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 64)
                usageError("--workers must be 1..64");
            cfg.numWorkers = static_cast<std::uint32_t>(n);
        } else if (arg == "--queue") {
            long long n;
            if (!parseInt(next(), n) || n < 1)
                usageError("--queue must be >= 1");
            cfg.queueCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--timeout-ms") {
            double x;
            if (!parseDouble(next(), x) || x < 0)
                usageError("--timeout-ms must be >= 0");
            cfg.defaultTimeoutMs = x;
        } else if (arg == "--batch-lanes") {
            long long n;
            if (!parseInt(next(), n) || n < 1 ||
                n > MultiBitVector::maxLanes)
                usageError("--batch-lanes must be 1..2048");
            cfg.maxBatchLanes = static_cast<std::uint32_t>(n);
        } else if (arg == "--lane-backend") {
            LaneBackend backend;
            if (!parseLaneBackend(next(), backend))
                usageError("--lane-backend must be "
                           "auto|scalar|avx2|avx512");
            std::string err;
            if (!setLaneBackend(backend, err))
                usageError(err.c_str());
        } else if (arg == "--batch-window") {
            double x;
            if (!parseDouble(next(), x) || x < 0)
                usageError("--batch-window must be >= 0");
            cfg.batchWindowMs = x;
        } else if (arg == "--clusters") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 32)
                usageError("--clusters must be 1..32");
            cfg.machine.numClusters = static_cast<std::uint32_t>(n);
        } else if (arg == "--threads") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 64)
                usageError("--threads must be 1..64");
            cfg.machine.hostThreads = static_cast<std::uint32_t>(n);
        } else if (arg == "--partition") {
            std::string p = next();
            if (p == "seq")
                cfg.machine.partition = PartitionStrategy::Sequential;
            else if (p == "rr")
                cfg.machine.partition = PartitionStrategy::RoundRobin;
            else if (p == "sem")
                cfg.machine.partition = PartitionStrategy::Semantic;
            else
                usageError("--partition must be seq, rr, or sem");
        } else if (arg == "--relax-capacity") {
            cfg.machine.maxNodesPerCluster = capacity::maxNodes;
        } else if (arg == "--seed") {
            long long n;
            if (!parseInt(next(), n))
                usageError("--seed must be an integer");
            cfg.baseSeed = static_cast<std::uint64_t>(n);
        } else if (arg == "--fault-seed") {
            long long n;
            if (!parseInt(next(), n))
                usageError("--fault-seed must be an integer");
            fault_seed = static_cast<std::uint64_t>(n);
            fault_seed_set = true;
        } else if (arg == "--fault-rate") {
            double x;
            if (!parseDouble(next(), x) || x < 0.0 || x > 1.0)
                usageError("--fault-rate must be 0..1");
            fault_rate = x;
        } else if (arg == "--fault-spec") {
            fault_spec_path = next();
        } else if (arg == "--max-retries") {
            long long n;
            if (!parseInt(next(), n) || n < 0 || n > 100)
                usageError("--max-retries must be 0..100");
            cfg.maxRetries = static_cast<std::uint32_t>(n);
        } else if (arg == "--retry-backoff") {
            double x;
            if (!parseDouble(next(), x) || x < 0)
                usageError("--retry-backoff must be >= 0");
            cfg.retryBackoffMs = x;
        } else if (arg == "--quarantine") {
            long long n;
            if (!parseInt(next(), n) || n < 0)
                usageError("--quarantine must be >= 0");
            cfg.quarantineThreshold = static_cast<std::uint32_t>(n);
        } else if (arg == "--shed-threshold") {
            long long n;
            if (!parseInt(next(), n) || n < 0)
                usageError("--shed-threshold must be >= 0");
            cfg.shedThreshold = static_cast<std::uint32_t>(n);
        } else if (arg == "--metrics") {
            metrics_path = next();
        } else if (arg == "--metrics-format") {
            metrics_format = next();
            if (metrics_format != "serve-json" &&
                metrics_format != "json" &&
                metrics_format != "prometheus")
                usageError("--metrics-format must be serve-json, "
                           "json, or prometheus");
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-categories") {
            trace_categories = next();
        } else if (arg == "--sessions-out") {
            sessions_dir = next();
        } else if (arg == "--listen") {
            listen_ep = next();
        } else if (arg == "--fleet-fault-seed") {
            long long n;
            if (!parseInt(next(), n))
                usageError("--fleet-fault-seed must be an integer");
            fleet_seed = static_cast<std::uint64_t>(n);
            fleet_seed_set = true;
        } else if (arg == "--fleet-fault-rate") {
            double x;
            if (!parseDouble(next(), x) || x < 0.0 || x > 1.0)
                usageError("--fleet-fault-rate must be 0..1");
            fleet_rate = x;
        } else if (arg == "--fleet-fault-spec") {
            fleet_spec_path = next();
        } else if (arg == "--answers-out") {
            answers_path = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }

    if (listen_ep.empty() && req_path.empty())
        usage();
    if (listen_ep.empty() &&
        (fleet_seed_set || fleet_rate > 0.0 ||
         !fleet_spec_path.empty()))
        usageError("--fleet-fault-* flags need --listen (they "
                   "inject on the shard wire, not the engine)");

    // The KB may be .snapkb text or a binary .kbimg snapshot; sniff
    // by magic.  A corrupt snapshot is a typed rejection mapped onto
    // exit status 2 (the convention the .kbimg tests gate on).
    SemanticNetwork net;
    std::unique_ptr<KbImage> image;
    std::uint64_t image_fp = 0;
    PartitionStrategy image_strategy = PartitionStrategy::Semantic;
    if (isKbImageFile(kb_path)) {
        KbImageFile kbf;
        std::string detail;
        KbImgStatus status = loadKbImageFile(kb_path, kbf, detail);
        if (status != KbImgStatus::Ok) {
            std::fprintf(stderr, "snapserve: %s: %s (%s)\n",
                         kb_path.c_str(), kbImgStatusName(status),
                         detail.c_str());
            return 2;
        }
        net = std::move(kbf.net);
        image = std::move(kbf.image);
        image_fp = kbf.fingerprint;
        image_strategy = kbf.strategy;
        std::printf("loaded %s: %u nodes, %llu links, %u compiled "
                    "clusters (fingerprint %016llx)\n",
                    kb_path.c_str(), net.numNodes(),
                    static_cast<unsigned long long>(net.numLinks()),
                    image->numClusters(),
                    static_cast<unsigned long long>(image_fp));
    } else {
        net = loadNetworkFile(kb_path);
        std::printf("loaded %s: %u nodes, %llu links\n",
                    kb_path.c_str(), net.numNodes(),
                    static_cast<unsigned long long>(net.numLinks()));
    }

    if (!listen_ep.empty()) {
        // Shard mode: hand the engine to the wire protocol and serve
        // until a Shutdown frame or SIGTERM.  A text KB is compiled
        // here once; a .kbimg is adopted as-is.
        KbImageFile kbf;
        if (!image)
            image = std::make_unique<KbImage>(net, cfg.machine);
        kbf.net = std::move(net);
        kbf.image = std::move(image);
        kbf.fingerprint = image_fp;
        kbf.strategy = image_strategy;
        shard::ShardServerConfig scfg;
        scfg.listen = listen_ep;
        scfg.serve = cfg;
        if (!fleet_spec_path.empty()) {
            std::ifstream fis(fleet_spec_path);
            if (!fis)
                snap_fatal("cannot open fleet fault spec '%s'",
                           fleet_spec_path.c_str());
            std::ostringstream fbuf;
            fbuf << fis.rdbuf();
            if (!FleetFaultSpec::fromJson(fbuf.str(),
                                          scfg.fleetFaults))
                snap_fatal("cannot parse fleet fault spec '%s'",
                           fleet_spec_path.c_str());
            if (fleet_seed_set)
                scfg.fleetFaults.seed = fleet_seed;
        } else if (fleet_rate > 0.0) {
            scfg.fleetFaults =
                FleetFaultSpec::wireFaults(fleet_seed, fleet_rate);
        }
        if (scfg.fleetFaults.any()) {
            snap_warn("fleet fault injection armed: %s",
                      scfg.fleetFaults.toJson().c_str());
        }
        // Arm tracing before the server builds its engine (track
        // names register at construction), so a traced shard emits
        // serve spans carrying the router's inbound trace context —
        // the shard half of the fleet's merged timeline.
        if (!trace_out.empty()) {
            std::uint32_t mask = 0;
            if (!trace::parseCategories(trace_categories, mask) ||
                mask == 0) {
                usageError("--trace-categories must be a comma list "
                           "from: all,instr,cluster,icn,sync,sem,"
                           "fault,machine,serve");
            }
            trace::start(mask);
        }
        shard::ShardServer server(std::move(kbf), scfg);
        std::string detail;
        if (!server.bind(detail))
            snap_fatal("cannot listen on '%s': %s", listen_ep.c_str(),
                       detail.c_str());
        server.run();
        if (!trace_out.empty()) {
            server.engine().shutdown();
            trace::stop();
            if (trace::writeJsonFile(trace_out)) {
                std::printf(
                    "wrote trace to %s (%llu events dropped)\n",
                    trace_out.c_str(),
                    static_cast<unsigned long long>(
                        trace::droppedCount()));
            }
        }
        return 0;
    }

    std::vector<RequestSpec> specs = parseRequestFile(req_path);

    // Assemble each distinct program once, before any worker exists:
    // assembly interns symbols into the (shared) network.
    std::map<std::string, Program> progs;
    for (const RequestSpec &s : specs) {
        if (progs.count(s.progPath))
            continue;
        Program prog = assembleFile(s.progPath, net);
        auto violations = validateProgram(prog);
        for (const auto &v : violations)
            snap_warn("%s: %s", s.progPath.c_str(),
                      v.message.c_str());
        progs.emplace(s.progPath, std::move(prog));
    }
    std::printf("parsed %zu request(s), %zu distinct program(s)\n",
                specs.size(), progs.size());

    // Optional deterministic fault injection across the replica farm.
    if (!fault_spec_path.empty()) {
        std::ifstream is(fault_spec_path);
        if (!is)
            snap_fatal("cannot open fault spec '%s'",
                       fault_spec_path.c_str());
        std::ostringstream buf;
        buf << is.rdbuf();
        if (!FaultSpec::fromJson(buf.str(), cfg.faults))
            snap_fatal("cannot parse fault spec '%s'",
                       fault_spec_path.c_str());
        if (fault_seed_set)
            cfg.faults.seed = fault_seed;
    } else if (fault_rate > 0.0) {
        cfg.faults = FaultSpec::messageFaults(fault_seed, fault_rate);
    }

    // Arm tracing before the engine exists: host and per-replica
    // track names are registered at construction time only while
    // tracing is active.
    if (!trace_out.empty()) {
        std::uint32_t mask = 0;
        if (!trace::parseCategories(trace_categories, mask) ||
            mask == 0) {
            usageError("--trace-categories must be a comma list "
                       "from: all,instr,cluster,icn,sync,sem,fault,"
                       "machine,serve");
        }
        trace::start(mask);
    }

    // A deserialized .kbimg master is adopted directly — replicas
    // are stamped from it without recompiling the network.
    serve::ServeEngine engine(net, std::move(image), cfg);
    std::printf("engine: %u worker replicas x %u clusters, queue "
                "capacity %zu\n",
                engine.numWorkers(),
                engine.sharedImage().numClusters(),
                cfg.queueCapacity);
    if (cfg.faults.any()) {
        std::printf("fault injection armed (seed %llu, max %u "
                    "retries, quarantine at %u)\n",
                    static_cast<unsigned long long>(cfg.faults.seed),
                    cfg.maxRetries, cfg.quarantineThreshold);
    }
    std::printf("\n");

    std::vector<std::future<serve::Response>> futures;
    futures.reserve(specs.size());
    for (const RequestSpec &s : specs) {
        serve::Request req;
        req.sessionId = s.sessionId;
        req.prog = progs.at(s.progPath);
        futures.push_back(engine.submit(std::move(req)));
    }

    std::vector<serve::Response> responses;
    responses.reserve(futures.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        responses.push_back(futures[i].get());
        const serve::Response &resp = responses.back();
        const RequestSpec &s = specs[i];
        std::string kind = s.sessionId.empty()
                               ? std::string("query")
                               : "session " + s.sessionId;
        std::printf("request #%zu (%s): %s, worker %u, sim "
                    "%.1f us, queue %.3f ms, lanes %u",
                    i, kind.c_str(),
                    serve::requestStatusName(resp.status),
                    resp.worker, resp.wallUs(), resp.queueMs,
                    resp.batchLanes);
        if (resp.retries > 0)
            std::printf(", retries %u", resp.retries);
        std::printf("\n");
        if (quiet || resp.status != serve::RequestStatus::Ok)
            continue;
        int idx = 0;
        for (const CollectResult &res : resp.results) {
            std::printf("  collect #%d (%s):\n", idx++,
                        opcodeName(res.op));
            for (const CollectedNode &c : res.nodes) {
                std::printf("    %-24s value %-10.4f origin %s\n",
                            net.nodeName(c.node).c_str(), c.value,
                            c.origin == invalidNode
                                ? "-"
                                : net.nodeName(c.origin).c_str());
            }
            for (const CollectedLink &l : res.links) {
                std::printf("    %s -%s-> %s (w %.4f)\n",
                            net.nodeName(l.src).c_str(),
                            net.relations().name(l.rel).c_str(),
                            net.nodeName(l.dst).c_str(), l.weight);
            }
            if (res.nodes.empty() && res.links.empty())
                std::printf("    (empty)\n");
        }
    }

    engine.drain();

    if (!answers_path.empty()) {
        std::ofstream os(answers_path);
        if (!os)
            snap_fatal("cannot open '%s' for writing",
                       answers_path.c_str());
        for (std::size_t i = 0; i < responses.size(); ++i) {
            shard::writeAnswer(os, net, i, specs[i].sessionId,
                               responses[i].status,
                               responses[i].results);
        }
        std::printf("wrote canonical answers to %s\n",
                    answers_path.c_str());
    }

    serve::MetricsSnapshot m = engine.metricsSnapshot();
    std::printf("\nserved %llu ok, %llu rejected, %llu timed out "
                "(%.1f qps host, sim makespan %.1f us)\n",
                static_cast<unsigned long long>(m.completed),
                static_cast<unsigned long long>(m.rejected),
                static_cast<unsigned long long>(m.timedOut),
                m.throughputQps(),
                ticksToUs(m.simMakespanTicks()));
    if (m.batches > 0) {
        std::printf("lane batches: %llu served %llu requests "
                    "(mean %.2f lanes)\n",
                    static_cast<unsigned long long>(m.batches),
                    static_cast<unsigned long long>(
                        m.batchedRequests),
                    m.batchLanes.mean());
    }
    if (cfg.faults.any()) {
        std::printf("robustness: %llu faults detected, %llu "
                    "retries, %llu recovered, %llu failed, %llu "
                    "shed, %llu quarantines, %llu batch "
                    "fallbacks\n",
                    static_cast<unsigned long long>(
                        m.faultsDetected),
                    static_cast<unsigned long long>(m.retries),
                    static_cast<unsigned long long>(m.recovered),
                    static_cast<unsigned long long>(m.failed),
                    static_cast<unsigned long long>(m.shed),
                    static_cast<unsigned long long>(m.quarantines),
                    static_cast<unsigned long long>(
                        m.batchFallbacks));
    }

    if (!metrics_path.empty()) {
        std::ofstream os(metrics_path);
        if (!os)
            snap_fatal("cannot open '%s' for writing",
                       metrics_path.c_str());
        if (metrics_format == "serve-json") {
            os << serve::metricsJson(m);
            std::printf("wrote metrics JSON to %s\n",
                        metrics_path.c_str());
        } else {
            // Unified registry export: serving counters, aggregated
            // execution breakdown, per-replica component stats.
            MetricsRegistry reg;
            engine.exportMetrics(reg);
            if (metrics_format == "prometheus")
                reg.writePrometheus(os);
            else
                reg.writeJson(os);
            std::printf("wrote %zu metrics (%s) to %s\n", reg.size(),
                        metrics_format.c_str(),
                        metrics_path.c_str());
        }
    }

    if (!sessions_dir.empty()) {
        for (const std::string &sid : engine.sessionIds()) {
            std::string path =
                sessions_dir + "/" + sid + ".snapmarkers";
            saveMarkersFile(engine.sessionMarkers(sid), path);
            std::printf("checkpointed session %s to %s\n",
                        sid.c_str(), path.c_str());
        }
    }

    if (!trace_out.empty()) {
        // Join the workers first so every per-thread ring buffer is
        // quiescent before the serializer walks them.
        engine.shutdown();
        trace::stop();
        if (trace::writeJsonFile(trace_out)) {
            std::printf("wrote trace to %s (%llu events dropped)\n",
                        trace_out.c_str(),
                        static_cast<unsigned long long>(
                            trace::droppedCount()));
        }
    }
    return 0;
}
