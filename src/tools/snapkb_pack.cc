/**
 * @file
 * snapkb-pack — compile a text knowledge base into a binary .kbimg
 * snapshot, or verify an existing snapshot.
 *
 *   snapkb-pack <kb.snapkb> <out.kbimg> [options]
 *     --clusters N      replica array size (1..32, default 16)
 *     --partition P     seq|rr|sem allocation (default sem)
 *     --relax-capacity  lift the 1024 nodes/cluster cap
 *
 *   snapkb-pack --check <file.kbimg>
 *     Load and validate the snapshot; prints the typed status.
 *
 * The .kbimg is the bulk-load form the sharded serving layer stamps
 * replicas from (see docs/sharding.md): packing pays partitioning and
 * relation-table compilation once, and every shard process that loads
 * the image skips both.
 *
 * Exit status: 0 on success, 1 on user error (unreadable/malformed
 * text KB — the snap_fatal path), 2 on a usage error *or* a corrupt
 * .kbimg (--check): typed rejection of an invalid snapshot file is
 * the exit-code-2 convention the round-trip tests gate on.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/config.hh"
#include "arch/kb_image.hh"
#include "arch/kb_image_io.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "kb/kb_io.hh"

using namespace snap;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: snapkb-pack <kb.snapkb> <out.kbimg> [options]\n"
        "       snapkb-pack --check <file.kbimg>\n"
        "  --clusters N      clusters 1..32 (default 16)\n"
        "  --partition P     seq|rr|sem (default sem)\n"
        "  --relax-capacity  lift the nodes/cluster cap\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--check") {
        if (argc != 3)
            usage();
        KbImageFile kb;
        std::string detail;
        KbImgStatus status = loadKbImageFile(argv[2], kb, detail);
        if (status != KbImgStatus::Ok) {
            std::fprintf(stderr, "snapkb-pack: %s: %s (%s)\n",
                         argv[2], kbImgStatusName(status),
                         detail.c_str());
            return 2;
        }
        std::printf("%s: ok, %u nodes, %llu links, %u clusters, "
                    "fingerprint %016llx\n",
                    argv[2], kb.net.numNodes(),
                    static_cast<unsigned long long>(
                        kb.net.numLinks()),
                    kb.image->numClusters(),
                    static_cast<unsigned long long>(kb.fingerprint));
        return 0;
    }

    if (argc < 3)
        usage();
    std::string kb_path = argv[1];
    std::string out_path = argv[2];
    MachineConfig machine = MachineConfig::paperSetup();

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--clusters") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 32)
                usage();
            machine.numClusters = static_cast<std::uint32_t>(n);
        } else if (arg == "--partition") {
            std::string p = next();
            if (p == "seq")
                machine.partition = PartitionStrategy::Sequential;
            else if (p == "rr")
                machine.partition = PartitionStrategy::RoundRobin;
            else if (p == "sem")
                machine.partition = PartitionStrategy::Semantic;
            else
                usage();
        } else if (arg == "--relax-capacity") {
            machine.maxNodesPerCluster = capacity::maxNodes;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }

    SemanticNetwork net = loadNetworkFile(kb_path);
    KbImage image(net, machine);
    saveKbImageFile(net, image, machine.partition, out_path);

    // Read the result back: the fingerprint is only defined by the
    // serialized form, and the verify catches any I/O truncation at
    // pack time instead of at serve time.
    KbImageFile check;
    std::string detail;
    KbImgStatus status = loadKbImageFile(out_path, check, detail);
    if (status != KbImgStatus::Ok)
        snap_fatal("packed image fails verification: %s (%s)",
                   kbImgStatusName(status), detail.c_str());
    std::printf("packed %s -> %s: %u nodes, %llu links, %u clusters, "
                "fingerprint %016llx\n",
                kb_path.c_str(), out_path.c_str(), net.numNodes(),
                static_cast<unsigned long long>(net.numLinks()),
                image.numClusters(),
                static_cast<unsigned long long>(check.fingerprint));
    return 0;
}
