/**
 * @file
 * snapsh — an interactive shell on the simulated SNAP-1.
 *
 *   snapsh <kb.snapkb> [--clusters N] [--partition seq|rr|sem]
 *
 * Each input line is one SNAP assembler statement, executed
 * immediately against persistent marker state (every line runs to
 * quiescence, so no explicit `barrier` is needed interactively).
 * `rule` declarations persist for the session.  Collect results
 * print as they return.
 *
 * Builtins:
 *   .markers <m>       count (and sample) nodes holding marker m
 *   .node <name>       show a node's color and outgoing links
 *   .time              cumulative simulated machine time
 *   .stats             component statistics
 *   .save <file>       checkpoint marker state
 *   .load <file>       restore marker state
 *   .help              this list
 *   .quit              exit
 *
 * Exit status: 0 on success, 1 on user error (bad input files or
 * values — the snap_fatal path), 2 on a command-line usage error.
 * This convention is shared by snapvm, snapkb-gen, and snapserve.
 */

#include <cstdio>
#include <unistd.h>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "arch/machine.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "isa/assembler.hh"
#include "kb/kb_io.hh"

using namespace snap;

namespace
{

void
printHelp()
{
    std::printf(
        "SNAP statements: rule / search-node / propagate / barrier /\n"
        "  and-marker / or-marker / not-marker / set-marker /\n"
        "  clear-marker / func-marker / collect-* / create / delete /\n"
        "  marker-create / ...  (see docs/ISA.md)\n"
        "builtins: .markers <m>  .node <name>  .time  .stats\n"
        "          .save <file>  .load <file>  .help  .quit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: snapsh <kb.snapkb> [--clusters N] "
                     "[--partition seq|rr|sem]\n");
        return 2;
    }

    MachineConfig cfg = MachineConfig::paperSetup();
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                snap_fatal("missing value for %s", arg.c_str());
            return argv[i];
        };
        if (arg == "--clusters") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 32)
                snap_fatal("--clusters must be 1..32");
            cfg.numClusters = static_cast<std::uint32_t>(n);
        } else if (arg == "--partition") {
            std::string p = next();
            if (p == "seq")
                cfg.partition = PartitionStrategy::Sequential;
            else if (p == "rr")
                cfg.partition = PartitionStrategy::RoundRobin;
            else if (p == "sem")
                cfg.partition = PartitionStrategy::Semantic;
            else
                snap_fatal("--partition must be seq, rr, or sem");
        } else {
            snap_fatal("unknown option '%s'", arg.c_str());
        }
    }

    SemanticNetwork net = loadNetworkFile(argv[1]);
    SnapMachine machine(cfg);
    machine.loadKb(net);
    std::printf("snapsh: %u nodes, %llu links on %u clusters "
                "(%u processors).  .help for help.\n",
                net.numNodes(),
                static_cast<unsigned long long>(net.numLinks()),
                cfg.numClusters, cfg.numProcessors());

    // Rule declarations accumulate for the session.
    std::string rules_text;
    std::string line;
    bool tty = isatty(0);

    while (true) {
        if (tty) {
            std::printf("snap> ");
            std::fflush(stdout);
        }
        if (!std::getline(std::cin, line))
            break;
        std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;

        // --- builtins ------------------------------------------------
        if (body[0] == '.') {
            std::vector<std::string> tok = tokenize(body);
            if (tok[0] == ".quit" || tok[0] == ".exit")
                break;
            if (tok[0] == ".help") {
                printHelp();
            } else if (tok[0] == ".time") {
                std::printf("simulated machine time: %.3f ms\n",
                            ticksToMs(machine.now()));
            } else if (tok[0] == ".stats") {
                std::printf("%s",
                            machine.formatComponentStats().c_str());
            } else if (tok[0] == ".markers" && tok.size() == 2) {
                long long m;
                if (!parseInt(tok[1].substr(tok[1][0] == 'm' ? 1 : 0),
                              m) ||
                    m < 0 ||
                    m >= static_cast<long long>(
                        capacity::numMarkers)) {
                    std::printf("bad marker '%s'\n", tok[1].c_str());
                    continue;
                }
                auto mid = static_cast<MarkerId>(m);
                std::uint32_t count = 0;
                std::uint32_t shown = 0;
                for (NodeId n = 0; n < net.numNodes(); ++n) {
                    if (!machine.markerSet(mid, n))
                        continue;
                    ++count;
                    if (shown < 8) {
                        ++shown;
                        std::printf("  %-20s value %.4f\n",
                                    net.nodeName(n).c_str(),
                                    machine.markerValue(mid, n));
                    }
                }
                std::printf("marker m%lld set at %u node(s)\n", m,
                            count);
            } else if (tok[0] == ".node" && tok.size() == 2) {
                NodeId n;
                if (!net.tryNode(tok[1], n)) {
                    std::printf("unknown node '%s'\n",
                                tok[1].c_str());
                    continue;
                }
                std::printf("%s (color %s)\n", tok[1].c_str(),
                            net.colorNames()
                                .name(net.color(n))
                                .c_str());
                for (const Link &l : net.links(n)) {
                    std::printf("  -%s-> %s (w %.3f)\n",
                                net.relations().name(l.rel).c_str(),
                                net.nodeName(l.dst).c_str(),
                                l.weight);
                }
            } else if (tok[0] == ".save" && tok.size() == 2) {
                std::ofstream os(tok[1]);
                if (!os) {
                    std::printf("cannot open '%s'\n",
                                tok[1].c_str());
                    continue;
                }
                machine.image().saveMarkers(os);
                std::printf("saved marker state to %s\n",
                            tok[1].c_str());
            } else if (tok[0] == ".load" && tok.size() == 2) {
                std::ifstream is(tok[1]);
                if (!is) {
                    std::printf("cannot open '%s'\n",
                                tok[1].c_str());
                    continue;
                }
                machine.image().loadMarkers(is);
                std::printf("restored marker state from %s\n",
                            tok[1].c_str());
            } else {
                std::printf("unknown builtin; .help for help\n");
            }
            continue;
        }

        // --- SNAP statements ------------------------------------------
        if (startsWith(body, "rule ")) {
            // Validate by assembling, then remember for the session.
            Program probe = assemble(rules_text + body + "\n", net);
            (void)probe;
            rules_text += body + "\n";
            std::printf("ok (%zu rule(s) in session)\n",
                        static_cast<std::size_t>(
                            std::count(rules_text.begin(),
                                       rules_text.end(), '\n')));
            continue;
        }

        Program prog = assemble(rules_text + body + "\n", net);
        if (prog.empty())
            continue;
        RunResult run = machine.run(prog);
        for (const CollectResult &res : run.results) {
            for (const CollectedNode &c : res.nodes) {
                std::printf("  %-20s value %-10.4f origin %s\n",
                            net.nodeName(c.node).c_str(), c.value,
                            c.origin == invalidNode
                                ? "-"
                                : net.nodeName(c.origin).c_str());
            }
            for (const CollectedLink &l : res.links) {
                std::printf("  %s -%s-> %s (w %.4f)\n",
                            net.nodeName(l.src).c_str(),
                            net.relations().name(l.rel).c_str(),
                            net.nodeName(l.dst).c_str(), l.weight);
            }
            std::printf("  (%zu item(s))\n",
                        res.nodes.size() + res.links.size());
        }
        std::printf("[%.1f us]\n", run.wallUs());
    }
    return 0;
}
