/**
 * @file
 * snapkb-gen — generate synthetic knowledge bases in .snapkb format.
 *
 *   snapkb-gen tree <nodes> [branching] > kb.snapkb
 *   snapkb-gen random <nodes> <avg-fanout> <rel-types> [seed]
 *   snapkb-gen linguistic <nonlexical-nodes> [vocabulary] [seed]
 *   snapkb-gen chain <length>
 *
 * The linguistic generator builds the paper's Fig. 1 layering
 * (lexical layer, syntactic/semantic constraints, concept sequences
 * with the 75/15/5/5 budget).
 *
 * Exit status: 0 on success, 1 on user error (bad parameter values —
 * the snap_fatal path), 2 on a command-line usage error.  This
 * convention is shared by snapvm, snapsh, and snapserve.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "kb/kb_io.hh"
#include "nlu/kb_factory.hh"
#include "workload/kb_gen.hh"

using namespace snap;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: snapkb-gen tree <nodes> [branching]\n"
        "       snapkb-gen random <nodes> <avg-fanout> <rel-types> "
        "[seed]\n"
        "       snapkb-gen linguistic <nonlexical> [vocab] [seed]\n"
        "       snapkb-gen chain <length>\n"
        "writes .snapkb text to stdout\n");
    std::exit(2);
}

long long
argInt(int argc, char **argv, int i, long long fallback)
{
    if (i >= argc)
        return fallback;
    long long v;
    if (!parseInt(argv[i], v))
        usage();
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string kind = argv[1];

    if (kind == "tree") {
        auto nodes = static_cast<std::uint32_t>(
            argInt(argc, argv, 2, 0));
        auto branching = static_cast<std::uint32_t>(
            argInt(argc, argv, 3, 4));
        saveNetwork(makeTreeKb(nodes, branching), std::cout);
    } else if (kind == "random") {
        if (argc < 5)
            usage();
        auto nodes = static_cast<std::uint32_t>(
            argInt(argc, argv, 2, 0));
        double fanout = std::atof(argv[3]);
        auto rels = static_cast<std::uint32_t>(
            argInt(argc, argv, 4, 2));
        auto seed = static_cast<std::uint64_t>(
            argInt(argc, argv, 5, 42));
        saveNetwork(makeRandomKb(nodes, fanout, rels, seed),
                    std::cout);
    } else if (kind == "linguistic") {
        LinguisticKbParams params;
        params.nonlexicalNodes = static_cast<std::uint32_t>(
            argInt(argc, argv, 2, 0));
        params.vocabulary = static_cast<std::uint32_t>(
            argInt(argc, argv, 3, 700));
        params.seed = static_cast<std::uint64_t>(
            argInt(argc, argv, 4, 42));
        LinguisticKb kb(params);
        saveNetwork(kb.net(), std::cout);
    } else if (kind == "chain") {
        auto length = static_cast<std::uint32_t>(
            argInt(argc, argv, 2, 0));
        saveNetwork(makeChainKb(length), std::cout);
    } else {
        usage();
    }
    return 0;
}
