/**
 * @file
 * snapkb-gen — generate synthetic knowledge bases in .snapkb format.
 *
 *   snapkb-gen tree <nodes> [branching] [options]
 *   snapkb-gen random <nodes> <avg-fanout> <rel-types> [seed] [options]
 *   snapkb-gen linguistic <nonlexical-nodes> [vocabulary] [seed] [opts]
 *   snapkb-gen chain <length> [options]
 *
 * Options:
 *   --out FILE       write to FILE instead of stdout.  tree, random,
 *                    and chain stream the text incrementally (O(1)
 *                    memory), so million-node KBs never materialize a
 *                    SemanticNetwork.
 *   --pack           write a binary .kbimg snapshot instead of text:
 *                    the KB is compiled (partitioned + relation
 *                    tables) and serialized via arch/kb_image_io.
 *                    Requires --out; bounded by machine capacity.
 *   --clusters N     (--pack) replica array size, 1..32 (default 16)
 *   --partition P    (--pack) seq|rr|sem allocation (default sem)
 *   --relax-capacity (--pack) lift the 1024 nodes/cluster cap
 *
 * The linguistic generator builds the paper's Fig. 1 layering
 * (lexical layer, syntactic/semantic constraints, concept sequences
 * with the 75/15/5/5 budget).
 *
 * Exit status: 0 on success, 1 on user error (bad parameter values —
 * the snap_fatal path), 2 on a command-line usage error.  This
 * convention is shared by snapvm, snapsh, snapserve, snapkb-pack,
 * and snaprouter.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "arch/kb_image.hh"
#include "arch/kb_image_io.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "kb/kb_io.hh"
#include "nlu/kb_factory.hh"
#include "workload/kb_gen.hh"
#include "workload/kb_stream.hh"

using namespace snap;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: snapkb-gen tree <nodes> [branching] [options]\n"
        "       snapkb-gen random <nodes> <avg-fanout> <rel-types> "
        "[seed] [options]\n"
        "       snapkb-gen linguistic <nonlexical> [vocab] [seed] "
        "[options]\n"
        "       snapkb-gen chain <length> [options]\n"
        "options:\n"
        "  --out FILE        write to FILE (tree/random/chain "
        "stream incrementally)\n"
        "  --pack            write a binary .kbimg snapshot "
        "(requires --out)\n"
        "  --clusters N      (--pack) clusters 1..32 (default 16)\n"
        "  --partition P     (--pack) seq|rr|sem (default sem)\n"
        "  --relax-capacity  (--pack) lift the nodes/cluster cap\n"
        "writes .snapkb text to stdout when --out is absent\n");
    std::exit(2);
}

long long
argInt(int argc, char **argv, int i, long long fallback)
{
    if (i >= argc)
        return fallback;
    long long v;
    if (!parseInt(argv[i], v))
        usage();
    return v;
}

struct Options
{
    std::string outPath;
    bool pack = false;
    MachineConfig machine = MachineConfig::paperSetup();
};

/** Split flags (from the first "--" argument on) from positionals. */
Options
parseOptions(int &argc, char **argv)
{
    Options opt;
    int keep = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--out") {
            opt.outPath = next();
        } else if (arg == "--pack") {
            opt.pack = true;
        } else if (arg == "--clusters") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 32)
                usage();
            opt.machine.numClusters =
                static_cast<std::uint32_t>(n);
        } else if (arg == "--partition") {
            std::string p = next();
            if (p == "seq")
                opt.machine.partition = PartitionStrategy::Sequential;
            else if (p == "rr")
                opt.machine.partition = PartitionStrategy::RoundRobin;
            else if (p == "sem")
                opt.machine.partition = PartitionStrategy::Semantic;
            else
                usage();
        } else if (arg == "--relax-capacity") {
            opt.machine.maxNodesPerCluster = capacity::maxNodes;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        } else {
            argv[keep++] = argv[i];
        }
    }
    argc = keep;
    if (opt.pack && opt.outPath.empty()) {
        std::fprintf(stderr, "--pack requires --out FILE\n");
        usage();
    }
    return opt;
}

/** Emit a fully built network as text or as a packed .kbimg. */
void
emitNetwork(SemanticNetwork net, const Options &opt)
{
    if (opt.pack) {
        KbImage image(net, opt.machine);
        saveKbImageFile(net, image, opt.machine.partition,
                        opt.outPath);
        return;
    }
    if (opt.outPath.empty()) {
        saveNetwork(net, std::cout);
        return;
    }
    saveNetworkFile(net, opt.outPath);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    if (argc < 3)
        usage();
    std::string kind = argv[1];

    // Streaming text output: only meaningful without --pack (packing
    // needs the compiled form, which needs the network in memory).
    std::ofstream stream_file;
    std::ostream *stream_os = nullptr;
    if (!opt.pack) {
        if (opt.outPath.empty()) {
            stream_os = &std::cout;
        } else {
            stream_file.open(opt.outPath);
            if (!stream_file)
                snap_fatal("cannot open '%s' for writing",
                           opt.outPath.c_str());
            stream_os = &stream_file;
        }
    }

    if (kind == "tree") {
        auto nodes = static_cast<std::uint64_t>(
            argInt(argc, argv, 2, 0));
        auto branching = static_cast<std::uint32_t>(
            argInt(argc, argv, 3, 4));
        if (stream_os)
            streamTreeKb(nodes, branching, *stream_os);
        else
            emitNetwork(makeTreeKb(static_cast<std::uint32_t>(nodes),
                                   branching),
                        opt);
    } else if (kind == "random") {
        if (argc < 5)
            usage();
        auto nodes = static_cast<std::uint64_t>(
            argInt(argc, argv, 2, 0));
        double fanout = std::atof(argv[3]);
        auto rels = static_cast<std::uint32_t>(
            argInt(argc, argv, 4, 2));
        auto seed = static_cast<std::uint64_t>(
            argInt(argc, argv, 5, 42));
        if (stream_os)
            streamRandomKb(nodes, fanout, rels, seed, *stream_os);
        else
            emitNetwork(makeRandomKb(static_cast<std::uint32_t>(nodes),
                                     fanout, rels, seed),
                        opt);
    } else if (kind == "linguistic") {
        LinguisticKbParams params;
        params.nonlexicalNodes = static_cast<std::uint32_t>(
            argInt(argc, argv, 2, 0));
        params.vocabulary = static_cast<std::uint32_t>(
            argInt(argc, argv, 3, 700));
        params.seed = static_cast<std::uint64_t>(
            argInt(argc, argv, 4, 42));
        LinguisticKb kb(params);
        if (stream_os)
            saveNetwork(kb.net(), *stream_os);
        else
            emitNetwork(kb.net(), opt);
    } else if (kind == "chain") {
        auto length = static_cast<std::uint64_t>(
            argInt(argc, argv, 2, 0));
        if (stream_os)
            streamChainKb(length, *stream_os);
        else
            emitNetwork(makeChainKb(static_cast<std::uint32_t>(length)),
                        opt);
    } else {
        usage();
    }

    if (stream_file.is_open()) {
        stream_file.close();
        if (!stream_file)
            snap_fatal("write error on '%s'", opt.outPath.c_str());
    }
    return 0;
}
