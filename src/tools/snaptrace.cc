/**
 * @file
 * snaptrace — offline companion for the snap trace/metrics layer.
 *
 *   snaptrace report <trace.json> [--top N]
 *       Summarize a Chrome trace-event dump produced by
 *       --trace-out: per-category event counts, the top-N
 *       simulated-time span breakdown, a per-cluster MU utilization
 *       heatmap (busy span time vs machine wall time, one row per
 *       cluster track), and the host<->sim flow-link tally.
 *
 *   snaptrace check <trace.json>
 *       Machine-checkable smoke: the file parses as JSON, holds a
 *       traceEvents array, and contains at least one matched
 *       's'/'f' flow pair.  When the trace holds cross-process
 *       "xrpc" flows (a fleet trace, usually merged), every router
 *       attempt's 's' must pair with a shard-side 'f' of the same
 *       id in a different process — hedged duplicates and failover
 *       reroutes included.  Exit 0 on pass, 1 on fail (CI gate).
 *
 *   snaptrace merge --out <merged.json> <router.json>
 *                   <shard0.json> [shard1.json ...]
 *       Stitch per-process Chrome traces from one fleet run into a
 *       single timeline.  The router trace's clock_sync metadata
 *       (written by snaprouter --trace-out; per-shard clock offsets
 *       exchanged in the Hello handshake) re-bases each shard's
 *       host-clock events onto the router's clock; pids are
 *       re-namespaced (shard k gets pid+1000*(k+1)) and per-process
 *       flow/async ids are suffixed so only the cross-process
 *       "xrpc" arrows join across files.
 *
 *   snaptrace promlint <metrics.prom>
 *       Lint a Prometheus text-exposition file: name charset,
 *       HELP/TYPE discipline, label-value escaping (only \\, \",
 *       and \n may follow a backslash; no raw quote or newline),
 *       parseable sample values.  Exit 0/1.
 *
 * Exit status: 0 on success/pass, 1 on check failure or bad input,
 * 2 on a command-line usage error, matching the other snap tools.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"

using namespace snap;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: snaptrace <mode> <file> [options]\n"
        "  report <trace.json> [--top N]  summarize a trace dump\n"
        "  check <trace.json>             validate JSON + flow pairs "
        "(+ xrpc gate)\n"
        "  merge --out OUT <router.json> <shard.json...>\n"
        "                                 stitch fleet traces into "
        "one timeline\n"
        "  promlint <metrics.prom>        lint Prometheus text "
        "output\n");
    std::exit(2);
}

// -------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.  Covers exactly the
// grammar the trace writer and metrics exporters emit; rejects
// anything else with a position-tagged error.
// -------------------------------------------------------------------

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    JsonValue *
    findMut(const std::string &key)
    {
        for (auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        skipWs();
        if (!value(out, err))
            return false;
        skipWs();
        if (pos_ != s_.size()) {
            err = errorAt("trailing data after document");
            return false;
        }
        return true;
    }

  private:
    bool
    value(JsonValue &out, std::string &err)
    {
        skipWs();
        if (pos_ >= s_.size()) {
            err = errorAt("unexpected end of input");
            return false;
        }
        char c = s_[pos_];
        if (c == '{')
            return object(out, err);
        if (c == '[')
            return array(out, err);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return string(out.str, err);
        }
        if (c == 't' || c == 'f')
            return boolean(out, err);
        if (c == 'n') {
            if (s_.compare(pos_, 4, "null") != 0) {
                err = errorAt("bad literal");
                return false;
            }
            pos_ += 4;
            out.type = JsonValue::Type::Null;
            return true;
        }
        return number(out, err);
    }

    bool
    object(JsonValue &out, std::string &err)
    {
        out.type = JsonValue::Type::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key, err))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                err = errorAt("expected ':'");
                return false;
            }
            ++pos_;
            JsonValue v;
            if (!value(v, err))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size()) {
                err = errorAt("unterminated object");
                return false;
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            err = errorAt("expected ',' or '}'");
            return false;
        }
    }

    bool
    array(JsonValue &out, std::string &err)
    {
        out.type = JsonValue::Type::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue v;
            if (!value(v, err))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size()) {
                err = errorAt("unterminated array");
                return false;
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            err = errorAt("expected ',' or ']'");
            return false;
        }
    }

    bool
    string(std::string &out, std::string &err)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"') {
            err = errorAt("expected string");
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size()) {
                    err = errorAt("bad escape");
                    return false;
                }
                char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u':
                    // The trace writer never emits \u escapes;
                    // tolerate them opaquely for foreign files.
                    if (pos_ + 4 > s_.size()) {
                        err = errorAt("bad \\u escape");
                        return false;
                    }
                    out += '?';
                    pos_ += 4;
                    break;
                  default:
                    err = errorAt("bad escape");
                    return false;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size()) {
            err = errorAt("unterminated string");
            return false;
        }
        ++pos_;  // closing quote
        return true;
    }

    bool
    boolean(JsonValue &out, std::string &err)
    {
        out.type = JsonValue::Type::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        err = errorAt("bad literal");
        return false;
    }

    bool
    number(JsonValue &out, std::string &err)
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '-' ||
                s_[pos_] == '+'))
            ++pos_;
        if (pos_ == start) {
            err = errorAt("expected number");
            return false;
        }
        std::string tok = s_.substr(start, pos_ - start);
        double v;
        if (!parseDouble(tok, v)) {
            err = errorAt("bad number");
            return false;
        }
        out.type = JsonValue::Type::Number;
        out.number = v;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    std::string
    errorAt(const char *msg) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
            if (s_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return formatString("%s at line %zu col %zu", msg, line, col);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        snap_fatal("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

// -------------------------------------------------------------------
// JSON serializer (merge output).  Round-trips anything the parser
// accepts; integral numbers print without a fraction so pids/ids
// survive, non-integral (ts in microseconds with sub-us precision)
// keep full double precision.
// -------------------------------------------------------------------

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << formatString(
                    "\\u%04x",
                    static_cast<unsigned>(
                        static_cast<unsigned char>(c)));
            else
                os << c;
        }
    }
    os << '"';
}

void
writeJsonValue(std::ostream &os, const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::Null:
        os << "null";
        break;
      case JsonValue::Type::Bool:
        os << (v.boolean ? "true" : "false");
        break;
      case JsonValue::Type::Number: {
        const double d = v.number;
        if (std::floor(d) == d && std::fabs(d) < 9.0e15)
            os << formatString("%lld",
                               static_cast<long long>(d));
        else
            os << formatString("%.17g", d);
        break;
      }
      case JsonValue::Type::String:
        writeJsonString(os, v.str);
        break;
      case JsonValue::Type::Array: {
        os << '[';
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            if (i)
                os << ',';
            writeJsonValue(os, v.arr[i]);
        }
        os << ']';
        break;
      }
      case JsonValue::Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &kv : v.obj) {
            if (!first)
                os << ',';
            first = false;
            writeJsonString(os, kv.first);
            os << ':';
            writeJsonValue(os, kv.second);
        }
        os << '}';
        break;
      }
    }
}

// -------------------------------------------------------------------
// Trace-event model shared by report and check.
// -------------------------------------------------------------------

struct TraceEvent
{
    std::string name;
    std::string cat;
    std::string id;      // flow/async id (string form)
    std::string ph;
    double ts = 0.0;     // microseconds
    double dur = 0.0;    // microseconds ('X' only)
    long long pid = 0;
    long long tid = 0;
};

struct TraceDoc
{
    std::vector<TraceEvent> events;
    /** pid -> process_name metadata. */
    std::map<long long, std::string> processNames;
    /** (pid, tid) -> thread_name metadata. */
    std::map<std::pair<long long, long long>, std::string>
        threadNames;
};

bool
loadTrace(const std::string &path, TraceDoc &doc, std::string &err)
{
    std::string text = slurp(path);
    JsonValue root;
    JsonParser parser(text);
    if (!parser.parse(root, err))
        return false;
    if (root.type != JsonValue::Type::Object) {
        err = "top level is not an object";
        return false;
    }
    const JsonValue *events = root.find("traceEvents");
    if (!events || events->type != JsonValue::Type::Array) {
        err = "no traceEvents array";
        return false;
    }
    for (const JsonValue &e : events->arr) {
        if (e.type != JsonValue::Type::Object)
            continue;
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        if (!ph || ph->type != JsonValue::Type::String)
            continue;
        long long pidv =
            pid && pid->type == JsonValue::Type::Number
                ? static_cast<long long>(pid->number) : 0;
        long long tidv =
            tid && tid->type == JsonValue::Type::Number
                ? static_cast<long long>(tid->number) : 0;
        if (ph->str == "M") {
            const JsonValue *args = e.find("args");
            const JsonValue *nv =
                args ? args->find("name") : nullptr;
            if (name && nv &&
                nv->type == JsonValue::Type::String) {
                if (name->str == "process_name")
                    doc.processNames[pidv] = nv->str;
                else if (name->str == "thread_name")
                    doc.threadNames[{pidv, tidv}] = nv->str;
            }
            continue;
        }
        TraceEvent ev;
        ev.ph = ph->str;
        if (name && name->type == JsonValue::Type::String)
            ev.name = name->str;
        const JsonValue *cat = e.find("cat");
        if (cat && cat->type == JsonValue::Type::String)
            ev.cat = cat->str;
        const JsonValue *id = e.find("id");
        if (id && id->type == JsonValue::Type::String)
            ev.id = id->str;
        const JsonValue *ts = e.find("ts");
        if (ts && ts->type == JsonValue::Type::Number)
            ev.ts = ts->number;
        const JsonValue *dur = e.find("dur");
        if (dur && dur->type == JsonValue::Type::Number)
            ev.dur = dur->number;
        ev.pid = pidv;
        ev.tid = tidv;
        doc.events.push_back(std::move(ev));
    }
    return true;
}

/** Matched 's'/'f' pairs, keyed on the flow id string. */
std::size_t
countFlowPairs(const TraceDoc &doc)
{
    std::map<std::string, int> sides;
    for (const TraceEvent &e : doc.events) {
        if (e.ph == "s")
            sides[e.id] |= 1;
        else if (e.ph == "f")
            sides[e.id] |= 2;
    }
    std::size_t pairs = 0;
    for (const auto &kv : sides)
        if (kv.second == 3)
            ++pairs;
    return pairs;
}

// -------------------------------------------------------------------
// report
// -------------------------------------------------------------------

int
cmdReport(const std::string &path, int topN)
{
    TraceDoc doc;
    std::string err;
    if (!loadTrace(path, doc, err)) {
        std::fprintf(stderr, "snaptrace: %s: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }

    // Per-span totals: 'X' contributes dur directly; 'B'/'E' pairs
    // are matched per (pid, tid, name) in stream order (the
    // per-thread rings preserve emission order, which is
    // monotonically non-decreasing in ts within a track).
    struct SpanAgg
    {
        double totalUs = 0.0;
        std::uint64_t count = 0;
    };
    std::map<std::string, SpanAgg> simSpans;   // sim pids only
    std::map<std::string, SpanAgg> hostSpans;  // host pid 1
    std::map<std::string, std::uint64_t> catCounts;
    std::map<std::pair<long long, long long>, double> trackBusyUs;
    std::map<long long, double> machineWallUs;
    std::map<std::tuple<long long, long long, std::string>,
             std::vector<double>> open;

    for (const TraceEvent &e : doc.events) {
        ++catCounts[e.cat.empty() ? std::string("?") : e.cat];
        const bool host = e.pid == 1;
        if (e.ph == "X") {
            auto &agg = host ? hostSpans[e.name] : simSpans[e.name];
            agg.totalUs += e.dur;
            ++agg.count;
            if (!host) {
                trackBusyUs[{e.pid, e.tid}] += e.dur;
                if (e.name == "machine.run")
                    machineWallUs[e.pid] += e.dur;
            }
        } else if (e.ph == "B") {
            open[{e.pid, e.tid, e.name}].push_back(e.ts);
        } else if (e.ph == "E") {
            auto &stack = open[{e.pid, e.tid, e.name}];
            if (stack.empty())
                continue;  // truncated by drop-oldest
            double begin = stack.back();
            stack.pop_back();
            double d = e.ts - begin;
            auto &agg = host ? hostSpans[e.name] : simSpans[e.name];
            agg.totalUs += d;
            ++agg.count;
            if (!host)
                trackBusyUs[{e.pid, e.tid}] += d;
        }
    }

    std::printf("trace: %s\n", path.c_str());
    std::printf("  %zu events, %zu processes, %zu named tracks\n\n",
                doc.events.size(), doc.processNames.size(),
                doc.threadNames.size());

    {
        TextTable t;
        t.header({"category", "events"});
        for (const auto &kv : catCounts)
            t.row({kv.first, std::to_string(kv.second)});
        std::printf("event counts by category\n%s\n",
                    t.render().c_str());
    }

    auto printTop = [&](const char *title,
                        const std::map<std::string, SpanAgg> &spans,
                        const char *unit) {
        std::vector<std::pair<std::string, SpanAgg>> sorted(
            spans.begin(), spans.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.totalUs > b.second.totalUs;
                  });
        if (sorted.size() > static_cast<std::size_t>(topN))
            sorted.resize(static_cast<std::size_t>(topN));
        TextTable t;
        t.header({"span", std::string("total ") + unit, "count"});
        for (const auto &kv : sorted) {
            t.row({kv.first, fmtDouble(kv.second.totalUs, 3),
                   std::to_string(kv.second.count)});
        }
        std::printf("%s (top %d)\n%s\n", title, topN,
                    t.render().c_str());
    };

    if (!simSpans.empty())
        printTop("simulated-time breakdown", simSpans, "us (sim)");
    if (!hostSpans.empty())
        printTop("host-time breakdown", hostSpans, "us (host)");

    // Per-cluster utilization heatmap: cluster MU tracks are tid
    // 100..199 in each sim process; busy share is against that
    // machine's summed machine.run wall time.
    bool anyCluster = false;
    TextTable heat;
    heat.header({"machine", "cluster", "busy us", "util",
                 "heat"});
    for (const auto &kv : trackBusyUs) {
        long long pid = kv.first.first;
        long long tid = kv.first.second;
        if (pid == 1 || tid < 100 || tid >= 200)
            continue;
        double wall = 0.0;
        auto mw = machineWallUs.find(pid);
        if (mw != machineWallUs.end())
            wall = mw->second;
        double util = wall > 0.0 ? kv.second / wall : 0.0;
        if (util > 1.0)
            util = 1.0;
        std::string bar;
        int blocks = static_cast<int>(std::lround(util * 20.0));
        for (int i = 0; i < 20; ++i)
            bar += i < blocks ? '#' : '.';
        std::string mname;
        auto pn = doc.processNames.find(pid);
        mname = pn != doc.processNames.end()
                    ? pn->second
                    : formatString("pid %lld", pid);
        heat.row({mname, std::to_string(tid - 100),
                  fmtDouble(kv.second, 3),
                  fmtDouble(util * 100.0, 1) + "%", bar});
        anyCluster = true;
    }
    if (anyCluster) {
        std::printf("per-cluster MU utilization (vs machine.run "
                    "wall)\n%s\n", heat.render().c_str());
    }

    std::printf("flow links: %zu matched host->sim pair(s)\n",
                countFlowPairs(doc));
    return 0;
}

// -------------------------------------------------------------------
// check
// -------------------------------------------------------------------

int
cmdCheck(const std::string &path)
{
    TraceDoc doc;
    std::string err;
    if (!loadTrace(path, doc, err)) {
        std::fprintf(stderr, "snaptrace check: FAIL: %s: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    if (doc.events.empty()) {
        std::fprintf(stderr,
                     "snaptrace check: FAIL: %s: no events\n",
                     path.c_str());
        return 1;
    }
    std::size_t pairs = countFlowPairs(doc);
    if (pairs == 0) {
        std::fprintf(stderr,
                     "snaptrace check: FAIL: %s: no matched "
                     "'s'/'f' flow pair\n", path.c_str());
        return 1;
    }

    // Fleet gate (automatic when "xrpc" flows are present, i.e. a
    // merged fleet trace): every sampled router attempt — primary,
    // reroute, or hedge — must have produced a shard-side serve
    // span, witnessed by an 'f' with the same flow id in a
    // *different* process.  A same-pid pair would mean the merge
    // failed to re-namespace, so it fails too.
    std::map<std::string, const TraceEvent *> xrpc_starts;
    std::map<std::string, const TraceEvent *> xrpc_ends;
    std::set<long long> xrpc_pids;
    for (const TraceEvent &e : doc.events) {
        if (e.name != "xrpc")
            continue;
        xrpc_pids.insert(e.pid);
        if (e.ph == "s")
            xrpc_starts[e.id] = &e;
        else if (e.ph == "f")
            xrpc_ends[e.id] = &e;
    }
    // An in-process fleet (bench/chaos_soak, the unit tests) traces
    // router and shards under one pid; the cross-process rule only
    // binds once a merge has re-namespaced the processes apart.
    const bool multi_process = xrpc_pids.size() > 1;
    std::size_t xrpc_ok = 0, xrpc_bad = 0;
    for (const auto &kv : xrpc_starts) {
        auto it = xrpc_ends.find(kv.first);
        if (it == xrpc_ends.end()) {
            std::fprintf(stderr,
                         "snaptrace check: xrpc attempt %s (pid "
                         "%lld) has no shard-side arrival\n",
                         kv.first.c_str(), kv.second->pid);
            ++xrpc_bad;
        } else if (multi_process &&
                   it->second->pid == kv.second->pid) {
            std::fprintf(stderr,
                         "snaptrace check: xrpc flow %s starts and "
                         "ends in the same process (pid %lld)\n",
                         kv.first.c_str(), kv.second->pid);
            ++xrpc_bad;
        } else {
            ++xrpc_ok;
        }
    }
    if (xrpc_bad > 0) {
        std::fprintf(stderr,
                     "snaptrace check: FAIL: %s: %zu of %zu xrpc "
                     "attempt(s) unpaired across processes\n",
                     path.c_str(), xrpc_bad,
                     xrpc_starts.size());
        return 1;
    }

    std::printf("snaptrace check: OK: %zu events, %zu flow "
                "pair(s)\n", doc.events.size(), pairs);
    if (!xrpc_starts.empty())
        std::printf("snaptrace check: xrpc: %zu cross-process "
                    "attempt(s) all paired\n", xrpc_ok);
    return 0;
}

// -------------------------------------------------------------------
// merge
// -------------------------------------------------------------------

/** Parse the router's clock_sync metadata ("IDX:OFFSETNS,...";
 *  offset = shard clock - router clock at handshake). */
std::map<long long, long long>
parseClockSync(const std::string &sync)
{
    std::map<long long, long long> offsets;
    for (const std::string &ent : tokenize(sync, ",")) {
        std::size_t colon = ent.find(':');
        if (colon == std::string::npos)
            continue;
        long long shard = 0, off = 0;
        if (parseInt(ent.substr(0, colon), shard) &&
            parseInt(ent.substr(colon + 1), off))
            offsets[shard] = off;
    }
    return offsets;
}

int
cmdMerge(const std::string &out_path,
         const std::vector<std::string> &files)
{
    // Operate on the raw JSON so every event field (args, flow
    // binding points, categories we do not model) survives the
    // round trip verbatim.
    std::vector<JsonValue> roots(files.size());
    for (std::size_t k = 0; k < files.size(); ++k) {
        std::string text = slurp(files[k]);
        std::string err;
        JsonParser parser(text);
        if (!parser.parse(roots[k], err)) {
            std::fprintf(stderr, "snaptrace merge: %s: %s\n",
                         files[k].c_str(), err.c_str());
            return 1;
        }
        if (roots[k].type != JsonValue::Type::Object ||
            !roots[k].find("traceEvents")) {
            std::fprintf(stderr,
                         "snaptrace merge: %s: no traceEvents\n",
                         files[k].c_str());
            return 1;
        }
    }

    // Clock re-basing: file 0 is the router and owns the reference
    // clock; its clock_sync metadata maps shard index -> offset.
    std::map<long long, long long> offsets;
    {
        const JsonValue *other = roots[0].find("otherData");
        const JsonValue *sync =
            other ? other->find("clock_sync") : nullptr;
        if (sync && sync->type == JsonValue::Type::String)
            offsets = parseClockSync(sync->str);
    }
    if (files.size() > 1 && offsets.empty())
        std::fprintf(stderr,
                     "snaptrace merge: warning: router trace has "
                     "no clock_sync metadata; shard timelines are "
                     "not re-based\n");

    JsonValue merged;
    merged.type = JsonValue::Type::Object;
    JsonValue events;
    events.type = JsonValue::Type::Array;

    std::size_t shifted = 0;
    for (std::size_t k = 0; k < files.size(); ++k) {
        const long long pid_base = 1000 * static_cast<long long>(k);
        // Shard host events were stamped on the shard's clock; the
        // router-domain time is t_shard - offset.
        double shift_us = 0.0;
        if (k > 0) {
            auto it = offsets.find(static_cast<long long>(k) - 1);
            if (it != offsets.end())
                shift_us = -static_cast<double>(it->second) / 1000.0;
        }
        const std::string proc_prefix =
            k == 0 ? std::string("router/")
                   : formatString("shard%zu/", k - 1);
        const std::string id_suffix = formatString("-p%zu", k);

        JsonValue *evs = roots[k].findMut("traceEvents");
        for (JsonValue &e : evs->arr) {
            if (e.type != JsonValue::Type::Object)
                continue;
            JsonValue *ph = e.findMut("ph");
            JsonValue *pid = e.findMut("pid");
            const bool meta =
                ph && ph->type == JsonValue::Type::String &&
                ph->str == "M";
            const long long orig_pid =
                pid && pid->type == JsonValue::Type::Number
                    ? static_cast<long long>(pid->number) : 0;

            // Re-namespace pids: shard k's pid P becomes
            // 1000*(k+1)+P in the merged file (the router keeps
            // its pids — pid_base is 0 for k == 0).
            if (pid && pid->type == JsonValue::Type::Number)
                pid->number = orig_pid + pid_base;

            // Re-base host-clock timestamps onto the router's
            // clock.  Only host events (original pid 1): sim pids
            // carry *simulated* microseconds, which are already a
            // common domain and must never be clock-shifted.
            if (k > 0 && !meta && orig_pid == 1 &&
                shift_us != 0.0) {
                JsonValue *ts = e.findMut("ts");
                if (ts && ts->type == JsonValue::Type::Number) {
                    ts->number += shift_us;
                    ++shifted;
                }
            }

            // Keep per-process flow/async arrows local: suffix
            // their ids per source file.  The cross-process
            // "xrpc" ids are shared router<->shard on purpose.
            JsonValue *name = e.findMut("name");
            const bool is_xrpc =
                name && name->type == JsonValue::Type::String &&
                name->str == "xrpc";
            if (ph && ph->type == JsonValue::Type::String &&
                !is_xrpc &&
                (ph->str == "s" || ph->str == "f" ||
                 ph->str == "b" || ph->str == "e")) {
                JsonValue *id = e.findMut("id");
                if (id && id->type == JsonValue::Type::String)
                    id->str += id_suffix;
            }

            // Prefix process names so the viewer shows which
            // fleet member each track belongs to.
            if (meta && name &&
                name->type == JsonValue::Type::String &&
                name->str == "process_name") {
                JsonValue *args = e.findMut("args");
                JsonValue *nv =
                    args ? args->findMut("name") : nullptr;
                if (nv && nv->type == JsonValue::Type::String)
                    nv->str = proc_prefix + nv->str;
            }

            events.arr.push_back(std::move(e));
        }
    }

    // displayTimeUnit + otherData come from the router file; record
    // what the merge did alongside.
    const JsonValue *dtu = roots[0].find("displayTimeUnit");
    if (dtu)
        merged.obj.emplace_back("displayTimeUnit", *dtu);
    const std::size_t n_events = events.arr.size();
    merged.obj.emplace_back("traceEvents", std::move(events));
    JsonValue other_out;
    other_out.type = JsonValue::Type::Object;
    if (const JsonValue *other = roots[0].find("otherData"))
        other_out.obj = other->obj;
    JsonValue merged_from;
    merged_from.type = JsonValue::Type::Number;
    merged_from.number = static_cast<double>(files.size());
    other_out.obj.emplace_back("merged_from",
                               std::move(merged_from));
    merged.obj.emplace_back("otherData", std::move(other_out));

    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr,
                     "snaptrace merge: cannot write '%s'\n",
                     out_path.c_str());
        return 1;
    }
    writeJsonValue(os, merged);
    os << '\n';
    os.close();
    if (!os) {
        std::fprintf(stderr,
                     "snaptrace merge: write to '%s' failed\n",
                     out_path.c_str());
        return 1;
    }

    std::printf("snaptrace merge: %zu file(s) -> %s: %zu events, "
                "%zu host ts re-based, %zu clock offset(s)\n",
                files.size(), out_path.c_str(), n_events, shifted,
                offsets.size());
    return 0;
}

// -------------------------------------------------------------------
// promlint
// -------------------------------------------------------------------

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto ok_first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto ok_rest = [&](char c) {
        return ok_first(c) ||
               std::isdigit(static_cast<unsigned char>(c));
    };
    if (!ok_first(name[0]))
        return false;
    for (std::size_t i = 1; i < name.size(); ++i)
        if (!ok_rest(name[i]))
            return false;
    return true;
}

/** Prometheus label names: like metric names but no colon. */
bool
validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    auto ok_first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_';
    };
    if (!ok_first(name[0]))
        return false;
    for (std::size_t i = 1; i < name.size(); ++i)
        if (!ok_first(name[i]) &&
            !std::isdigit(static_cast<unsigned char>(name[i])))
            return false;
    return true;
}

/**
 * Walk a label set starting at '{' in @p s.  Validates structure
 * AND value escaping: inside "..." a backslash may only introduce
 * \\, \", or \n (the three escapes the exposition format defines),
 * and a raw '"' terminates the value — an unescaped interior quote
 * therefore surfaces as a structural error.  @return characters
 * consumed including the closing '}', or 0 with @p why set.
 */
std::size_t
parseLabelSet(const std::string &s, std::string &why)
{
    std::size_t i = 1;  // past '{'
    if (i < s.size() && s[i] == '}')
        return 2;
    for (;;) {
        std::size_t start = i;
        while (i < s.size() && s[i] != '=' && s[i] != '"' &&
               s[i] != ',' && s[i] != '}')
            ++i;
        if (!validLabelName(s.substr(start, i - start))) {
            why = "bad label name";
            return 0;
        }
        if (i >= s.size() || s[i] != '=') {
            why = "expected '=' after label name";
            return 0;
        }
        ++i;
        if (i >= s.size() || s[i] != '"') {
            why = "label value is not quoted";
            return 0;
        }
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                if (i + 1 >= s.size() ||
                    (s[i + 1] != '\\' && s[i + 1] != '"' &&
                     s[i + 1] != 'n')) {
                    why = "invalid escape in label value "
                          "(only \\\\, \\\", \\n)";
                    return 0;
                }
                i += 2;
            } else {
                ++i;
            }
        }
        if (i >= s.size()) {
            why = "unterminated label value";
            return 0;
        }
        ++i;  // closing quote
        if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
        }
        if (i < s.size() && s[i] == '}')
            return i + 1;
        why = "expected ',' or '}' after label";
        return 0;
    }
}

int
cmdPromlint(const std::string &path)
{
    std::string text = slurp(path);
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    int failures = 0;
    std::size_t samples = 0;
    /** Names that have seen a # TYPE line. */
    std::map<std::string, std::string> typedNames;

    auto fail = [&](const char *what) {
        std::fprintf(stderr, "%s:%d: %s: %s\n", path.c_str(),
                     lineno, what, line.c_str());
        ++failures;
    };

    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (startsWith(line, "# HELP ")) {
            std::vector<std::string> tok = tokenize(line);
            if (tok.size() < 3 || !validMetricName(tok[2]))
                fail("malformed HELP line");
            continue;
        }
        if (startsWith(line, "# TYPE ")) {
            std::vector<std::string> tok = tokenize(line);
            if (tok.size() != 4 || !validMetricName(tok[2]) ||
                (tok[3] != "counter" && tok[3] != "gauge" &&
                 tok[3] != "histogram" && tok[3] != "summary" &&
                 tok[3] != "untyped")) {
                fail("malformed TYPE line");
                continue;
            }
            if (typedNames.count(tok[2]))
                fail("duplicate TYPE for metric");
            typedNames[tok[2]] = tok[3];
            continue;
        }
        if (line[0] == '#')
            continue;  // plain comment

        // Sample line: name[{labels}] value
        std::size_t brace = line.find('{');
        std::size_t name_end =
            brace != std::string::npos ? brace : line.find(' ');
        if (name_end == std::string::npos) {
            fail("sample line has no value");
            continue;
        }
        std::string name = line.substr(0, name_end);
        if (!validMetricName(name)) {
            fail("invalid metric name");
            continue;
        }
        std::string rest = line.substr(name_end);
        if (brace != std::string::npos) {
            std::string why;
            std::size_t used = parseLabelSet(rest, why);
            if (used == 0) {
                fail(why.c_str());
                continue;
            }
            rest = rest.substr(used);
        }
        std::string value = trim(rest);
        double v;
        if (!parseDouble(value, v)) {
            fail("unparseable sample value");
            continue;
        }
        if (!typedNames.count(name))
            fail("sample before its TYPE line");
        ++samples;
    }

    if (samples == 0) {
        std::fprintf(stderr, "%s: no samples found\n",
                     path.c_str());
        ++failures;
    }
    if (failures > 0) {
        std::fprintf(stderr,
                     "snaptrace promlint: FAIL: %d problem(s)\n",
                     failures);
        return 1;
    }
    std::printf("snaptrace promlint: OK: %zu sample(s), %zu "
                "metric(s)\n", samples, typedNames.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string mode = argv[1];

    if (mode == "merge") {
        std::string out_path;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--out" && i + 1 < argc) {
                out_path = argv[++i];
            } else if (startsWith(arg, "--")) {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                usage();
            } else {
                files.push_back(std::move(arg));
            }
        }
        if (out_path.empty()) {
            std::fprintf(stderr,
                         "snaptrace merge: --out is required\n");
            return 2;
        }
        if (files.empty()) {
            std::fprintf(stderr,
                         "snaptrace merge: need at least one input "
                         "trace (router first)\n");
            return 2;
        }
        return cmdMerge(out_path, files);
    }

    if (argc < 3)
        usage();
    std::string path = argv[2];
    int topN = 15;

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            long long n;
            if (!parseInt(argv[++i], n) || n < 1) {
                std::fprintf(stderr,
                             "snaptrace: --top must be >= 1\n");
                return 2;
            }
            topN = static_cast<int>(n);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }

    if (mode == "report")
        return cmdReport(path, topN);
    if (mode == "check")
        return cmdCheck(path);
    if (mode == "promlint")
        return cmdPromlint(path);
    usage();
}
