/**
 * @file
 * snaprouter — consistent-hash front door for sharded snapserve.
 *
 *   snaprouter <kb.snapkb|kb.kbimg> <requests.txt> --shard EP
 *              [--shard EP ...] [options]
 *     --shard ENDPOINT    one shard worker ("unix:/path" or
 *                         "host:port"); repeat per shard
 *     --vnodes N          virtual ring points per shard (default 64)
 *     --window N          max in-flight requests per shard
 *                         (default 64)
 *     --retries N         stateless re-dispatches after a shard
 *                         death (default 2)
 *     --timeout-ms X      per-request queue deadline on the shard
 *     --seed N            base of the per-request seed chain
 *     --connect-ms X      how long to wait for booting shards
 *     --replication N     owner shards per key range (default 1);
 *                         N >= 2 gives stateless requests failover
 *                         replicas and every session a warm backup
 *     --hedge-ms X        hedged retry: duplicate a stateless
 *                         request onto a replica when its owner has
 *                         sat on it for X host ms (default off)
 *     --drain K@N         planned drain: after the N-th request has
 *                         been submitted, migrate every session off
 *                         shard K and retire it (repeatable; zero
 *                         dropped sessions is the contract)
 *     --swap-epoch SPEC   hot-swap the KB mid-run: "FILE@K" swaps
 *                         every shard to the .kbimg FILE after the
 *                         K-th request has been submitted (in-flight
 *                         traffic drains first; zero wrong answers)
 *     --answers-out FILE  write the canonical answer text (same
 *                         format as snapserve --answers-out)
 *     --lane-backend B    lane-kernel backend for this process:
 *                         auto|scalar|avx2|avx512 (default auto);
 *                         a backend this build or CPU lacks is a
 *                         usage error (exit 2)
 *     --trace-out FILE    write the router's Chrome trace-event
 *                         JSON: per-attempt rpc spans with "xrpc"
 *                         flow starts into the shards' traces, plus
 *                         the clock_sync offsets snaptrace merge
 *                         uses to align the process timelines
 *     --trace-categories L comma category list (default all)
 *     --trace-sample X    head-based sampling rate 0..1 (default 1
 *                         when --trace-out is given, else 0); the
 *                         decision is deterministic per request and
 *                         sticks across hedges/failover/migration
 *     --stats-interval-ms X pull every shard's metrics snapshot
 *                         over the wire every X ms (default off;
 *                         a final pull always happens when
 *                         --fleet-metrics is given)
 *     --fleet-metrics FILE write the aggregated fleet metrics
 *                         (router counters + per-shard snapshots
 *                         labelled shard="N")
 *     --fleet-metrics-format F json (default) | prometheus
 *     --slow-query-ms X   record requests slower than X host ms in
 *                         the structured slow-query log
 *     --slow-log FILE     write the slow-query log as JSON lines
 *                         (default stderr summary only)
 *     --shutdown          send Shutdown to every shard when done
 *     --quiet             suppress per-request result lines
 *
 * The request file format is snapserve's.  The router needs the same
 * knowledge base the shards serve only to assemble programs and to
 * print symbolic names; the compiled tables live in the shards.
 *
 * Stateless requests are hashed by Program::contentHash, sessions by
 * session id — a session's marker state accumulates on exactly one
 * shard.  See docs/sharding.md for the wire protocol and the epoch
 * state machine.
 *
 * Exit status: 0 on success (all requests answered Ok), 1 on user
 * error or any non-Ok answer / failed swap, 2 on a usage error or a
 * corrupt .kbimg.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arch/kb_image_io.hh"
#include "common/lane_backend.hh"
#include "common/logging.hh"
#include "common/metrics_registry.hh"
#include "common/strutil.hh"
#include "isa/assembler.hh"
#include "kb/kb_io.hh"
#include "runtime/validate.hh"
#include "shard/answers.hh"
#include "shard/router.hh"
#include "trace/trace.hh"

using namespace snap;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: snaprouter <kb> <requests.txt> --shard EP "
        "[--shard EP ...] [options]\n"
        "  --shard ENDPOINT    a shard worker (repeatable)\n"
        "  --vnodes N          ring points per shard (default 64)\n"
        "  --window N          max in-flight per shard (default 64)\n"
        "  --retries N         stateless re-dispatch budget "
        "(default 2)\n"
        "  --timeout-ms X      per-request deadline, host ms\n"
        "  --seed N            base request-seed chain\n"
        "  --connect-ms X      shard boot wait (default 15000)\n"
        "  --replication N     owner shards per key range "
        "(default 1)\n"
        "  --hedge-ms X        hedge stateless requests after X ms\n"
        "  --drain K@N         drain shard K after N submits "
        "(repeatable)\n"
        "  --swap-epoch FILE@K hot-swap to FILE after K submits\n"
        "  --answers-out FILE  write canonical answer text\n"
        "  --lane-backend B    auto|scalar|avx2|avx512 "
        "(default auto)\n"
        "  --trace-out FILE    write router Chrome trace JSON\n"
        "  --trace-categories L trace category list (default all)\n"
        "  --trace-sample X    sampling rate 0..1 (default 1 with "
        "--trace-out)\n"
        "  --stats-interval-ms X periodic shard metrics pull\n"
        "  --fleet-metrics FILE write aggregated fleet metrics\n"
        "  --fleet-metrics-format F json|prometheus\n"
        "  --slow-query-ms X   slow-query log threshold, host ms\n"
        "  --slow-log FILE     slow-query log as JSON lines\n"
        "  --shutdown          send Shutdown to shards when done\n"
        "  --quiet             suppress per-request lines\n");
    std::exit(2);
}

[[noreturn]] void
usageError(const char *msg)
{
    std::fprintf(stderr, "snaprouter: %s\n", msg);
    std::exit(2);
}

struct RequestSpec
{
    std::string sessionId;
    std::string progPath;
};

std::string
dirOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

std::vector<RequestSpec>
parseRequestFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        snap_fatal("cannot open request file '%s'", path.c_str());
    std::string base = dirOf(path);
    std::vector<RequestSpec> specs;
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::vector<std::string> tok = tokenize(body);
        RequestSpec spec;
        if (tok.size() == 2 && tok[0] == "query") {
            spec.progPath = tok[1];
        } else if (tok.size() == 3 && tok[0] == "session") {
            spec.sessionId = tok[1];
            spec.progPath = tok[2];
        } else {
            snap_fatal("%s:%d: expected 'query <prog>' or "
                       "'session <id> <prog>', got '%s'",
                       path.c_str(), lineno, body.c_str());
        }
        if (spec.progPath[0] != '/')
            spec.progPath = base + "/" + spec.progPath;
        specs.push_back(std::move(spec));
    }
    if (specs.empty())
        snap_fatal("request file '%s' holds no requests",
                   path.c_str());
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string kb_path = argv[1];
    std::string req_path = argv[2];

    shard::RouterConfig cfg;
    double timeout_ms = 0.0;
    std::uint64_t base_seed = 1;
    std::string answers_path;
    std::string swap_path;
    std::size_t swap_after = 0;
    // Planned drains, as (submit index, shard) pairs.
    std::vector<std::pair<std::size_t, std::uint32_t>> drains;
    bool do_shutdown = false;
    bool quiet = false;
    std::string trace_out;
    std::string trace_categories = "all";
    double trace_sample = -1.0; // unset: 1.0 with --trace-out else 0
    std::string fleet_metrics_path;
    std::string fleet_metrics_format = "json";
    std::string slow_log_path;

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--shard") {
            cfg.shards.push_back(next());
        } else if (arg == "--vnodes") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 4096)
                usageError("--vnodes must be 1..4096");
            cfg.vnodes = static_cast<std::uint32_t>(n);
        } else if (arg == "--window") {
            long long n;
            if (!parseInt(next(), n) || n < 1)
                usageError("--window must be >= 1");
            cfg.maxInflightPerShard = static_cast<std::uint32_t>(n);
        } else if (arg == "--retries") {
            long long n;
            if (!parseInt(next(), n) || n < 0 || n > 100)
                usageError("--retries must be 0..100");
            cfg.maxRetries = static_cast<std::uint32_t>(n);
        } else if (arg == "--timeout-ms") {
            double x;
            if (!parseDouble(next(), x) || x < 0)
                usageError("--timeout-ms must be >= 0");
            timeout_ms = x;
        } else if (arg == "--seed") {
            long long n;
            if (!parseInt(next(), n))
                usageError("--seed must be an integer");
            base_seed = static_cast<std::uint64_t>(n);
        } else if (arg == "--connect-ms") {
            double x;
            if (!parseDouble(next(), x) || x < 0)
                usageError("--connect-ms must be >= 0");
            cfg.connectTimeoutMs = x;
        } else if (arg == "--replication") {
            long long n;
            if (!parseInt(next(), n) || n < 1 || n > 64)
                usageError("--replication must be 1..64");
            cfg.replication = static_cast<std::uint32_t>(n);
        } else if (arg == "--hedge-ms") {
            double x;
            if (!parseDouble(next(), x) || x < 0)
                usageError("--hedge-ms must be >= 0");
            cfg.hedgeDelayMs = x;
        } else if (arg == "--drain") {
            std::string spec = next();
            std::size_t at = spec.find_last_of('@');
            long long k, n;
            if (at == std::string::npos || at == 0 ||
                !parseInt(spec.substr(0, at), k) ||
                !parseInt(spec.substr(at + 1), n) || k < 0 || n < 0)
                usageError("--drain must be K@N (drain shard K "
                           "after N submits)");
            drains.emplace_back(static_cast<std::size_t>(n),
                                static_cast<std::uint32_t>(k));
        } else if (arg == "--swap-epoch") {
            std::string spec = next();
            std::size_t at = spec.find_last_of('@');
            long long k;
            if (at == std::string::npos || at == 0 ||
                !parseInt(spec.substr(at + 1), k) || k < 0)
                usageError("--swap-epoch must be FILE@K");
            swap_path = spec.substr(0, at);
            swap_after = static_cast<std::size_t>(k);
        } else if (arg == "--answers-out") {
            answers_path = next();
        } else if (arg == "--lane-backend") {
            LaneBackend backend;
            if (!parseLaneBackend(next(), backend))
                usageError("--lane-backend must be "
                           "auto|scalar|avx2|avx512");
            std::string err;
            if (!setLaneBackend(backend, err))
                usageError(err.c_str());
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-categories") {
            trace_categories = next();
        } else if (arg == "--trace-sample") {
            double x;
            if (!parseDouble(next(), x) || x < 0.0 || x > 1.0)
                usageError("--trace-sample must be in 0..1");
            trace_sample = x;
        } else if (arg == "--stats-interval-ms") {
            double x;
            if (!parseDouble(next(), x) || x < 0.0)
                usageError("--stats-interval-ms must be >= 0");
            cfg.statsIntervalMs = x;
        } else if (arg == "--fleet-metrics") {
            fleet_metrics_path = next();
        } else if (arg == "--fleet-metrics-format") {
            fleet_metrics_format = next();
            if (fleet_metrics_format != "json" &&
                fleet_metrics_format != "prometheus")
                usageError("--fleet-metrics-format must be json or "
                           "prometheus");
        } else if (arg == "--slow-query-ms") {
            double x;
            if (!parseDouble(next(), x) || x < 0.0)
                usageError("--slow-query-ms must be >= 0");
            cfg.slowQueryMs = x;
        } else if (arg == "--slow-log") {
            slow_log_path = next();
        } else if (arg == "--shutdown") {
            do_shutdown = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (cfg.shards.empty())
        usageError("at least one --shard endpoint is required");
    for (const auto &d : drains) {
        if (d.second >= cfg.shards.size())
            usageError("--drain names a shard the fleet lacks");
    }
    std::stable_sort(drains.begin(), drains.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    // --trace-out without an explicit rate samples everything; a
    // rate without --trace-out still propagates context (shards can
    // trace even when the router does not).
    cfg.traceSample = trace_sample >= 0.0
                          ? trace_sample
                          : (trace_out.empty() ? 0.0 : 1.0);
    if (!trace_out.empty()) {
        std::uint32_t mask = 0;
        if (!trace::parseCategories(trace_categories, mask) ||
            mask == 0) {
            usageError("--trace-categories must be a comma list "
                       "from: all,instr,cluster,icn,sync,sem,fault,"
                       "machine,serve");
        }
        trace::start(mask);
    }

    // The router's copy of the KB exists for symbol resolution only.
    SemanticNetwork net;
    if (isKbImageFile(kb_path)) {
        KbImageFile kbf;
        std::string detail;
        KbImgStatus status = loadKbImageFile(kb_path, kbf, detail);
        if (status != KbImgStatus::Ok) {
            std::fprintf(stderr, "snaprouter: %s: %s (%s)\n",
                         kb_path.c_str(), kbImgStatusName(status),
                         detail.c_str());
            return 2;
        }
        net = std::move(kbf.net);
    } else {
        net = loadNetworkFile(kb_path);
    }

    std::vector<RequestSpec> specs = parseRequestFile(req_path);
    std::map<std::string, Program> progs;
    for (const RequestSpec &s : specs) {
        if (progs.count(s.progPath))
            continue;
        Program prog = assembleFile(s.progPath, net);
        auto violations = validateProgram(prog);
        for (const auto &v : violations)
            snap_warn("%s: %s", s.progPath.c_str(),
                      v.message.c_str());
        progs.emplace(s.progPath, std::move(prog));
    }

    shard::ShardRouter router(cfg);
    std::string detail;
    if (!router.connect(detail))
        snap_fatal("cannot connect shard fleet: %s", detail.c_str());
    std::printf("connected %u shard(s), image fingerprint %016llx, "
                "epoch %llu\n",
                router.numShards(),
                static_cast<unsigned long long>(router.fingerprint()),
                static_cast<unsigned long long>(router.epoch()));
    for (std::uint32_t s = 0; s < router.numShards(); ++s) {
        std::string err;
        if (!router.probeShard(s, err))
            snap_fatal("shard %u failed its health probe: %s", s,
                       err.c_str());
    }

    // Responses land on router reader threads in completion order;
    // park them by request index for ordered reporting.
    std::vector<shard::ResponseFrame> responses(specs.size());
    std::mutex resp_mu;

    bool swap_ok = true;
    bool drains_ok = true;
    std::string swap_err;
    std::size_t next_drain = 0;
    auto run_drains = [&](std::size_t submitted) {
        while (next_drain < drains.size() &&
               drains[next_drain].first <= submitted) {
            const std::uint32_t target = drains[next_drain].second;
            ++next_drain;
            std::string drain_err;
            if (router.drainShard(target, drain_err)) {
                std::printf("drained shard %u after %zu submits "
                            "(%llu sessions migrated so far)\n",
                            target, submitted,
                            static_cast<unsigned long long>(
                                router.migratedCount()));
            } else {
                drains_ok = false;
                snap_warn("drain of shard %u failed: %s", target,
                          drain_err.c_str());
            }
        }
    };
    for (std::size_t i = 0; i < specs.size(); ++i) {
        run_drains(i);
        if (!swap_path.empty() && i == swap_after) {
            // Live hot-swap: traffic submitted so far may still be
            // in flight; swapEpoch drains it, re-stamps every shard
            // from the new image, then resumes dispatch.
            swap_ok = router.swapEpoch(swap_path, swap_err);
            if (swap_ok) {
                std::printf("epoch %llu live (swapped to %s after "
                            "%zu submits)\n",
                            static_cast<unsigned long long>(
                                router.epoch()),
                            swap_path.c_str(), i);
            } else {
                snap_warn("epoch swap failed: %s", swap_err.c_str());
            }
        }
        shard::RouterRequest req;
        req.sessionId = specs[i].sessionId;
        req.prog = progs.at(specs[i].progPath);
        req.timeoutMs = timeout_ms;
        req.rngSeed = base_seed + i;
        router.submit(std::move(req),
                      [&responses, &resp_mu,
                       i](shard::ResponseFrame &&resp) {
                          std::lock_guard<std::mutex> lock(resp_mu);
                          responses[i] = std::move(resp);
                      });
    }
    run_drains(specs.size());
    if (!swap_path.empty() && swap_after >= specs.size()) {
        swap_ok = router.swapEpoch(swap_path, swap_err);
        if (!swap_ok)
            snap_warn("epoch swap failed: %s", swap_err.c_str());
    }
    router.drain();

    std::uint64_t ok = 0, bad = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const shard::ResponseFrame &resp = responses[i];
        if (resp.status == serve::RequestStatus::Ok)
            ++ok;
        else
            ++bad;
        if (quiet)
            continue;
        std::string kind = specs[i].sessionId.empty()
                               ? std::string("query")
                               : "session " + specs[i].sessionId;
        std::printf("request #%zu (%s): %s, sim %.1f us, queue "
                    "%.3f ms, lanes %u\n",
                    i, kind.c_str(),
                    serve::requestStatusName(resp.status),
                    ticksToUs(resp.wallTicks), resp.queueMs,
                    resp.batchLanes);
    }
    std::printf("\nrouted %llu ok, %llu failed over %u shard(s), "
                "%llu re-routed, %llu hedged, %llu sessions "
                "migrated, %llu failed over\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(bad),
                router.numShards(),
                static_cast<unsigned long long>(
                    router.rerouteCount()),
                static_cast<unsigned long long>(router.hedgeCount()),
                static_cast<unsigned long long>(
                    router.migratedCount()),
                static_cast<unsigned long long>(
                    router.failoverCount()));

    if (!answers_path.empty()) {
        std::ofstream os(answers_path);
        if (!os)
            snap_fatal("cannot open '%s' for writing",
                       answers_path.c_str());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            shard::writeAnswer(os, net, i, specs[i].sessionId,
                               responses[i].status,
                               responses[i].results);
        }
        std::printf("wrote canonical answers to %s\n",
                    answers_path.c_str());
    }

    if (!fleet_metrics_path.empty()) {
        // Final pull so the aggregated view reflects end-of-run
        // counters even without --stats-interval-ms.
        for (std::uint32_t s = 0; s < router.numShards(); ++s) {
            if (!router.shardHealthy(s))
                continue;
            shard::StatsSnapshotFrame snap;
            std::string err;
            if (!router.pullShardStats(s, snap, err))
                snap_warn("final stats pull: %s", err.c_str());
        }
        MetricsRegistry reg;
        router.exportFleetMetrics(reg);
        std::ofstream os(fleet_metrics_path);
        if (!os)
            snap_fatal("cannot open '%s' for writing",
                       fleet_metrics_path.c_str());
        if (fleet_metrics_format == "prometheus")
            reg.writePrometheus(os);
        else
            reg.writeJson(os);
        std::printf("wrote fleet metrics (%zu samples) to %s\n",
                    reg.size(), fleet_metrics_path.c_str());
    }

    if (cfg.slowQueryMs >= 0.0) {
        const std::vector<shard::SlowQuery> slow =
            router.slowQueries();
        if (!slow_log_path.empty()) {
            auto esc = [](const std::string &s) {
                std::string out;
                for (char c : s) {
                    if (c == '"' || c == '\\') {
                        out += '\\';
                        out += c;
                    } else if (static_cast<unsigned char>(c) <
                               0x20) {
                        out += formatString(
                            "\\u%04x", static_cast<unsigned>(
                                           static_cast<unsigned char>(
                                               c)));
                    } else {
                        out += c;
                    }
                }
                return out;
            };
            std::ofstream os(slow_log_path);
            if (!os)
                snap_fatal("cannot open '%s' for writing",
                           slow_log_path.c_str());
            for (const shard::SlowQuery &q : slow) {
                os << formatString(
                    "{\"trace_id\":\"0x%llx\",\"request_id\":%llu,"
                    "\"session\":\"%s\",\"total_ms\":%.3f,"
                    "\"winner\":%u,\"winner_kind\":\"%s\","
                    "\"retries\":%u,\"hedged\":%s,\"hops\":[",
                    static_cast<unsigned long long>(q.traceId),
                    static_cast<unsigned long long>(q.requestId),
                    esc(q.sessionId).c_str(), q.totalMs, q.winner,
                    q.winnerKind, q.retries,
                    q.hedged ? "true" : "false");
                for (std::size_t h = 0; h < q.hops.size(); ++h) {
                    const shard::RouterHop &hop = q.hops[h];
                    os << formatString(
                        "%s{\"shard\":%u,\"kind\":\"%s\","
                        "\"sent_ns\":%llu,\"span_id\":\"0x%llx\"}",
                        h ? "," : "", hop.shard, hop.kind,
                        static_cast<unsigned long long>(hop.sentNs),
                        static_cast<unsigned long long>(hop.spanId));
                }
                os << "]}\n";
            }
            std::printf("wrote %zu slow-query record(s) to %s\n",
                        slow.size(), slow_log_path.c_str());
        } else {
            std::printf("slow-query log: %zu request(s) took >= "
                        "%.1f ms\n",
                        slow.size(), cfg.slowQueryMs);
        }
    }

    if (do_shutdown)
        router.shutdownShards();

    if (!trace_out.empty()) {
        // Clock alignment table for `snaptrace merge`: per shard,
        // the shard-clock-minus-router-clock offset captured in the
        // Hello handshake.
        std::string sync;
        for (std::uint32_t s = 0; s < router.numShards(); ++s) {
            if (!sync.empty())
                sync += ",";
            sync += formatString(
                "%u:%lld", s,
                static_cast<long long>(router.shardClockOffsetNs(s)));
        }
        trace::setMeta("clock_sync", sync);
        trace::setMeta("trace_role", "router");
        trace::stop();
        if (trace::writeJsonFile(trace_out)) {
            std::printf("wrote trace to %s (%llu events dropped)\n",
                        trace_out.c_str(),
                        static_cast<unsigned long long>(
                            trace::droppedCount()));
        }
    }
    return (bad == 0 && swap_ok && drains_ok) ? 0 : 1;
}
