#include "sim/event_queue.hh"

#include <algorithm>

namespace snap
{

Event::~Event()
{
    snap_assert(!scheduled_,
                "event '%s' destroyed while scheduled",
                name_.c_str());
}

EventQueue::~EventQueue()
{
    // Pooled wrappers still sitting in the queue (simulation torn
    // down mid-flight) are owned by poolChunks_; silence the
    // still-scheduled assertion before the chunks are freed.
    std::uint64_t remaining = poolAllocs_;
    for (auto &chunk : poolChunks_) {
        const std::uint64_t used =
            std::min<std::uint64_t>(remaining, poolChunkSize);
        for (std::uint64_t i = 0; i < used; ++i)
            chunk[i].scheduled_ = false;
        remaining -= used;
    }
}

void
EventQueue::schedule(Event *event, Tick when)
{
    scheduleImpl(event, when);
}

void
EventQueue::insertOverflow(const Entry &e)
{
    overflow_.push(e);
}

void
EventQueue::insertSorted(Bucket &bk, const Entry &e)
{
    // Out-of-order arrivals still land near the tail (interleaved
    // wire-latency streams put them a handful of slots back, measured
    // ~5 on the fig17 trace), so a backward linear scan finds the slot
    // in a few well-predicted compares where a binary search would eat
    // log2(n) mispredicts.
    std::size_t i = bk.entries.size();
    const std::size_t lo = bk.drainPos;
    while (i > lo) {
        const Entry &p = bk.entries[i - 1];
        if (p.when < e.when || (p.when == e.when && p.seq < e.seq))
            break;
        --i;
    }
    bk.entries.insert(bk.entries.begin() + i, e);
}

std::uint32_t
EventQueue::nextOccupied(std::uint32_t cursor) const
{
    // Pass 1: buckets [cursor, numBuckets).
    std::uint32_t w = cursor >> 6;
    std::uint64_t word = occ_[w] & (~0ull << (cursor & 63));
    for (;;) {
        if (word)
            return (w << 6) +
                   static_cast<std::uint32_t>(__builtin_ctzll(word));
        if (++w == occ_.size())
            break;
        word = occ_[w];
    }
    // Pass 2 (wrap): buckets [0, cursor).
    const std::uint32_t cw = cursor >> 6;
    for (w = 0; w <= cw; ++w) {
        word = occ_[w];
        if (w == cw) {
            const std::uint32_t bits = cursor & 63;
            word &= bits ? ((1ull << bits) - 1) : 0ull;
        }
        if (word)
            return (w << 6) +
                   static_cast<std::uint32_t>(__builtin_ctzll(word));
    }
    return noBucket;
}

void
EventQueue::resetBucket(std::uint32_t b)
{
    Bucket &bk = buckets_[b];
    bk.entries.clear();
    bk.drainPos = 0;
    occ_[b >> 6] &= ~(1ull << (b & 63));
}

void
EventQueue::reclaimStale(Event *ev, const Entry &entry)
{
    // A stale entry normally belongs to an event that moved on
    // (rescheduled, fired, or recycled — its seq no longer matches).
    // The one case that still owns memory: a non-pooled auto-delete
    // one-shot descheduled and untouched since.  Its seq still
    // matches, so this entry — the only reference left — frees it.
    if (ev->scheduled_ || ev->seq_ != entry.seq)
        return;
    if (!ev->autoDelete_ || ev->pooled_ || ev->inFreeList_)
        return;
    delete ev;
}

EventQueue::Head
EventQueue::findHead()
{
    // Ring candidate: first occupied bucket in ring order from the
    // current-time cursor.  Ring entries are always within nearSpan
    // of curTick_ (delta < nearSpan at insert, and time only moves
    // forward), so no two entries in one bucket are a lap apart and
    // the first occupied bucket holds the ring minimum.
    Head head;
    if (ringCount_ != 0) {
        const std::uint32_t cursor =
            static_cast<std::uint32_t>(curTick_ >> bucketShift) &
            bucketMask;
        std::uint32_t b;
        while ((b = nextOccupied(cursor)) != noBucket) {
            Bucket &bk = buckets_[b];
            while (staleEntries_ != 0 &&
                   bk.drainPos < bk.entries.size() &&
                   stale(bk.entries[bk.drainPos])) {
                const Entry &e = bk.entries[bk.drainPos];
                reclaimStale(e.event, e);
                ++bk.drainPos;
                --ringCount_;
                --staleEntries_;
            }
            if (bk.drainPos == bk.entries.size()) {
                resetBucket(b);
                if (ringCount_ == 0)
                    break;
                continue;
            }
            const Entry &e = bk.entries[bk.drainPos];
            head.when = e.when;
            head.bucket = b;
            head.valid = true;
            break;
        }
    }

    // Heap candidate, pruning stale tops.
    while (!overflow_.empty()) {
        const Entry &top = overflow_.top();
        if (staleEntries_ != 0 && stale(top)) {
            reclaimStale(top.event, top);
            overflow_.pop();
            --staleEntries_;
            continue;
        }
        bool heapWins = !head.valid || top.when < head.when;
        if (!heapWins && top.when == head.when) {
            const Bucket &bk = buckets_[head.bucket];
            heapWins = top.seq < bk.entries[bk.drainPos].seq;
        }
        if (heapWins) {
            head.when = top.when;
            head.bucket = noBucket;
            head.valid = true;
        }
        break;
    }
    return head;
}

void
EventQueue::serviceHead(const Head &head)
{
    snap_assert(head.valid, "servicing an empty queue");
    hostprof::Scope hpq(hostprof::Phase::Queue);
    Event *ev;
    if (head.bucket != noBucket) {
        Bucket &bk = buckets_[head.bucket];
        ev = bk.entries[bk.drainPos].event;
        ++bk.drainPos;
        --ringCount_;
        if (bk.drainPos == bk.entries.size())
            resetBucket(head.bucket);
    } else {
        ev = overflow_.top().event;
        overflow_.pop();
    }

    snap_assert(head.when >= curTick_, "time went backwards");
    curTick_ = head.when;
    ev->scheduled_ = false;
    --live_;
    ++processed_;

    if (trace_) [[unlikely]]
        trace_->fanout.push_back(0);

    hostprof::Scope hpd(hostprof::Phase::Dispatch);
    if (ev->pooled_) {
        // Pooled one-shots are the hot case: call through the stored
        // function pointer directly (no virtual dispatch) and return
        // the wrapper to the free list.
        auto *cb = static_cast<PooledCallback *>(ev);
        cb->invoke_(cb->store_);
        recycle(cb);
    } else {
        ev->process();
        if (ev->autoDelete_)
            delete ev;
    }
}

void
EventQueue::deschedule(Event *event)
{
    snap_assert(event != nullptr && event->scheduled_,
                "descheduling an unscheduled event");
    // Lazy deletion: mark unscheduled; the stale queue entry is
    // discarded when it surfaces.  Pooled one-shots go straight back
    // to the free list (the pool keeps the storage alive, so the
    // stale entry is safe to examine later; its seq check rejects
    // any reuse).  Non-pooled auto-delete events must outlive their
    // stale entry and are freed when it surfaces (reclaimStale).
    event->scheduled_ = false;
    --live_;
    ++staleEntries_;
    if (event->pooled_)
        recycle(event);
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    snap_assert(event != nullptr && !event->autoDelete_,
                "rescheduling an auto-delete event");
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::recycle(Event *ev)
{
    auto *cb = static_cast<PooledCallback *>(ev);
    cb->reset();  // drop captured state now, not at reuse
    cb->inFreeList_ = true;
    cb->nextFree_ = freeHead_;
    freeHead_ = cb;
}

EventQueue::PooledCallback *
EventQueue::growPool()
{
    const std::uint64_t used = poolAllocs_ % poolChunkSize;
    if (used == 0)
        poolChunks_.push_back(
            std::make_unique<PooledCallback[]>(poolChunkSize));
    PooledCallback *cb = &poolChunks_.back()[used];
    cb->pooled_ = true;
    ++poolAllocs_;
    return cb;
}

void
EventQueue::clearPending()
{
    auto drop = [this](const Entry &e) {
        Event *ev = e.event;
        if (stale(e)) {
            snap_assert(staleEntries_ != 0,
                        "stale accounting underflow in clearPending");
            reclaimStale(ev, e);
            --staleEntries_;
            return;
        }
        ev->scheduled_ = false;
        --live_;
        if (ev->pooled_)
            recycle(ev);
        else if (ev->autoDelete_)
            delete ev;
    };
    for (std::uint32_t b = 0; b < numBuckets; ++b) {
        Bucket &bk = buckets_[b];
        for (std::size_t i = bk.drainPos; i < bk.entries.size(); ++i)
            drop(bk.entries[i]);
        if (!bk.entries.empty())
            resetBucket(b);
    }
    ringCount_ = 0;
    while (!overflow_.empty()) {
        drop(overflow_.top());
        overflow_.pop();
    }
    snap_assert(live_ == 0, "live events survived clearPending");
    snap_assert(staleEntries_ == 0,
                "stale entries survived clearPending");
}

// flatten: pull findHead/serviceHead into the dispatch loop; they are
// too large for the inliner's default budget but run once per event.
__attribute__((flatten)) std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t fired = 0;
    while (live_ != 0 && fired < max_events) {
        // Ring fast path: the first occupied bucket can be drained in
        // place up to the overflow head's tick.  The overflow bound
        // is loop-invariant for the bucket: new overflow pushes land
        // a full nearSpan past curTick, far beyond this bucket's
        // upper edge, so caching the head's tick at bucket entry is
        // safe.  Stale entries (lazily descheduled — the wire pumps
        // reschedule constantly) are pruned inline so they never
        // force the slow path.  Entries past drainPos stay sorted
        // even while events fire — a handler's new schedules land at
        // or after the drain point (insertSorted starts there) or in
        // a later bucket, never earlier.
        if (ringCount_ != 0) {
            const Tick ovfWhen =
                overflow_.empty() ? maxTick : overflow_.top().when;
            const std::uint32_t cursor =
                static_cast<std::uint32_t>(curTick_ >> bucketShift) &
                bucketMask;
            const std::uint32_t b = nextOccupied(cursor);
            Bucket &bk = buckets_[b];
            const std::uint64_t firedBefore = fired;
            while (bk.drainPos < bk.entries.size() &&
                   fired < max_events) {
                // Copy: the handler may grow this bucket's vector.
                hostprof::Scope hpq(hostprof::Phase::Queue);
                const Entry e = bk.entries[bk.drainPos];
                if (staleEntries_ != 0 && stale(e)) [[unlikely]] {
                    reclaimStale(e.event, e);
                    ++bk.drainPos;
                    --ringCount_;
                    --staleEntries_;
                    continue;
                }
                // At or past the overflow head, the heap must
                // arbitrate (a same-tick overflow entry can carry an
                // earlier sort key): drop to the slow path.
                if (e.when >= ovfWhen)
                    break;
                ++bk.drainPos;
                --ringCount_;
                snap_assert(e.when >= curTick_,
                            "time went backwards");
                curTick_ = e.when;
                Event *ev = e.event;
                ev->scheduled_ = false;
                --live_;
                ++processed_;
                ++fired;
                if (trace_) [[unlikely]]
                    trace_->fanout.push_back(0);
                hostprof::Scope hpd(hostprof::Phase::Dispatch);
                if (ev->pooled_) {
                    auto *cb = static_cast<PooledCallback *>(ev);
                    cb->invoke_(cb->store_);
                    recycle(cb);
                } else {
                    ev->process();
                    if (ev->autoDelete_)
                        delete ev;
                }
            }
            if (bk.drainPos == bk.entries.size())
                resetBucket(b);
            if (fired != firedBefore)
                continue;
        }
        serviceHead(findHead());
        ++fired;
    }
    return fired;
}

__attribute__((flatten)) std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t fired = 0;
    while (live_ != 0) {
        Head head = findHead();
        if (!head.valid || head.when > until)
            break;
        serviceHead(head);
        ++fired;
    }
    return fired;
}

__attribute__((flatten)) std::uint64_t
EventQueue::runBefore(Tick limit)
{
    std::uint64_t fired = 0;
    while (live_ != 0) {
        Head head = findHead();
        if (!head.valid || head.when >= limit)
            break;
        serviceHead(head);
        ++fired;
    }
    return fired;
}

} // namespace snap
