#include "sim/event_queue.hh"

namespace snap
{

Event::~Event()
{
    snap_assert(!scheduled_,
                "event '%s' destroyed while scheduled",
                name_.c_str());
}

void
EventQueue::schedule(Event *event, Tick when)
{
    snap_assert(event != nullptr, "scheduling null event");
    snap_assert(!event->scheduled_,
                "event '%s' already scheduled",
                event->name().c_str());
    snap_assert(when >= curTick_,
                "event '%s' scheduled in the past (%llu < %llu)",
                event->name().c_str(),
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curTick_));

    event->when_ = when;
    event->seq_ = nextSeq_++;
    event->scheduled_ = true;
    queue_.push(Entry{when, event->seq_, event});
    ++live_;
}

void
EventQueue::deschedule(Event *event)
{
    snap_assert(event != nullptr && event->scheduled_,
                "descheduling an unscheduled event");
    // Lazy deletion: mark unscheduled; the stale queue entry is
    // discarded when popped.
    event->scheduled_ = false;
    --live_;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::scheduleCallback(Tick when, std::function<void()> fn,
                             const std::string &name)
{
    class OneShot : public EventFunctionWrapper
    {
      public:
        OneShot(std::function<void()> f, std::string n)
            : EventFunctionWrapper(std::move(f), std::move(n))
        {
            setAutoDelete();
        }
    };
    schedule(new OneShot(std::move(fn), name), when);
}

void
EventQueue::serviceOne()
{
    Entry top = queue_.top();
    queue_.pop();

    Event *ev = top.event;
    // Discard entries for descheduled/rescheduled events.
    if (!ev->scheduled_ || ev->seq_ != top.seq)
        return;

    snap_assert(top.when >= curTick_, "time went backwards");
    curTick_ = top.when;
    ev->scheduled_ = false;
    --live_;
    ++processed_;

    bool auto_delete = ev->isAutoDelete();
    ev->process();
    if (auto_delete)
        delete ev;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t fired = 0;
    while (live_ != 0 && fired < max_events) {
        std::uint64_t before = processed_;
        serviceOne();
        fired += processed_ - before;
    }
    return fired;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t fired = 0;
    while (live_ != 0) {
        Entry top = queue_.top();
        if (!top.event->scheduled_ || top.event->seq_ != top.seq) {
            queue_.pop();
            continue;
        }
        if (top.when > until)
            break;
        std::uint64_t before = processed_;
        serviceOne();
        fired += processed_ - before;
    }
    if (curTick_ < until && live_ == 0) {
        // Queue drained before the horizon; time does not advance
        // past the last event.
    }
    return fired;
}

} // namespace snap
