/**
 * @file
 * Base classes for simulated hardware components.
 *
 * SimObject gives every component a hierarchical name and access to
 * the shared event queue.  ClockedObject adds a clock domain so
 * components express delays in their own cycles (the SNAP-1 array runs
 * at 25 MHz while the controller runs at 32 MHz).
 */

#ifndef SNAP_SIM_SIM_OBJECT_HH
#define SNAP_SIM_SIM_OBJECT_HH

#include <string>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace snap
{

/** Base class for every named simulated component. */
class SimObject
{
  public:
    SimObject(EventQueue *eq, std::string name)
        : eq_(eq), name_(std::move(name))
    {
        snap_assert(eq != nullptr, "SimObject '%s' without queue",
                    name_.c_str());
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue *eventQueue() const { return eq_; }
    Tick curTick() const { return eq_->curTick(); }

    /** Schedule @p ev at an absolute tick. */
    void schedule(Event *ev, Tick when) { eq_->schedule(ev, when); }

    /** Schedule @p ev @p delta ticks from now. */
    void
    scheduleRel(Event *ev, Tick delta)
    {
        eq_->schedule(ev, curTick() + delta);
    }

  private:
    EventQueue *eq_;
    std::string name_;
};

/** A SimObject with an associated clock. */
class ClockedObject : public SimObject
{
  public:
    /**
     * @param period_ps clock period in ticks (ps); e.g. 40000 for
     *        the 25 MHz array DSPs, 31250 for the 32 MHz controller.
     */
    ClockedObject(EventQueue *eq, std::string name, Tick period_ps)
        : SimObject(eq, std::move(name)), period_(period_ps)
    {
        snap_assert(period_ps > 0, "zero clock period");
    }

    Tick clockPeriod() const { return period_; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(std::uint64_t cycles) const
    {
        return cycles * period_;
    }

    /**
     * The next clock edge at or after `curTick() + cycles * period`.
     * Aligns to the clock grid, modeling synchronous devices.
     */
    Tick
    clockEdge(std::uint64_t cycles = 0) const
    {
        Tick now = curTick();
        Tick aligned = ((now + period_ - 1) / period_) * period_;
        return aligned + cycles * period_;
    }

  private:
    Tick period_;
};

} // namespace snap

#endif // SNAP_SIM_SIM_OBJECT_HH
