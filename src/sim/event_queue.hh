/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered event queue drives the whole SNAP-1 machine
 * model.  Ticks are picoseconds.  Events scheduled for the same tick
 * fire in FIFO scheduling order (a monotonically increasing sequence
 * number breaks ties) so simulations are fully deterministic.
 *
 * Two interchangeable storage backends share one semantic contract
 * (identical fire order for identical schedule calls):
 *
 *  - Impl::Indexed (default): a two-level queue.  Near-future events
 *    — within ~17 simulated microseconds of now, which covers most
 *    periodic machine events — live in a ring of time-indexed buckets
 *    addressed by `when >> bucketShift`, giving O(1) schedule and
 *    amortized O(1) pop for the common same-cycle / next-cycle cases.
 *    Far-future events overflow into a binary heap and are compared
 *    against the ring head at pop time, so ordering stays exact.
 *    One-shot callbacks come from an internal free-list pool with
 *    inline callable storage; after warm-up the steady state performs
 *    no per-event allocation of any kind.
 *
 *  - Impl::Heap: the seed revision's implementation — a single binary
 *    heap, with every scheduleCallback() heap-allocating a one-shot
 *    wrapper (std::function + name string) that is deleted after it
 *    fires.  Kept bit-faithful as the measurement baseline for
 *    bench/host_perf and as a cross-check in the unit tests.
 *
 * Descheduling is lazy in both backends: the event is marked
 * unscheduled and its stale queue entry is discarded when it
 * surfaces.  Unlike the seed, a descheduled one-shot no longer leaks:
 * pooled wrappers are recycled at deschedule time, heap-allocated
 * ones are freed when their stale entry surfaces.
 */

#ifndef SNAP_SIM_EVENT_QUEUE_HH
#define SNAP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/host_prof.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace snap
{

class EventQueue;

/**
 * Schedulable event.  Components own their events as members
 * (typically via EventFunctionWrapper) and reschedule them.
 */
class Event
{
  public:
    explicit Event(std::string name = "event")
        : name_(std::move(name))
    {}

    virtual ~Event();

    /** Callback invoked when the event fires. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is scheduled for (valid while scheduled). */
    Tick when() const { return when_; }

    const std::string &name() const { return name_; }

    /** One-shot events reclaimed by the queue after firing (or after
     *  a deschedule): pooled ones return to the free list, others are
     *  deleted.  Callers must not touch such an event once it has
     *  been handed to the queue. */
    bool isAutoDelete() const { return autoDelete_; }

    /**
     * Mark this event as wire class: at any given tick, wire-class
     * events fire before every normal event scheduled for the same
     * tick, regardless of scheduling order.  The parallel machine's
     * cross-shard delivery pumps use this so that staged arrivals are
     * applied ahead of same-tick local work in both the serial and
     * sharded execution modes — a precondition for bit-exactness.
     */
    void setWireClass() { wireClass_ = true; }
    bool isWireClass() const { return wireClass_; }

  protected:
    void setAutoDelete() { autoDelete_ = true; }

  private:
    friend class EventQueue;

    std::string name_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    bool scheduled_ = false;
    bool autoDelete_ = false;
    /** Owned by the queue's callback pool (recycled, never freed
     *  individually). */
    bool pooled_ = false;
    /** Pooled event currently parked on the free list. */
    bool inFreeList_ = false;
    /** Fires ahead of same-tick normal events (see setWireClass). */
    bool wireClass_ = false;
};

/** Event that invokes a bound std::function. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn, std::string name)
        : Event(std::move(name)), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * Schedule-trace instrumentation for bench/host_perf: the recorded
 * (delta, fanout) stream lets a replay reproduce a workload's exact
 * event arrival pattern against any queue backend.
 */
struct ScheduleTrace
{
    /** when - curTick for every schedule() call, in call order. */
    std::vector<Tick> deltas;
    /** schedule() calls made while each fired event ran. */
    std::vector<std::uint32_t> fanout;
    /** schedule() calls made before the first event fired. */
    std::uint32_t preRun = 0;
};

/**
 * The global event queue.
 */
class EventQueue
{
  public:
    /** Storage backend (identical semantics, different cost). */
    enum class Impl
    {
        Indexed,  ///< bucket ring + overflow heap (default)
        Heap,     ///< seed binary heap + per-event allocation
    };

    explicit EventQueue(Impl impl = Impl::Indexed)
        : indexed_(impl == Impl::Indexed)
    {
        occ_.fill(0);
    }
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    Impl impl() const
    {
        return indexed_ ? Impl::Indexed : Impl::Heap;
    }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p event at absolute tick @p when (>= curTick). */
    void schedule(Event *event, Tick when);

    /**
     * Remove a scheduled event from the queue.  A pooled one-shot is
     * recycled immediately; a non-pooled auto-delete event is freed
     * when its stale entry surfaces.  Either way the caller must not
     * use an auto-delete event after descheduling it.
     */
    void deschedule(Event *event);

    /** Deschedule (if needed) and schedule at a new tick.  Not valid
     *  for auto-delete events (the queue reclaims those). */
    void reschedule(Event *event, Tick when);

    /**
     * Convenience: schedule a one-shot callback.
     *
     * Indexed backend: the wrapper comes from an internal free-list
     * pool and stores the callable inline — steady-state operation
     * allocates nothing, and @p name is ignored (pooled wrappers are
     * all named "callback").  Heap backend: allocates a one-shot
     * wrapper per call, exactly as the seed revision did.
     */
    template <typename F>
    void
    scheduleCallback(Tick when, F &&fn,
                     const char *name = "callback")
    {
        if (!indexed_) {
            schedule(new HeapOneShot(
                         std::function<void()>(std::forward<F>(fn)),
                         name),
                     when);
            return;
        }
        PooledCallback *cb = acquireCallback();
        cb->assign(std::forward<F>(fn));
        scheduleImpl(cb, when);
    }

    /** True when no events remain. */
    bool empty() const { return live_ != 0 ? false : true; }

    /** Number of live (scheduled) events. */
    std::size_t numScheduled() const { return live_; }

    /**
     * Run until the queue drains or @p max_events fire.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = ~0ull);

    /**
     * Run until simulated time would exceed @p until (events at
     * exactly @p until still fire).  @return events processed.
     */
    std::uint64_t runUntil(Tick until);

    /**
     * Run every event strictly before @p limit (events at exactly
     * @p limit do NOT fire).  The parallel machine's window driver:
     * one conservative lookahead window is [T, T + W), exclusive at
     * the upper edge so a window-boundary arrival belongs to the next
     * window.  curTick() is left at the last processed event, not
     * advanced to the boundary.  @return events processed.
     */
    std::uint64_t runBefore(Tick limit);

    /** Tick of the earliest pending event (maxTick when empty).
     *  Prunes lazily-descheduled entries while looking. */
    Tick
    nextEventTick()
    {
        if (live_ == 0)
            return maxTick;
        Head head = findHead();
        return head.valid ? head.when : maxTick;
    }

    /**
     * Jump simulated time forward to @p when on an empty queue.  The
     * sharded machine uses it to realign every shard's clock to the
     * common run-start tick (shards finish a run at slightly
     * different curTicks once their last local events differ).
     */
    void
    advanceTo(Tick when)
    {
        snap_assert(live_ == 0, "advanceTo on a non-empty queue");
        snap_assert(when >= curTick_, "advanceTo into the past");
        curTick_ = when;
    }

    /**
     * Discard every pending event without firing it.  Pooled one-shots
     * return to the free list, non-pooled auto-delete events are freed,
     * component-owned events are left unscheduled (safe to destroy or
     * reschedule).  Simulated time does not move.  Used to abort a
     * wedged machine run before the component graph is rebuilt.
     */
    void clearPending();

    /** Total events processed over the queue's lifetime. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** Record every schedule into @p trace (nullptr stops). */
    void recordTrace(ScheduleTrace *trace) { trace_ = trace; }

    // --- callback-pool statistics ---------------------------------------

    /** One-shot wrappers ever heap-allocated (pool growth). */
    std::uint64_t callbackPoolAllocated() const { return poolAllocs_; }
    /** scheduleCallback calls served from the free list. */
    std::uint64_t callbackPoolReused() const { return poolReuses_; }
    /** Wrappers currently parked on the free list. */
    std::size_t
    callbackPoolFree() const
    {
        std::size_t n = 0;
        for (PooledCallback *cb = freeHead_; cb;
             cb = cb->nextFree_)
            ++n;
        return n;
    }

  private:
    /**
     * One-shot callback wrapper owned by the queue's pool.  The
     * callable lives in a fixed inline buffer — assigning and firing
     * it never touches the heap, unlike std::function whose capture
     * spills to an allocation past the small-object threshold.
     */
    class PooledCallback : public Event
    {
      public:
        PooledCallback() : Event("callback") { setAutoDelete(); }
        ~PooledCallback() override { reset(); }

        template <typename F>
        void
        assign(F &&fn)
        {
            using Fn = std::decay_t<F>;
            static_assert(sizeof(Fn) <= storeSize,
                          "callback capture exceeds inline storage");
            static_assert(alignof(Fn) <= alignof(std::max_align_t),
                          "callback alignment exceeds inline storage");
            new (store_) Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            // Trivially destructible captures (the common case) leave
            // destroy_ null so recycling skips the indirect call.
            if constexpr (!std::is_trivially_destructible_v<Fn>)
                destroy_ = [](void *p) {
                    static_cast<Fn *>(p)->~Fn();
                };
            else
                destroy_ = nullptr;
        }

        /** Destroy the stored callable (captures released now).
         *  invoke_ is left dangling on purpose: assign() overwrites
         *  it before the wrapper can be scheduled again. */
        void
        reset()
        {
            if (destroy_)
                destroy_(store_);
            destroy_ = nullptr;
        }

        void process() override { invoke_(store_); }

      private:
        friend class EventQueue;

        static constexpr std::size_t storeSize = 64;

        // invoke_ sits ahead of the callable buffer so the dispatch
        // pointer shares a cache line with the Event bookkeeping the
        // queue just touched.
        void (*invoke_)(void *) = nullptr;
        void (*destroy_)(void *) = nullptr;
        /** Intrusive free-list link (valid while inFreeList_). */
        PooledCallback *nextFree_ = nullptr;
        alignas(std::max_align_t) unsigned char store_[storeSize];
    };

    /** Seed-style one-shot: heap-allocated per call, deleted after
     *  firing (Impl::Heap measurement baseline). */
    class HeapOneShot : public EventFunctionWrapper
    {
      public:
        HeapOneShot(std::function<void()> fn, std::string name)
            : EventFunctionWrapper(std::move(fn), std::move(name))
        {
            setAutoDelete();
        }
    };

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    // Ring geometry: 4096 buckets of 2^12 ticks (4.096 ns) each — a
    // 2^24-tick (~16.8 us) near-future window.  Most machine delays
    // (unit cycle costs, one wire hop) land within it; longer delays
    // (multi-hop ICN transfers, barrier timeouts) take the overflow
    // heap, whose cached head tick gates the fast path per bucket.
    // Fine buckets keep each bucket's entry list near-sorted on
    // arrival, so inserts are tail appends or short backward scans;
    // this geometry measured ~15% faster on the fig17 replay than
    // the earlier 4096 x 2^17 window that kept everything ringed.
    /** Event-class bit folded into the (when, seq) sort key: clear
     *  for wire-class events, set for normal ones, so wire events
     *  sort first within a tick and FIFO order holds within each
     *  class.  nextSeq_ can never reach bit 63. */
    static constexpr std::uint64_t normalClassBit = 1ull << 63;

    static constexpr std::uint32_t bucketShift = 12;
    static constexpr std::uint32_t numBuckets = 4096;
    static constexpr std::uint32_t bucketMask = numBuckets - 1;
    static constexpr Tick nearSpan = Tick{numBuckets} << bucketShift;
    static constexpr std::uint32_t noBucket = ~0u;

    /** Time-indexed bucket: entries sorted by (when, seq); the
     *  first drainPos entries have already been consumed. */
    struct Bucket
    {
        std::vector<Entry> entries;
        std::uint32_t drainPos = 0;
    };

    /** Where the next event to fire lives. */
    struct Head
    {
        Tick when = 0;
        std::uint32_t bucket = noBucket;  ///< noBucket: heap head
        bool valid = false;
    };

    /** Locate the earliest live entry, pruning stale ones.
     *  Pre: live_ != 0. */
    Head findHead();
    /** Pop the entry found by findHead() and fire it. */
    void serviceHead(const Head &head);

    /** Shared body of schedule(); force-inlined so the pooled
     *  scheduleCallback path compiles to straight-line code. */
    __attribute__((always_inline)) inline void
    scheduleImpl(Event *event, Tick when)
    {
        hostprof::Scope hp(hostprof::Phase::Queue);
        snap_assert(event != nullptr, "scheduling null event");
        snap_assert(!event->scheduled_,
                    "event '%s' already scheduled",
                    event->name().c_str());
        snap_assert(when >= curTick_,
                    "event '%s' scheduled in the past (%llu < %llu)",
                    event->name().c_str(),
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(curTick_));

        // The sort key is (when, seq); the wire/normal class rides in
        // the sequence number's top bit (wire = 0) so wire-class
        // events order ahead of every same-tick normal event without
        // widening Entry or touching any comparison site.
        event->when_ = when;
        event->seq_ = nextSeq_++ |
                      (event->wireClass_ ? 0 : normalClassBit);
        event->scheduled_ = true;
        ++live_;

        if (trace_) [[unlikely]] {
            trace_->deltas.push_back(when - curTick_);
            if (trace_->fanout.empty())
                ++trace_->preRun;
            else
                ++trace_->fanout.back();
        }

        Entry e{when, event->seq_, event};
        if (indexed_ && when - curTick_ < nearSpan)
            insertRing(e);
        else
            insertOverflow(e);
    }

    /** Far-future (or Heap-impl) arrival: push onto the heap. */
    void insertOverflow(const Entry &e);

    void
    insertRing(const Entry &e)
    {
        const std::uint32_t b =
            static_cast<std::uint32_t>(e.when >> bucketShift) &
            bucketMask;
        Bucket &bk = buckets_[b];

        // New entries almost always sort after everything already in
        // the bucket (both time and seq grow), so probe the back.
        if (bk.entries.empty() || bk.entries.back().when < e.when ||
            (bk.entries.back().when == e.when &&
             bk.entries.back().seq < e.seq)) {
            bk.entries.push_back(e);
        } else {
            insertSorted(bk, e);
        }

        ++ringCount_;
        occ_[b >> 6] |= 1ull << (b & 63);
    }
    /** Out-of-order arrival: sorted insert past the drain point. */
    void insertSorted(Bucket &bk, const Entry &e);
    /** First occupied bucket at or after the cursor, in ring order
     *  (cursor .. end, then wrap); noBucket when the ring is empty. */
    std::uint32_t nextOccupied(std::uint32_t cursor) const;
    void resetBucket(std::uint32_t b);

    /** Reclaim a one-shot whose stale entry surfaced (descheduled
     *  and never recycled / rescheduled since). */
    void reclaimStale(Event *ev, const Entry &entry);
    void recycle(Event *ev);
    /** Pop a wrapper off the free list, growing the pool if empty. */
    PooledCallback *
    acquireCallback()
    {
        PooledCallback *cb = freeHead_;
        if (!cb) [[unlikely]]
            return growPool();
        freeHead_ = cb->nextFree_;
        cb->inFreeList_ = false;
        ++poolReuses_;
        return cb;
    }
    /** Heap-allocate a fresh pooled wrapper (cold path). */
    PooledCallback *growPool();

    bool
    stale(const Entry &e) const
    {
        return !e.event->scheduled_ || e.event->seq_ != e.seq;
    }

    bool indexed_;

    std::array<Bucket, numBuckets> buckets_;
    std::array<std::uint64_t, numBuckets / 64> occ_;
    std::size_t ringCount_ = 0;  ///< entries in the ring, incl. stale

    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> overflow_;

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t live_ = 0;
    /** Stale (lazily descheduled) entries still sitting in the ring
     *  or heap.  Zero lets the pop path skip stale checks outright —
     *  deschedules are rare in machine runs and the common pop is
     *  pure fast path. */
    std::size_t staleEntries_ = 0;

    ScheduleTrace *trace_ = nullptr;

    // Callback pool.  Wrappers are carved out of contiguous chunks —
    // a pool that tracks the queue's high-water mark stays packed in
    // a handful of cache-resident slabs instead of strewn across the
    // heap one allocation per wrapper.
    static constexpr std::size_t poolChunkSize = 64;
    std::vector<std::unique_ptr<PooledCallback[]>> poolChunks_;
    PooledCallback *freeHead_ = nullptr;
    std::uint64_t poolAllocs_ = 0;
    std::uint64_t poolReuses_ = 0;
};

} // namespace snap

#endif // SNAP_SIM_EVENT_QUEUE_HH
