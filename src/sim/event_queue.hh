/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered event queue drives the whole SNAP-1 machine
 * model.  Ticks are picoseconds.  Events scheduled for the same tick
 * fire in FIFO scheduling order (a monotonically increasing sequence
 * number breaks ties) so simulations are fully deterministic.
 */

#ifndef SNAP_SIM_EVENT_QUEUE_HH
#define SNAP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace snap
{

class EventQueue;

/**
 * Schedulable event.  Components own their events as members
 * (typically via EventFunctionWrapper) and reschedule them.
 */
class Event
{
  public:
    explicit Event(std::string name = "event")
        : name_(std::move(name))
    {}

    virtual ~Event();

    /** Callback invoked when the event fires. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is scheduled for (valid while scheduled). */
    Tick when() const { return when_; }

    const std::string &name() const { return name_; }

    /** One-shot heap events delete themselves after firing. */
    bool isAutoDelete() const { return autoDelete_; }

  protected:
    void setAutoDelete() { autoDelete_ = true; }

  private:
    friend class EventQueue;

    std::string name_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    bool scheduled_ = false;
    bool autoDelete_ = false;
};

/** Event that invokes a bound std::function. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn, std::string name)
        : Event(std::move(name)), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * The global event queue.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p event at absolute tick @p when (>= curTick). */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *event);

    /** Deschedule (if needed) and schedule at a new tick. */
    void reschedule(Event *event, Tick when);

    /**
     * Convenience: schedule a one-shot heap-allocated callback.
     * The wrapper deletes itself after firing.
     */
    void scheduleCallback(Tick when, std::function<void()> fn,
                          const std::string &name = "callback");

    /** True when no events remain. */
    bool empty() const { return live_ != 0 ? false : true; }

    /** Number of live (scheduled) events. */
    std::size_t numScheduled() const { return live_; }

    /**
     * Run until the queue drains or @p max_events fire.
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t max_events = ~0ull);

    /**
     * Run until simulated time would exceed @p until (events at
     * exactly @p until still fire).  @return events processed.
     */
    std::uint64_t runUntil(Tick until);

    /** Total events processed over the queue's lifetime. */
    std::uint64_t eventsProcessed() const { return processed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Pop and fire the head event.  Pre: !empty(). */
    void serviceOne();

    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t live_ = 0;
};

} // namespace snap

#endif // SNAP_SIM_EVENT_QUEUE_HH
