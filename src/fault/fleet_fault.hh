#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace snap
{

/**
 * Deterministic fault injection for the *fleet* layer — the shard
 * wire protocol between snaprouter and its shard workers — composing
 * with the machine-level FaultSpec the same way the real SNAP array
 * composes processor faults with interconnect faults.
 *
 * Injection happens on the shard side of the connection, in the
 * Response write path: a response can be delayed (slow shard),
 * corrupted in place (byzantine payload, caught by the protocol's
 * FNV-1a64 response checksum), truncated mid-frame, or the whole
 * connection dropped without a goodbye.  Shard process kill/restart
 * is driven from outside (the chaos soak / CI), not from this spec.
 *
 * Decisions come from the same salted splitmix64 per-kind streams as
 * FaultPlan: every roll is a pure function of (seed, kind, per-kind
 * draw counter).  Responses complete in host completion order, so
 * the *assignment* of faults to responses varies run to run, but the
 * fault stream itself — which rolls fire, in which order per kind —
 * is seed-reproducible.
 */

/// Everything the fleet layer can inject, indexing per-kind counters.
enum class FleetFaultKind : std::uint8_t {
    ConnDrop = 0,  ///< connection shut down instead of responding
    Truncate,      ///< frame header sent, payload cut short, then EOF
    Corrupt,       ///< one response payload byte flipped (byzantine)
    Delay,         ///< response held back delayMs (slow shard)
    NumKinds,
};

constexpr std::size_t numFleetFaultKinds =
    static_cast<std::size_t>(FleetFaultKind::NumKinds);

const char *fleetFaultKindName(FleetFaultKind k);

/// Static description of a fleet fault workload.  All-zero rates mean
/// "no plan at all": the shard write path is byte-identical to one
/// carrying no spec.
struct FleetFaultSpec {
    std::uint64_t seed = 0;

    // Per-response rates: probability per Response write.
    double connDropRate = 0.0;
    double truncateRate = 0.0;
    double corruptRate = 0.0;
    double delayRate = 0.0;

    /// Slow-shard magnitude (host milliseconds).
    double delayMs = 25.0;

    /// True when any rate is non-zero.
    bool any() const;

    /// Range-check every field; snap_fatal on nonsense.
    void validate() const;

    /// Convenience for the tools' --fleet-fault-rate flag: aggregate
    /// rate @p rate split 25% drop / 25% truncate / 25% corrupt /
    /// 25% delay.
    static FleetFaultSpec wireFaults(std::uint64_t seed, double rate);

    /// Serialize to a JSON object (stable key order).
    std::string toJson() const;

    /// Parse JSON produced by toJson() (or hand-written with the same
    /// keys).  Unknown keys ignored; missing keys keep defaults.
    static bool fromJson(const std::string &text, FleetFaultSpec &out);
};

/**
 * The live schedule.  One plan per shard server; rolls arrive from
 * concurrent per-connection/worker threads, so the per-kind counters
 * sit behind a mutex — cross-kind draw independence and per-kind
 * stream determinism still hold.
 */
class FleetFaultPlan
{
  public:
    explicit FleetFaultPlan(const FleetFaultSpec &spec);

    const FleetFaultSpec &spec() const { return spec_; }

    // Each roll advances its kind's counter exactly once per call,
    // hit or miss, so one site's history is independent of the
    // others' rates.
    bool rollConnDrop();
    bool rollTruncate();
    bool rollCorrupt();
    bool rollDelay();

    /// Raw entropy on @p k's stream (e.g. corrupt byte index).
    std::uint64_t draw(FleetFaultKind k);

    // Injection tallies (what fired).
    std::uint64_t connDrops() const { return get(connDrops_); }
    std::uint64_t truncates() const { return get(truncates_); }
    std::uint64_t corrupts() const { return get(corrupts_); }
    std::uint64_t delays() const { return get(delays_); }
    std::uint64_t injected() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return connDrops_ + truncates_ + corrupts_ + delays_;
    }

  private:
    bool rollOn(FleetFaultKind k, double rate);

    std::uint64_t
    get(const std::uint64_t &field) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return field;
    }

    FleetFaultSpec spec_;
    mutable std::mutex mu_;
    std::uint64_t counters_[numFleetFaultKinds] = {};
    std::uint64_t connDrops_ = 0;
    std::uint64_t truncates_ = 0;
    std::uint64_t corrupts_ = 0;
    std::uint64_t delays_ = 0;
};

} // namespace snap
