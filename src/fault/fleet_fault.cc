#include "fault/fleet_fault.hh"

#include <sstream>

#include "common/logging.hh"
#include "fault/fault_plan.hh"

namespace snap
{

namespace
{

/// Per-kind stream salts (arbitrary odd constants, distinct from the
/// machine FaultPlan's so composed specs sharing a seed stay
/// independent).
constexpr std::uint64_t kindSalt[numFleetFaultKinds] = {
    0x6a09e667f3bcc909ull, // ConnDrop
    0xbb67ae8584caa73bull, // Truncate
    0x3c6ef372fe94f82bull, // Corrupt
    0xa54ff53a5f1d36f1ull, // Delay
};

double
rateOf(const FleetFaultSpec &s, FleetFaultKind k)
{
    switch (k) {
      case FleetFaultKind::ConnDrop: return s.connDropRate;
      case FleetFaultKind::Truncate: return s.truncateRate;
      case FleetFaultKind::Corrupt: return s.corruptRate;
      case FleetFaultKind::Delay: return s.delayRate;
      default: return 0.0;
    }
}

void
jsonNum(std::ostringstream &os, const char *key, double v, bool comma)
{
    os << "  \"" << key << "\": " << formatString("%.17g", v)
       << (comma ? "," : "") << "\n";
}

/// Find `"key"` in @p text and parse the number after the colon.
/// Returns false when the key is absent, sets *bad when present but
/// malformed.
bool
jsonFind(const std::string &text, const char *key, double &out, bool *bad)
{
    std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':'))
        ++pos;
    char *end = nullptr;
    double v = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) {
        *bad = true;
        return false;
    }
    out = v;
    return true;
}

bool
jsonFindU64(const std::string &text, const char *key,
            std::uint64_t &out, bool *bad)
{
    std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':'))
        ++pos;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos) {
        *bad = true;
        return false;
    }
    out = v;
    return true;
}

} // namespace

const char *
fleetFaultKindName(FleetFaultKind k)
{
    switch (k) {
      case FleetFaultKind::ConnDrop: return "conn_drop";
      case FleetFaultKind::Truncate: return "truncate";
      case FleetFaultKind::Corrupt: return "corrupt";
      case FleetFaultKind::Delay: return "delay";
      default: return "?";
    }
}

// --- FleetFaultSpec --------------------------------------------------

bool
FleetFaultSpec::any() const
{
    for (std::size_t k = 0; k < numFleetFaultKinds; ++k)
        if (rateOf(*this, static_cast<FleetFaultKind>(k)) > 0.0)
            return true;
    return false;
}

void
FleetFaultSpec::validate() const
{
    for (std::size_t k = 0; k < numFleetFaultKinds; ++k) {
        FleetFaultKind kind = static_cast<FleetFaultKind>(k);
        double r = rateOf(*this, kind);
        if (!(r >= 0.0 && r <= 1.0))
            snap_fatal("fleet fault rate %s=%g outside [0,1]",
                       fleetFaultKindName(kind), r);
    }
    if (!(delayMs >= 0.0))
        snap_fatal("fleet fault delay_ms %g must be >= 0", delayMs);
}

FleetFaultSpec
FleetFaultSpec::wireFaults(std::uint64_t seed, double rate)
{
    if (!(rate >= 0.0 && rate <= 1.0))
        snap_fatal("--fleet-fault-rate %g outside [0,1]", rate);
    FleetFaultSpec s;
    s.seed = seed;
    s.connDropRate = rate * 0.25;
    s.truncateRate = rate * 0.25;
    s.corruptRate = rate * 0.25;
    s.delayRate = rate * 0.25;
    return s;
}

std::string
FleetFaultSpec::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": " << seed << ",\n";
    jsonNum(os, "conn_drop", connDropRate, true);
    jsonNum(os, "truncate", truncateRate, true);
    jsonNum(os, "corrupt", corruptRate, true);
    jsonNum(os, "delay", delayRate, true);
    jsonNum(os, "delay_ms", delayMs, false);
    os << "}\n";
    return os.str();
}

bool
FleetFaultSpec::fromJson(const std::string &text, FleetFaultSpec &out)
{
    if (text.find('{') == std::string::npos)
        return false;
    FleetFaultSpec s;
    bool bad = false;
    double v = 0.0;
    std::uint64_t u = 0;
    if (jsonFindU64(text, "seed", u, &bad))
        s.seed = u;
    if (jsonFind(text, "conn_drop", v, &bad))
        s.connDropRate = v;
    if (jsonFind(text, "truncate", v, &bad))
        s.truncateRate = v;
    if (jsonFind(text, "corrupt", v, &bad))
        s.corruptRate = v;
    if (jsonFind(text, "delay", v, &bad))
        s.delayRate = v;
    if (jsonFind(text, "delay_ms", v, &bad))
        s.delayMs = v;
    if (bad)
        return false;
    out = s;
    return true;
}

// --- FleetFaultPlan --------------------------------------------------

FleetFaultPlan::FleetFaultPlan(const FleetFaultSpec &spec) : spec_(spec)
{
    spec_.validate();
}

std::uint64_t
FleetFaultPlan::draw(FleetFaultKind k)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t i = static_cast<std::size_t>(k);
    std::uint64_t x = spec_.seed;
    x ^= kindSalt[i];
    x += 0x9e3779b97f4a7c15ull * (counters_[i]++ + 1);
    return splitmix64(x);
}

bool
FleetFaultPlan::rollOn(FleetFaultKind k, double rate)
{
    // Advance the stream exactly once per visit even at rate 0, so a
    // site's draw history is independent of the other sites' rates.
    return static_cast<double>(draw(k) >> 11) * 0x1.0p-53 < rate;
}

bool
FleetFaultPlan::rollConnDrop()
{
    if (!rollOn(FleetFaultKind::ConnDrop, spec_.connDropRate))
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    ++connDrops_;
    return true;
}

bool
FleetFaultPlan::rollTruncate()
{
    if (!rollOn(FleetFaultKind::Truncate, spec_.truncateRate))
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    ++truncates_;
    return true;
}

bool
FleetFaultPlan::rollCorrupt()
{
    if (!rollOn(FleetFaultKind::Corrupt, spec_.corruptRate))
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    ++corrupts_;
    return true;
}

bool
FleetFaultPlan::rollDelay()
{
    if (!rollOn(FleetFaultKind::Delay, spec_.delayRate))
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    ++delays_;
    return true;
}

} // namespace snap
