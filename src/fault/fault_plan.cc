#include "fault/fault_plan.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "isa/program.hh"
#include "runtime/marker_store.hh"
#include "runtime/results.hh"

namespace snap
{

namespace
{

/// Per-kind stream salt so the eight draw streams never collide even
/// when their counters track each other.
constexpr std::uint64_t kindSalt[numFaultKinds] = {
    0xa3c59ac2f1d0e7b5ull, 0x1f83d9abfb41bd6bull,
    0x5be0cd19137e2179ull, 0x9b05688c2b3e6c1full,
    0x510e527fade682d1ull, 0xbb67ae8584caa73bull,
    0x3c6ef372fe94f82bull, 0xa54ff53a5f1d36f1ull,
};

double
rateOf(const FaultSpec &s, FaultKind k)
{
    switch (k) {
      case FaultKind::IcnDrop: return s.icnDropRate;
      case FaultKind::IcnCorrupt: return s.icnCorruptRate;
      case FaultKind::IcnDelay: return s.icnDelayRate;
      case FaultKind::SemStall: return s.semStallRate;
      case FaultKind::MarkerFlip: return s.markerFlipRate;
      case FaultKind::MarkerStick: return s.markerStickRate;
      case FaultKind::SyncWedge: return s.syncWedgeRate;
      case FaultKind::DeadCluster: return s.deadClusterRate;
      default: return 0.0;
    }
}

void
jsonNum(std::ostringstream &os, const char *key, double v, bool comma)
{
    os << "  \"" << key << "\": " << formatString("%.17g", v)
       << (comma ? "," : "") << "\n";
}

/// Find `"key"` in @p text and parse the number after the colon.
/// Returns false when the key is absent, sets *bad when present but
/// malformed.
bool
jsonFind(const std::string &text, const char *key, double &out, bool *bad)
{
    std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':'))
        ++pos;
    char *end = nullptr;
    double v = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) {
        *bad = true;
        return false;
    }
    out = v;
    return true;
}

/// Exact unsigned-64 variant: a double round-trip would shave the low
/// bits off any seed above 2^53.
bool
jsonFindU64(const std::string &text, const char *key,
            std::uint64_t &out, bool *bad)
{
    std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':'))
        ++pos;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos) {
        *bad = true;
        return false;
    }
    out = v;
    return true;
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::IcnDrop: return "icn_drop";
      case FaultKind::IcnCorrupt: return "icn_corrupt";
      case FaultKind::IcnDelay: return "icn_delay";
      case FaultKind::SemStall: return "sem_stall";
      case FaultKind::MarkerFlip: return "marker_flip";
      case FaultKind::MarkerStick: return "marker_stick";
      case FaultKind::SyncWedge: return "sync_wedge";
      case FaultKind::DeadCluster: return "dead_cluster";
      default: return "?";
    }
}

// --- FaultSpec -------------------------------------------------------

bool
FaultSpec::any() const
{
    for (std::size_t k = 0; k < numFaultKinds; ++k)
        if (rateOf(*this, static_cast<FaultKind>(k)) > 0.0)
            return true;
    return false;
}

void
FaultSpec::validate() const
{
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        FaultKind kind = static_cast<FaultKind>(k);
        double r = rateOf(*this, kind);
        if (!(r >= 0.0 && r <= 1.0))
            snap_fatal("fault rate %s=%g outside [0,1]",
                       faultKindName(kind), r);
    }
    if (scheduleWindowTicks == 0)
        snap_fatal("fault scheduleWindowTicks must be > 0");
    if (watchdogTicks == 0 && (syncWedgeRate > 0.0 ||
                               deadClusterRate > 0.0 ||
                               icnDropRate > 0.0))
        snap_fatal("faults that can wedge a run require a non-zero "
                   "watchdogTicks budget");
}

FaultSpec
FaultSpec::messageFaults(std::uint64_t seed, double rate)
{
    if (!(rate >= 0.0 && rate <= 1.0))
        snap_fatal("--fault-rate %g outside [0,1]", rate);
    FaultSpec s;
    s.seed = seed;
    s.icnDropRate = rate * 0.4;
    s.icnCorruptRate = rate * 0.4;
    s.icnDelayRate = rate * 0.2;
    return s;
}

std::string
FaultSpec::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": " << seed << ",\n";
    jsonNum(os, "icn_drop", icnDropRate, true);
    jsonNum(os, "icn_corrupt", icnCorruptRate, true);
    jsonNum(os, "icn_delay", icnDelayRate, true);
    jsonNum(os, "sem_stall", semStallRate, true);
    jsonNum(os, "marker_flip", markerFlipRate, true);
    jsonNum(os, "marker_stick", markerStickRate, true);
    jsonNum(os, "sync_wedge", syncWedgeRate, true);
    jsonNum(os, "dead_cluster", deadClusterRate, true);
    os << "  \"icn_delay_ticks\": " << icnDelayTicks << ",\n";
    os << "  \"sem_stall_ticks\": " << semStallTicks << ",\n";
    os << "  \"schedule_window_ticks\": " << scheduleWindowTicks << ",\n";
    os << "  \"watchdog_ticks\": " << watchdogTicks << "\n";
    os << "}\n";
    return os.str();
}

bool
FaultSpec::fromJson(const std::string &text, FaultSpec &out)
{
    if (text.find('{') == std::string::npos)
        return false;
    FaultSpec s;
    bool bad = false;
    double v = 0.0;
    std::uint64_t u = 0;
    if (jsonFindU64(text, "seed", u, &bad))
        s.seed = u;
    if (jsonFind(text, "icn_drop", v, &bad))
        s.icnDropRate = v;
    if (jsonFind(text, "icn_corrupt", v, &bad))
        s.icnCorruptRate = v;
    if (jsonFind(text, "icn_delay", v, &bad))
        s.icnDelayRate = v;
    if (jsonFind(text, "sem_stall", v, &bad))
        s.semStallRate = v;
    if (jsonFind(text, "marker_flip", v, &bad))
        s.markerFlipRate = v;
    if (jsonFind(text, "marker_stick", v, &bad))
        s.markerStickRate = v;
    if (jsonFind(text, "sync_wedge", v, &bad))
        s.syncWedgeRate = v;
    if (jsonFind(text, "dead_cluster", v, &bad))
        s.deadClusterRate = v;
    if (jsonFindU64(text, "icn_delay_ticks", u, &bad))
        s.icnDelayTicks = static_cast<Tick>(u);
    if (jsonFindU64(text, "sem_stall_ticks", u, &bad))
        s.semStallTicks = static_cast<Tick>(u);
    if (jsonFindU64(text, "schedule_window_ticks", u, &bad))
        s.scheduleWindowTicks = static_cast<Tick>(u);
    if (jsonFindU64(text, "watchdog_ticks", u, &bad))
        s.watchdogTicks = static_cast<Tick>(u);
    if (bad)
        return false;
    out = s;
    return true;
}

// --- FaultReport -----------------------------------------------------

std::string
FaultReport::summary() const
{
    if (!enabled)
        return "faults disabled";
    std::ostringstream os;
    if (ok())
        os << "ok";
    else if (watchdogFired)
        os << "WATCHDOG";
    else if (wedged)
        os << "WEDGED";
    else
        os << "CORRUPT";
    os << ", " << injected() << " injected";
    if (injected() > 0) {
        os << " (";
        bool first = true;
        auto item = [&](const char *nm, std::uint64_t n) {
            if (n == 0)
                return;
            if (!first)
                os << " ";
            first = false;
            os << nm << "=" << n;
        };
        item("drop", icnDropped);
        item("corrupt", icnCorrupted);
        item("delay", icnDelayed);
        item("stall", semStalls);
        item("flip", markerFlips);
        item("stick", markerSticks);
        item("wedge", syncWedges);
        item("dead", deadClusters);
        os << ")";
    }
    if (integrityChecked)
        os << (integrityFailed ? ", integrity FAILED"
                               : ", integrity passed");
    return os.str();
}

// --- FaultPlan -------------------------------------------------------

FaultPlan::FaultPlan(const FaultSpec &spec) : spec_(spec)
{
    spec_.validate();
}

void
FaultPlan::bindClusters(std::uint32_t num_clusters)
{
    if (streams_.size() < num_clusters + 1u)
        streams_.resize(num_clusters + 1u);
}

void
FaultPlan::beginRun()
{
    tally_ = FaultReport{};
    tally_.enabled = true;
    for (Stream &s : streams_)
        s.tally = FaultReport{};
    // Dead clusters scope to one run: a wedged run is torn down and
    // re-wired (repair()), a clean run left the array drained.
    deadMask_.store(0, std::memory_order_relaxed);
}

void
FaultPlan::foldTallies()
{
    for (std::size_t s = 1; s < streams_.size(); ++s) {
        FaultReport &t = streams_[s].tally;
        tally_.icnDropped += t.icnDropped;
        tally_.icnCorrupted += t.icnCorrupted;
        tally_.icnDelayed += t.icnDelayed;
        tally_.semStalls += t.semStalls;
        tally_.markerFlips += t.markerFlips;
        tally_.markerSticks += t.markerSticks;
        tally_.syncWedges += t.syncWedges;
        tally_.deadClusters += t.deadClusters;
        t = FaultReport{};
    }
}

FaultPlan::Stream &
FaultPlan::stream(std::uint32_t s)
{
    snap_assert(s < streams_.size(),
                "fault stream %u of %zu (bindClusters not called?)",
                s, streams_.size());
    return streams_[s];
}

std::uint64_t
FaultPlan::drawOn(std::uint32_t s, FaultKind k)
{
    std::size_t i = static_cast<std::size_t>(k);
    std::uint64_t x = spec_.seed;
    x ^= kindSalt[i];
    x += 0x9e3779b97f4a7c15ull * (stream(s).counters[i]++ + 1);
    x += 0xc2b2ae3d27d4eb4full * generation_;
    // Stream 0 (the machine) reproduces the historical single-stream
    // draws exactly; cluster streams diverge by this term.
    x += 0x94d049bb133111ebull * s;
    return splitmix64(x);
}

double
FaultPlan::drawUnit(FaultKind k)
{
    return drawUnitOn(0, k);
}

double
FaultPlan::drawUnitOn(std::uint32_t s, FaultKind k)
{
    return static_cast<double>(drawOn(s, k) >> 11) * 0x1.0p-53;
}

bool
FaultPlan::rollOn(std::uint32_t s, FaultKind k, double rate)
{
    // Advance the stream exactly once per visit even at rate 0, so a
    // site's draw history is independent of the other sites' rates.
    return drawUnitOn(s, k) < rate;
}

bool
FaultPlan::rollIcnDrop(ClusterId c)
{
    if (!rollOn(c + 1, FaultKind::IcnDrop, spec_.icnDropRate))
        return false;
    ++stream(c + 1).tally.icnDropped;
    return true;
}

bool
FaultPlan::rollIcnCorrupt(ClusterId c)
{
    if (!rollOn(c + 1, FaultKind::IcnCorrupt, spec_.icnCorruptRate))
        return false;
    ++stream(c + 1).tally.icnCorrupted;
    return true;
}

bool
FaultPlan::rollIcnDelay(ClusterId c)
{
    if (!rollOn(c + 1, FaultKind::IcnDelay, spec_.icnDelayRate))
        return false;
    ++stream(c + 1).tally.icnDelayed;
    return true;
}

bool
FaultPlan::rollSemStall(ClusterId c)
{
    if (!rollOn(c + 1, FaultKind::SemStall, spec_.semStallRate))
        return false;
    ++stream(c + 1).tally.semStalls;
    return true;
}

bool
FaultPlan::rollRun(FaultKind k, double rate)
{
    return rollOn(0, k, rate);
}

namespace
{

float
perturb(std::uint64_t r, float v)
{
    // Deterministic finite perturbation: a wrong-but-plausible marker
    // value, never NaN/inf (those would poison comparisons downstream
    // of the detection layer itself).
    float delta = 1.0f + static_cast<float>(r % 7);
    float out = (r & 8) ? v + delta : v - delta;
    if (!std::isfinite(out))
        out = delta;
    return out;
}

} // namespace

float
FaultPlan::corruptValue(ClusterId c, float v)
{
    return perturb(draw(c, FaultKind::IcnCorrupt), v);
}

float
FaultPlan::corruptValue(float v)
{
    return perturb(draw(FaultKind::IcnCorrupt), v);
}

void
FaultPlan::markDead(ClusterId c)
{
    if (c < 64)
        deadMask_.fetch_or(1ull << c, std::memory_order_relaxed);
}

void
FaultPlan::bumpGeneration()
{
    ++generation_;
    for (Stream &s : streams_)
        s.counters.fill(0);
    deadMask_.store(0, std::memory_order_relaxed);
}

// --- helpers ---------------------------------------------------------

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
markerChecksum(const MarkerStore &s)
{
    std::uint64_t h = 0x6a09e667f3bcc909ull;
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
        const BitVector &bv = s.bits(static_cast<MarkerId>(m));
        for (std::uint32_t w = 0; w < bv.numWords(); ++w)
            h = splitmix64(h ^ bv.word(w) ^ (std::uint64_t{m} << 32));
        if (!isComplexMarker(static_cast<MarkerId>(m)))
            continue;
        for (NodeId n = 0; n < s.numNodes(); ++n) {
            if (!s.test(static_cast<MarkerId>(m), n))
                continue;
            float v = s.value(static_cast<MarkerId>(m), n);
            std::uint32_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            h = splitmix64(h ^ bits ^
                           (std::uint64_t{s.origin(
                                static_cast<MarkerId>(m), n)} << 32) ^
                           n);
        }
    }
    return h;
}

bool
markersEquivalent(const MarkerStore &a, const MarkerStore &b)
{
    if (a.numNodes() != b.numNodes())
        return false;
    for (std::uint32_t m = 0; m < capacity::numMarkers; ++m) {
        MarkerId mid = static_cast<MarkerId>(m);
        const BitVector &ba = a.bits(mid);
        const BitVector &bb = b.bits(mid);
        for (std::uint32_t w = 0; w < ba.numWords(); ++w)
            if (ba.word(w) != bb.word(w))
                return false;
        if (!isComplexMarker(mid))
            continue;
        for (NodeId n = 0; n < a.numNodes(); ++n) {
            if (!a.test(mid, n))
                continue;
            if (a.value(mid, n) != b.value(mid, n) ||
                a.origin(mid, n) != b.origin(mid, n))
                return false;
        }
    }
    return true;
}

bool
resultsEquivalent(std::vector<CollectResult> a,
                  std::vector<CollectResult> b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i].sortNodes();
        b[i].sortNodes();
        if (a[i].op != b[i].op || a[i].marker != b[i].marker ||
            a[i].color != b[i].color || a[i].rel != b[i].rel ||
            !(a[i].nodes == b[i].nodes) || !(a[i].links == b[i].links))
            return false;
    }
    return true;
}

bool
programIsPure(const Program &prog)
{
    for (const Instruction &in : prog.instructions()) {
        switch (in.op) {
          case Opcode::Create:
          case Opcode::Delete:
          case Opcode::SetColor:
          case Opcode::SetWeight:
          case Opcode::MarkerCreate:
          case Opcode::MarkerDelete:
          case Opcode::MarkerSetColor:
            return false;
          default:
            break;
        }
    }
    return true;
}

} // namespace snap
