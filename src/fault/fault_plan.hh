#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace snap
{

class MarkerStore;

/**
 * Deterministic fault injection for the SNAP machine model.
 *
 * A FaultSpec describes *what* can go wrong and how often; a FaultPlan
 * turns the spec into a reproducible schedule.  Every decision the plan
 * makes is a pure function of (seed, generation, fault kind, per-kind
 * draw counter), and every injection site is visited in deterministic
 * simulated-event order, so two runs of the same program on the same
 * image with the same plan state inject byte-identical faults.  No host
 * entropy (time, thread ids, addresses) is ever consulted.
 */

/// Everything that can be injected.  Used to index per-kind counters.
enum class FaultKind : std::uint8_t {
    IcnDrop = 0,    ///< ICN message silently lost at the send port
    IcnCorrupt,     ///< ICN message payload corrupted in flight
    IcnDelay,       ///< ICN transfer stalls for extra ticks
    SemStall,       ///< multiport-memory semaphore grant held too long
    MarkerFlip,     ///< a marker bit in a cluster status table flips
    MarkerStick,    ///< a marker bit sticks at 1
    SyncWedge,      ///< sync tree loses a completion credit (wedges)
    DeadCluster,    ///< a cluster fails outright mid-run
    NumKinds,
};

constexpr std::size_t numFaultKinds =
    static_cast<std::size_t>(FaultKind::NumKinds);

const char *faultKindName(FaultKind k);

/// Static description of a fault workload.  All rates default to zero,
/// which means "no plan at all": a machine carrying an all-zero spec is
/// bit-identical to one carrying none.
struct FaultSpec {
    std::uint64_t seed = 0;

    // Per-event rates: probability per injection-site visit.
    double icnDropRate = 0.0;
    double icnCorruptRate = 0.0;
    double icnDelayRate = 0.0;
    double semStallRate = 0.0;

    // Per-run rates: probability that the fault is armed once for the
    // run, at a seed-chosen simulated tick inside scheduleWindowTicks.
    double markerFlipRate = 0.0;
    double markerStickRate = 0.0;
    double syncWedgeRate = 0.0;
    double deadClusterRate = 0.0;

    // Magnitudes / bounds (simulated ticks).
    Tick icnDelayTicks = 2'000'000;       ///< 2 us extra in flight
    Tick semStallTicks = 1'000'000;       ///< 1 us extra hold
    Tick scheduleWindowTicks = 200'000'000;  ///< per-run faults land here
    Tick watchdogTicks = 2'000'000'000;   ///< 2 ms simulated-time budget

    /// True when any rate is non-zero (i.e. the plan can ever fire).
    bool any() const;

    /// Range-check every field; snap_fatal on nonsense (negative rates,
    /// rates > 1, zero watchdog with a wedge rate, ...).
    void validate() const;

    /// Convenience: a message-fault workload at aggregate rate @p rate
    /// split 40% drop / 40% corrupt / 20% delay, as used by the tools'
    /// --fault-rate flag.
    static FaultSpec messageFaults(std::uint64_t seed, double rate);

    /// Serialize to a JSON object (stable key order).
    std::string toJson() const;

    /// Parse from JSON text produced by toJson() (or hand-written with
    /// the same keys).  Unknown keys are ignored; missing keys keep
    /// their defaults.  Returns false on malformed input.
    static bool fromJson(const std::string &text, FaultSpec &out);
};

/// What actually happened during one run.  Attached to RunResult.
struct FaultReport {
    bool enabled = false;        ///< a live plan covered this run

    // Injection tallies (what fired, not what was rolled).
    std::uint64_t icnDropped = 0;
    std::uint64_t icnCorrupted = 0;
    std::uint64_t icnDelayed = 0;
    std::uint64_t semStalls = 0;
    std::uint64_t markerFlips = 0;
    std::uint64_t markerSticks = 0;
    std::uint64_t syncWedges = 0;
    std::uint64_t deadClusters = 0;

    // Detection outcomes.
    bool wedged = false;         ///< program failed to finish
    bool watchdogFired = false;  ///< simulated-time budget exceeded
    bool integrityChecked = false;
    bool integrityFailed = false;

    std::uint64_t injected() const
    {
        return icnDropped + icnCorrupted + icnDelayed + semStalls +
               markerFlips + markerSticks + syncWedges + deadClusters;
    }

    /// A run is usable iff it finished and passed whatever integrity
    /// checking was performed.  Timing-only faults still report ok().
    bool ok() const { return !wedged && !watchdogFired && !integrityFailed; }

    /// One-line human summary ("ok, 3 injected (drop=2 delay=1)").
    std::string summary() const;
};

/**
 * The live, stateful schedule.  One plan per machine; all draws advance
 * per-kind monotonic counters so repeated runs see fresh (but still
 * seed-determined) fault patterns.  bumpGeneration() reseeds the whole
 * stream — used when a serving replica is quarantined and re-stamped.
 *
 * Sharded execution: injection sites are visited concurrently by the
 * host shards, so the entropy is split into independent streams —
 * stream 0 for the machine itself (per-run arm decisions, made
 * single-threaded before the run starts) and stream c+1 for cluster c
 * (its CU/MU injection-site rolls).  Each stream's draw history is a
 * pure function of that cluster's own simulated event order, which the
 * wire model keeps identical across thread counts — so the injected
 * fault pattern is too.  Tallies are likewise kept per stream and
 * folded at run end.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultSpec &spec);

    const FaultSpec &spec() const { return spec_; }

    /// Size the per-cluster streams.  Called once at machine wiring;
    /// growing preserves existing stream state (draw counters persist
    /// across runs by design).
    void bindClusters(std::uint32_t num_clusters);

    /// Reset the per-run tallies.  Called by SnapMachine::run.
    void beginRun();

    FaultReport &tally() { return tally_; }
    const FaultReport &tally() const { return tally_; }

    /// Injection tally of cluster @p c's stream.  Written only by the
    /// shard driving that cluster; folded into tally() at run end.
    FaultReport &tallyFor(ClusterId c) { return stream(c + 1).tally; }

    /// Sum the per-cluster stream tallies into tally() and clear
    /// them.  Single-threaded (run end).
    void foldTallies();

    // --- per-event injection-site rolls on cluster @p c's stream
    //     (each advances its counter exactly once per call, hit or
    //     miss) ------------------------------------------------------
    bool rollIcnDrop(ClusterId c);
    bool rollIcnCorrupt(ClusterId c);
    bool rollIcnDelay(ClusterId c);
    bool rollSemStall(ClusterId c);

    /// Per-run roll for scheduled faults (flip/stick/wedge/dead).
    /// Machine stream, pre-run only.
    bool rollRun(FaultKind k, double rate);

    // --- raw entropy (deterministic, per-kind streams) ---------------
    /// Machine stream (stream 0).
    std::uint64_t draw(FaultKind k) { return drawOn(0, k); }
    /// Cluster @p c's stream.
    std::uint64_t draw(ClusterId c, FaultKind k)
    {
        return drawOn(c + 1, k);
    }
    /// Uniform in [0, 1), machine stream.
    double drawUnit(FaultKind k);

    /// Deterministically perturb a marker value (finite in, finite
    /// out) using cluster @p c's stream.
    float corruptValue(ClusterId c, float v);
    /// Machine-stream variant (integrity shadows, tests).
    float corruptValue(float v);

    // --- dead-cluster state ------------------------------------------
    // The mask is one shared word: each bit is written only by the
    // shard driving that cluster (the fault event runs on the owner's
    // queue), but read by all of them, hence the relaxed atomics.  A
    // cluster's reads of its *own* bit are same-thread and therefore
    // deterministic; foreign bits only gate work that the foreign
    // cluster never sends once dead.
    void markDead(ClusterId c);
    bool clusterDead(ClusterId c) const
    {
        std::uint64_t m = deadMask_.load(std::memory_order_relaxed);
        return m != 0 && c < 64 && (m >> c & 1ull) != 0;
    }
    bool anyDead() const
    {
        return deadMask_.load(std::memory_order_relaxed) != 0;
    }
    void reviveAll()
    {
        deadMask_.store(0, std::memory_order_relaxed);
    }

    /// Reseed the whole stream (replica re-stamp after quarantine).
    void bumpGeneration();
    std::uint64_t generation() const { return generation_; }

  private:
    /// One independent entropy stream + its injection tally.
    struct Stream
    {
        std::array<std::uint64_t, numFaultKinds> counters{};
        FaultReport tally;
    };

    Stream &stream(std::uint32_t s);
    std::uint64_t drawOn(std::uint32_t s, FaultKind k);
    double drawUnitOn(std::uint32_t s, FaultKind k);
    bool rollOn(std::uint32_t s, FaultKind k, double rate);

    FaultSpec spec_;
    FaultReport tally_;
    std::vector<Stream> streams_{1};
    std::uint64_t generation_ = 0;
    std::atomic<std::uint64_t> deadMask_{0};
};

// --- helpers shared by machine integrity checking and tests ----------

/// SplitMix64 — the repo-wide seeding primitive.
std::uint64_t splitmix64(std::uint64_t x);

/// Order-independent checksum of every marker plane (bits, values,
/// origins).  Cheap enough to run per-query.
std::uint64_t markerChecksum(const MarkerStore &s);

/// Exact semantic equality of two marker stores (bit planes, and value
/// and origin of every set bit on complex markers).
bool markersEquivalent(const MarkerStore &a, const MarkerStore &b);

class Program;
struct CollectResult;

/// Order-insensitive equality of two result sets (node order within a
/// collect is machine collection order; both sides are sorted first).
bool resultsEquivalent(std::vector<CollectResult> a,
                       std::vector<CollectResult> b);

/// True when @p prog contains no KB- or marker-table-mutating opcodes
/// (Create/Delete/SetColor/SetWeight/MarkerCreate/MarkerDelete/
/// MarkerSetColor), i.e. the reference-interpreter shadow is a valid
/// integrity oracle for it.
bool programIsPure(const Program &prog);

} // namespace snap
