#include "nlu/kb_factory.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace snap
{

LinguisticKb::LinguisticKb(LinguisticKbParams params)
    : params_(params), lex_(params.vocabulary)
{
    snap_assert(params_.nonlexicalNodes >= 200,
                "linguistic KB needs >= 200 nonlexical nodes");
    snap_assert(params_.elementsPerSequence >= 2,
                "sequences need >= 2 elements");

    relMeans_ = net_.relation("means");
    relSyn_ = net_.relation("syn");
    relIsA_ = net_.relation("is-a");
    relIncludes_ = net_.relation("includes");
    relExpects_ = net_.relation("expects");
    relExpectedBy_ = net_.relation("expected-by");
    relNext_ = net_.relation("next");
    relFirst_ = net_.relation("first");
    relPartOf_ = net_.relation("part-of");

    colorLexical_ = net_.colorNames().intern("lexical");
    colorType_ = net_.colorNames().intern("concept-type");
    colorSyntax_ = net_.colorNames().intern("syntax");
    colorCsRoot_ = net_.colorNames().intern("cs-root");
    colorCsElem_ = net_.colorNames().intern("cs-element");

    // Paper proportions over the nonlexical budget: 75% concept
    // sequences, 15% type hierarchy, 5% syntax, 5% auxiliary.
    buildHierarchy();
    buildSyntax();
    buildSequences();
    buildLexical();
}

void
LinguisticKb::buildHierarchy()
{
    numTypes_ = params_.nonlexicalNodes * 15 / 100;
    if (numTypes_ <
        static_cast<std::uint32_t>(SemField::NumFields) + 1) {
        numTypes_ = static_cast<std::uint32_t>(SemField::NumFields) +
                    1;
    }

    typeNodes_.reserve(numTypes_);
    for (std::uint32_t i = 0; i < numTypes_; ++i) {
        typeNodes_.push_back(net_.addNode(
            "type" + std::to_string(i), colorType_));
    }
    Rng wrng(params_.seed * 104729 + 3);
    std::uint32_t b = params_.hierarchyBranching;
    for (std::uint32_t i = 1; i < numTypes_; ++i) {
        std::uint32_t parent = (i - 1) / b;
        // Subsumption costs vary per link: the belief values the
        // markers accumulate are continuous, not a few discrete
        // classes.
        auto w = static_cast<float>(wrng.uniform(0.12, 0.3));
        net_.addLink(typeNodes_[i], relIsA_, typeNodes_[parent], w);
        net_.addLink(typeNodes_[parent], relIncludes_, typeNodes_[i],
                     w);
    }

    // The first NumFields children of the root anchor the semantic
    // fields; every field's vocabulary maps into that subtree.
    auto nf = static_cast<std::uint32_t>(SemField::NumFields);
    fieldTypes_.resize(nf);
    for (std::uint32_t f = 0; f < nf; ++f)
        fieldTypes_[f] = typeNodes_[1 + f];
}

void
LinguisticKb::buildSyntax()
{
    numSyntax_ = params_.nonlexicalNodes * 5 / 100;
    auto nc = static_cast<std::uint32_t>(WordClass::NumClasses);
    if (numSyntax_ < nc)
        numSyntax_ = nc;

    syntaxNodes_.reserve(numSyntax_);
    // One class node per word class, then filler pattern nodes
    // chained into the class nodes (phrase patterns).
    for (std::uint32_t c = 0; c < nc; ++c) {
        syntaxNodes_.push_back(net_.addNode(
            std::string("syn-") +
                wordClassName(static_cast<WordClass>(c)),
            colorSyntax_));
    }
    for (std::uint32_t i = nc; i < numSyntax_; ++i) {
        NodeId pat = net_.addNode("syn" + std::to_string(i),
                                  colorSyntax_);
        net_.addLink(pat, relIsA_, syntaxNodes_[i % nc], 0.2f);
        syntaxNodes_.push_back(pat);
    }
}

void
LinguisticKb::buildSequences()
{
    std::uint32_t seq_budget = params_.nonlexicalNodes * 75 / 100;
    std::uint32_t per_seq = params_.elementsPerSequence + 1;
    std::uint32_t num_seq = seq_budget / per_seq;
    if (num_seq < 4)
        num_seq = 4;

    Rng rng(params_.seed * 7919 + 13);
    auto nf = static_cast<std::uint32_t>(SemField::NumFields);

    // Template sequences first: the event patterns the corpus
    // sentences instantiate (agent, act, object, location / time).
    // Random sequences after them are the competing hypotheses whose
    // cancellation traffic grows with KB size (Fig. 20).
    const SemField templ[][4] = {
        {SemField::Organization, SemField::AttackAct,
         SemField::Person, SemField::Location},
        {SemField::Organization, SemField::AttackAct,
         SemField::Building, SemField::Time},
        {SemField::Organization, SemField::AttackAct,
         SemField::Weapon, SemField::Location},
        {SemField::Person, SemField::AttackAct,
         SemField::Building, SemField::Time},
    };

    for (std::uint32_t s = 0; s < num_seq; ++s) {
        NodeId root = net_.addNode("cs" + std::to_string(s),
                                   colorCsRoot_);
        roots_.push_back(root);
        ++numRoots_;

        NodeId prev = invalidNode;
        for (std::uint32_t e = 0; e < params_.elementsPerSequence;
             ++e) {
            NodeId elem = net_.addNode(
                "cs" + std::to_string(s) + "e" + std::to_string(e),
                colorCsElem_);
            ++numElements_;

            if (e == 0)
                net_.addLink(root, relFirst_, elem, 0.2f);
            else
                net_.addLink(prev, relNext_, elem, 0.3f);
            net_.addLink(elem, relPartOf_, root, 1.0f);

            // Constraint: what concept type fills this element.
            // Template sequences expect the field anchors; the bulk
            // of sequences expect types spread over the whole
            // hierarchy, with a light bias toward anchors so that
            // hypothesis competition (and cancel traffic) exists
            // without every word activating hundreds of elements.
            NodeId type;
            if (s < 4 && e < 4) {
                type = fieldTypes_[static_cast<std::size_t>(
                    templ[s][e])];
            } else if (e == 1 && rng.chance(0.08)) {
                type = fieldTypes_[static_cast<std::size_t>(
                    SemField::AttackAct)];
            } else if (rng.chance(0.05)) {
                type = fieldTypes_[rng.below(nf)];
            } else {
                // Constraints live below the field anchors: no
                // sequence expects "entity" (the root) or the
                // anchors themselves except through the biased
                // paths above — otherwise one element would collect
                // every word's activation.
                std::size_t lo = 1 + nf;
                type = typeNodes_[lo + rng.below(
                    typeNodes_.size() - lo)];
            }
            auto wexp = static_cast<float>(rng.uniform(0.35, 0.65));
            net_.addLink(elem, relExpects_, type, wexp);
            net_.addLink(type, relExpectedBy_, elem, wexp);
            prev = elem;
        }
    }

    // Auxiliary concept storage (5%): time-case style attachments.
    numAux_ = params_.nonlexicalNodes * 5 / 100;
    RelationType aux_of = net_.relation("aux-of");
    RelationType has_aux = net_.relation("has-aux");
    for (std::uint32_t a = 0; a < numAux_; ++a) {
        NodeId aux = net_.addNode("aux" + std::to_string(a));
        NodeId root = roots_[rng.below(roots_.size())];
        net_.addLink(aux, aux_of, root, 0.1f);
        net_.addLink(root, has_aux, aux, 0.1f);
    }
}

void
LinguisticKb::buildLexical()
{
    Rng rng(params_.seed * 31337 + 7);
    wordNodes_.reserve(lex_.size());

    // Per-field type pools: a word means some type inside its
    // field's subtree (one or two levels below the anchor).
    auto subtree_pick = [&](SemField f) -> NodeId {
        NodeId anchor = fieldTypes_[static_cast<std::size_t>(f)];
        // Walk down `includes` a random number of steps.
        NodeId cur = anchor;
        std::uint32_t hops = static_cast<std::uint32_t>(
            rng.below(3));
        for (std::uint32_t h = 0; h < hops; ++h) {
            std::vector<NodeId> kids;
            for (const Link &l : net_.links(cur))
                if (l.rel == relIncludes_)
                    kids.push_back(l.dst);
            if (kids.empty())
                break;
            cur = kids[rng.below(kids.size())];
        }
        return cur;
    };

    for (std::uint32_t i = 0; i < lex_.size(); ++i) {
        const LexEntry &e = lex_.entry(i);
        NodeId w = net_.addNode(e.word, colorLexical_);
        wordNodes_.push_back(w);
        net_.addLink(w, relMeans_,
                     subtree_pick(e.field),
                     static_cast<float>(rng.uniform(0.05, 0.2)));
        net_.addLink(
            w, relSyn_,
            syntaxNodes_[static_cast<std::size_t>(e.wclass)], 0.1f);
    }
}

NodeId
LinguisticKb::wordNode(const std::string &word) const
{
    NodeId id;
    if (!net_.tryNode(word, id))
        snap_fatal("word '%s' is not in the lexicon", word.c_str());
    return id;
}

} // namespace snap
