#include "nlu/mb_parser.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/validate.hh"

namespace snap
{

MemoryBasedParser::MemoryBasedParser(LinguisticKb &kb)
    : kb_(kb), phrasal_(kb.lexicon())
{
}

MemoryBasedParser::Rules
MemoryBasedParser::makeRules(Program &prog) const
{
    Rules r;
    PropRule lex = PropRule::spread(kb_.relMeans(), kb_.relIsA());
    lex.maxSteps = 24;
    r.lex = prog.addRule(std::move(lex));

    PropRule syn = PropRule::seq(kb_.relSyn(), kb_.relIsA());
    syn.maxSteps = 4;
    r.syn = prog.addRule(std::move(syn));

    PropRule expect = PropRule::step1(kb_.relExpectedBy());
    r.expect = prog.addRule(std::move(expect));

    PropRule root = PropRule::step1(kb_.relPartOf());
    r.root = prog.addRule(std::move(root));

    PropRule down;
    down.name = "cancel-down";
    down.segments = {RuleSegment{{kb_.relFirst()}, false},
                     RuleSegment{{kb_.relNext()}, true}};
    down.maxSteps = 16;
    r.down = prog.addRule(std::move(down));
    return r;
}

void
MemoryBasedParser::wordBlock(Program &prog,
                             const std::vector<NodeId> &group) const
{
    snap_assert(!group.empty() && group.size() <= wordsPerEpoch,
                "word group of %zu", group.size());
    auto bank = [](std::size_t k, std::uint32_t off) {
        return static_cast<MarkerId>(bankBase + 4 * k + off);
    };

    // L1: activate every word's lexical node.
    for (std::size_t k = 0; k < group.size(); ++k)
        prog.append(Instruction::searchNode(group[k], bank(k, 0),
                                            0.0f));
    // L2/L3: overlapped semantic and syntactic propagation for the
    // whole group (2 x group-size independent PROPAGATEs).
    for (std::size_t k = 0; k < group.size(); ++k) {
        prog.append(Instruction::propagate(bank(k, 0), bank(k, 1),
                                           rules_.lex,
                                           MarkerFunc::AddWeight));
        prog.append(Instruction::propagate(bank(k, 0), bank(k, 3),
                                           rules_.syn,
                                           MarkerFunc::AddWeight));
    }
    prog.append(Instruction::barrier());
    // L4: constraint check per word — which concept-sequence
    // elements expect one of the activated types.
    for (std::size_t k = 0; k < group.size(); ++k) {
        prog.append(Instruction::propagate(bank(k, 1), bank(k, 2),
                                           rules_.expect,
                                           MarkerFunc::AddWeight));
    }
    prog.append(Instruction::barrier());
    // L5: accumulate element votes across words, plus syntactic
    // bookkeeping, then reset the banks.
    for (std::size_t k = 0; k < group.size(); ++k) {
        prog.append(Instruction::orMarker(bank(k, 2), mFilled,
                                          mFilled, CombineOp::Sum));
        prog.append(Instruction::orMarker(bank(k, 3), mTemp, mTemp,
                                          CombineOp::Max));
        for (std::uint32_t off = 0; off < 4; ++off)
            prog.append(Instruction::clearMarker(bank(k, off)));
    }
    // Incremental hypothesis scoring: re-evaluate concept-sequence
    // roots from the accumulated element votes after every word
    // group (the big-α propagation that dominates DMSNAP profiles;
    // part-of links carry weight 1.0, MulWeight merges by max).
    prog.append(Instruction::propagate(mFilled, mScore, rules_.root,
                                       MarkerFunc::MulWeight));
    // Close the epoch: the next block's propagates deliver into the
    // markers just cleared, and remote deliveries must not land on a
    // cluster that has not executed the clears yet (the backward
    // hazard the validator checks).
    prog.append(Instruction::barrier());
}

void
MemoryBasedParser::resolutionBlock(Program &prog) const
{
    // Score roots from their elements: part-of links carry weight
    // 1.0 and MulWeight merges by max, so a root's score is its
    // best element's accumulated vote.
    prog.append(Instruction::propagate(mFilled, mScore, rules_.root,
                                       MarkerFunc::MulWeight));
    prog.append(Instruction::barrier());

    // Keep the full candidate set, then threshold the scores.
    prog.append(Instruction::orMarker(mScore, mScore, mAll,
                                      CombineOp::First));
    prog.append(Instruction::funcMarker(
        mScore,
        ScalarFunc{ScalarFunc::Op::ThresholdGe, threshold_}));

    // Cancel markers: candidates that failed the threshold.
    prog.append(Instruction::notMarker(mScore, mCancel));
    prog.append(Instruction::andMarker(mAll, mCancel, mCancel,
                                       CombineOp::First));
    // Sweep the rejected hypotheses' elements (multiple-hypothesis
    // resolution: this propagation count grows with KB size).
    prog.append(Instruction::propagate(mCancel, mCancelEl,
                                       rules_.down,
                                       MarkerFunc::None));
    prog.append(Instruction::barrier());
    // Remove cancelled elements from the vote accumulator.
    prog.append(Instruction::notMarker(mCancelEl, mTemp));
    prog.append(Instruction::andMarker(mFilled, mTemp, mFilled,
                                       CombineOp::First));
    prog.append(Instruction::clearMarker(mCancel));
    prog.append(Instruction::clearMarker(mCancelEl));
    prog.append(Instruction::clearMarker(mTemp));
}

Program
MemoryBasedParser::buildProgram(
    const std::vector<Phrase> &phrases) const
{
    Program prog;
    rules_ = makeRules(prog);

    // Initial state: clear the cross-word accumulators.
    prog.append(Instruction::clearMarker(mFilled));
    prog.append(Instruction::clearMarker(mScore));
    prog.append(Instruction::clearMarker(mAll));
    prog.append(Instruction::clearMarker(mTemp));

    for (const Phrase &ph : phrases) {
        // Words process in overlapped groups: the paper's window.
        for (std::size_t i = 0; i < ph.words.size();
             i += wordsPerEpoch) {
            std::vector<NodeId> group;
            for (std::size_t k = i;
                 k < ph.words.size() && k < i + wordsPerEpoch; ++k)
                group.push_back(kb_.wordNode(ph.words[k]));
            wordBlock(prog, group);
        }
    }

    resolutionBlock(prog);

    // Retrieval: surviving candidates to the host.
    prog.append(Instruction::collectMarker(mScore));
    return prog;
}

Program
MemoryBasedParser::buildProgram(
    const std::vector<std::string> &words) const
{
    PhrasalResult pr = phrasal_.parse(words);
    return buildProgram(pr.phrases);
}

Program
MemoryBasedParser::buildLatticeProgram(
    const std::vector<std::vector<std::string>> &lattice) const
{
    Program prog;
    rules_ = makeRules(prog);

    prog.append(Instruction::clearMarker(mFilled));
    prog.append(Instruction::clearMarker(mScore));
    prog.append(Instruction::clearMarker(mAll));
    prog.append(Instruction::clearMarker(mTemp));

    // Marker bank for hypothesis words: 10.. in pairs.
    for (const auto &alternatives : lattice) {
        snap_assert(!alternatives.empty(), "empty lattice position");
        snap_assert(14 + 3 * alternatives.size() <=
                    capacity::numComplexMarkers,
                    "too many hypotheses per position");
        // Activate every hypothesis...
        for (std::size_t h = 0; h < alternatives.size(); ++h) {
            auto mw = static_cast<MarkerId>(14 + 3 * h);
            prog.append(Instruction::searchNode(
                kb_.wordNode(alternatives[h]), mw, 0.0f));
        }
        // ... then propagate all of them overlapped, semantic and
        // syntactic streams per hypothesis (β grows as 2x the
        // number of hypotheses — the PASS regime).
        for (std::size_t h = 0; h < alternatives.size(); ++h) {
            auto mw = static_cast<MarkerId>(14 + 3 * h);
            auto mt = static_cast<MarkerId>(14 + 3 * h + 1);
            auto msy = static_cast<MarkerId>(14 + 3 * h + 2);
            prog.append(Instruction::propagate(
                mw, mt, rules_.lex, MarkerFunc::AddWeight));
            prog.append(Instruction::propagate(
                mw, msy, rules_.syn, MarkerFunc::AddWeight));
        }
        prog.append(Instruction::barrier());
        // Merge hypothesis activations, then the usual constraint
        // step.
        for (std::size_t h = 0; h < alternatives.size(); ++h) {
            auto mt = static_cast<MarkerId>(14 + 3 * h + 1);
            prog.append(Instruction::orMarker(mt, mTypes, mTypes,
                                              CombineOp::Min));
        }
        prog.append(Instruction::propagate(mTypes, mExpect,
                                           rules_.expect,
                                           MarkerFunc::AddWeight));
        prog.append(Instruction::barrier());
        prog.append(Instruction::orMarker(mExpect, mFilled, mFilled,
                                          CombineOp::Sum));
        prog.append(Instruction::clearMarker(mTypes));
        prog.append(Instruction::clearMarker(mExpect));
        for (std::size_t h = 0; h < alternatives.size(); ++h) {
            prog.append(Instruction::clearMarker(
                static_cast<MarkerId>(14 + 3 * h)));
            prog.append(Instruction::clearMarker(
                static_cast<MarkerId>(14 + 3 * h + 1)));
            prog.append(Instruction::clearMarker(
                static_cast<MarkerId>(14 + 3 * h + 2)));
        }
        prog.append(Instruction::barrier());
    }

    resolutionBlock(prog);
    prog.append(Instruction::collectMarker(mScore));
    return prog;
}

Program
MemoryBasedParser::buildCancelProgram(float theta) const
{
    Program prog;
    rules_ = makeRules(prog);
    prog.append(Instruction::funcMarker(
        mScore, ScalarFunc{ScalarFunc::Op::ThresholdGe, theta}));
    prog.append(Instruction::notMarker(mScore, mCancel));
    prog.append(Instruction::andMarker(mAll, mCancel, mCancel,
                                       CombineOp::First));
    prog.append(Instruction::propagate(mCancel, mCancelEl,
                                       rules_.down,
                                       MarkerFunc::None));
    prog.append(Instruction::barrier());
    prog.append(Instruction::notMarker(mCancelEl, mTemp));
    prog.append(Instruction::andMarker(mFilled, mTemp, mFilled,
                                       CombineOp::First));
    prog.append(Instruction::clearMarker(mCancel));
    prog.append(Instruction::clearMarker(mCancelEl));
    prog.append(Instruction::clearMarker(mTemp));
    prog.append(Instruction::collectMarker(mScore));
    return prog;
}

MemoryBasedParser::RecognitionOutcome
MemoryBasedParser::recognizeLattice(
    SnapMachine &machine,
    const std::vector<std::vector<std::string>> &lattice) const
{
    RecognitionOutcome out;

    // Reset the cross-position accumulators.
    Program init;
    rules_ = makeRules(init);
    init.append(Instruction::clearMarker(mFilled));
    init.append(Instruction::clearMarker(mScore));
    init.append(Instruction::clearMarker(mAll));
    init.append(Instruction::clearMarker(mTemp));
    init.append(Instruction::barrier());
    RunResult irun = machine.run(init);
    out.machineTime += irun.wallTicks;
    out.instructions += init.size();

    // Per position (PCP host loop): activate every hypothesis,
    // propagate its semantic stream, retrieve each one's support at
    // the concept-sequence elements, and decide.
    for (const auto &alternatives : lattice) {
        snap_assert(!alternatives.empty(), "empty lattice position");
        std::size_t nh = alternatives.size();
        snap_assert(bankBase + 3 * nh <= capacity::numComplexMarkers,
                    "too many hypotheses per position");

        Program prog;
        rules_ = makeRules(prog);
        auto mw = [&](std::size_t h) {
            return static_cast<MarkerId>(bankBase + 3 * h);
        };
        auto mt = [&](std::size_t h) {
            return static_cast<MarkerId>(bankBase + 3 * h + 1);
        };
        auto me = [&](std::size_t h) {
            return static_cast<MarkerId>(bankBase + 3 * h + 2);
        };

        for (std::size_t h = 0; h < nh; ++h) {
            prog.append(Instruction::searchNode(
                kb_.wordNode(alternatives[h]), mw(h), 0.0f));
        }
        for (std::size_t h = 0; h < nh; ++h) {
            prog.append(Instruction::propagate(
                mw(h), mt(h), rules_.lex, MarkerFunc::AddWeight));
        }
        prog.append(Instruction::barrier());
        for (std::size_t h = 0; h < nh; ++h) {
            prog.append(Instruction::propagate(
                mt(h), me(h), rules_.expect,
                MarkerFunc::AddWeight));
        }
        prog.append(Instruction::barrier());
        for (std::size_t h = 0; h < nh; ++h)
            prog.append(Instruction::collectMarker(me(h)));
        requireRaceFree(prog);

        RunResult run = machine.run(prog);
        out.machineTime += run.wallTicks;
        out.instructions += prog.size();

        // Decide: the hypothesis with the strongest semantic
        // support (sum of element votes; ties go to the earlier
        // hypothesis, typically the acoustically better one).
        std::size_t best_h = 0;
        float best_support = -1.0f;
        for (std::size_t h = 0; h < nh; ++h) {
            float support = 0;
            for (const CollectedNode &c : run.results[h].nodes)
                support += c.value;
            if (support > best_support) {
                best_support = support;
                best_h = h;
            }
        }
        out.words.push_back(alternatives[best_h]);
        out.scores.push_back(best_support);

        // Keep the winner's votes; drop the losers; reset banks.
        Program commit;
        rules_ = makeRules(commit);
        commit.append(Instruction::orMarker(me(best_h), mFilled,
                                            mFilled,
                                            CombineOp::Sum));
        for (std::size_t h = 0; h < nh; ++h) {
            commit.append(Instruction::clearMarker(mw(h)));
            commit.append(Instruction::clearMarker(mt(h)));
            commit.append(Instruction::clearMarker(me(h)));
        }
        commit.append(Instruction::barrier());
        RunResult crun = machine.run(commit);
        out.machineTime += crun.wallTicks;
        out.instructions += commit.size();
    }

    // Sentence-level resolution over the accumulated votes.
    Program resolve;
    rules_ = makeRules(resolve);
    resolutionBlock(resolve);
    resolve.append(Instruction::collectMarker(mScore));
    requireRaceFree(resolve);
    RunResult rrun = machine.run(resolve);
    out.machineTime += rrun.wallTicks;
    out.instructions += resolve.size();
    for (const CollectedNode &c : rrun.results.back().nodes) {
        if (out.bestRoot == invalidNode || c.value > out.bestScore) {
            out.bestRoot = c.node;
            out.bestScore = c.value;
        }
    }
    return out;
}

std::vector<MemoryBasedParser::TemplateSlot>
MemoryBasedParser::extractMeaning(SnapMachine &machine,
                                  NodeId root) const
{
    snap_assert(root != invalidNode, "extractMeaning without a root");

    // Host-level relation handles for binding.
    RelationType filled_by = kb_.net().relation("filled-by");
    RelationType instance_of = kb_.net().relation("instance-of");

    Program prog;
    rules_ = makeRules(prog);
    // Reuse bank 0's word marker as scratch (parse is finished).
    constexpr MarkerId mRoot = bankBase;
    constexpr MarkerId mElems = bankBase + 1;

    prog.append(Instruction::clearMarker(mRoot));
    prog.append(Instruction::clearMarker(mElems));
    prog.append(Instruction::barrier());
    prog.append(Instruction::searchNode(root, mRoot, 0.0f));
    // Walk the winning sequence: first, then the next chain.
    prog.append(Instruction::propagate(mRoot, mElems, rules_.down,
                                       MarkerFunc::None));
    prog.append(Instruction::barrier());
    // Bind the sequence's elements to the root: the paper's marker
    // node maintenance ("nodes with the specified marker are linked
    // to an end-node by creating a forward-relation or
    // reverse-relation between them").
    prog.append(Instruction::markerCreate(mElems, instance_of, root,
                                          filled_by));
    prog.append(Instruction::barrier());
    // Retrieve each element's slot constraint and its vote state.
    prog.append(Instruction::collectRelation(mElems,
                                             kb_.relExpects()));
    prog.append(Instruction::collectMarker(mFilled));
    prog.append(Instruction::clearMarker(mRoot));
    prog.append(Instruction::clearMarker(mElems));
    requireRaceFree(prog);

    RunResult run = machine.run(prog);
    snap_assert(run.results.size() == 2, "extraction collects");

    const CollectResult &slots = run.results[0];
    const CollectResult &votes = run.results[1];

    std::vector<TemplateSlot> out;
    for (const CollectedLink &l : slots.links) {
        TemplateSlot slot;
        slot.element = l.src;
        slot.expectedType = l.dst;
        for (const CollectedNode &v : votes.nodes) {
            if (v.node == l.src) {
                slot.filled = true;
                slot.score = v.value;
                break;
            }
        }
        out.push_back(slot);
    }
    return out;
}

ParseOutcome
MemoryBasedParser::parseOn(SnapMachine &machine,
                           const Sentence &sentence) const
{
    PhrasalResult pr = phrasal_.parse(sentence.words);
    Program prog = buildProgram(pr.phrases);
    requireRaceFree(prog);

    RunResult run = machine.run(prog);

    ParseOutcome out;
    out.ppTime = pr.time;
    out.mbTime = run.wallTicks;
    out.instructions = prog.size();
    out.stats = run.stats;

    snap_assert(!run.results.empty(), "parse without a collect");
    out.candidates = run.results.back().nodes;

    // Multiple-hypothesis resolution (host loop on the PCP): while
    // too many candidate sequences survive, raise the acceptance
    // threshold to the current candidates' median score and cancel
    // the rejected hypotheses' markers.  Each round roughly halves
    // the field, so the number of cancel propagations grows with the
    // knowledge-base size (Fig. 20).
    while (out.candidates.size() > maxCandidates_ &&
           out.cancelRounds < maxCancelRounds_) {
        std::vector<float> scores;
        scores.reserve(out.candidates.size());
        for (const CollectedNode &c : out.candidates)
            scores.push_back(c.value);
        std::nth_element(scores.begin(),
                         scores.begin() + scores.size() / 2,
                         scores.end());
        float theta = scores[scores.size() / 2] + 1e-4f;
        Program cancel = buildCancelProgram(theta);
        requireRaceFree(cancel);
        RunResult round = machine.run(cancel);
        out.mbTime += round.wallTicks;
        out.instructions += cancel.size();
        out.stats.merge(round.stats);
        ++out.cancelRounds;
        std::vector<CollectedNode> prev =
            std::move(out.candidates);
        out.candidates = round.results.back().nodes;
        if (out.candidates.empty()) {
            // Over-tightened: the host accepts the previous set.
            out.candidates = std::move(prev);
            break;
        }
        if (out.candidates.size() >= prev.size())
            break;  // threshold no longer biting: accept
    }

    for (const CollectedNode &c : out.candidates) {
        if (out.bestRoot == invalidNode || c.value > out.bestScore ||
            (c.value == out.bestScore && c.node < out.bestRoot)) {
            out.bestRoot = c.node;
            out.bestScore = c.value;
        }
    }
    return out;
}

} // namespace snap
