/**
 * @file
 * The memory-based parser.
 *
 * Emits the SNAP instruction stream that parses a sentence by marker
 * propagation over the layered knowledge base (the paper's Fig. 5
 * pattern, DMSNAP-style):
 *
 *   per word:    activate the lexical node, propagate through the
 *                semantic (means / is-a*) and syntactic (syn / is-a)
 *                layers, mark the concept-sequence elements whose
 *                constraints the word satisfies, and accumulate
 *                element votes;
 *   resolution:  score concept-sequence roots from their elements,
 *                threshold candidates, and propagate cancel markers
 *                through the rejected hypotheses (the multiple-
 *                hypothesis resolution whose cost grows with KB
 *                size, Fig. 20);
 *   retrieval:   COLLECT the surviving roots; the host picks the
 *                best-scoring one.
 *
 * Its machine time is the "M.B. time" column of Table IV.
 */

#ifndef SNAP_NLU_MB_PARSER_HH
#define SNAP_NLU_MB_PARSER_HH

#include <cstdint>

#include "arch/machine.hh"
#include "isa/program.hh"
#include "nlu/corpus.hh"
#include "nlu/kb_factory.hh"
#include "nlu/phrasal_parser.hh"

namespace snap
{

/** What a parse produced. */
struct ParseOutcome
{
    /** Winning concept-sequence root (invalidNode if none). */
    NodeId bestRoot = invalidNode;
    float bestScore = 0.0f;
    /** Surviving candidates (the final collect). */
    std::vector<CollectedNode> candidates;

    /** Phrasal-parser (serial, controller) time. */
    Tick ppTime = 0;
    /** Memory-based (array) time, all resolution rounds included. */
    Tick mbTime = 0;
    /** SNAP instructions executed (all rounds). */
    std::size_t instructions = 0;
    /** Extra cancel rounds beyond the base program ("more
     *  irrelevant candidates become activated which must be removed
     *  by propagating cancel markers", Fig. 20). */
    std::uint32_t cancelRounds = 0;
    /** Machine statistics accumulated over every issued program. */
    ExecBreakdown stats;

    double ppMs() const { return ticksToMs(ppTime); }
    double mbMs() const { return ticksToMs(mbTime); }
    double totalMs() const { return ticksToMs(ppTime + mbTime); }
};

class MemoryBasedParser
{
  public:
    explicit MemoryBasedParser(LinguisticKb &kb);

    /** Build the SNAP program parsing @p phrases. */
    Program buildProgram(const std::vector<Phrase> &phrases) const;

    /** Build a program for one flat word sequence. */
    Program buildProgram(const std::vector<std::string> &words) const;

    /**
     * Speech-lattice program: per position, every hypothesis word
     * activates and propagates independently — the high-β PASS-style
     * workload of §II-C.
     */
    Program buildLatticeProgram(
        const std::vector<std::vector<std::string>> &lattice) const;

    /** Outcome of lattice recognition. */
    struct RecognitionOutcome
    {
        /** Per-position winning hypothesis. */
        std::vector<std::string> words;
        /** Per-position winner's semantic support score. */
        std::vector<float> scores;
        /** Machine time over all positions. */
        Tick machineTime = 0;
        /** SNAP instructions executed. */
        std::size_t instructions = 0;
        /** Winning concept sequence after the final parse. */
        NodeId bestRoot = invalidNode;
        float bestScore = 0.0f;
    };

    /**
     * Speech recognition over a word lattice (the PASS workload):
     * per position, every hypothesis activates and propagates
     * concurrently; the host retrieves each hypothesis's semantic
     * support (how strongly concept-sequence elements expect its
     * meaning) and keeps the best word, accumulating its votes into
     * the sentence-level parse.
     */
    RecognitionOutcome recognizeLattice(
        SnapMachine &machine,
        const std::vector<std::vector<std::string>> &lattice) const;

    /**
     * Full pipeline on the machine: phrasal parse (serial), the
     * memory-based program run, then host-driven multiple-hypothesis
     * resolution — while too many candidate sequences survive, the
     * host tightens the threshold and issues another cancel program
     * (the PCP loop whose propagation count grows with knowledge-
     * base size, Fig. 20).  The knowledge base must already be
     * loaded into @p machine.
     */
    ParseOutcome parseOn(SnapMachine &machine,
                         const Sentence &sentence) const;

    /** One host-driven cancel round at threshold @p theta. */
    Program buildCancelProgram(float theta) const;

    /** One filled slot of an extracted event template. */
    struct TemplateSlot
    {
        /** The concept-sequence element. */
        NodeId element = invalidNode;
        /** The concept type the element expects (the slot's role
         *  filler constraint). */
        NodeId expectedType = invalidNode;
        /** Whether the parse actually filled this element. */
        bool filled = false;
        /** Accumulated vote when filled. */
        float score = 0.0f;
    };

    /**
     * Extract the meaning of a parse ("generates the meaning of the
     * sentence as output", §IV): walk the winning concept sequence,
     * bind its filled elements to the root with MARKER-CREATE
     * ("marker node maintenance instructions bind together concepts
     * which have been marked"), and return the slot structure.
     *
     * Must run right after parseOn() on the same machine: it reads
     * the surviving mFilled votes.
     */
    std::vector<TemplateSlot> extractMeaning(SnapMachine &machine,
                                             NodeId root) const;

    /** Candidate-score threshold used in resolution. */
    float threshold() const { return threshold_; }

    /** Candidates accepted without further cancel rounds. */
    std::uint32_t maxCandidates() const { return maxCandidates_; }

  private:
    /**
     * Append the activation block for a group of up to wordsPerEpoch
     * words.  Each word gets its own marker bank and its semantic +
     * syntactic propagations overlap with the others' — the
     * β-parallelism the paper measures between overlapped PROPAGATE
     * statements (DMSNAP-style programs reach β of 2.3-5).
     */
    void wordBlock(Program &prog,
                   const std::vector<NodeId> &group) const;

    /** Words activated concurrently per epoch. */
    static constexpr std::size_t wordsPerEpoch = 3;
    /** Append the resolution + retrieval block. */
    void resolutionBlock(Program &prog) const;
    /** Register the parser's propagation rules on @p prog. */
    struct Rules
    {
        RuleId lex;    ///< spread(means, is-a)
        RuleId syn;    ///< seq(syn, is-a)
        RuleId expect; ///< step(expected-by)
        RuleId root;   ///< step(part-of)
        RuleId down;   ///< [first once, next star] — cancel sweep
    };
    Rules makeRules(Program &prog) const;

    LinguisticKb &kb_;
    PhrasalParser phrasal_;
    float threshold_ = 0.6f;
    std::uint32_t maxCandidates_ = 3;
    std::uint32_t maxCancelRounds_ = 12;

    // Marker assignments (all complex).
    static constexpr MarkerId mWord = 0;     ///< lexical activation
    static constexpr MarkerId mTypes = 1;    ///< semantic activation
    static constexpr MarkerId mExpect = 2;   ///< expecting elements
    static constexpr MarkerId mFilled = 3;   ///< element vote accum
    static constexpr MarkerId mScore = 4;    ///< root scores
    static constexpr MarkerId mAll = 5;      ///< pre-threshold roots
    static constexpr MarkerId mCancel = 6;   ///< rejected roots
    static constexpr MarkerId mSyn = 7;      ///< syntactic activation
    static constexpr MarkerId mTemp = 8;     ///< scratch
    static constexpr MarkerId mCancelEl = 9; ///< cancelled elements
    // Word banks (one per concurrently processed word): bank k uses
    // markers bankBase + 4k .. bankBase + 4k + 3 for
    // (word, types, expect, syn).
    static constexpr MarkerId bankBase = 10;

    // Ephemeral rules cache (rebuilt per program).
    mutable Rules rules_{};
};

} // namespace snap

#endif // SNAP_NLU_MB_PARSER_HH
