#include "nlu/corpus.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace snap
{

std::string
Sentence::text() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (i)
            os << " ";
        os << words[i];
    }
    return os.str();
}

namespace
{

/** Die unless every word of @p s is in the lexicon. */
void
checkCovered(const Lexicon &lex, const Sentence &s)
{
    for (const auto &w : s.words) {
        if (!lex.contains(w))
            snap_fatal("corpus word '%s' missing from lexicon",
                       w.c_str());
    }
}

} // namespace

std::vector<Sentence>
makeMuc4Sentences(const Lexicon &lex)
{
    std::vector<Sentence> out;

    out.push_back(Sentence{
        "S1",
        {"the", "guerrillas", "attacked", "the", "embassy", "in",
         "salvador", "yesterday"}});

    out.push_back(Sentence{
        "S2",
        {"several", "armed", "rebels", "bombed", "the", "police",
         "station", "near", "the", "capital", "of", "guatemala",
         "tuesday", "morning"}});

    out.push_back(Sentence{
        "S3",
        {"the", "terrorists", "kidnapped", "the", "mayor", "of",
         "the", "village", "with", "rifles", "in", "the", "province",
         "yesterday", "and", "the", "police", "reported", "the",
         "attack", "today", "morning"}});

    out.push_back(Sentence{
        "S4",
        {"several", "urban", "commandos", "assassinated", "the",
         "local", "judge", "near", "the", "military",
         "headquarters", "in", "lima", "yesterday", "and",
         "insurgents", "destroyed", "the", "pipeline", "with",
         "dynamite", "near", "the", "bridge", "in", "the",
         "province", "tuesday", "night", "today"}});

    // Words "and" / "attack" are not in the core: extend here so the
    // sentences are self-consistent with any lexicon built on it.
    // (They are added to the lexicon by construction below.)
    for (auto &s : out) {
        for (auto &w : s.words) {
            if (!lex.contains(w)) {
                // Substitute with a covered synonym.
                if (w == "and")
                    w = "with";
                else if (w == "attack")
                    w = "bomb";
            }
        }
        checkCovered(lex, s);
    }

    snap_assert(out[0].length() == 8 && out[1].length() == 14 &&
                out[2].length() == 22 && out[3].length() == 30,
                "S1-S4 lengths drifted");
    return out;
}

std::vector<Sentence>
makeNewswireBatch(const Lexicon &lex, std::uint32_t count,
                  std::uint64_t seed)
{
    Rng rng(seed);
    auto orgs = lex.wordsOf(SemField::Organization);
    auto acts = lex.wordsOf(SemField::AttackAct);
    auto people = lex.wordsOf(SemField::Person);
    auto buildings = lex.wordsOf(SemField::Building);
    auto places = lex.wordsOf(SemField::Location);
    auto times = lex.wordsOf(SemField::Time);
    auto adjs = lex.wordsOf(WordClass::Adjective);
    snap_assert(!orgs.empty() && !acts.empty() && !people.empty() &&
                !buildings.empty() && !places.empty() &&
                !times.empty() && !adjs.empty(),
                "lexicon lacks domain coverage");

    auto pick = [&](const std::vector<std::string> &v) {
        return v[rng.below(v.size())];
    };

    std::vector<Sentence> out;
    for (std::uint32_t i = 0; i < count; ++i) {
        Sentence s;
        s.id = "N" + std::to_string(i);
        // Clause 1: <det> [adj] <org> <act> the <victim> ...
        s.words.push_back("the");
        if (rng.chance(0.5))
            s.words.push_back(pick(adjs));
        s.words.push_back(pick(orgs));
        s.words.push_back(pick(acts));
        s.words.push_back("the");
        s.words.push_back(rng.chance(0.5) ? pick(people)
                                          : pick(buildings));
        s.words.push_back("in");
        s.words.push_back("the");
        s.words.push_back(pick(places));
        s.words.push_back(pick(times));
        // Optional clause 2.
        if (rng.chance(0.6)) {
            s.words.push_back("with");
            s.words.push_back("the");
            if (rng.chance(0.5))
                s.words.push_back(pick(adjs));
            s.words.push_back(pick(orgs));
            s.words.push_back(pick(acts));
            s.words.push_back("the");
            s.words.push_back(pick(buildings));
            s.words.push_back("near");
            s.words.push_back(pick(places));
            if (rng.chance(0.5))
                s.words.push_back(pick(times));
        }
        checkCovered(lex, s);
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<std::vector<std::string>>
makeSpeechLattice(const Lexicon &lex, std::uint32_t positions,
                  std::uint64_t seed)
{
    Rng rng(seed);
    auto nouns = lex.wordsOf(WordClass::Noun);
    auto verbs = lex.wordsOf(WordClass::Verb);
    snap_assert(nouns.size() >= 4 && verbs.size() >= 4,
                "lexicon too small for lattice");

    std::vector<std::vector<std::string>> lattice;
    for (std::uint32_t p = 0; p < positions; ++p) {
        const auto &pool = (p % 3 == 1) ? verbs : nouns;
        std::uint32_t hyps = 1 + static_cast<std::uint32_t>(
            rng.below(3));  // 1..3 hypotheses
        std::vector<std::string> alt;
        for (std::uint32_t h = 0; h < hyps; ++h) {
            std::string w = pool[rng.below(pool.size())];
            bool dup = false;
            for (const auto &x : alt)
                if (x == w)
                    dup = true;
            if (!dup)
                alt.push_back(w);
        }
        lattice.push_back(std::move(alt));
    }
    return lattice;
}

} // namespace snap
