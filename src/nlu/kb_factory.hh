/**
 * @file
 * Layered linguistic knowledge base (paper Fig. 1).
 *
 * Three layers over the lexicon: "1) the lexical layer at the bottom
 * of the hierarchy, 2) semantic and syntactic constraints in the
 * middle, and 3) concept sequences at the highest layer."  Node
 * budget follows the paper's proportions for the 20K-concept SNAP
 * knowledge base: "Roughly 15K nodes (75%) represent basic concept
 * sequences, 3K (15%) compose the concept-type hierarchy, 1K (5%)
 * form syntactic patterns, and 1K (5%) are used for auxiliary
 * concept storage."
 *
 * Wiring (relations):
 *   word --means--> concept type        (lexical -> semantic)
 *   word --syn--> syntax class          (lexical -> syntactic)
 *   type --is-a--> supertype            (hierarchy, upward)
 *   supertype --includes--> type        (hierarchy, downward)
 *   type --expected-by--> cs-element    (constraint, upward)
 *   cs-element --expects--> type        (constraint, downward)
 *   cs-element --next--> cs-element     (sequence order)
 *   cs-root --first--> cs-element       (sequence entry)
 *   cs-element --part-of--> cs-root     (element binding)
 */

#ifndef SNAP_NLU_KB_FACTORY_HH
#define SNAP_NLU_KB_FACTORY_HH

#include <cstdint>
#include <vector>

#include "kb/semantic_network.hh"
#include "nlu/lexicon.hh"

namespace snap
{

/** Generation parameters. */
struct LinguisticKbParams
{
    /** Non-lexical concept budget (the "knowledge base size" of the
     *  KB-size sweeps: 5K and 9K in Table IV). */
    std::uint32_t nonlexicalNodes = 5000;
    /** Vocabulary size (lexical layer). */
    std::uint32_t vocabulary = 800;
    /** Elements per basic concept sequence. */
    std::uint32_t elementsPerSequence = 4;
    /** Concept-type hierarchy branching factor. */
    std::uint32_t hierarchyBranching = 4;
    /** Generator seed. */
    std::uint64_t seed = 42;
};

/**
 * The generated knowledge base plus the handles the parser needs.
 */
class LinguisticKb
{
  public:
    explicit LinguisticKb(LinguisticKbParams params);

    SemanticNetwork &net() { return net_; }
    const SemanticNetwork &net() const { return net_; }
    const Lexicon &lexicon() const { return lex_; }
    const LinguisticKbParams &params() const { return params_; }

    /** Lexical node of @p word; fatal if unknown. */
    NodeId wordNode(const std::string &word) const;

    /** Concept-type node associated with a semantic field (roots of
     *  field subtrees). */
    NodeId fieldType(SemField field) const
    {
        return fieldTypes_.at(static_cast<std::size_t>(field));
    }

    // --- relations -----------------------------------------------------
    RelationType relMeans() const { return relMeans_; }
    RelationType relSyn() const { return relSyn_; }
    RelationType relIsA() const { return relIsA_; }
    RelationType relIncludes() const { return relIncludes_; }
    RelationType relExpects() const { return relExpects_; }
    RelationType relExpectedBy() const { return relExpectedBy_; }
    RelationType relNext() const { return relNext_; }
    RelationType relFirst() const { return relFirst_; }
    RelationType relPartOf() const { return relPartOf_; }

    // --- colors -----------------------------------------------------------
    Color colorLexical() const { return colorLexical_; }
    Color colorType() const { return colorType_; }
    Color colorSyntax() const { return colorSyntax_; }
    Color colorCsRoot() const { return colorCsRoot_; }
    Color colorCsElem() const { return colorCsElem_; }

    // --- layer inventory -----------------------------------------------
    std::uint32_t numTypes() const { return numTypes_; }
    std::uint32_t numSyntax() const { return numSyntax_; }
    std::uint32_t numRoots() const { return numRoots_; }
    std::uint32_t numElements() const { return numElements_; }
    std::uint32_t numAux() const { return numAux_; }

    const std::vector<NodeId> &rootNodes() const { return roots_; }

  private:
    void buildSyntax();
    void buildHierarchy();
    void buildSequences();
    void buildLexical();

    LinguisticKbParams params_;
    Lexicon lex_;
    SemanticNetwork net_;

    RelationType relMeans_, relSyn_, relIsA_, relIncludes_;
    RelationType relExpects_, relExpectedBy_, relNext_, relFirst_;
    RelationType relPartOf_;
    Color colorLexical_, colorType_, colorSyntax_;
    Color colorCsRoot_, colorCsElem_;

    std::uint32_t numTypes_ = 0;
    std::uint32_t numSyntax_ = 0;
    std::uint32_t numRoots_ = 0;
    std::uint32_t numElements_ = 0;
    std::uint32_t numAux_ = 0;

    std::vector<NodeId> typeNodes_;
    std::vector<NodeId> syntaxNodes_;
    std::vector<NodeId> roots_;
    std::vector<NodeId> fieldTypes_;
    std::vector<NodeId> wordNodes_;
};

} // namespace snap

#endif // SNAP_NLU_KB_FACTORY_HH
