/**
 * @file
 * Synthetic newswire corpus.
 *
 * The paper evaluates parsing on MUC-4 newswire sentences (Table III
 * lists S1-S4; Table IV reports their parse times).  The MUC-4 corpus
 * is not redistributable, so this module generates deterministic
 * substitute sentences from the domain lexicon: S1-S4 of increasing
 * word count (the paper's observation "overall execution time is
 * roughly proportional to the sentence length in words" is about
 * length), plus batches of random template sentences for the
 * KB-size sweeps.
 */

#ifndef SNAP_NLU_CORPUS_HH
#define SNAP_NLU_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nlu/lexicon.hh"

namespace snap
{

/** One input sentence. */
struct Sentence
{
    std::string id;
    std::vector<std::string> words;

    std::uint32_t length() const
    {
        return static_cast<std::uint32_t>(words.size());
    }

    std::string text() const;
};

/**
 * The four benchmark sentences S1-S4 (8, 14, 22, and 30 words), all
 * covered by the given lexicon's domain core.
 */
std::vector<Sentence> makeMuc4Sentences(const Lexicon &lex);

/**
 * A batch of @p count random template sentences (10-28 words) for
 * bulk-text experiments.
 */
std::vector<Sentence> makeNewswireBatch(const Lexicon &lex,
                                        std::uint32_t count,
                                        std::uint64_t seed);

/**
 * A speech-style word lattice: per position, 1-4 alternative word
 * hypotheses (the PASS workload shape used for the β statistics).
 */
std::vector<std::vector<std::string>>
makeSpeechLattice(const Lexicon &lex, std::uint32_t positions,
                  std::uint64_t seed);

} // namespace snap

#endif // SNAP_NLU_CORPUS_HH
