/**
 * @file
 * Vocabulary for the NLU application.
 *
 * The paper's knowledge base covered "terrorism in Latin America"
 * newswire (the MUC-4 domain) with a 10,000-word lexicon.  The
 * original corpus and lexicon are not available, so this module
 * generates a deterministic substitute: a curated core of domain
 * words (organizations, attack verbs, victims, places, time words,
 * function words) padded with synthetic filler words up to the
 * requested vocabulary size.  What matters for the timing behaviour
 * is preserved: every word is a lexical node wired into the layers
 * above (DESIGN.md substitution table).
 */

#ifndef SNAP_NLU_LEXICON_HH
#define SNAP_NLU_LEXICON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace snap
{

/** Syntactic word class. */
enum class WordClass : std::uint8_t
{
    Noun,
    Verb,
    Adjective,
    Determiner,
    Preposition,
    ProperName,
    TimeWord,

    NumClasses
};

const char *wordClassName(WordClass c);

/** Semantic field a content word belongs to. */
enum class SemField : std::uint8_t
{
    Organization,
    Person,
    AttackAct,
    Weapon,
    Building,
    Location,
    Time,
    Generic,

    NumFields
};

const char *semFieldName(SemField f);

/** One vocabulary entry. */
struct LexEntry
{
    std::string word;
    WordClass wclass = WordClass::Noun;
    SemField field = SemField::Generic;
};

/**
 * Deterministic vocabulary: curated domain core plus synthetic
 * filler.
 */
class Lexicon
{
  public:
    /** Build a vocabulary of exactly @p size words (>= core size). */
    explicit Lexicon(std::uint32_t size = 800);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    const LexEntry &entry(std::uint32_t i) const
    {
        return entries_.at(i);
    }

    const std::vector<LexEntry> &entries() const { return entries_; }

    /** Index of @p word, or -1. */
    std::int32_t find(const std::string &word) const;

    bool contains(const std::string &word) const
    {
        return find(word) >= 0;
    }

    /** All words of one semantic field (corpus generation). */
    std::vector<std::string> wordsOf(SemField field) const;
    std::vector<std::string> wordsOf(WordClass wclass) const;

  private:
    std::vector<LexEntry> entries_;
};

} // namespace snap

#endif // SNAP_NLU_LEXICON_HH
