#include "nlu/lexicon.hh"

#include "common/logging.hh"

namespace snap
{

const char *
wordClassName(WordClass c)
{
    switch (c) {
      case WordClass::Noun: return "noun";
      case WordClass::Verb: return "verb";
      case WordClass::Adjective: return "adjective";
      case WordClass::Determiner: return "determiner";
      case WordClass::Preposition: return "preposition";
      case WordClass::ProperName: return "proper-name";
      case WordClass::TimeWord: return "time-word";
      default: return "?";
    }
}

const char *
semFieldName(SemField f)
{
    switch (f) {
      case SemField::Organization: return "organization";
      case SemField::Person: return "person";
      case SemField::AttackAct: return "attack-act";
      case SemField::Weapon: return "weapon";
      case SemField::Building: return "building";
      case SemField::Location: return "location";
      case SemField::Time: return "time";
      case SemField::Generic: return "generic";
      default: return "?";
    }
}

namespace
{

struct CoreWord
{
    const char *word;
    WordClass wclass;
    SemField field;
};

// Curated MUC-4-style core: enough coverage for the synthetic
// newswire templates in nlu/corpus.
const CoreWord coreWords[] = {
    // Organizations / actors
    {"guerrillas", WordClass::Noun, SemField::Organization},
    {"rebels", WordClass::Noun, SemField::Organization},
    {"terrorists", WordClass::Noun, SemField::Organization},
    {"extremists", WordClass::Noun, SemField::Organization},
    {"commandos", WordClass::Noun, SemField::Organization},
    {"insurgents", WordClass::Noun, SemField::Organization},
    {"fmln", WordClass::ProperName, SemField::Organization},
    {"cartel", WordClass::Noun, SemField::Organization},
    // People / victims
    {"mayor", WordClass::Noun, SemField::Person},
    {"judge", WordClass::Noun, SemField::Person},
    {"priest", WordClass::Noun, SemField::Person},
    {"civilians", WordClass::Noun, SemField::Person},
    {"soldiers", WordClass::Noun, SemField::Person},
    {"peasants", WordClass::Noun, SemField::Person},
    {"journalist", WordClass::Noun, SemField::Person},
    {"ambassador", WordClass::Noun, SemField::Person},
    // Attack acts
    {"attacked", WordClass::Verb, SemField::AttackAct},
    {"bombed", WordClass::Verb, SemField::AttackAct},
    {"kidnapped", WordClass::Verb, SemField::AttackAct},
    {"murdered", WordClass::Verb, SemField::AttackAct},
    {"assassinated", WordClass::Verb, SemField::AttackAct},
    {"ambushed", WordClass::Verb, SemField::AttackAct},
    {"destroyed", WordClass::Verb, SemField::AttackAct},
    {"injured", WordClass::Verb, SemField::AttackAct},
    // Weapons
    {"bomb", WordClass::Noun, SemField::Weapon},
    {"dynamite", WordClass::Noun, SemField::Weapon},
    {"rifles", WordClass::Noun, SemField::Weapon},
    {"grenade", WordClass::Noun, SemField::Weapon},
    // Buildings / targets
    {"embassy", WordClass::Noun, SemField::Building},
    {"headquarters", WordClass::Noun, SemField::Building},
    {"station", WordClass::Noun, SemField::Building},
    {"bridge", WordClass::Noun, SemField::Building},
    {"pipeline", WordClass::Noun, SemField::Building},
    {"office", WordClass::Noun, SemField::Building},
    // Locations
    {"salvador", WordClass::ProperName, SemField::Location},
    {"lima", WordClass::ProperName, SemField::Location},
    {"bogota", WordClass::ProperName, SemField::Location},
    {"guatemala", WordClass::ProperName, SemField::Location},
    {"province", WordClass::Noun, SemField::Location},
    {"capital", WordClass::Noun, SemField::Location},
    {"village", WordClass::Noun, SemField::Location},
    // Time words
    {"yesterday", WordClass::TimeWord, SemField::Time},
    {"today", WordClass::TimeWord, SemField::Time},
    {"morning", WordClass::TimeWord, SemField::Time},
    {"tuesday", WordClass::TimeWord, SemField::Time},
    {"night", WordClass::TimeWord, SemField::Time},
    // Function words and modifiers
    {"the", WordClass::Determiner, SemField::Generic},
    {"a", WordClass::Determiner, SemField::Generic},
    {"several", WordClass::Determiner, SemField::Generic},
    {"in", WordClass::Preposition, SemField::Generic},
    {"near", WordClass::Preposition, SemField::Generic},
    {"with", WordClass::Preposition, SemField::Generic},
    {"of", WordClass::Preposition, SemField::Generic},
    {"armed", WordClass::Adjective, SemField::Generic},
    {"urban", WordClass::Adjective, SemField::Generic},
    {"local", WordClass::Adjective, SemField::Generic},
    {"military", WordClass::Adjective, SemField::Generic},
    {"police", WordClass::Noun, SemField::Person},
    {"reported", WordClass::Verb, SemField::Generic},
    {"announced", WordClass::Verb, SemField::Generic},
};

constexpr std::uint32_t numCore =
    sizeof(coreWords) / sizeof(coreWords[0]);

} // namespace

Lexicon::Lexicon(std::uint32_t size)
{
    if (size < numCore) {
        snap_fatal("lexicon size %u below the %u-word domain core",
                   size, numCore);
    }
    entries_.reserve(size);
    for (const CoreWord &cw : coreWords)
        entries_.push_back(LexEntry{cw.word, cw.wclass, cw.field});

    // Synthetic filler cycling through classes/fields so the padded
    // vocabulary keeps a realistic composition.
    const WordClass classes[] = {WordClass::Noun, WordClass::Verb,
                                 WordClass::Noun,
                                 WordClass::Adjective,
                                 WordClass::Noun,
                                 WordClass::ProperName};
    const SemField fields[] = {SemField::Generic, SemField::Person,
                               SemField::Organization,
                               SemField::Generic, SemField::Building,
                               SemField::Location};
    for (std::uint32_t i = numCore; i < size; ++i) {
        LexEntry e;
        e.word = "w" + std::to_string(i);
        e.wclass = classes[i % 6];
        e.field = fields[i % 6];
        entries_.push_back(std::move(e));
    }
}

std::int32_t
Lexicon::find(const std::string &word) const
{
    for (std::uint32_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].word == word)
            return static_cast<std::int32_t>(i);
    return -1;
}

std::vector<std::string>
Lexicon::wordsOf(SemField field) const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (e.field == field)
            out.push_back(e.word);
    return out;
}

std::vector<std::string>
Lexicon::wordsOf(WordClass wclass) const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (e.wclass == wclass)
            out.push_back(e.word);
    return out;
}

} // namespace snap
