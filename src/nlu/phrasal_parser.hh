/**
 * @file
 * The phrasal parser.
 *
 * "The phrasal parser is a serial program that executes on the
 * controller and thus its processing time is relatively independent
 * of knowledge base size.  The role of the phrasal parser is to break
 * down the input sentence into subparts which can be handled by the
 * memory-based parser."  (paper §IV)
 *
 * Implementation: deterministic chunking — a new phrase opens at
 * every determiner, preposition, or verb — with a serial cost per
 * word at the controller clock.  Its time is the "P.P. time" column
 * of Table IV.
 */

#ifndef SNAP_NLU_PHRASAL_PARSER_HH
#define SNAP_NLU_PHRASAL_PARSER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "nlu/lexicon.hh"

namespace snap
{

/** One phrase produced by segmentation. */
struct Phrase
{
    std::vector<std::string> words;
};

/** Segmentation result plus serial processing time. */
struct PhrasalResult
{
    std::vector<Phrase> phrases;
    Tick time = 0;

    double timeMs() const { return ticksToMs(time); }
};

class PhrasalParser
{
  public:
    /**
     * @param cycles_per_word serial controller work per input word
     *        (lexical lookup, chunking, operand instantiation).
     */
    explicit PhrasalParser(const Lexicon &lex,
                           Tick controller_period = 31250,
                           std::uint32_t cycles_per_word = 2000)
        : lex_(lex), period_(controller_period),
          cyclesPerWord_(cycles_per_word)
    {}

    PhrasalResult parse(const std::vector<std::string> &words) const;

  private:
    const Lexicon &lex_;
    Tick period_;
    std::uint32_t cyclesPerWord_;
};

} // namespace snap

#endif // SNAP_NLU_PHRASAL_PARSER_HH
