#include "nlu/phrasal_parser.hh"

#include "common/logging.hh"

namespace snap
{

PhrasalResult
PhrasalParser::parse(const std::vector<std::string> &words) const
{
    PhrasalResult res;
    Phrase current;
    for (const std::string &w : words) {
        std::int32_t idx = lex_.find(w);
        if (idx < 0)
            snap_fatal("phrasal parser: unknown word '%s'",
                       w.c_str());
        WordClass wc = lex_.entry(static_cast<std::uint32_t>(idx))
                           .wclass;
        bool opens = wc == WordClass::Determiner ||
                     wc == WordClass::Preposition ||
                     wc == WordClass::Verb;
        if (opens && !current.words.empty()) {
            res.phrases.push_back(std::move(current));
            current = Phrase{};
        }
        current.words.push_back(w);
    }
    if (!current.words.empty())
        res.phrases.push_back(std::move(current));

    res.time = static_cast<Tick>(words.size()) * cyclesPerWord_ *
               period_;
    return res;
}

} // namespace snap
