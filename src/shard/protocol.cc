#include "shard/protocol.hh"

namespace snap
{
namespace shard
{

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello: return "hello";
      case FrameType::HelloAck: return "hello-ack";
      case FrameType::Request: return "request";
      case FrameType::Response: return "response";
      case FrameType::Health: return "health";
      case FrameType::HealthAck: return "health-ack";
      case FrameType::Prepare: return "prepare";
      case FrameType::PrepareAck: return "prepare-ack";
      case FrameType::Commit: return "commit";
      case FrameType::CommitAck: return "commit-ack";
      case FrameType::Shutdown: return "shutdown";
      case FrameType::SessionPull: return "session-pull";
      case FrameType::SessionState: return "session-state";
      case FrameType::SessionPush: return "session-push";
      case FrameType::SessionPushAck: return "session-push-ack";
      case FrameType::StatsPull: return "stats-pull";
      case FrameType::StatsSnapshot: return "stats-snapshot";
    }
    return "?";
}

// --- program ------------------------------------------------------------

void
encodeProgram(WireWriter &w, const Program &prog)
{
    const RuleTable &rules = prog.rules();
    w.u32(rules.size());
    for (std::uint32_t i = 0; i < rules.size(); ++i) {
        const PropRule &rule = rules.rule(static_cast<RuleId>(i));
        w.str(rule.name);
        w.u32(rule.maxSteps);
        w.u32(static_cast<std::uint32_t>(rule.segments.size()));
        for (const RuleSegment &seg : rule.segments) {
            w.u8(seg.star ? 1 : 0);
            w.u32(static_cast<std::uint32_t>(seg.rels.size()));
            for (RelationType rel : seg.rels)
                w.u16(rel);
        }
    }
    const auto &instrs = prog.instructions();
    w.u32(static_cast<std::uint32_t>(instrs.size()));
    for (const Instruction &in : instrs) {
        w.u8(static_cast<std::uint8_t>(in.op));
        w.u32(in.node);
        w.u32(in.endNode);
        w.u16(in.rel);
        w.u16(in.rel2);
        w.u8(in.color);
        w.u8(in.m1);
        w.u8(in.m2);
        w.u8(in.m3);
        w.f32(in.value);
        w.u8(in.rule);
        w.u8(static_cast<std::uint8_t>(in.func));
        w.u8(static_cast<std::uint8_t>(in.comb));
        w.u8(static_cast<std::uint8_t>(in.sfunc.op));
        w.f32(in.sfunc.imm);
    }
}

bool
decodeProgram(WireReader &r, Program &out)
{
    const std::uint32_t num_rules = r.u32();
    if (r.failed() || num_rules > maxRules)
        return false;
    for (std::uint32_t i = 0; i < num_rules; ++i) {
        PropRule rule;
        rule.name = r.str();
        rule.maxSteps = r.u32();
        const std::uint32_t num_segs = r.u32();
        if (r.failed() || num_segs > 255)
            return false;
        rule.segments.reserve(num_segs);
        for (std::uint32_t s = 0; s < num_segs; ++s) {
            RuleSegment seg;
            seg.star = r.u8() != 0;
            const std::uint32_t num_rels = r.u32();
            if (r.failed() || num_rels > capacity::numRelationTypes)
                return false;
            seg.rels.reserve(num_rels);
            for (std::uint32_t k = 0; k < num_rels; ++k)
                seg.rels.push_back(r.u16());
            rule.segments.push_back(std::move(seg));
        }
        if (r.failed())
            return false;
        out.addRule(std::move(rule));
    }
    const std::uint32_t num_instrs = r.u32();
    if (r.failed())
        return false;
    for (std::uint32_t i = 0; i < num_instrs; ++i) {
        Instruction in;
        const std::uint8_t op = r.u8();
        in.node = r.u32();
        in.endNode = r.u32();
        in.rel = r.u16();
        in.rel2 = r.u16();
        in.color = r.u8();
        in.m1 = r.u8();
        in.m2 = r.u8();
        in.m3 = r.u8();
        in.value = r.f32();
        in.rule = r.u8();
        const std::uint8_t func = r.u8();
        const std::uint8_t comb = r.u8();
        const std::uint8_t sfunc_op = r.u8();
        in.sfunc.imm = r.f32();
        if (r.failed() ||
            op >= static_cast<std::uint8_t>(Opcode::NumOpcodes) ||
            func >= static_cast<std::uint8_t>(MarkerFunc::NumFuncs) ||
            comb > static_cast<std::uint8_t>(CombineOp::Diff) ||
            sfunc_op >
                static_cast<std::uint8_t>(ScalarFunc::Op::ThresholdLt) ||
            in.m1 >= capacity::numMarkers ||
            in.m2 >= capacity::numMarkers ||
            in.m3 >= capacity::numMarkers)
            return false;
        in.op = static_cast<Opcode>(op);
        in.func = static_cast<MarkerFunc>(func);
        in.comb = static_cast<CombineOp>(comb);
        in.sfunc.op = static_cast<ScalarFunc::Op>(sfunc_op);
        // A PROPAGATE must name a rule that the stream carried.
        if (in.op == Opcode::Propagate && in.rule >= num_rules)
            return false;
        out.append(in);
    }
    return !r.failed();
}

// --- results ------------------------------------------------------------

void
encodeResults(WireWriter &w, const ResultSet &results)
{
    w.u32(static_cast<std::uint32_t>(results.size()));
    for (const CollectResult &cr : results) {
        w.u8(static_cast<std::uint8_t>(cr.op));
        w.u8(cr.marker);
        w.u8(cr.color);
        w.u16(cr.rel);
        w.u32(static_cast<std::uint32_t>(cr.nodes.size()));
        for (const CollectedNode &n : cr.nodes) {
            w.u32(n.node);
            w.f32(n.value);
            w.u32(n.origin);
        }
        w.u32(static_cast<std::uint32_t>(cr.links.size()));
        for (const CollectedLink &l : cr.links) {
            w.u32(l.src);
            w.u16(l.rel);
            w.u32(l.dst);
            w.f32(l.weight);
        }
    }
}

bool
decodeResults(WireReader &r, ResultSet &out)
{
    const std::uint32_t count = r.u32();
    if (r.failed())
        return false;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        CollectResult cr;
        const std::uint8_t op = r.u8();
        cr.marker = r.u8();
        cr.color = r.u8();
        cr.rel = r.u16();
        if (r.failed() ||
            op >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
            return false;
        cr.op = static_cast<Opcode>(op);
        const std::uint32_t num_nodes = r.u32();
        // Each entry is >= 12 bytes; reject counts the frame cannot
        // hold before reserving.
        if (r.failed() || num_nodes > r.remaining() / 12 + 1)
            return false;
        cr.nodes.reserve(num_nodes);
        for (std::uint32_t k = 0; k < num_nodes; ++k) {
            CollectedNode n;
            n.node = r.u32();
            n.value = r.f32();
            n.origin = r.u32();
            cr.nodes.push_back(n);
        }
        const std::uint32_t num_links = r.u32();
        if (r.failed() || num_links > r.remaining() / 14 + 1)
            return false;
        cr.links.reserve(num_links);
        for (std::uint32_t k = 0; k < num_links; ++k) {
            CollectedLink l;
            l.src = r.u32();
            l.rel = r.u16();
            l.dst = r.u32();
            l.weight = r.f32();
            cr.links.push_back(l);
        }
        if (r.failed())
            return false;
        out.push_back(std::move(cr));
    }
    return !r.failed();
}

// --- markers (session checkpoints) --------------------------------------

void
encodeMarkers(WireWriter &w, const MarkerStore &m)
{
    std::uint8_t num_planes = 0;
    for (std::uint32_t mk = 0; mk < capacity::numMarkers; ++mk)
        if (m.count(static_cast<MarkerId>(mk)) > 0)
            ++num_planes;
    w.u8(num_planes);
    for (std::uint32_t mk = 0; mk < capacity::numMarkers; ++mk) {
        const MarkerId marker = static_cast<MarkerId>(mk);
        const std::uint32_t count = m.count(marker);
        if (count == 0)
            continue;
        w.u8(static_cast<std::uint8_t>(mk));
        w.u32(count);
        for (std::uint32_t n = 0; n < m.numNodes(); ++n) {
            if (!m.test(marker, n))
                continue;
            w.u32(n);
            if (isComplexMarker(marker)) {
                w.f32(m.value(marker, n));
                w.u32(m.origin(marker, n));
            }
        }
    }
}

bool
decodeMarkers(WireReader &r, MarkerStore &out)
{
    const std::uint32_t num_planes = r.u8();
    if (r.failed() || num_planes > capacity::numMarkers)
        return false;
    int prev_plane = -1;
    for (std::uint32_t p = 0; p < num_planes; ++p) {
        const std::uint8_t mk = r.u8();
        const std::uint32_t count = r.u32();
        if (r.failed() || mk >= capacity::numMarkers ||
            static_cast<int>(mk) <= prev_plane)
            return false;
        prev_plane = mk;
        const MarkerId marker = static_cast<MarkerId>(mk);
        const std::size_t entry = isComplexMarker(marker) ? 12 : 4;
        if (count > out.numNodes() || count > r.remaining() / entry + 1)
            return false;
        std::uint32_t prev_node = 0;
        for (std::uint32_t k = 0; k < count; ++k) {
            const std::uint32_t node = r.u32();
            if (r.failed() || node >= out.numNodes() ||
                (k > 0 && node <= prev_node))
                return false;
            prev_node = node;
            if (isComplexMarker(marker)) {
                const float value = r.f32();
                const std::uint32_t origin = r.u32();
                if (r.failed())
                    return false;
                out.set(marker, node, value, origin);
            } else {
                out.setBit(marker, node);
            }
        }
    }
    return !r.failed();
}

// --- frames -------------------------------------------------------------

void
encodeHello(WireWriter &w, const HelloFrame &f)
{
    w.u32(f.version);
}

bool
decodeHello(WireReader &r, HelloFrame &f)
{
    f.version = r.u32();
    return r.done();
}

void
encodeHelloAck(WireWriter &w, const HelloAckFrame &f)
{
    w.u32(f.version);
    w.u64(f.fingerprint);
    w.u64(f.epoch);
    w.u32(f.numNodes);
    w.u32(f.numClusters);
    // v3 tail: the shard's trace clock at ack time.
    w.u64(f.traceClockNs);
}

bool
decodeHelloAck(WireReader &r, HelloAckFrame &f)
{
    f.version = r.u32();
    f.fingerprint = r.u64();
    f.epoch = r.u64();
    f.numNodes = r.u32();
    f.numClusters = r.u32();
    if (r.failed())
        return false;
    // Version-tolerant tail: a v2 payload ends here; a v3 payload
    // has exactly 8 bytes of shard trace-clock left.
    if (r.remaining() == 8)
        f.traceClockNs = r.u64();
    return r.done();
}

void
encodeRequest(WireWriter &w, const RequestFrame &f)
{
    w.u64(f.id);
    w.str(f.sessionId);
    w.f64(f.timeoutMs);
    w.u64(f.rngSeed);
    encodeProgram(w, f.prog);
    // v3 trace-context tail, present only for sampled requests: with
    // tracing off the encoding is byte-identical to v2.
    if (f.traceFlags != 0) {
        w.u64(f.traceId);
        w.u64(f.traceParent);
        w.u8(f.traceFlags);
    }
}

bool
decodeRequest(WireReader &r, RequestFrame &f)
{
    f.id = r.u64();
    f.sessionId = r.str(4096);
    f.timeoutMs = r.f64();
    f.rngSeed = r.u64();
    if (r.failed() || !decodeProgram(r, f.prog))
        return false;
    // Version-tolerant tail: a v2 (or unsampled v3) payload ends
    // here; a sampled v3 payload has exactly 17 trace-context bytes
    // left.
    if (r.remaining() == 17) {
        f.traceId = r.u64();
        f.traceParent = r.u64();
        f.traceFlags = r.u8();
        if (f.traceFlags == 0)
            return false;
    }
    return r.done();
}

void
encodeResponse(WireWriter &w, const ResponseFrame &f)
{
    w.u64(f.id);
    w.u8(static_cast<std::uint8_t>(f.status));
    w.u64(f.wallTicks);
    w.u64(f.rngSeed);
    w.f64(f.queueMs);
    w.f64(f.serviceMs);
    w.u32(f.worker);
    w.u32(f.batchLanes);
    w.u32(f.retries);
    w.u8(f.faultDetected ? 1 : 0);
    encodeResults(w, f.results);
    // v2: trailing checksum over every payload byte written above, so
    // a corrupt-but-well-framed response is detected, never served.
    w.u64(fnv1a64(w.bytes().data(), w.size()));
}

bool
decodeResponse(WireReader &r, ResponseFrame &f)
{
    f.id = r.u64();
    const std::uint8_t status = r.u8();
    f.wallTicks = r.u64();
    f.rngSeed = r.u64();
    f.queueMs = r.f64();
    f.serviceMs = r.f64();
    f.worker = r.u32();
    f.batchLanes = r.u32();
    f.retries = r.u32();
    f.faultDetected = r.u8() != 0;
    if (r.failed() ||
        status > static_cast<std::uint8_t>(serve::RequestStatus::Hung))
        return false;
    f.status = static_cast<serve::RequestStatus>(status);
    if (!decodeResults(r, f.results))
        return false;
    // Version-tolerant tail: a v1 payload ends here; a v2 payload has
    // exactly 8 checksum bytes left, verified over the bytes consumed.
    if (r.remaining() == 8) {
        const std::uint64_t want = fnv1a64(r.data(), r.pos());
        if (r.u64() != want)
            return false;
    }
    return r.done();
}

void
encodeHealth(WireWriter &w, const HealthFrame &f)
{
    w.u64(f.nonce);
}

bool
decodeHealth(WireReader &r, HealthFrame &f)
{
    f.nonce = r.u64();
    return r.done();
}

void
encodeHealthAck(WireWriter &w, const HealthAckFrame &f)
{
    w.u64(f.nonce);
    w.u64(f.epoch);
    w.u64(f.fingerprint);
}

bool
decodeHealthAck(WireReader &r, HealthAckFrame &f)
{
    f.nonce = r.u64();
    f.epoch = r.u64();
    f.fingerprint = r.u64();
    return r.done();
}

void
encodePrepare(WireWriter &w, const PrepareFrame &f)
{
    w.u64(f.epoch);
    w.str(f.imagePath);
}

bool
decodePrepare(WireReader &r, PrepareFrame &f)
{
    f.epoch = r.u64();
    f.imagePath = r.str(4096);
    return r.done();
}

void
encodePrepareAck(WireWriter &w, const PrepareAckFrame &f)
{
    w.u64(f.epoch);
    w.u8(f.ok ? 1 : 0);
    w.str(f.detail);
}

bool
decodePrepareAck(WireReader &r, PrepareAckFrame &f)
{
    f.epoch = r.u64();
    f.ok = r.u8() != 0;
    f.detail = r.str(4096);
    return r.done();
}

void
encodeEpoch(WireWriter &w, const EpochFrame &f)
{
    w.u64(f.epoch);
}

bool
decodeEpoch(WireReader &r, EpochFrame &f)
{
    f.epoch = r.u64();
    return r.done();
}

void
encodeSessionPull(WireWriter &w, const SessionPullFrame &f)
{
    w.str(f.sessionId);
}

bool
decodeSessionPull(WireReader &r, SessionPullFrame &f)
{
    f.sessionId = r.str(4096);
    return r.done();
}

void
encodeSessionState(WireWriter &w, const SessionStateFrame &f)
{
    w.str(f.sessionId);
    w.u8(f.found ? 1 : 0);
    w.u32(f.numNodes);
    if (f.found)
        encodeMarkers(w, f.markers);
}

bool
decodeSessionState(WireReader &r, std::uint32_t expect_nodes,
                   SessionStateFrame &f)
{
    f.sessionId = r.str(4096);
    f.found = r.u8() != 0;
    f.numNodes = r.u32();
    if (r.failed())
        return false;
    if (!f.found)
        return r.done();
    if (f.numNodes != expect_nodes)
        return false;
    f.markers = MarkerStore(f.numNodes);
    if (!decodeMarkers(r, f.markers))
        return false;
    return r.done();
}

void
encodeSessionPush(WireWriter &w, const SessionPushFrame &f)
{
    w.str(f.sessionId);
    w.u32(f.numNodes);
    encodeMarkers(w, f.markers);
}

bool
decodeSessionPush(WireReader &r, std::uint32_t expect_nodes,
                  SessionPushFrame &f)
{
    f.sessionId = r.str(4096);
    f.numNodes = r.u32();
    if (r.failed() || f.sessionId.empty() || f.numNodes != expect_nodes)
        return false;
    f.markers = MarkerStore(f.numNodes);
    if (!decodeMarkers(r, f.markers))
        return false;
    return r.done();
}

void
encodeSessionPushAck(WireWriter &w, const SessionPushAckFrame &f)
{
    w.str(f.sessionId);
    w.u8(f.ok ? 1 : 0);
    w.str(f.detail);
}

bool
decodeSessionPushAck(WireReader &r, SessionPushAckFrame &f)
{
    f.sessionId = r.str(4096);
    f.ok = r.u8() != 0;
    f.detail = r.str(4096);
    return r.done();
}

void
encodeStatsPull(WireWriter &w, const StatsPullFrame &f)
{
    w.u64(f.nonce);
}

bool
decodeStatsPull(WireReader &r, StatsPullFrame &f)
{
    f.nonce = r.u64();
    return r.done();
}

void
encodeStatsSnapshot(WireWriter &w, const StatsSnapshotFrame &f)
{
    w.u64(f.nonce);
    w.u32(static_cast<std::uint32_t>(f.samples.size()));
    for (const MetricsRegistry::Sample &s : f.samples) {
        w.str(s.name);
        w.str(s.help);
        w.u8(s.kind == MetricsRegistry::Kind::Counter ? 0 : 1);
        w.u16(static_cast<std::uint16_t>(s.labels.size()));
        for (const auto &kv : s.labels) {
            w.str(kv.first);
            w.str(kv.second);
        }
        w.f64(s.value);
    }
}

bool
decodeStatsSnapshot(WireReader &r, StatsSnapshotFrame &f)
{
    f.nonce = r.u64();
    const std::uint32_t count = r.u32();
    // Each sample is >= 19 bytes (two empty strings, kind, label
    // count, value); reject counts the frame cannot hold before
    // reserving.
    if (r.failed() || count > r.remaining() / 19 + 1)
        return false;
    f.samples.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        MetricsRegistry::Sample s;
        s.name = r.str(512);
        s.help = r.str(4096);
        const std::uint8_t kind = r.u8();
        const std::uint32_t num_labels = r.u16();
        if (r.failed() || kind > 1 || num_labels > 64)
            return false;
        s.kind = kind == 0 ? MetricsRegistry::Kind::Counter
                           : MetricsRegistry::Kind::Gauge;
        s.labels.reserve(num_labels);
        for (std::uint32_t k = 0; k < num_labels; ++k) {
            std::string key = r.str(256);
            std::string value = r.str(4096);
            s.labels.emplace_back(std::move(key), std::move(value));
        }
        s.value = r.f64();
        if (r.failed())
            return false;
        f.samples.push_back(std::move(s));
    }
    return r.done();
}

} // namespace shard
} // namespace snap
