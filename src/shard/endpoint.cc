#include "shard/endpoint.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"

namespace snap
{
namespace shard
{

namespace
{

std::string
errnoDetail(const char *what)
{
    return formatString("%s: %s", what, std::strerror(errno));
}

bool
resolveIpv4(const std::string &host, in_addr &out)
{
    if (host == "localhost")
        return inet_pton(AF_INET, "127.0.0.1", &out) == 1;
    return inet_pton(AF_INET, host.c_str(), &out) == 1;
}

/** Fill a sockaddr_un; false when the path does not fit. */
bool
fillUnixAddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
sendAll(int fd, const std::uint8_t *data, std::size_t n)
{
    while (n > 0) {
        ssize_t k = ::send(fd, data, n, MSG_NOSIGNAL);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += k;
        n -= static_cast<std::size_t>(k);
    }
    return true;
}

/** @return 1 on success, 0 on clean EOF at a frame boundary start,
 *  -1 on mid-read EOF, -2 on a socket error. */
int
recvAll(int fd, std::uint8_t *data, std::size_t n)
{
    bool first = true;
    while (n > 0) {
        ssize_t k = ::recv(fd, data, n, 0);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return -2;
        }
        if (k == 0)
            return first ? 0 : -1;
        first = false;
        data += k;
        n -= static_cast<std::size_t>(k);
    }
    return 1;
}

} // namespace

const char *
ioErrorKindName(IoErrorKind k)
{
    switch (k) {
      case IoErrorKind::None: return "none";
      case IoErrorKind::Closed: return "closed";
      case IoErrorKind::MidFrameEof: return "mid-frame-eof";
      case IoErrorKind::OverCap: return "over-cap";
      case IoErrorKind::BadType: return "bad-type";
      case IoErrorKind::Refused: return "refused";
      case IoErrorKind::Timeout: return "timeout";
      case IoErrorKind::IoError: return "io-error";
    }
    return "?";
}

std::string
Endpoint::toString() const
{
    if (kind == Kind::Unix)
        return "unix:" + host;
    return formatString("%s:%u", host.c_str(), port);
}

bool
parseEndpoint(const std::string &text, Endpoint &out,
              std::string &detail)
{
    if (text.rfind("unix:", 0) == 0) {
        std::string path = text.substr(5);
        if (path.empty()) {
            detail = "unix endpoint needs a socket path";
            return false;
        }
        out.kind = Endpoint::Kind::Unix;
        out.host = std::move(path);
        out.port = 0;
        return true;
    }
    std::size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == text.size()) {
        detail = formatString("endpoint '%s' is neither unix:/path "
                              "nor host:port", text.c_str());
        return false;
    }
    const std::string host = text.substr(0, colon);
    const std::string port_str = text.substr(colon + 1);
    std::uint32_t port = 0;
    for (char c : port_str) {
        if (c < '0' || c > '9') {
            detail = formatString("bad port '%s'", port_str.c_str());
            return false;
        }
        port = port * 10 + static_cast<std::uint32_t>(c - '0');
        if (port > 65535) {
            detail = formatString("port '%s' out of range",
                                  port_str.c_str());
            return false;
        }
    }
    if (port == 0) {
        detail = formatString("bad port '%s'", port_str.c_str());
        return false;
    }
    in_addr probe;
    if (!resolveIpv4(host, probe)) {
        detail = formatString("host '%s' is not a numeric IPv4 "
                              "address or 'localhost'", host.c_str());
        return false;
    }
    out.kind = Endpoint::Kind::Tcp;
    out.host = host;
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

int
listenEndpoint(const Endpoint &ep, std::string &detail)
{
    int fd = -1;
    if (ep.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr;
        if (!fillUnixAddr(ep.host, addr)) {
            detail = formatString("socket path '%s' too long (max "
                                  "%zu bytes)", ep.host.c_str(),
                                  sizeof(addr.sun_path) - 1);
            return -1;
        }
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            detail = errnoDetail("socket");
            return -1;
        }
        // A previous run's socket file would make bind fail; the
        // path is ours by convention, so reclaim it.
        ::unlink(ep.host.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            detail = errnoDetail("bind");
            closeFd(fd);
            return -1;
        }
    } else {
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(ep.port);
        if (!resolveIpv4(ep.host, addr.sin_addr)) {
            detail = formatString("cannot resolve '%s'",
                                  ep.host.c_str());
            return -1;
        }
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            detail = errnoDetail("socket");
            return -1;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            detail = errnoDetail("bind");
            closeFd(fd);
            return -1;
        }
    }
    if (::listen(fd, 64) < 0) {
        detail = errnoDetail("listen");
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
acceptConnection(int listen_fd, std::string &detail)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        detail = errnoDetail("accept");
        return -1;
    }
}

int
connectEndpoint(const Endpoint &ep, double timeout_ms,
                std::string &detail)
{
    IoErrorKind kind = IoErrorKind::None;
    return connectEndpoint(ep, timeout_ms, detail, kind);
}

int
connectEndpoint(const Endpoint &ep, double timeout_ms,
                std::string &detail, IoErrorKind &kind)
{
    using Clock = std::chrono::steady_clock;
    kind = IoErrorKind::None;
    const Clock::time_point give_up =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               timeout_ms));
    for (;;) {
        int fd = -1;
        int rc = -1;
        if (ep.kind == Endpoint::Kind::Unix) {
            sockaddr_un addr;
            if (!fillUnixAddr(ep.host, addr)) {
                detail = formatString("socket path '%s' too long",
                                      ep.host.c_str());
                kind = IoErrorKind::IoError;
                return -1;
            }
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd >= 0) {
                rc = ::connect(fd,
                               reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr));
            }
        } else {
            sockaddr_in addr;
            std::memset(&addr, 0, sizeof(addr));
            addr.sin_family = AF_INET;
            addr.sin_port = htons(ep.port);
            if (!resolveIpv4(ep.host, addr.sin_addr)) {
                detail = formatString("cannot resolve '%s'",
                                      ep.host.c_str());
                kind = IoErrorKind::IoError;
                return -1;
            }
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd >= 0) {
                rc = ::connect(fd,
                               reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr));
                if (rc == 0) {
                    int one = 1;
                    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                                 sizeof(one));
                }
            }
        }
        if (fd >= 0 && rc == 0) {
            detail.clear();
            return fd;
        }
        const int err = errno;
        closeFd(fd);
        // ENOENT / ECONNREFUSED: the peer has not bound yet — the
        // normal multi-process bring-up race.  Anything else is
        // final.
        if (err != ENOENT && err != ECONNREFUSED) {
            errno = err;
            detail = errnoDetail("connect");
            kind = IoErrorKind::IoError;
            return -1;
        }
        if (Clock::now() >= give_up) {
            errno = err;
            detail = errnoDetail("connect (timed out waiting)");
            kind = IoErrorKind::Refused;
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

bool
writeFrame(int fd, FrameType type,
           const std::vector<std::uint8_t> &payload)
{
    snap_assert(payload.size() <= maxFramePayload,
                "frame payload %zu over cap", payload.size());
    std::uint8_t head[5];
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        head[i] = static_cast<std::uint8_t>(len >> (8 * i));
    head[4] = static_cast<std::uint8_t>(type);
    if (!sendAll(fd, head, sizeof(head)))
        return false;
    return payload.empty() ||
           sendAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, FrameType &type, std::vector<std::uint8_t> &payload,
          std::string &detail)
{
    IoErrorKind kind = IoErrorKind::None;
    return readFrame(fd, type, payload, detail, kind);
}

bool
readFrame(int fd, FrameType &type, std::vector<std::uint8_t> &payload,
          std::string &detail, IoErrorKind &kind)
{
    kind = IoErrorKind::None;
    std::uint8_t head[5];
    int rc = recvAll(fd, head, sizeof(head));
    if (rc != 1) {
        if (rc == 0) {
            detail = "connection closed";
            kind = IoErrorKind::Closed;
        } else if (rc == -1) {
            detail = "connection closed mid-frame (header)";
            kind = IoErrorKind::MidFrameEof;
        } else {
            detail = errnoDetail("recv (frame header)");
            kind = IoErrorKind::IoError;
        }
        return false;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
    if (len > maxFramePayload) {
        detail = formatString("frame payload %u exceeds the %u-byte "
                              "cap", len, maxFramePayload);
        kind = IoErrorKind::OverCap;
        return false;
    }
    const std::uint8_t raw_type = head[4];
    if (raw_type < static_cast<std::uint8_t>(FrameType::Hello) ||
        raw_type > maxFrameType) {
        detail = formatString("unknown frame type %u", raw_type);
        kind = IoErrorKind::BadType;
        return false;
    }
    type = static_cast<FrameType>(raw_type);
    payload.resize(len);
    if (len > 0) {
        rc = recvAll(fd, payload.data(), len);
        if (rc != 1) {
            if (rc == -2) {
                detail = errnoDetail("recv (frame payload)");
                kind = IoErrorKind::IoError;
            } else {
                detail = "connection closed mid-frame (payload)";
                kind = IoErrorKind::MidFrameEof;
            }
            return false;
        }
    }
    return true;
}

bool
writeFrameTruncated(int fd, FrameType type,
                    const std::vector<std::uint8_t> &payload,
                    std::size_t max_payload_bytes)
{
    snap_assert(payload.size() <= maxFramePayload,
                "frame payload %zu over cap", payload.size());
    std::uint8_t head[5];
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        head[i] = static_cast<std::uint8_t>(len >> (8 * i));
    head[4] = static_cast<std::uint8_t>(type);
    if (!sendAll(fd, head, sizeof(head)))
        return false;
    const std::size_t n =
        payload.size() < max_payload_bytes ? payload.size()
                                           : max_payload_bytes;
    return n == 0 || sendAll(fd, payload.data(), n);
}

} // namespace shard
} // namespace snap
