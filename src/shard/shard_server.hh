/**
 * @file
 * ShardServer: one serving process of a sharded snapshard deployment.
 *
 * Wraps a ServeEngine (replica pool stamped from a deserialized
 * .kbimg master — never recompiled) behind the shard protocol: an
 * accept loop hands each connection to a reader thread that decodes
 * frames, submits Request frames through the engine's callback
 * delivery mode, and answers control frames inline.  Responses are
 * written from engine worker threads as requests complete (serialized
 * per connection), so a slow query never head-of-line-blocks the
 * answers behind it.
 *
 * Epoch hot-swap: a Prepare frame names a .kbimg generation; the
 * server bulk-loads and validates it (typed rejection on a corrupt
 * file — the old image keeps serving), then ServeEngine::swapImage
 * drains in-flight work and re-stamps every replica.  The positive
 * PrepareAck is the router's barrier token; Commit flips the
 * advertised epoch.  Sessions survive the swap (marker state is
 * keyed by global node ids and the node count is checked).
 */

#ifndef SNAP_SHARD_SHARD_SERVER_HH
#define SNAP_SHARD_SHARD_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/kb_image_io.hh"
#include "fault/fleet_fault.hh"
#include "serve/engine.hh"
#include "shard/endpoint.hh"
#include "shard/protocol.hh"

namespace snap
{
namespace shard
{

struct ShardServerConfig
{
    /** Listen endpoint ("unix:/path" or "host:port"). */
    std::string listen;
    /** Engine configuration (numClusters is overridden by the
     *  image's partition). */
    serve::ServeConfig serve;
    /** Wire-layer fault injection on the Response write path (chaos
     *  testing).  All-zero rates = no injection at all. */
    FleetFaultSpec fleetFaults;
};

class ShardServer
{
  public:
    /** Adopt a loaded .kbimg (network + compiled image).  The engine
     *  stamps its replica pool from the image — no recompilation. */
    ShardServer(KbImageFile kb, ShardServerConfig cfg);
    ~ShardServer();

    ShardServer(const ShardServer &) = delete;
    ShardServer &operator=(const ShardServer &) = delete;

    /** Bind + listen.  @return false with @p detail on failure. */
    bool bind(std::string &detail);

    /**
     * Accept/serve until a Shutdown frame arrives or stop() is
     * called.  Blocks; run it on a dedicated thread for in-process
     * use.  Connections are served concurrently.
     */
    void run();

    /** Unblock run() (idempotent; callable from any thread). */
    void stop();

    std::uint64_t epoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    std::uint64_t fingerprint() const
    {
        return fingerprint_.load(std::memory_order_acquire);
    }

    serve::ServeEngine &engine() { return *engine_; }

    /** Live fleet fault schedule, or nullptr when none is armed. */
    const FleetFaultPlan *fleetPlan() const { return fleetPlan_.get(); }

  private:
    void serveConnection(int fd);
    /** @return false to drop the connection.  @p conn is the
     *  connection ordinal (trace tid of this connection's serve
     *  spans). */
    bool handleFrame(int fd, std::uint32_t conn, std::mutex &write_mu,
                     FrameType type,
                     const std::vector<std::uint8_t> &payload);
    void handleRequest(int fd, std::uint32_t conn,
                       std::mutex &write_mu, RequestFrame &&frame);
    void writeResponseWithFaults(int fd, std::mutex &write_mu,
                                 std::uint64_t wire_id,
                                 std::vector<std::uint8_t> bytes);
    void handlePrepare(int fd, std::mutex &write_mu,
                       const PrepareFrame &frame);

    ShardServerConfig cfg_;
    Endpoint endpoint_;
    /** Current generation's logical network (swapped with the
     *  image under swapMu_). */
    SemanticNetwork net_;
    std::unique_ptr<serve::ServeEngine> engine_;
    std::unique_ptr<FleetFaultPlan> fleetPlan_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint64_t> fingerprint_{0};
    /** Serializes Prepare handling (one swap at a time). */
    std::mutex swapMu_;

    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::mutex connMu_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;
    /** Connection ordinal allocator (trace tids). */
    std::atomic<std::uint32_t> connSeq_{0};
};

} // namespace shard
} // namespace snap

#endif // SNAP_SHARD_SHARD_SERVER_HH
