#include "shard/shard_server.hh"

#include <chrono>
#include <sys/socket.h>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/metrics_registry.hh"
#include "trace/trace.hh"

namespace snap
{
namespace shard
{

ShardServer::ShardServer(KbImageFile kb, ShardServerConfig cfg)
    : cfg_(std::move(cfg)), net_(std::move(kb.net))
{
    std::string detail;
    if (!parseEndpoint(cfg_.listen, endpoint_, detail))
        snap_fatal("shard listen endpoint: %s", detail.c_str());
    engine_ = std::make_unique<serve::ServeEngine>(
        net_, std::move(kb.image), cfg_.serve);
    fingerprint_.store(kb.fingerprint, std::memory_order_release);
    if (cfg_.fleetFaults.any())
        fleetPlan_ = std::make_unique<FleetFaultPlan>(cfg_.fleetFaults);
}

ShardServer::~ShardServer()
{
    stop();
    // Reader threads exit once their fds are closed by stop().
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        t.join();
}

bool
ShardServer::bind(std::string &detail)
{
    listenFd_ = listenEndpoint(endpoint_, detail);
    return listenFd_ >= 0;
}

void
ShardServer::run()
{
    snap_assert(listenFd_ >= 0, "run() before bind()");
    snap_inform("shard: serving %u nodes / %u clusters on %s "
                "(fingerprint %016llx)",
                engine_->sharedImage().numNodes(),
                engine_->sharedImage().numClusters(),
                endpoint_.toString().c_str(),
                static_cast<unsigned long long>(fingerprint()));
    for (;;) {
        std::string detail;
        int fd = acceptConnection(listenFd_, detail);
        if (fd < 0) {
            // stop() closed the listener; anything else is fatal to
            // the accept loop but existing connections keep serving.
            if (!stopping_.load(std::memory_order_acquire))
                snap_warn("shard: accept failed: %s", detail.c_str());
            break;
        }
        std::lock_guard<std::mutex> lock(connMu_);
        if (stopping_.load(std::memory_order_acquire)) {
            closeFd(fd);
            break;
        }
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
    // Finish everything already admitted before returning, so a
    // Shutdown-initiated exit never abandons an in-flight answer.
    engine_->drain();
}

void
ShardServer::stop()
{
    bool was = stopping_.exchange(true, std::memory_order_acq_rel);
    if (was)
        return;
    // Closing the fds unblocks the accept loop and every reader.
    std::lock_guard<std::mutex> lock(connMu_);
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        closeFd(listenFd_);
        listenFd_ = -1;
    }
    for (int fd : connFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
ShardServer::serveConnection(int fd)
{
    // One write mutex per connection: engine workers deliver
    // responses concurrently and frames must not interleave.
    std::mutex write_mu;
    const std::uint32_t conn =
        connSeq_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
        FrameType type;
        std::vector<std::uint8_t> payload;
        std::string detail;
        if (!readFrame(fd, type, payload, detail)) {
            if (!stopping_.load(std::memory_order_acquire) &&
                detail != "connection closed")
                snap_warn("shard: %s", detail.c_str());
            break;
        }
        if (!handleFrame(fd, conn, write_mu, type, payload))
            break;
    }
    // Answers still in flight on this connection would write to a
    // dead fd — harmless (send fails, response dropped), but drain
    // first so the Pending callbacks never outlive write_mu.
    engine_->drain();
    closeFd(fd);
}

bool
ShardServer::handleFrame(int fd, std::uint32_t conn,
                         std::mutex &write_mu, FrameType type,
                         const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload.data(), payload.size());
    switch (type) {
      case FrameType::Hello: {
        HelloFrame hello;
        if (!decodeHello(r, hello)) {
            snap_warn("shard: malformed hello");
            return false;
        }
        HelloAckFrame ack;
        ack.version = protocolVersion;
        ack.fingerprint = fingerprint();
        ack.epoch = epoch();
        ack.numNodes = engine_->sharedImage().numNodes();
        ack.numClusters = engine_->sharedImage().numClusters();
        // Clock exchange for snaptrace merge: our trace-clock
        // reading of (approximately) the same instant the router
        // receives this ack lets it compute the per-shard offset
        // that aligns the two process timelines.
        ack.traceClockNs = trace::hostNowNs();
        WireWriter w;
        encodeHelloAck(w, ack);
        std::lock_guard<std::mutex> lock(write_mu);
        return writeFrame(fd, FrameType::HelloAck, w.bytes());
      }
      case FrameType::Request: {
        RequestFrame frame;
        if (!decodeRequest(r, frame)) {
            // A peer that sends undecodable requests is broken;
            // cut the connection rather than guess.
            snap_warn("shard: malformed request frame");
            return false;
        }
        handleRequest(fd, conn, write_mu, std::move(frame));
        return true;
      }
      case FrameType::Health: {
        HealthFrame health;
        if (!decodeHealth(r, health))
            return false;
        HealthAckFrame ack;
        ack.nonce = health.nonce;
        ack.epoch = epoch();
        ack.fingerprint = fingerprint();
        WireWriter w;
        encodeHealthAck(w, ack);
        std::lock_guard<std::mutex> lock(write_mu);
        return writeFrame(fd, FrameType::HealthAck, w.bytes());
      }
      case FrameType::Prepare: {
        PrepareFrame prep;
        if (!decodePrepare(r, prep))
            return false;
        handlePrepare(fd, write_mu, prep);
        return true;
      }
      case FrameType::Commit: {
        EpochFrame commit;
        if (!decodeEpoch(r, commit))
            return false;
        epoch_.store(commit.epoch, std::memory_order_release);
        WireWriter w;
        encodeEpoch(w, commit);
        std::lock_guard<std::mutex> lock(write_mu);
        return writeFrame(fd, FrameType::CommitAck, w.bytes());
      }
      case FrameType::SessionPull: {
        SessionPullFrame pull;
        if (!decodeSessionPull(r, pull)) {
            snap_warn("shard: malformed session-pull frame");
            return false;
        }
        SessionStateFrame st;
        st.sessionId = pull.sessionId;
        MarkerStore m(engine_->sharedImage().numNodes());
        if (engine_->trySessionMarkers(pull.sessionId, m)) {
            st.found = true;
            st.numNodes = m.numNodes();
            st.markers = std::move(m);
        }
        WireWriter w;
        encodeSessionState(w, st);
        std::lock_guard<std::mutex> lock(write_mu);
        return writeFrame(fd, FrameType::SessionState, w.bytes());
      }
      case FrameType::SessionPush: {
        SessionPushFrame push;
        SessionPushAckFrame ack;
        if (!decodeSessionPush(r, engine_->sharedImage().numNodes(),
                               push)) {
            // Unlike a malformed request, answer with a typed nack:
            // the router is mid-migration and needs the verdict.
            ack.ok = false;
            ack.detail = "malformed session-push frame";
        } else {
            ack.sessionId = push.sessionId;
            std::string err;
            ack.ok = engine_->restoreSession(push.sessionId,
                                             std::move(push.markers),
                                             err);
            ack.detail = err;
        }
        if (!ack.ok)
            snap_warn("shard: session-push('%s') refused: %s",
                      ack.sessionId.c_str(), ack.detail.c_str());
        WireWriter w;
        encodeSessionPushAck(w, ack);
        std::lock_guard<std::mutex> lock(write_mu);
        return writeFrame(fd, FrameType::SessionPushAck, w.bytes());
      }
      case FrameType::StatsPull: {
        StatsPullFrame pull;
        if (!decodeStatsPull(r, pull))
            return false;
        // Point-in-time snapshot: engine metrics plus the logger's
        // per-level emit/suppression counters, serialized straight
        // from the registry's sample list.
        StatsSnapshotFrame snap;
        snap.nonce = pull.nonce;
        MetricsRegistry reg;
        engine_->exportMetrics(reg);
        Logger::exportMetrics(reg);
        snap.samples = reg.samples();
        WireWriter w;
        encodeStatsSnapshot(w, snap);
        std::lock_guard<std::mutex> lock(write_mu);
        return writeFrame(fd, FrameType::StatsSnapshot, w.bytes());
      }
      case FrameType::Shutdown: {
        stop();
        return false;
      }
      default:
        snap_warn("shard: unexpected %s frame",
                  frameTypeName(type));
        return false;
    }
}

void
ShardServer::handleRequest(int fd, std::uint32_t conn,
                           std::mutex &write_mu, RequestFrame &&frame)
{
    serve::Request req;
    req.sessionId = std::move(frame.sessionId);
    req.prog = std::move(frame.prog);
    req.timeoutMs = frame.timeoutMs;
    req.rngSeed = frame.rngSeed;
    req.traceId = frame.traceId;
    req.traceParent = frame.traceParent;
    req.traceSampled = (frame.traceFlags & 1u) != 0;

    const std::uint64_t wire_id = frame.id;
    // Cross-process join point: the "rpc.serve" span covers receipt
    // to response-ready, and the 'f' half of the router's "xrpc"
    // flow arrow lands on it, keyed by the attempt's span id — each
    // hedged duplicate or reroute pairs with its own arrow.
    const bool traced =
        req.traceSampled && SNAP_TRACE_ON(trace::kServe);
    const std::uint64_t recv_ns = traced ? trace::hostNowNs() : 0;
    const std::uint64_t trace_id = req.traceId;
    const std::uint64_t parent = req.traceParent;
    engine_->submit(
        std::move(req),
        [this, fd, &write_mu, wire_id, conn, traced, recv_ns,
         trace_id, parent](serve::Response &&resp) {
            if (traced && SNAP_TRACE_ON(trace::kServe)) {
                const std::uint64_t done_ns = trace::hostNowNs();
                trace::hostFlowEndNamed(trace::kServe,
                                        trace::tidRpcConn(conn),
                                        "xrpc", parent, recv_ns);
                trace::hostSpanArg(trace::kServe,
                                   trace::tidRpcConn(conn),
                                   "rpc.serve", recv_ns, done_ns,
                                   trace_id);
            }
            ResponseFrame out;
            out.id = wire_id;
            out.status = resp.status;
            out.results = std::move(resp.results);
            out.wallTicks = resp.wallTicks;
            out.rngSeed = resp.rngSeed;
            out.queueMs = resp.queueMs;
            out.serviceMs = resp.serviceMs;
            out.worker = resp.worker;
            out.batchLanes = resp.batchLanes;
            out.retries = resp.retries;
            out.faultDetected = resp.faultDetected;
            WireWriter w;
            encodeResponse(w, out);
            writeResponseWithFaults(fd, write_mu, wire_id, w.take());
        });
}

/**
 * Write one encoded Response, injecting any armed fleet-level faults:
 * delay (slow shard), byte corruption (caught by the response
 * checksum on the router), mid-frame truncation, and connection drop.
 * Every kind is rolled exactly once per response so each stream's
 * draw history is independent of the other kinds' rates.
 */
void
ShardServer::writeResponseWithFaults(int fd, std::mutex &write_mu,
                                     std::uint64_t wire_id,
                                     std::vector<std::uint8_t> bytes)
{
    bool drop = false;
    bool trunc = false;
    if (fleetPlan_) {
        if (fleetPlan_->rollDelay()) {
            SNAP_LOG_EVERY_N(Inform, 64,
                             "shard: fleet fault: delaying response "
                             "%llu by %.0f ms",
                             static_cast<unsigned long long>(wire_id),
                             fleetPlan_->spec().delayMs);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    fleetPlan_->spec().delayMs));
        }
        if (fleetPlan_->rollCorrupt() && !bytes.empty()) {
            const std::uint64_t d =
                fleetPlan_->draw(FleetFaultKind::Corrupt);
            const std::size_t at = d % bytes.size();
            bytes[at] ^= static_cast<std::uint8_t>(1u << (d >> 32 & 7));
            SNAP_LOG_EVERY_N(Inform, 64,
                             "shard: fleet fault: corrupting byte "
                             "%zu of response %llu", at,
                             static_cast<unsigned long long>(wire_id));
        }
        trunc = fleetPlan_->rollTruncate();
        drop = fleetPlan_->rollConnDrop();
    }
    std::lock_guard<std::mutex> lock(write_mu);
    if (drop) {
        SNAP_LOG_EVERY_N(Inform, 64,
                         "shard: fleet fault: dropping connection "
                         "instead of response %llu",
                         static_cast<unsigned long long>(wire_id));
        ::shutdown(fd, SHUT_RDWR);
        return;
    }
    if (trunc) {
        const std::size_t cut =
            bytes.empty()
                ? 0
                : fleetPlan_->draw(FleetFaultKind::Truncate) %
                      bytes.size();
        SNAP_LOG_EVERY_N(Inform, 64,
                         "shard: fleet fault: truncating response "
                         "%llu at byte %zu",
                         static_cast<unsigned long long>(wire_id), cut);
        writeFrameTruncated(fd, FrameType::Response, bytes, cut);
        ::shutdown(fd, SHUT_RDWR);
        return;
    }
    if (!writeFrame(fd, FrameType::Response, bytes)) {
        SNAP_LOG_EVERY_N(Warn, 64,
                         "shard: dropping response %llu (peer gone)",
                         static_cast<unsigned long long>(wire_id));
    }
}

void
ShardServer::handlePrepare(int fd, std::mutex &write_mu,
                           const PrepareFrame &prep)
{
    PrepareAckFrame ack;
    ack.epoch = prep.epoch;

    // One swap at a time; the engine's own admission gate handles
    // concurrency with request traffic.
    std::lock_guard<std::mutex> swap_lock(swapMu_);

    KbImageFile next;
    std::string detail;
    KbImgStatus status = loadKbImageFile(prep.imagePath, next, detail);
    if (status != KbImgStatus::Ok) {
        // Typed rejection: the old image keeps serving.
        ack.ok = false;
        ack.detail = formatString("%s: %s", kbImgStatusName(status),
                                  detail.c_str());
    } else {
        std::uint64_t fp = next.fingerprint;
        std::string err;
        if (engine_->swapImage(next.net, std::move(next.image), err)) {
            net_ = std::move(next.net);
            fingerprint_.store(fp, std::memory_order_release);
            ack.ok = true;
            snap_inform("shard: prepared epoch %llu from '%s' "
                        "(fingerprint %016llx)",
                        static_cast<unsigned long long>(prep.epoch),
                        prep.imagePath.c_str(),
                        static_cast<unsigned long long>(fp));
        } else {
            ack.ok = false;
            ack.detail = err;
        }
    }
    if (!ack.ok) {
        snap_warn("shard: prepare(%llu, '%s') refused: %s",
                  static_cast<unsigned long long>(prep.epoch),
                  prep.imagePath.c_str(), ack.detail.c_str());
    }

    WireWriter w;
    encodePrepareAck(w, ack);
    std::lock_guard<std::mutex> lock(write_mu);
    if (!writeFrame(fd, FrameType::PrepareAck, w.bytes()))
        snap_warn("shard: prepare-ack write failed");
}

} // namespace shard
} // namespace snap
