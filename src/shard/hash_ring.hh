/**
 * @file
 * Consistent-hash ring for request -> shard placement.
 *
 * Each shard contributes `vnodes` virtual points hashed onto a 64-bit
 * ring; a key is served by the first point clockwise from its hash.
 * Virtual points smooth the load split (with 64 points per shard the
 * imbalance across 4 shards stays within a few percent), and
 * consistency bounds movement: adding or removing one shard remaps
 * only the keys that land on its points, not the whole key space —
 * which is what keeps session pinning stable across shard-set edits.
 *
 * Keys: stateless requests hash Program::contentHash (same query
 * text -> same shard -> same lane-batch former), sessions hash the
 * session id (every query of a session must reach the marker state
 * it accumulated).  The ring itself is key-agnostic: it maps u64 ->
 * shard index.
 */

#ifndef SNAP_SHARD_HASH_RING_HH
#define SNAP_SHARD_HASH_RING_HH

#include <cstdint>
#include <vector>

namespace snap
{
namespace shard
{

class HashRing
{
  public:
    /** @param num_shards shards 0..num_shards-1 all join the ring
     *  @param vnodes virtual points per shard */
    explicit HashRing(std::uint32_t num_shards,
                      std::uint32_t vnodes = 64);

    std::uint32_t numShards() const { return numShards_; }

    /** Owner of @p key: first ring point clockwise from hash(key). */
    std::uint32_t owner(std::uint64_t key) const;

    /**
     * Owner after skipping shards marked unavailable in @p down
     * (indexed by shard, true = skip).  Walks clockwise, so keys of a
     * down shard spill over to the next points — the stateless
     * retry-on-other-shard path.  Returns owner(key) when every
     * shard is down (the caller then reports, rather than spins).
     */
    std::uint32_t ownerSkipping(std::uint64_t key,
                                const std::vector<bool> &down) const;

    /**
     * The first min(@p r, numShards()) *distinct* shards clockwise
     * from hash(key): owners[0] is owner(key) (the primary), the
     * rest are the replica set in ring order.  Replication R >= 2
     * keys every range to this set; consistency keeps it stable
     * across shard-set edits just like owner().
     */
    std::vector<std::uint32_t> owners(std::uint64_t key,
                                      std::uint32_t r) const;

  private:
    struct Point
    {
        std::uint64_t hash;
        std::uint32_t shard;
    };

    std::uint32_t numShards_;
    /** Sorted by hash; lookup is a binary search + wrap. */
    std::vector<Point> points_;
};

} // namespace shard
} // namespace snap

#endif // SNAP_SHARD_HASH_RING_HH
